/**
 * @file
 * Streaming client for the search-service daemon: submit one search
 * over TCP and print the reply stream as it arrives — phases, every
 * best-EDP improvement, and the final design.
 *
 * Build & run (against a running `search_service_daemon`):
 *   ./build/search_service_client --port 7450 --algo mapper --samples 200
 *
 * Flags:
 *   --host H      daemon address (default 127.0.0.1)
 *   --port N      daemon port (required)
 *   --algo A      registered algorithm (default "mapper")
 *   --samples N   unified sample budget (default 200)
 *   --seed N      RNG seed (default 1)
 *   --workload W  search the named workload of the *daemon's*
 *                 registry by name (spec.workload_name) instead of
 *                 the built-in demo layer pair — the layers never
 *                 travel over the wire
 *   --spec FILE   read a full canonical SearchSpec JSON instead of
 *                 the built-in demo workload (see specToJson)
 *   --stats       also query the per-endpoint stats afterwards
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/spec_json.hh"
#include "service/tcp_server.hh"
#include "service/wire.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/layer.hh"

using namespace dosa;

namespace {

/**
 * The demo workload: a registry workload by name when --workload is
 * given (resolved server-side), else the golden-fixture GEMM + conv
 * pair inline.
 */
SearchSpec
demoSpec(const Cli &cli)
{
    SearchSpec spec;
    spec.algorithm = cli.get("algo", "mapper");
    if (cli.has("workload")) {
        spec.workload_name = cli.get("workload");
    } else {
        spec.workload = {
            Layer::gemm("a", 128, 64, 256),
            Layer::conv("b", 3, 16, 32, 64),
        };
    }
    spec.seed = uint64_t(cli.getInt("seed", 1));
    spec.budget.max_samples = int(cli.getInt("samples", 200));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const std::string host = cli.get("host", "127.0.0.1");
    const uint16_t port = uint16_t(cli.getInt("port", 0));
    if (port == 0)
        fatal("--port is required (the daemon prints its port)");

    SearchSpec spec;
    const std::string spec_path = cli.get("spec", "");
    if (!spec_path.empty()) {
        std::ifstream in(spec_path);
        if (!in)
            fatal("cannot read --spec file \"" + spec_path + "\"");
        std::ostringstream text;
        text << in.rdbuf();
        spec = mustSpecFromJson(text.str());
    } else {
        spec = demoSpec(cli);
    }

    service::TcpClient client;
    std::string error;
    if (!client.connect(host, port, error))
        fatal("connect: " + error);

    if (!client.sendLine(service::encodeSearchRequest("cli", spec)))
        fatal("send failed");

    std::string line;
    bool finished = false;
    while (!finished && client.receiveLine(line)) {
        service::Frame frame;
        if (!service::decodeFrame(line, frame, error))
            fatal("bad frame \"" + line + "\": " + error);
        switch (frame.kind) {
          case service::Frame::Kind::Phase:
            std::printf("[phase] %s\n", frame.phase.c_str());
            break;
          case service::Frame::Kind::Improvement:
            std::printf("[sample %5zu] best EDP -> %.6g\n",
                    frame.sample.index + 1, frame.sample.best_edp);
            break;
          case service::Frame::Kind::Sample:
            break; // per-sample frames are noise at CLI verbosity
          case service::Frame::Kind::Error:
            fatal("server error (" + frame.code + "): " +
                  frame.message);
          case service::Frame::Kind::Done:
            std::printf("\ndone: %llu samples, best EDP %.6g\n",
                    static_cast<unsigned long long>(frame.samples),
                    frame.best_edp);
            std::printf("best hardware: %s\n",
                    frame.best_hw.str().c_str());
            finished = true;
            break;
          default:
            fatal("unexpected frame: " + line);
        }
    }
    if (!finished)
        fatal("connection closed before the terminal frame");

    if (cli.has("stats")) {
        if (!client.sendLine(service::encodeStatsRequest("cli-s")) ||
                !client.receiveLine(line))
            fatal("stats request failed");
        service::Frame frame;
        if (!service::decodeFrame(line, frame, error) ||
                frame.kind != service::Frame::Kind::Stats)
            fatal("bad stats reply: " + line);
        std::printf("\n%s %s endpoint stats:\n",
                frame.service_name.c_str(),
                frame.service_version.c_str());
        for (const service::EndpointStats &ep : frame.endpoints)
            std::printf("  %s\n", ep.str().c_str());
    }
    client.close();
    return 0;
}
