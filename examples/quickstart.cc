/**
 * @file
 * Quickstart: model one convolution layer on a Gemmini-style
 * accelerator, inspect its traffic breakdown, then let DOSA's
 * gradient descent co-optimize the mapping and the minimal hardware.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "arch/baselines.hh"
#include "core/dosa_optimizer.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "util/table.hh"
#include "workload/layer.hh"

using namespace dosa;

int
main()
{
    // 1. Describe a workload layer: a ResNet-style 3x3 convolution.
    Layer layer = Layer::conv("conv3x3", /*rs=*/3, /*pq=*/56,
            /*cin=*/64, /*kout=*/64);
    std::printf("Layer: %s\n", layer.str().c_str());
    std::printf("MACs: %.3g\n\n", layer.macs());

    // 2. Map it onto the default Gemmini config with the heuristic
    //    (CoSA-substitute) mapper and evaluate with the reference
    //    model.
    HardwareConfig hw = gemminiDefault().config;
    Mapping mapping = cosaMap(layer, hw);
    std::printf("Hardware: %s\n", hw.str().c_str());
    std::printf("Mapping:  %s\n\n", mapping.str().c_str());

    RefEval ev = referenceEval(layer, mapping, hw);
    TablePrinter traffic({"level", "reads (words)", "writes (words)",
                          "updates (words)"});
    for (int lvl = kNumLevels - 1; lvl >= 0; --lvl) {
        double reads = 0.0, writes = 0.0;
        for (Tensor t : kAllTensors) {
            reads += ev.reads[size_t(lvl)]
                             [size_t(static_cast<int>(t))];
            if (lvl < kDram)
                writes += ev.writes[size_t(lvl)]
                                   [size_t(static_cast<int>(t))];
        }
        traffic.addRow({levelName(lvl), fmtSci(reads, 2),
                fmtSci(writes, 2), fmtSci(ev.updates[size_t(lvl)],
                        2)});
    }
    traffic.print();
    std::printf("\nLatency: %.3g cycles, energy: %.3g uJ, "
                "EDP: %.3g uJ*cycles\n\n", ev.latency, ev.energy_uj,
            ev.edp);

    // 3. One-loop co-search: let gradient descent find better tiling
    //    factors and infer the minimal hardware that supports them.
    DosaConfig cfg;
    cfg.start_points = 3;
    cfg.steps_per_start = 900;
    cfg.round_every = 300;
    cfg.seed = 1;
    DosaResult result = dosaSearch({layer}, cfg);

    std::printf("DOSA co-search (%zu model evaluations):\n",
            result.search.trace.size());
    std::printf("  best hardware: %s\n",
            result.search.best_hw.str().c_str());
    std::printf("  best mapping:  %s\n",
            result.search.best_mappings[0].str().c_str());
    std::printf("  EDP: %.3g uJ*cycles (%.1fx better than the "
                "default-config heuristic mapping)\n",
            result.search.best_edp, ev.edp / result.search.best_edp);
    return 0;
}
