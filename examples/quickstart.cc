/**
 * @file
 * Quickstart: model one convolution layer on a Gemmini-style
 * accelerator, inspect its traffic breakdown, then run the search
 * facade (`SearchSpec` -> `runSearch` with a streaming observer) to
 * co-optimize the mapping and the minimal hardware with DOSA's
 * gradient descent.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "api/search_api.hh"
#include "arch/baselines.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "util/table.hh"
#include "workload/workload_registry.hh"

using namespace dosa;

namespace {

/** Stream search progress: phases and every best-EDP improvement. */
class ProgressObserver : public SearchObserver
{
  public:
    void
    onPhase(const char *phase) override
    {
        std::printf("  [phase] %s\n", phase);
    }

    void
    onImprovement(const SampleEvent &event) override
    {
        std::printf("  [sample %5zu] best EDP -> %.3g\n",
                event.index + 1, event.best_edp);
    }
};

} // namespace

int
main()
{
    // 1. Pick a workload layer from the registry: the 3x3 stage-1
    //    convolution of the built-in "resnet50" entry. Workloads are
    //    data — the same network could come from a workloads/<name>.json
    //    file (see docs/WORKLOADS.md) instead of the built-in zoo.
    const Network &resnet = *Workloads::find("resnet50");
    Layer layer;
    for (const Layer &l : resnet.layers)
        if (l.name == "res2_3x3") // 3x3, 56x56 maps, 64 -> 64
            layer = l;
    layer.count = 1; // study a single instance
    std::printf("Layer %s of %s: %s\n", layer.name.c_str(),
            resnet.name.c_str(), layer.str().c_str());
    std::printf("MACs: %.3g\n\n", layer.macs());

    // 2. Map it onto the default Gemmini config with the heuristic
    //    (CoSA-substitute) mapper and evaluate with the reference
    //    model.
    HardwareConfig hw = gemminiDefault().config;
    Mapping mapping = cosaMap(layer, hw);
    std::printf("Hardware: %s\n", hw.str().c_str());
    std::printf("Mapping:  %s\n\n", mapping.str().c_str());

    RefEval ev = referenceEval(layer, mapping, hw);
    TablePrinter traffic({"level", "reads (words)", "writes (words)",
                          "updates (words)"});
    for (int lvl = kNumLevels - 1; lvl >= 0; --lvl) {
        double reads = 0.0, writes = 0.0;
        for (Tensor t : kAllTensors) {
            reads += ev.reads[size_t(lvl)]
                             [size_t(static_cast<int>(t))];
            if (lvl < kDram)
                writes += ev.writes[size_t(lvl)]
                                   [size_t(static_cast<int>(t))];
        }
        traffic.addRow({levelName(lvl), fmtSci(reads, 2),
                fmtSci(writes, 2), fmtSci(ev.updates[size_t(lvl)],
                        2)});
    }
    traffic.print();
    std::printf("\nLatency: %.3g cycles, energy: %.3g uJ, "
                "EDP: %.3g uJ*cycles\n\n", ev.latency, ev.energy_uj,
            ev.edp);

    // 3. One-loop co-search through the search facade: pick the
    //    "dosa" algorithm from the registry, stream progress with an
    //    observer, and let gradient descent find better tiling
    //    factors plus the minimal hardware that supports them.
    std::printf("Registered search algorithms:");
    for (const std::string &name : Search::algorithms())
        std::printf(" %s", name.c_str());
    std::printf("\nRegistered workloads: %s\n\n",
            Workloads::nameList().c_str());

    SearchSpec spec;
    spec.algorithm = "dosa";
    spec.workload = {layer};
    spec.seed = 1;
    spec.options.set("start_points", 3)
            .set("steps_per_start", 900)
            .set("round_every", 300);
    ProgressObserver progress;
    SearchReport result = runSearch(spec, &progress);

    std::printf("DOSA co-search (%zu model evaluations):\n",
            result.search.trace.size());
    std::printf("  best hardware: %s\n",
            result.search.best_hw.str().c_str());
    std::printf("  best mapping:  %s\n",
            result.search.best_mappings[0].str().c_str());
    std::printf("  EDP: %.3g uJ*cycles (%.1fx better than the "
                "default-config heuristic mapping)\n",
            result.search.best_edp, ev.edp / result.search.best_edp);
    return 0;
}
