/**
 * @file
 * Full-network co-design: run the DOSA one-loop search on all unique
 * ResNet-50 layers simultaneously, then compare the resulting
 * accelerator against the expert baselines of Fig. 8.
 *
 * Demonstrates: multi-layer joint optimization (Eq 14), minimal-
 * hardware inference (Fig. 3) and baseline evaluation.
 */

#include <cstdio>
#include <vector>

#include "api/search_api.hh"
#include "arch/baselines.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "util/table.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main()
{
    Network net = resnet50();
    std::printf("Co-designing for %s: %zu unique layers, %.2f GMACs\n",
            net.name.c_str(), net.layers.size(),
            net.totalMacs() / 1e9);

    SearchSpec spec;
    spec.algorithm = "dosa";
    spec.workload = net.layers;
    spec.seed = 7;
    spec.options.set("start_points", 5)
            .set("steps_per_start", 1490)
            .set("round_every", 300)
            .set("strategy",
                    static_cast<double>(OrderStrategy::Iterate));
    SearchReport result = runSearch(spec);

    std::printf("\nDOSA result after %zu model evaluations:\n",
            result.search.trace.size());
    std::printf("  hardware: %s\n",
            result.search.best_hw.str().c_str());
    std::printf("  EDP: %.4g uJ*cycles\n", result.search.best_edp);
    std::printf("  improvement over best start point: %.2fx\n\n",
            result.best_start_edp / result.search.best_edp);

    // A few of the selected per-layer mappings.
    std::printf("Sample mappings:\n");
    for (size_t i = 0; i < net.layers.size(); i += 8) {
        std::printf("  %-14s %s\n", net.layers[i].name.c_str(),
                result.search.best_mappings[i].str().c_str());
    }

    // Compare against the expert baselines under the heuristic mapper.
    std::printf("\nBaseline comparison (CoSA-substitute mapper):\n");
    TablePrinter table({"accelerator", "EDP (uJ*cycles)",
                        "vs DOSA"});
    for (const BaselineAccelerator &base : allBaselines()) {
        std::vector<Mapping> maps;
        for (const Layer &l : net.layers)
            maps.push_back(cosaMap(l, base.config));
        double edp = referenceNetworkEval(net.layers, maps,
                base.config).edp;
        table.addRow({base.name, fmtSci(edp, 3),
                fmt(edp / result.search.best_edp, 2) + "x"});
    }
    table.addRow({"Gemmini DOSA", fmtSci(result.search.best_edp, 3),
            "1.00x"});
    table.print();
    return 0;
}
