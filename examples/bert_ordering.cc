/**
 * @file
 * Loop-ordering strategies on BERT: compares the three Section-5.2
 * approaches (fixed weight-stationary, iterative re-selection,
 * softmax-weighted gradient ordering) on the transformer GEMMs, and
 * prints the ordering each layer ends up with.
 */

#include <cstdio>

#include "api/search_api.hh"
#include "util/table.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main()
{
    Network net = bertBase();
    std::printf("Workload: BERT-base encoder, %zu unique GEMMs, "
                "%.2f GMACs\n\n", net.layers.size(),
            net.totalMacs() / 1e9);

    TablePrinter table({"strategy", "best EDP (uJ*cycles)",
                        "vs Baseline"});
    double baseline = 0.0;
    SearchReport best_run;
    for (OrderStrategy strat : {OrderStrategy::Fixed,
                                OrderStrategy::Iterate,
                                OrderStrategy::Softmax}) {
        SearchSpec spec;
        spec.algorithm = "dosa";
        spec.workload = net.layers;
        spec.seed = 11;
        spec.options.set("start_points", 4)
                .set("steps_per_start", 900)
                .set("round_every", 300)
                .set("strategy", static_cast<double>(strat));
        SearchReport r = runSearch(spec);
        if (strat == OrderStrategy::Fixed)
            baseline = r.search.best_edp;
        if (strat == OrderStrategy::Iterate)
            best_run = r;
        table.addRow({strategyName(strat),
                fmtSci(r.search.best_edp, 3),
                fmt(baseline / r.search.best_edp, 2) + "x"});
    }
    table.print();

    std::printf("\nPer-layer orderings chosen by Iterate (DRAM "
                "level):\n");
    for (size_t i = 0; i < net.layers.size(); ++i) {
        std::printf("  %-12s -> %s\n", net.layers[i].name.c_str(),
                orderName(best_run.search.best_mappings[i]
                        .order[kDram]));
    }
    std::printf("\nHardware selected: %s\n",
            best_run.search.best_hw.str().c_str());
    return 0;
}
