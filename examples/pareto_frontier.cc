/**
 * @file
 * Multi-objective (Pareto) co-search walkthrough.
 *
 * Enables the area and power axes next to EDP
 * (`SearchSpec::mode.pareto`), streams frontier entries live through
 * `SearchObserver::onFrontier`, and prints the final non-dominated
 * front — the designs where no enabled metric can improve without
 * another regressing. With no arguments it sweeps a small workload-
 * registry selection under the "random" co-search; `--algorithm` and
 * `--workload` focus one combination.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/pareto_frontier
 *   ./build/examples/pareto_frontier --algorithm dosa \
 *       --workload llm_decode_7b
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/search_api.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload_registry.hh"

using namespace dosa;

namespace {

/** Streams every frontier entry as it happens (trace order). */
class FrontierPrinter : public SearchObserver
{
  public:
    void
    onFrontier(const FrontierEvent &event) override
    {
        std::printf("  frontier entry @ sample %-6zu  EDP %-10.4g "
                    "area %-7.3g mm^2  power %-8.4g W  (front size "
                    "%zu)\n",
                event.index, event.edp, event.area_mm2, event.power_w,
                event.front_size);
    }
};

void
sweep(const std::string &algorithm, const std::string &workload)
{
    SearchSpec spec;
    spec.algorithm = algorithm;
    spec.workload_name = workload;
    spec.seed = 7;
    spec.jobs = 4; // frontier stream is identical for any jobs value
    spec.budget.max_samples = 400;
    // Multi-objective mode: keep EDP and add area and power to the
    // domination test. The weights shape the differentiable loss the
    // "dosa" searcher descends (weighted sum of log-metrics); the
    // frontier itself is weight-free.
    spec.mode.pareto.area.enabled = true;
    spec.mode.pareto.power.enabled = true;

    std::printf("%s on %s (multi-objective: EDP + area + power)\n",
            algorithm.c_str(), workload.c_str());
    FrontierPrinter printer;
    SearchReport report = runSearch(spec, &printer);

    TablePrinter table({"sample", "EDP (uJ x cycles)", "area (mm^2)",
            "power (W)", "PE", "accum KiB", "spad KiB"});
    for (const ParetoPoint &p : report.search.frontier.points())
        table.addRow({std::to_string(p.sample_index),
                fmtSci(p.edp, 4), fmtSci(p.area_mm2, 3),
                fmtSci(p.power_w, 4), std::to_string(p.hw.pe_dim),
                std::to_string(p.hw.accum_kib),
                std::to_string(p.hw.spad_kib)});
    std::printf("final front (%zu points, insertion order):\n",
            report.search.frontier.size());
    table.print();
    std::printf("best single-objective EDP stays tracked too: %.4g "
                "after %zu samples\n\n", report.search.best_edp,
            report.search.trace.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.has("algorithm") || cli.has("workload")) {
        sweep(cli.get("algorithm", "random"),
                cli.get("workload", "depthwise_edge"));
        return 0;
    }

    // Default tour: one serial and one parallel searcher over two
    // registry cells, to show the frontier stream is a property of
    // the mode, not of any one searcher.
    for (const char *workload : {"depthwise_edge", "llm_moe_ffn"})
        sweep("random", workload);
    sweep("mapper", "depthwise_edge");
    return 0;
}
