/**
 * @file
 * Tour of the workload registry and the workload file format.
 *
 * With no arguments, walks every `Workloads` registry entry (the
 * paper's Table-6 networks plus the LLM/edge cells), then runs a
 * small by-name search (`SearchSpec::workload_name`) to show the
 * name-resolution path end-to-end.
 *
 * Maintenance modes (the cookbook tools of docs/WORKLOADS.md):
 *   --show NAME                 print one entry's layers + JSON
 *   --export NAME [--out FILE]  emit an entry's canonical file bytes
 *   --canonicalize FILE [--out FILE]
 *                               load a workload file and re-emit it
 *                               in canonical form (fixes hand-edit
 *                               drift so the round-trip test passes)
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/workload_tour
 *   ./build/examples/workload_tour --export llm_decode_7b \
 *       --out workloads/llm_decode_7b.json
 */

#include <cstdio>
#include <string>

#include "api/search_api.hh"
#include "arch/baselines.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/workload_registry.hh"

using namespace dosa;

namespace {

/** Registry entry `name`, or fatal listing the registry. */
const Network &
mustFind(const std::string &name)
{
    const Network *net = Workloads::find(name);
    if (net == nullptr)
        fatal("unknown workload \"" + name + "\" (available: " +
              Workloads::nameList() + ")");
    return *net;
}

/** Write `text` to FILE (or stdout when the path is empty). */
void
emit(const std::string &text, const std::string &path)
{
    if (path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (out == nullptr)
        fatal("cannot write " + path);
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
}

void
show(const Network &net)
{
    std::printf("workload \"%s\": %zu unique layers, %.3g MACs\n",
            net.name.c_str(), net.layers.size(), net.totalMacs());
    for (const auto &[key, value] : net.metadata)
        std::printf("  metadata %s = %s\n", key.c_str(),
                value.c_str());
    for (const Layer &layer : net.layers)
        std::printf("  %-16s x%-3lld %s\n", layer.name.c_str(),
                static_cast<long long>(layer.count),
                layer.str().c_str());
    std::printf("\ncanonical file form:\n%s",
            workloadFileText(net).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);

    if (cli.has("show")) {
        show(mustFind(cli.get("show")));
        return 0;
    }
    if (cli.has("export")) {
        emit(workloadFileText(mustFind(cli.get("export"))),
                cli.get("out"));
        return 0;
    }
    if (cli.has("canonicalize")) {
        Network net;
        std::string error;
        if (!loadWorkloadFile(cli.get("canonicalize"), net, error))
            fatal(error);
        emit(workloadFileText(net), cli.get("out"));
        return 0;
    }

    // 1. The registry: builtins self-register on first use, file
    //    workloads join via Workloads::registerWorkload.
    TablePrinter table({"workload", "layers", "total MACs"});
    for (const std::string &name : Workloads::names()) {
        const Network &net = *Workloads::find(name);
        table.addRow({net.name, std::to_string(net.layers.size()),
                fmtSci(net.totalMacs(), 3)});
    }
    std::printf("Registered workloads:\n");
    table.print();

    // 2. Round-trip: every network encodes to canonical JSON and
    //    decodes back — the same path workload files take.
    const Network &decode = mustFind("llm_decode_7b");
    Network back = mustWorkloadFromJson(workloadFileText(decode));
    std::printf("\nround-trip %s: %zu layers -> %zu bytes of JSON -> "
                "%zu layers\n", decode.name.c_str(),
            decode.layers.size(), workloadFileText(decode).size(),
            back.layers.size());

    // 3. Search by name: SearchSpec::workload_name resolves against
    //    the registry inside runSearch — no layer plumbing at the
    //    call site (and none on a service client requesting it).
    SearchSpec spec;
    spec.algorithm = "mapper";
    spec.workload_name = "depthwise_edge";
    spec.fixed_hw = gemminiDefault().config;
    spec.budget.max_samples = 200;
    spec.seed = 1;
    SearchReport report = runSearch(spec);
    std::printf("\nmapper search on workload_name=\"%s\": best EDP "
                "%.3g after %zu samples\n", spec.workload_name.c_str(),
            report.search.best_edp, report.search.trace.size());
    return 0;
}
