/**
 * @file
 * Search-as-a-service daemon: serve the `src/api` search facade over
 * the line-framed TCP wire protocol (src/service).
 *
 * Build & run:
 *   cmake -B build && cmake --build build --target search_service_daemon
 *   ./build/search_service_daemon --port 7450 --workers 2
 *
 * Flags:
 *   --port N     TCP port on 127.0.0.1 (default 0 = ephemeral; the
 *                chosen port is printed on startup)
 *   --workers N  concurrent searches (default 2)
 *   --queue N    admission-queue depth beyond the running searches
 *                (default 16; overflow gets a `queue_full` error)
 *   --workloads DIR  load every *.json workload file in DIR (sorted,
 *                strict schema — see docs/WORKLOADS.md) into the
 *                `Workloads` registry before serving, so clients can
 *                request them with `"workload_name"` instead of
 *                shipping layer lists
 *   --trace FILE record span tracing (src/obs) for the daemon's whole
 *                lifetime and dump Chrome trace-event JSON (loadable
 *                in Perfetto / chrome://tracing) to FILE on shutdown
 *
 * The daemon serves until stdin reaches EOF (Ctrl-D, or the parent
 * closing the pipe), then prints the per-endpoint stats footer and
 * shuts down — in-flight searches are cancelled within one sample.
 * Talk to it with `search_service_client`, or by hand:
 *
 *   {"endpoint":"ping","id":"1"}
 *   {"endpoint":"search","id":"2","spec":{...}}   (see specToJson)
 *   {"endpoint":"stats","id":"3"}
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "service/search_service.hh"
#include "service/tcp_server.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/workload_registry.hh"

using namespace dosa;

namespace {

/**
 * Register every *.json workload file under `dir` (sorted by path,
 * so later files shadow earlier ones deterministically when names
 * collide). A malformed file is fatal: a daemon silently serving a
 * partial zoo would be worse than not starting.
 */
void
loadWorkloadDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    if (ec)
        fatal("--workloads: cannot read directory \"" + dir + "\": " +
              ec.message());
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        Network net;
        std::string error;
        if (!loadWorkloadFile(path, net, error))
            fatal("--workloads: " + error);
        std::printf("workload \"%s\" loaded from %s (%zu layers)\n",
                net.name.c_str(), path.c_str(), net.layers.size());
        Workloads::registerWorkload(std::move(net));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.has("workloads"))
        loadWorkloadDir(cli.get("workloads"));
    service::ServiceConfig config;
    config.max_concurrent = int(cli.getInt("workers", 2));
    config.max_queue = int(cli.getInt("queue", 16));
    const std::string trace_file = cli.get("trace", "");
    if (!trace_file.empty())
        obs::globalTracer().enable();

    service::SearchService svc(config);
    service::TcpServer server(svc,
            uint16_t(cli.getInt("port", 0)));
    std::string error;
    if (!server.start(error))
        fatal("tcp server: " + error);

    std::printf("%s %s listening on 127.0.0.1:%u "
                "(workers: %d, queue: %d)\n",
            config.name.c_str(), config.version.c_str(),
            unsigned(server.port()), config.max_concurrent,
            config.max_queue);
    std::printf("serving until stdin EOF...\n");
    std::fflush(stdout);

    // Block until the controlling terminal/pipe closes.
    int c;
    while ((c = std::getchar()) != EOF) {
    }

    std::printf("\nendpoint stats:\n");
    for (const service::EndpointStats &ep : svc.stats())
        std::printf("  %s\n", ep.str().c_str());

    server.stop();
    svc.shutdown();

    if (!trace_file.empty()) {
        obs::Tracer &tracer = obs::globalTracer();
        tracer.disable();
        if (tracer.writeFile(trace_file, error))
            std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    static_cast<unsigned long long>(
                            tracer.eventCount()),
                    static_cast<unsigned long long>(
                            tracer.droppedCount()),
                    trace_file.c_str());
        else
            std::printf("trace: write failed: %s\n", error.c_str());
    }
    std::printf("bye\n");
    return 0;
}
