/**
 * @file
 * Transfer to "real hardware" (Section 6.5): train the DNN-augmented
 * latency model on random-mapping measurements from the RTL
 * substitute, embed it in the DOSA objective, and size the buffers +
 * mappings of a fixed 16x16 Gemmini for U-Net — then validate on the
 * RTL substitute against the hand-tuned default.
 */

#include <cstdio>
#include <vector>

#include "api/search_api.hh"
#include "arch/baselines.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "stats/stats.hh"
#include "surrogate/dataset.hh"
#include "surrogate/latency_predictor.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

namespace {

double
rtlEdp(const std::vector<Layer> &layers,
       const std::vector<Mapping> &maps, const HardwareConfig &hw)
{
    double e = 0.0, lat = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        double cnt = static_cast<double>(layers[i].count);
        e += cnt * referenceEval(layers[i], maps[i], hw).energy_uj;
        lat += cnt * rtlLatency(layers[i], maps[i], hw);
    }
    return e * lat;
}

} // namespace

int
main()
{
    // 1. Collect an RTL dataset (the paper gathers 1567 mappings with
    //    FireSim; here the RTL substitute provides the ground truth).
    std::printf("Generating RTL training data...\n");
    SurrogateDataset all = generateSurrogateDataset(800, 5);
    SurrogateDataset train, test;
    splitDataset(all, 0.8, 6, train, test);

    // 2. Train the DNN-augmented analytical latency model.
    std::printf("Training the residual MLP (%zu samples)...\n",
            train.size());
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 300, 9);
    LatencyPredictor analytical = LatencyPredictor::analytical();
    std::printf("Hold-out Spearman: analytical %.3f, "
                "analytical+DNN %.3f\n\n",
            spearman(analytical.predictAll(test), test.rtl),
            spearman(combined.predictAll(test), test.rtl));

    // 3. Optimize U-Net buffers + mappings with the learned model in
    //    the loop (PE array frozen at 16x16 as in Fig. 12).
    Network net = unet();
    SurrogateDiffModel diff(combined);
    SearchSpec spec;
    spec.algorithm = "dosa";
    spec.workload = net.layers;
    spec.options.set("start_points", 4)
            .set("steps_per_start", 900)
            .set("round_every", 300);
    spec.mode.fix_pe = true;
    spec.mode.pe_dim = 16;
    spec.mode.latency_model = &diff;
    spec.scorer = combined.scorer();
    spec.seed = 21;
    std::printf("Running DOSA with the DNN-augmented model on %s...\n",
            net.name.c_str());
    SearchReport r = runSearch(spec);

    // 4. Validate on the RTL substitute against the default design.
    HardwareConfig def = gemminiDefault().config;
    std::vector<Mapping> def_maps;
    for (const Layer &l : net.layers)
        def_maps.push_back(cosaMap(l, def));
    double def_edp = rtlEdp(net.layers, def_maps, def);
    double dosa_edp = rtlEdp(net.layers, r.search.best_mappings,
            r.search.best_hw);

    std::printf("\nDefault Gemmini (%s): RTL EDP %.4g\n",
            def.str().c_str(), def_edp);
    std::printf("DOSA-sized Gemmini (%s): RTL EDP %.4g\n",
            r.search.best_hw.str().c_str(), dosa_edp);
    std::printf("Improvement: %.2fx (paper reports 1.82x geomean "
                "with the combined model)\n", def_edp / dosa_edp);
    return 0;
}
