/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench accepts:
 *   --quick     reduced sample counts (default; CI-friendly)
 *   --full      paper-scale sample counts
 *   --smoke     tiny sample counts (seconds; the CTest smoke runs)
 *   --seed N    base RNG seed (default 1)
 *   --jobs N    worker threads for the workload/run fan-out (default 1;
 *               results are bit-identical for any value)
 *   --no-cache  disable the shared evaluation cache (src/exec)
 *   --algo A / --algos A,B,...  restrict searcher-sweeping benches to
 *               the named registry algorithms ("all" = every entry of
 *               Search::algorithms(); unknown names are fatal, as is
 *               passing the flag to a fixed-algorithm bench)
 *   --workload W / --workloads A,B,...  restrict workload-sweeping
 *               benches to the named entries of the `Workloads`
 *               registry, or to workload files (a token containing
 *               '/' or ending in ".json" is loaded with
 *               `loadWorkloadFile`); "all" = every registry entry.
 *               Unknown names/bad files are fatal, as is passing the
 *               flag to a fixed-workload bench
 *   --trace FILE  record span tracing (src/obs) for the whole run and
 *               dump Chrome trace-event JSON to FILE at the footer
 * and prints the rows/series the corresponding paper figure reports,
 * mirroring them to CSV files in the working directory.
 *
 * The perf footer every bench ends with is one snapshot of the global
 * metrics registry (obs/metrics.hh): wall clock, the eval-cache line,
 * then every counter/gauge/histogram the run touched. Trajectory
 * benches additionally append one canonical-JSON line (with a
 * `schema` field) to their `BENCH_*.json` file via
 * `appendTrajectoryLine` — the format `bench/check_trajectory` diffs.
 */

#ifndef DOSA_BENCH_COMMON_HH
#define DOSA_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <ctime>
#include <initializer_list>
#include <string>
#include <vector>

#include "api/search_api.hh"
#include "core/objective.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trajectory.hh"
#include "search/cosa_mapper.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workload/workload_registry.hh"

namespace dosa::bench {

/** Scale selection for a bench run. */
struct Scale
{
    bool full = false;
    bool smoke = false;
    uint64_t seed = 1;
    int jobs = 1;
    bool no_cache = false;
    /** --algo/--algos selection (validated); empty = bench default. */
    std::vector<std::string> algos;
    /** --workload/--workloads selection; empty = bench default. */
    std::vector<Network> workloads;
    /** --trace FILE: dump Chrome trace JSON here (empty = off). */
    std::string trace_file;

    /** Pick quick or full value (smoke falls back to quick). */
    template <class T>
    T
    pick(T quick_v, T full_v) const
    {
        return full ? full_v : quick_v;
    }

    /** Pick smoke, quick or full value. */
    template <class T>
    T
    pick(T smoke_v, T quick_v, T full_v) const
    {
        if (smoke)
            return smoke_v;
        return full ? full_v : quick_v;
    }

    /** The --algo selection, or the bench's default set if absent. */
    std::vector<std::string>
    algosOr(std::initializer_list<const char *> defaults) const
    {
        if (!algos.empty())
            return algos;
        return {defaults.begin(), defaults.end()};
    }

    /**
     * The --workload selection, or the named registry entries if the
     * flag is absent. Defaults name builtins, so resolution cannot
     * fail for a correctly-written bench.
     */
    std::vector<Network>
    workloadsOr(std::initializer_list<const char *> defaults) const
    {
        if (!workloads.empty())
            return workloads;
        std::vector<Network> nets;
        for (const char *name : defaults) {
            const Network *net = Workloads::find(name);
            if (net == nullptr)
                fatal(std::string("bench default workload \"") + name +
                      "\" is not registered");
            nets.push_back(*net);
        }
        return nets;
    }
};

/**
 * Parse `--algo A` / `--algos A,B,...` and validate every name
 * against the searcher registry; an unknown name is fatal and lists
 * `Search::algorithms()`. "all" selects the whole registry.
 */
inline std::vector<std::string>
parseAlgos(const Cli &cli)
{
    std::string arg = cli.get("algos", cli.get("algo", ""));
    if (arg.empty())
        return {};
    if (arg == "all")
        return Search::algorithms();
    std::vector<std::string> names;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        std::string name = arg.substr(start, comma - start);
        if (!name.empty())
            names.push_back(std::move(name));
        start = comma + 1;
    }
    for (const std::string &name : names) {
        if (Search::find(name) == nullptr)
            fatal("unknown --algo \"" + name + "\" (available: " +
                  Search::algorithmList() + ")");
    }
    return names;
}

/**
 * Parse `--workload W` / `--workloads A,B,...` into resolved
 * networks. A token containing '/' or ending in ".json" is loaded as
 * a workload file (`loadWorkloadFile`); anything else must name a
 * `Workloads` registry entry. "all" selects the whole registry.
 * Unknown names and unreadable/malformed files are fatal.
 */
inline std::vector<Network>
parseWorkloads(const Cli &cli)
{
    std::string arg = cli.get("workloads", cli.get("workload", ""));
    if (arg.empty())
        return {};
    std::vector<Network> nets;
    if (arg == "all") {
        for (const std::string &name : Workloads::names())
            nets.push_back(*Workloads::find(name));
        return nets;
    }
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        std::string token = arg.substr(start, comma - start);
        start = comma + 1;
        if (token.empty())
            continue;
        bool is_file = token.find('/') != std::string::npos ||
                (token.size() > 5 &&
                 token.compare(token.size() - 5, 5, ".json") == 0);
        if (is_file) {
            Network net;
            std::string error;
            if (!loadWorkloadFile(token, net, error))
                fatal("--workload: " + error);
            nets.push_back(std::move(net));
            continue;
        }
        const Network *net = Workloads::find(token);
        if (net == nullptr)
            fatal("unknown --workload \"" + token + "\" (available: " +
                  Workloads::nameList() + "; pass a path or .json "
                  "file name to load a workload file)");
        nets.push_back(*net);
    }
    return nets;
}

/**
 * Parse the shared bench flags. `algo_sweep` declares whether this
 * bench consumes `--algo`/`--algos`, and `workload_sweep` whether it
 * consumes `--workload`/`--workloads`; passing the flags to a bench
 * with a fixed algorithm/workload set is a loud error rather than a
 * validated-then-ignored selection.
 */
inline Scale
parseScale(int argc, const char *const *argv, bool algo_sweep = false,
           bool workload_sweep = false)
{
    Cli cli(argc, argv);
    Scale s;
    s.full = cli.has("full");
    s.smoke = cli.has("smoke");
    s.seed = static_cast<uint64_t>(cli.getInt("seed", 1));
    s.jobs = static_cast<int>(cli.getInt("jobs", 1));
    s.no_cache = cli.has("no-cache");
    s.algos = parseAlgos(cli);
    s.workloads = parseWorkloads(cli);
    s.trace_file = cli.get("trace", "");
    if (!algo_sweep && !s.algos.empty())
        fatal("--algo/--algos: this bench runs a fixed algorithm "
              "set and does not sweep the registry");
    if (!workload_sweep && !s.workloads.empty())
        fatal("--workload/--workloads: this bench runs a fixed "
              "workload set and does not sweep the registry");
    globalEvalCache().setEnabled(!s.no_cache);
    if (!s.trace_file.empty())
        obs::globalTracer().enable();
    return s;
}

inline const char *
modeName(const Scale &scale)
{
    if (scale.smoke)
        return "smoke";
    return scale.full ? "full" : "quick";
}

inline void
banner(const std::string &title, const Scale &scale)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("mode: %s, seed: %llu, jobs: %d, cache: %s\n",
            modeName(scale),
            static_cast<unsigned long long>(scale.seed), scale.jobs,
            scale.no_cache ? "off" : "on");
    std::printf("==================================================\n");
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

/**
 * Perturbed descent candidates around the CoSA start of `layers`:
 * the shared input set of the batch-replay benchmarks, so
 * `bench_replay_batch` and `BM_ReplayBatch` (bench_model_microbench)
 * cross-check each other on identical candidates.
 */
inline std::vector<std::vector<double>>
descentCandidates(const std::vector<Layer> &layers, size_t count)
{
    const HardwareConfig hw{16, 32, 128};
    std::vector<double> x0;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x0.insert(x0.end(), xl.begin(), xl.end());
    }
    Rng rng(99);
    std::vector<std::vector<double>> xs(count, x0);
    for (size_t k = 1; k < count; ++k)
        for (double &v : xs[k])
            v += rng.uniformReal(-0.1, 0.1);
    return xs;
}

/** Monotonic wall-clock timer for the perf summaries. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Print the standard perf footer of every figure bench, driven by one
 * snapshot of the global metrics registry: the wall clock and the
 * eval-cache line first (their wording is load-bearing — CI greps the
 * smoke logs for "wall clock|eval cache"), then every other counter,
 * gauge and duration histogram the run touched. The cache mode is
 * stated explicitly: under --no-cache the counters never move, and
 * printing their stale zeros would make a PERF.md row ambiguous about
 * which mode produced it.
 *
 * When the run was started with --trace FILE the footer also stops
 * the tracer and dumps the Chrome trace-event JSON.
 */
inline void
perfFooter(const Scale &scale, const WallTimer &timer)
{
    obs::MetricsSnapshot snap = obs::globalMetrics().snapshot();

    if (globalEvalCache().enabled())
        std::printf("\nwall clock: %.2f s, eval cache: %s\n",
                timer.seconds(),
                globalEvalCache().stats().str().c_str());
    else
        std::printf("\nwall clock: %.2f s, eval cache: disabled "
                    "(--no-cache)\n",
                timer.seconds());

    // The rest of the snapshot. The eval-cache instruments are
    // skipped: the line above already reports them.
    auto skip = [](const std::string &name) {
        return name.rfind("eval_cache.", 0) == 0;
    };
    bool any = false;
    for (const auto &[name, value] : snap.counters) {
        if (skip(name))
            continue;
        std::printf("%s%s=%llu", any ? " " : "metrics: ",
                name.c_str(),
                static_cast<unsigned long long>(value));
        any = true;
    }
    for (const auto &[name, value] : snap.gauges) {
        if (skip(name))
            continue;
        std::printf("%s%s=%lld", any ? " " : "metrics: ",
                name.c_str(), static_cast<long long>(value));
        any = true;
    }
    if (any)
        std::printf("\n");
    for (const auto &[name, hist] : snap.histograms)
        std::printf("  %s: %s\n", name.c_str(), hist.str().c_str());

    if (!scale.trace_file.empty()) {
        obs::Tracer &tracer = obs::globalTracer();
        tracer.disable();
        std::string error;
        if (tracer.writeFile(scale.trace_file, error))
            std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    static_cast<unsigned long long>(
                            tracer.eventCount()),
                    static_cast<unsigned long long>(
                            tracer.droppedCount()),
                    scale.trace_file.c_str());
        else
            std::printf("trace: write failed: %s\n", error.c_str());
    }
}

/**
 * Append one canonical-JSON trajectory line to `file` (in the working
 * directory, like the CSVs). Stamps the shared `schema` version and
 * the wall-clock `unix_time` onto `row`; everything else — including
 * the context keys `bench`/`mode` that make lines comparable — is the
 * caller's. `bench/check_trajectory` diffs consecutive lines of these
 * files; see obs/trajectory.hh for the key conventions.
 */
inline void
appendTrajectoryLine(const std::string &file, json::Value row)
{
    row.set("schema", json::Value::number(obs::kTelemetrySchema));
    row.set("unix_time", json::Value::number(
            static_cast<int64_t>(std::time(nullptr))));
    FILE *out = std::fopen(file.c_str(), "ab");
    if (out == nullptr) {
        std::printf("trajectory: cannot append to %s\n", file.c_str());
        return;
    }
    std::string line = row.dump();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    note("trajectory line appended to " + file);
}

} // namespace dosa::bench

#endif // DOSA_BENCH_COMMON_HH
