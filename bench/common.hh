/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench accepts:
 *   --quick   reduced sample counts (default; CI-friendly)
 *   --full    paper-scale sample counts
 *   --seed N  base RNG seed (default 1)
 * and prints the rows/series the corresponding paper figure reports,
 * mirroring them to CSV files in the working directory.
 */

#ifndef DOSA_BENCH_COMMON_HH
#define DOSA_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "util/cli.hh"
#include "util/table.hh"

namespace dosa::bench {

/** Scale selection for a bench run. */
struct Scale
{
    bool full = false;
    uint64_t seed = 1;

    /** Pick quick or full value. */
    template <class T>
    T
    pick(T quick_v, T full_v) const
    {
        return full ? full_v : quick_v;
    }
};

inline Scale
parseScale(int argc, const char *const *argv)
{
    Cli cli(argc, argv);
    Scale s;
    s.full = cli.has("full");
    s.seed = static_cast<uint64_t>(cli.getInt("seed", 1));
    return s;
}

inline void
banner(const std::string &title, const Scale &scale)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("mode: %s, seed: %llu\n", scale.full ? "full" : "quick",
            static_cast<unsigned long long>(scale.seed));
    std::printf("==================================================\n");
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

} // namespace dosa::bench

#endif // DOSA_BENCH_COMMON_HH
