/**
 * @file
 * Google-benchmark microbenchmarks for the hot paths of the DSE
 * stack: reference evaluation, differentiable-model evaluation,
 * objective gradients, rounding and the RTL substitute. These support
 * the paper's premise that model evaluations are cheap enough to use
 * as the inner loop of search.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/adam.hh"
#include "core/objective.hh"
#include "mapping/rounding.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

namespace {

const Layer &
benchLayer()
{
    static Layer l = Layer::conv("bench", 3, 28, 128, 128);
    return l;
}

const HardwareConfig kHw{16, 32, 128};

void
BM_ReferenceEval(benchmark::State &state)
{
    Mapping m = cosaMap(benchLayer(), kHw);
    for (auto _ : state) {
        RefEval ev = referenceEval(benchLayer(), m, kHw);
        benchmark::DoNotOptimize(ev.edp);
    }
}
BENCHMARK(BM_ReferenceEval);

void
BM_AnalyticalDouble(benchmark::State &state)
{
    Mapping m = cosaMap(benchLayer(), kHw);
    Factors<double> f = m.continuousFactors();
    for (auto _ : state) {
        LayerCounts<double> c = computeCounts(benchLayer(), f,
                m.order);
        LayerPerf<double> p = computePerf(c, hwScalars<double>(kHw));
        benchmark::DoNotOptimize(p.latency);
    }
}
BENCHMARK(BM_AnalyticalDouble);

void
BM_ObjectiveGradient(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + size_t(state.range(0)));
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, kHw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode mode;
    for (auto _ : state) {
        ObjectiveEval ev = evalObjective(layers, x, orders,
                OrderStrategy::Fixed, mode);
        benchmark::DoNotOptimize(ev.grad.data());
    }
}
BENCHMARK(BM_ObjectiveGradient)->Arg(1)->Arg(8)->Arg(24);

/**
 * Steady-state descent step: arena-engine gradient (tape replay +
 * reverse sweep into a reused buffer) plus the Adam update. This is
 * the loop dosaSearch runs thousands of times per start point; the
 * first iteration builds the graph, every later one replays it.
 */
void
BM_GradientStepReplay(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + size_t(state.range(0)));
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, kHw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode mode;
    ObjectiveEngine engine;
    Adam adam(x.size(), 1e-5);
    for (auto _ : state) {
        const ObjectiveEval &ev = engine.eval(layers, x, orders,
                OrderStrategy::Fixed, mode);
        adam.step(x, ev.grad);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_GradientStepReplay)->Arg(1)->Arg(8)->Arg(24);

/** Softmax-strategy variant of the steady-state descent step. */
void
BM_GradientStepReplaySoftmax(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 8);
    std::vector<double> x;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, kHw));
        x.insert(x.end(), xl.begin(), xl.end());
    }
    ObjectiveMode mode;
    ObjectiveEngine engine;
    Adam adam(x.size(), 1e-5);
    for (auto _ : state) {
        const ObjectiveEval &ev = engine.eval(layers, x, {},
                OrderStrategy::Softmax, mode);
        adam.step(x, ev.grad);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_GradientStepReplaySoftmax);

/**
 * Batched multi-candidate gradient sweep: value + differentiate
 * `range(1)` descent candidates of a `range(0)`-layer objective in a
 * single lane-blocked `Tape::replayBatch` + `gradientBatchInto`
 * sweep. Compare against BM_ReplayBatchScalarRef (the same
 * candidates through per-candidate scalar replays) for the batch-
 * interpreter speedup.
 */
void
BM_ReplayBatch(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + size_t(state.range(0)));
    std::vector<OrderVec> orders(layers.size(),
            uniformOrder(LoopOrder::WS));
    auto xs = bench::descentCandidates(layers,
            size_t(state.range(1)));
    ObjectiveMode mode;
    ObjectiveEngine engine;
    for (auto _ : state) {
        const std::vector<ObjectiveEval> &evs = engine.evalBatch(
                layers, xs, orders, OrderStrategy::Fixed, mode);
        benchmark::DoNotOptimize(evs.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ReplayBatch)
        ->Args({1, 8})->Args({8, 4})->Args({8, 8})->Args({8, 16})
        ->Args({24, 8});

/** Scalar reference for BM_ReplayBatch: one replay per candidate. */
void
BM_ReplayBatchScalarRef(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + size_t(state.range(0)));
    std::vector<OrderVec> orders(layers.size(),
            uniformOrder(LoopOrder::WS));
    auto xs = bench::descentCandidates(layers,
            size_t(state.range(1)));
    ObjectiveMode mode;
    ObjectiveEngine engine;
    for (auto _ : state) {
        for (const std::vector<double> &x : xs) {
            const ObjectiveEval &ev = engine.eval(layers, x, orders,
                    OrderStrategy::Fixed, mode);
            benchmark::DoNotOptimize(ev.loss);
        }
    }
    state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ReplayBatchScalarRef)
        ->Args({1, 8})->Args({8, 4})->Args({8, 8})->Args({8, 16})
        ->Args({24, 8});

void
BM_ObjectiveGradientSoftmax(benchmark::State &state)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 8);
    std::vector<double> x;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, kHw));
        x.insert(x.end(), xl.begin(), xl.end());
    }
    ObjectiveMode mode;
    for (auto _ : state) {
        ObjectiveEval ev = evalObjective(layers, x, {},
                OrderStrategy::Softmax, mode);
        benchmark::DoNotOptimize(ev.grad.data());
    }
}
BENCHMARK(BM_ObjectiveGradientSoftmax);

void
BM_Rounding(benchmark::State &state)
{
    Mapping m = cosaMap(benchLayer(), kHw);
    Factors<double> f = m.continuousFactors();
    // Slightly off-grid values so rounding does real work.
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            f.t(lvl, d) *= 1.17;
    for (auto _ : state) {
        Mapping r = roundToValid(f, benchLayer(),
                uniformOrder(LoopOrder::WS));
        benchmark::DoNotOptimize(r.factors.spatial_c);
    }
}
BENCHMARK(BM_Rounding);

void
BM_RtlSimulator(benchmark::State &state)
{
    Mapping m = cosaMap(benchLayer(), kHw);
    for (auto _ : state) {
        double lat = rtlLatency(benchLayer(), m, kHw);
        benchmark::DoNotOptimize(lat);
    }
}
BENCHMARK(BM_RtlSimulator);

void
BM_CosaMapper(benchmark::State &state)
{
    for (auto _ : state) {
        Mapping m = cosaMap(benchLayer(), kHw);
        benchmark::DoNotOptimize(m.factors.spatial_c);
    }
}
BENCHMARK(BM_CosaMapper);

} // namespace

BENCHMARK_MAIN();
