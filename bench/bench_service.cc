/**
 * @file
 * Search-service smoke/throughput bench: one `SearchService` behind a
 * `TcpServer`, hammered end-to-end by N concurrent TCP clients that
 * stream searches over the line-framed wire protocol.
 *
 * Each client pings, then runs its share of searches (the golden
 * two-layer workload under the "mapper" searcher, seeded per request,
 * so every reply stream is deterministic); the bench verifies every
 * terminal `done` frame, summarizes per-request latency, prints the
 * standard perf footer plus the service's per-endpoint stats footer,
 * and appends one JSON trajectory line to BENCH_service.json in the
 * working directory (the per-commit trail the perf-smoke CI job
 * uploads).
 */

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "service/search_service.hh"
#include "service/tcp_server.hh"
#include "service/wire.hh"
#include "stats/stats.hh"
#include "util/json.hh"

using namespace dosa;

namespace {

/** The golden-fixture workload (tests/golden/): two layers. */
std::vector<Layer>
benchLayers()
{
    return {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
}

struct ClientResult
{
    std::vector<double> search_s; ///< per-search request latency
    size_t frames = 0;            ///< reply frames received
    size_t failures = 0;          ///< protocol/stream failures
};

/** One client's session: connect, ping, run `searches` searches. */
ClientResult
runClient(uint16_t port, int client, int searches, int samples,
          uint64_t seed)
{
    ClientResult result;
    service::TcpClient tcp;
    std::string error;
    if (!tcp.connect("127.0.0.1", port, error)) {
        std::fprintf(stderr, "client %d: %s\n", client, error.c_str());
        result.failures = size_t(searches) + 1;
        return result;
    }

    std::string line;
    const std::string tag = "c" + std::to_string(client);
    if (!tcp.sendLine(service::encodePingRequest(tag)) ||
            !tcp.receiveLine(line))
        ++result.failures;
    else
        ++result.frames;

    for (int i = 0; i < searches; ++i) {
        SearchSpec spec;
        spec.algorithm = "mapper";
        spec.workload = benchLayers();
        spec.seed = seed + uint64_t(client) * 1000 + uint64_t(i);
        spec.options.set("samples", samples);

        const std::string id = tag + "." + std::to_string(i);
        bench::WallTimer req_timer;
        if (!tcp.sendLine(service::encodeSearchRequest(id, spec))) {
            ++result.failures;
            continue;
        }
        bool terminal = false;
        while (!terminal && tcp.receiveLine(line)) {
            ++result.frames;
            service::Frame frame;
            if (!service::decodeFrame(line, frame, error)) {
                ++result.failures;
                break;
            }
            if (frame.kind == service::Frame::Kind::Error) {
                ++result.failures;
                terminal = true;
            } else if (frame.kind == service::Frame::Kind::Done) {
                terminal = true;
                if (frame.id != id ||
                        frame.samples != uint64_t(samples))
                    ++result.failures;
            }
        }
        if (!terminal)
            ++result.failures;
        else
            result.search_s.push_back(req_timer.seconds());
    }
    tcp.close();
    return result;
}

/** Append one canonical-JSON trajectory line to BENCH_service.json. */
void
appendTrajectory(const char *mode, int clients, int searches,
                 int samples, double wall_s, const Summary &lat,
                 double frames_per_s)
{
    json::Value row = json::Value::object();
    row.set("bench", json::Value::string("service"));
    row.set("mode", json::Value::string(mode));
    row.set("clients", json::Value::number(int64_t(clients)));
    row.set("searches_per_client",
            json::Value::number(int64_t(searches)));
    row.set("samples_per_search",
            json::Value::number(int64_t(samples)));
    row.set("wall_s", json::Value::number(wall_s));
    row.set("search_p50_s", json::Value::number(lat.p50));
    row.set("search_p99_s", json::Value::number(lat.p99));
    row.set("search_mean_s", json::Value::number(lat.mean));
    row.set("frames_per_s", json::Value::number(frames_per_s));
    bench::appendTrajectoryLine("BENCH_service.json", std::move(row));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Search service: TCP end-to-end throughput", scale);
    bench::WallTimer timer;

    const int clients = scale.pick(2, 4, 8);
    const int searches = scale.pick(2, 4, 8); // per client
    const int samples = scale.pick(40, 200, 2000);

    service::ServiceConfig config;
    config.max_concurrent = scale.jobs < 1 ? 1 : scale.jobs;
    config.max_queue = clients * searches;
    service::SearchService svc(config);
    service::TcpServer server(svc, 0);
    std::string error;
    if (!server.start(error))
        fatal("tcp server: " + error);
    std::printf("listening on 127.0.0.1:%u, workers: %d\n",
            unsigned(server.port()), config.max_concurrent);

    std::vector<ClientResult> results;
    results.resize(size_t(clients));
    std::vector<std::thread> threads;
    threads.reserve(size_t(clients));
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            results[size_t(c)] = runClient(server.port(), c,
                    searches, samples, scale.seed);
        });
    for (std::thread &t : threads)
        t.join();
    const double wall_s = timer.seconds();

    std::vector<double> search_s;
    size_t frames = 0, failures = 0;
    for (const ClientResult &r : results) {
        search_s.insert(search_s.end(), r.search_s.begin(),
                r.search_s.end());
        frames += r.frames;
        failures += r.failures;
    }
    if (failures != 0)
        fatal("service bench: " + std::to_string(failures) +
              " request(s) failed");

    const Summary lat = Summary::of(search_s);
    const double frames_per_s =
            wall_s > 0.0 ? double(frames) / wall_s : 0.0;
    std::printf("\n%d clients x %d searches x %d samples: "
                "%zu frames, %.0f frames/s\n",
            clients, searches, samples, frames, frames_per_s);
    std::printf("search latency: %s\n", lat.str().c_str());

    // Endpoint-stats footer: the service's own operational counters.
    std::printf("\nendpoint stats:\n");
    for (const service::EndpointStats &ep : svc.stats())
        std::printf("  %s\n", ep.str().c_str());

    server.stop();
    svc.shutdown();

    bench::perfFooter(scale, timer);
    appendTrajectory(bench::modeName(scale), clients, searches,
            samples, wall_s, lat, frames_per_s);
    return 0;
}
