/**
 * @file
 * Figure 4 reproduction: error of the DOSA differentiable model
 * against the Timeloop-substitute reference model, over random
 * Gemmini configurations x unique training layers x random mappings.
 *
 * Paper: latency MAE 0.01%, energy MAE 0.18%, EDP MAE 0.18%; 98.3% of
 * points within 1%; up to ~12% error on very small layers, caused by
 * DRAM block-ceiling energy accounting.
 */

#include <cmath>
#include <vector>

#include "bench/common.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "search/search_common.hh"
#include "stats/stats.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 4: differentiable model vs reference "
                  "(Timeloop substitute)", scale);
    bench::WallTimer timer;

    const int num_configs = scale.pick(4, 20, 100);
    const int maps_per_config = scale.pick(10, 25, 100);

    std::vector<Layer> layers = uniqueTrainingLayers();
    std::printf("layers: %zu unique, configs: %d, total mappings: %d\n",
            layers.size(), num_configs, num_configs * maps_per_config);

    /** Model-vs-reference points collected by one config's task. */
    struct ConfigPoints
    {
        std::vector<double> lat_model, lat_ref, en_model, en_ref,
                edp_model, edp_ref;
        std::vector<double> small_layer_err; // tiny-energy layers
    };

    // Config cfg_i draws its hardware and all of its mappings from
    // stream (seed, cfg_i); --jobs fans the configs out.
    ThreadPool pool(scale.jobs);
    auto per_config = pool.parallelMap(
            static_cast<size_t>(num_configs), [&](size_t cfg_i) {
        Rng rng = Rng::stream(scale.seed, cfg_i);
        HardwareConfig hw = randomHardware(rng);
        ConfigPoints pts;
        for (int s = 0; s < maps_per_config; ++s) {
            const Layer &l = layers[size_t(rng.uniformInt(0,
                    static_cast<int64_t>(layers.size()) - 1))];
            Mapping m = randomValidMapping(l, hw, rng, 16);
            RefEval ref = referenceEval(l, m, hw);

            Factors<double> f = m.continuousFactors();
            LayerCounts<double> c = computeCounts(l, f, m.order);
            LayerPerf<double> perf =
                    computePerf(c, hwScalars<double>(hw));

            pts.lat_model.push_back(perf.latency);
            pts.lat_ref.push_back(ref.latency);
            pts.en_model.push_back(perf.energy_uj);
            pts.en_ref.push_back(ref.energy_uj);
            pts.edp_model.push_back(perf.latency * perf.energy_uj);
            pts.edp_ref.push_back(ref.edp);
            if (ref.energy_uj < 1e-2) {
                pts.small_layer_err.push_back(100.0 *
                        std::abs(perf.energy_uj - ref.energy_uj) /
                        ref.energy_uj);
            }
        }
        return pts;
    });

    std::vector<double> lat_model, lat_ref, en_model, en_ref, edp_model,
            edp_ref;
    std::vector<double> small_layer_err;
    for (const ConfigPoints &pts : per_config) {
        auto append = [](std::vector<double> &dst,
                         const std::vector<double> &src) {
            dst.insert(dst.end(), src.begin(), src.end());
        };
        append(lat_model, pts.lat_model);
        append(lat_ref, pts.lat_ref);
        append(en_model, pts.en_model);
        append(en_ref, pts.en_ref);
        append(edp_model, pts.edp_model);
        append(edp_ref, pts.edp_ref);
        append(small_layer_err, pts.small_layer_err);
    }

    TablePrinter table({"metric", "MAE (%)", "max err (%)",
                        "within 1% (frac)", "paper MAE (%)"});
    table.addRow({"latency",
            fmt(meanAbsPercentError(lat_model, lat_ref), 4),
            fmt(maxAbsPercentError(lat_model, lat_ref), 2),
            fmt(fractionWithinPercent(lat_model, lat_ref, 1.0), 3),
            "0.01"});
    table.addRow({"energy",
            fmt(meanAbsPercentError(en_model, en_ref), 4),
            fmt(maxAbsPercentError(en_model, en_ref), 2),
            fmt(fractionWithinPercent(en_model, en_ref, 1.0), 3),
            "0.18"});
    table.addRow({"edp",
            fmt(meanAbsPercentError(edp_model, edp_ref), 4),
            fmt(maxAbsPercentError(edp_model, edp_ref), 2),
            fmt(fractionWithinPercent(edp_model, edp_ref, 1.0), 3),
            "0.18"});
    table.print();
    table.writeCsv("bench_fig4.csv");

    if (!small_layer_err.empty()) {
        std::printf("\nsmall layers (<0.01 uJ): n=%zu, "
                    "mean err %.3f%%, max err %.2f%% "
                    "(paper: up to ~12%% on small layers)\n",
                small_layer_err.size(), mean(small_layer_err),
                percentile(small_layer_err, 100.0));
    }
    std::printf("\nSpearman(model, reference) EDP: %.4f\n",
            spearman(edp_model, edp_ref));
    bench::perfFooter(scale, timer);
    return 0;
}
