/**
 * @file
 * Figure 7 + Section 6.3 reproduction: DOSA vs random search vs
 * Bayesian optimization on the four target workloads, best EDP as a
 * function of model-evaluation count.
 *
 * Paper: geomean EDP improvement of DOSA is 2.80x over random search
 * and 12.59x over BB-BO at ~10k samples; BB-BO leads below ~1000
 * samples, then stalls.
 *
 * Algorithms are dispatched through the `src/api` registry: every
 * cell is one `runSearch(spec)` call, and `--algos` (validated
 * against `Search::algorithms()`, "all" = whole registry) selects
 * which searchers compete under the shared sample budget. Likewise
 * `--workloads` (registry names or workload files, "all" = the whole
 * `Workloads` registry) selects the cells' networks; each cell's
 * seed depends only on its run index, so restricting the sweep
 * reproduces the full sweep's rows bit-for-bit.
 *
 * --jobs N fans out over (workload, run, algorithm) cells on the
 * shared ThreadPool; every cell is seeded independently, so the
 * tables are identical for any job count.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "stats/stats.hh"

using namespace dosa;

namespace {

/** Geomean of best-so-far at a sample index across runs. */
double
traceAt(const std::vector<std::vector<double>> &traces, size_t idx)
{
    std::vector<double> vals;
    for (const auto &t : traces)
        vals.push_back(t[std::min(idx, t.size() - 1)]);
    return geomean(vals);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv,
            /*algo_sweep=*/true, /*workload_sweep=*/true);
    bench::banner("Figure 7: DOSA vs Random vs BB-BO co-search",
            scale);
    bench::WallTimer timer;

    const int runs = scale.pick(1, 2, 5);
    const int starts = scale.pick(2, 5, 7);
    const int steps = scale.pick(40, 600, 1490);
    const int round_every = scale.pick(20, 300, 500);
    const int samples = starts * (steps + 1);

    const std::vector<std::string> algos =
            scale.algosOr({"dosa", "random", "bayesopt"});
    const size_t n_algos = algos.size();

    // Per-algorithm spec prototype under the shared sample budget:
    // the per-cell dispatch is one runSearch call against the
    // registry; a registry entry without options here (e.g. "mapper"
    // under --algos all) runs on its budget-derived defaults.
    auto protoSpec = [&](const std::string &algo) {
        SearchSpec spec;
        spec.algorithm = algo;
        spec.budget.max_samples = samples;
        if (algo == "dosa") {
            spec.options.set("start_points", starts)
                    .set("steps_per_start", steps)
                    .set("round_every", round_every);
        } else if (algo == "random") {
            spec.options.set("hw_designs", scale.pick(3, 5, 10));
        } else if (algo == "bayesopt") {
            spec.options.set("warmup_samples", scale.pick(5, 20, 60))
                    .set("total_samples", scale.pick(15, 80, 250))
                    .set("hw_candidates", scale.pick(2, 4, 8))
                    .set("map_candidates", scale.pick(4, 8, 16))
                    .set("max_train_points",
                            scale.pick(100, 300, 500));
        }
        return spec;
    };

    // The paper's four target workloads by default; --workloads picks
    // other registry entries or workload files.
    const std::vector<Network> nets = scale.workloadsOr(
            {"unet", "resnet50", "bert", "retinanet"});
    const size_t cells =
            nets.size() * static_cast<size_t>(runs) * n_algos;

    // One task per (workload, run, algorithm) cell, each on its own
    // seed; the pool fans the independent cells out over --jobs.
    ThreadPool pool(scale.jobs);
    auto traces = pool.parallelMap(cells, [&](size_t cell) {
        size_t ni = cell / (static_cast<size_t>(runs) * n_algos);
        size_t run = cell / n_algos % static_cast<size_t>(runs);
        size_t alg = cell % n_algos;
        SearchSpec spec = protoSpec(algos[alg]);
        spec.workload = nets[ni].layers;
        spec.seed = scale.seed + 1000 * uint64_t(run);
        return runSearch(spec).search.trace;
    });

    TablePrinter series({"workload", "algorithm", "samples",
                         "mean best EDP"});
    std::vector<std::string> final_cols{"workload"};
    for (const std::string &algo : algos)
        final_cols.push_back(algo);
    for (size_t a = 1; a < n_algos; ++a)
        final_cols.push_back(algos[a] + "/" + algos[0]);
    TablePrinter finals(final_cols);
    // ratios[a][ni] = final EDP of algos[a] / final EDP of algos[0].
    std::vector<std::vector<double>> ratios(n_algos);

    for (size_t ni = 0; ni < nets.size(); ++ni) {
        const Network &net = nets[ni];
        // tr[a] = the per-run traces of algorithm a on this net.
        std::vector<std::vector<std::vector<double>>> tr(n_algos);
        for (int run = 0; run < runs; ++run) {
            size_t base = (ni * static_cast<size_t>(runs) +
                    static_cast<size_t>(run)) * n_algos;
            for (size_t a = 0; a < n_algos; ++a)
                tr[a].push_back(traces[base + a]);
        }

        for (size_t i = size_t(samples) / 8; i <= size_t(samples);
             i += size_t(samples) / 8) {
            for (size_t a = 0; a < n_algos; ++a)
                series.addRow({net.name, algos[a], std::to_string(i),
                        fmtSci(traceAt(tr[a], i - 1), 3)});
        }

        std::vector<std::string> row{net.name};
        std::vector<double> last(n_algos);
        for (size_t a = 0; a < n_algos; ++a) {
            last[a] = traceAt(tr[a], size_t(samples) - 1);
            row.push_back(fmtSci(last[a], 3));
        }
        for (size_t a = 1; a < n_algos; ++a) {
            row.push_back(fmt(last[a] / last[0], 2) + "x");
            ratios[a].push_back(last[a] / last[0]);
        }
        finals.addRow(row);
    }

    std::printf("EDP-vs-samples series:\n");
    series.print();
    std::printf("\nFinal best EDP (mean of %d runs):\n", runs);
    finals.print();
    for (size_t a = 1; a < n_algos; ++a)
        std::printf("\nGeomean improvement of %s vs %s: %.2fx",
                algos[0].c_str(), algos[a].c_str(),
                geomean(ratios[a]));
    if (n_algos > 1)
        std::printf("\n(paper: DOSA 2.80x vs random, 12.59x vs "
                    "BB-BO at ~10k samples)\n");
    series.writeCsv("bench_fig7_series.csv");
    finals.writeCsv("bench_fig7.csv");
    bench::perfFooter(scale, timer);

    // Trajectory line: throughput only. The EDP tables are pinned by
    // the golden traces already, and their float jitter across
    // toolchains would break line-to-line comparability.
    const double wall_s = timer.seconds();
    std::string algos_joined;
    for (const std::string &algo : algos) {
        if (!algos_joined.empty())
            algos_joined += "+";
        algos_joined += algo;
    }
    json::Value row = json::Value::object();
    row.set("bench", json::Value::string("fig7"));
    row.set("mode", json::Value::string(bench::modeName(scale)));
    row.set("algos", json::Value::string(algos_joined));
    row.set("jobs", json::Value::number(int64_t(scale.jobs)));
    row.set("runs", json::Value::number(int64_t(runs)));
    row.set("cells", json::Value::number(uint64_t(cells)));
    row.set("samples_per_cell", json::Value::number(int64_t(samples)));
    row.set("wall_s", json::Value::number(wall_s));
    row.set("samples_per_s", json::Value::number(wall_s > 0.0
            ? double(cells) * double(samples) / wall_s
            : 0.0));
    bench::appendTrajectoryLine("BENCH_fig7.json", std::move(row));
    return 0;
}
