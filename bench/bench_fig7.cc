/**
 * @file
 * Figure 7 + Section 6.3 reproduction: DOSA vs random search vs
 * Bayesian optimization on the four target workloads, best EDP as a
 * function of model-evaluation count.
 *
 * Paper: geomean EDP improvement of DOSA is 2.80x over random search
 * and 12.59x over BB-BO at ~10k samples; BB-BO leads below ~1000
 * samples, then stalls.
 *
 * --jobs N fans out over (workload, run, algorithm) cells on the
 * shared ThreadPool; every cell is seeded independently, so the
 * tables are identical for any job count.
 */

#include <algorithm>
#include <vector>

#include "bench/common.hh"
#include "core/dosa_optimizer.hh"
#include "search/bayes_opt.hh"
#include "search/random_search.hh"
#include "stats/stats.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

namespace {

/** Geomean of best-so-far at a sample index across runs. */
double
traceAt(const std::vector<std::vector<double>> &traces, size_t idx)
{
    std::vector<double> vals;
    for (const auto &t : traces)
        vals.push_back(t[std::min(idx, t.size() - 1)]);
    return geomean(vals);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 7: DOSA vs Random vs BB-BO co-search",
            scale);
    bench::WallTimer timer;

    const int runs = scale.pick(1, 2, 5);
    const int starts = scale.pick(2, 5, 7);
    const int steps = scale.pick(40, 600, 1490);
    const int round_every = scale.pick(20, 300, 500);
    const int samples = starts * (steps + 1);

    const std::vector<Network> nets = targetWorkloads();
    const size_t cells = nets.size() * static_cast<size_t>(runs) * 3;

    // One task per (workload, run, algorithm) cell, each on its own
    // seed; the pool fans the independent cells out over --jobs.
    ThreadPool pool(scale.jobs);
    auto traces = pool.parallelMap(cells, [&](size_t cell) {
        size_t ni = cell / (static_cast<size_t>(runs) * 3);
        size_t run = cell / 3 % static_cast<size_t>(runs);
        size_t alg = cell % 3;
        const Network &net = nets[ni];
        uint64_t seed = scale.seed + 1000 * uint64_t(run);

        if (alg == 0) {
            DosaConfig dcfg;
            dcfg.start_points = starts;
            dcfg.steps_per_start = steps;
            dcfg.round_every = round_every;
            dcfg.seed = seed;
            return dosaSearch(net.layers, dcfg).search.trace;
        }
        if (alg == 1) {
            RandomSearchConfig rcfg;
            rcfg.hw_designs = scale.pick(3, 5, 10);
            rcfg.mappings_per_hw = samples / rcfg.hw_designs;
            rcfg.seed = seed;
            return randomSearch(net.layers, rcfg).trace;
        }
        BayesOptConfig bcfg;
        bcfg.warmup_samples = scale.pick(5, 20, 60);
        bcfg.total_samples = scale.pick(15, 80, 250);
        bcfg.hw_candidates = scale.pick(2, 4, 8);
        bcfg.map_candidates = scale.pick(4, 8, 16);
        bcfg.max_train_points = scale.pick(100, 300, 500);
        bcfg.seed = seed;
        return bayesOptSearch(net.layers, bcfg).trace;
    });

    TablePrinter series({"workload", "algorithm", "samples",
                         "mean best EDP"});
    TablePrinter finals({"workload", "DOSA", "Random", "BB-BO",
                         "DOSA/Random", "DOSA/BO"});
    std::vector<double> ratio_random, ratio_bo;

    for (size_t ni = 0; ni < nets.size(); ++ni) {
        const Network &net = nets[ni];
        std::vector<std::vector<double>> tr_dosa, tr_rand, tr_bo;
        for (int run = 0; run < runs; ++run) {
            size_t base = (ni * static_cast<size_t>(runs) +
                    static_cast<size_t>(run)) * 3;
            tr_dosa.push_back(traces[base]);
            tr_rand.push_back(traces[base + 1]);
            tr_bo.push_back(traces[base + 2]);
        }

        for (size_t i = size_t(samples) / 8; i <= size_t(samples);
             i += size_t(samples) / 8) {
            size_t idx = i - 1;
            series.addRow({net.name, "DOSA", std::to_string(i),
                    fmtSci(traceAt(tr_dosa, idx), 3)});
            series.addRow({net.name, "Random", std::to_string(i),
                    fmtSci(traceAt(tr_rand, idx), 3)});
            series.addRow({net.name, "BB-BO", std::to_string(i),
                    fmtSci(traceAt(tr_bo, idx), 3)});
        }

        double d = traceAt(tr_dosa, size_t(samples) - 1);
        double r = traceAt(tr_rand, size_t(samples) - 1);
        double b = traceAt(tr_bo, tr_bo[0].size() - 1);
        finals.addRow({net.name, fmtSci(d, 3), fmtSci(r, 3),
                fmtSci(b, 3), fmt(r / d, 2) + "x",
                fmt(b / d, 2) + "x"});
        ratio_random.push_back(r / d);
        ratio_bo.push_back(b / d);
    }

    std::printf("EDP-vs-samples series:\n");
    series.print();
    std::printf("\nFinal best EDP (mean of %d runs):\n", runs);
    finals.print();
    std::printf("\nGeomean improvement of DOSA: %.2fx vs random "
                "(paper 2.80x), %.2fx vs BB-BO (paper 12.59x)\n",
            geomean(ratio_random), geomean(ratio_bo));
    series.writeCsv("bench_fig7_series.csv");
    finals.writeCsv("bench_fig7.csv");
    bench::perfFooter(timer);
    return 0;
}
