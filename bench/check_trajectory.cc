/**
 * @file
 * Perf-trajectory gate: diff the newest line of a `BENCH_*.json`
 * trajectory file against the most recent comparable prior line and
 * fail on regressions.
 *
 *     check_trajectory FILE [--threshold F]
 *
 * FILE is a JSON-lines trajectory file as written by the benches'
 * `appendTrajectoryLine` (bench/common.hh); `--threshold` is the
 * fractional regression tolerance (default 0.25 == 25%). Exit status:
 *
 *   0  no comparable prior line (first run on this configuration), or
 *      every measurement within tolerance
 *   1  at least one measurement regressed beyond the threshold
 *   2  usage / unreadable or malformed file
 *
 * The key conventions (which keys are context, which are latency vs
 * throughput measurements) live in obs/trajectory.hh; this binary is
 * a thin CLI over `obs::checkTrajectory` so CI and the tests exercise
 * the same logic.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trajectory.hh"
#include "util/cli.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const double threshold = cli.getDouble("threshold", 0.25);
    if (cli.positional().size() != 1 || threshold < 0.0) {
        std::fprintf(stderr,
                "usage: check_trajectory FILE [--threshold F]\n");
        return 2;
    }
    const std::string &path = cli.positional()[0];

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "check_trajectory: cannot read %s\n",
                path.c_str());
        return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();

    std::vector<json::Value> lines;
    std::string error;
    if (!obs::parseTrajectory(body.str(), lines, error)) {
        std::fprintf(stderr, "check_trajectory: %s: %s\n",
                path.c_str(), error.c_str());
        return 2;
    }
    if (lines.empty()) {
        std::printf("%s: empty trajectory, nothing to check\n",
                path.c_str());
        return 0;
    }

    obs::TrajectoryCheck check =
            obs::checkTrajectory(lines, threshold);
    std::printf("%s (threshold %.0f%%):\n%s", path.c_str(),
            threshold * 100.0, check.detail.c_str());
    if (!check.compared) {
        std::printf("no baseline for this configuration "
                    "(first run); nothing to gate\n");
        return 0;
    }
    if (!check.ok) {
        std::fprintf(stderr,
                "check_trajectory: %zu regression(s) beyond %.0f%%\n",
                check.regressions.size(), threshold * 100.0);
        return 1;
    }
    return 0;
}
