/**
 * @file
 * Self-timing benchmark of the batched tape interpreter: the
 * steady-state multi-candidate gradient sweep
 * (`ObjectiveEngine::evalBatch`, one lane-blocked
 * `Tape::replayBatch` + `gradientBatchInto` pass) against the PR 3
 * scalar baseline (one `eval` replay per candidate), per objective
 * size and candidate count. This is the measurement behind the
 * batch-replay rows in bench/PERF.md; unlike BM_ReplayBatch in
 * bench_model_microbench it needs no Google Benchmark install.
 */

#include <vector>

#include "bench/common.hh"
#include "core/objective.hh"
#include "stats/stats.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Batched tape replay: multi-candidate gradient "
                  "sweeps vs scalar replay",
            scale);
    bench::WallTimer timer;

    const int reps = scale.pick(20, 300, 3000);
    const int layer_counts[] = {1, 8, 24};
    const int cand_counts[] = {4, 8, 16};

    Network net = resnet50();
    TablePrinter table({"layers", "candidates", "scalar us/cand",
                        "batch us/cand", "speedup"});
    double sink = 0.0;
    // The heaviest cell's timings feed the trajectory line below.
    double traj_scalar_us = 0.0, traj_batch_us = 0.0;

    for (int lc : layer_counts) {
        std::vector<Layer> layers(net.layers.begin(),
                net.layers.begin() + size_t(lc));
        std::vector<OrderVec> orders(layers.size(),
                uniformOrder(LoopOrder::WS));
        ObjectiveMode mode;
        for (int nc : cand_counts) {
            auto xs = bench::descentCandidates(layers, size_t(nc));

            // Scalar baseline: one replay + sweep per candidate
            // (first eval pays the build, as in a descent segment).
            ObjectiveEngine scalar_engine;
            for (const auto &x : xs)
                sink += scalar_engine.eval(layers, x, orders,
                        OrderStrategy::Fixed, mode).loss;
            bench::WallTimer t_scalar;
            for (int r = 0; r < reps; ++r)
                for (const auto &x : xs)
                    sink += scalar_engine.eval(layers, x, orders,
                            OrderStrategy::Fixed, mode).loss;
            double us_scalar = t_scalar.seconds() * 1e6 /
                    (static_cast<double>(reps) * nc);

            // Batched: every candidate in one lane-blocked sweep.
            ObjectiveEngine batch_engine;
            sink += batch_engine.evalBatch(layers, xs, orders,
                    OrderStrategy::Fixed, mode)[0].loss;
            bench::WallTimer t_batch;
            for (int r = 0; r < reps; ++r)
                sink += batch_engine.evalBatch(layers, xs, orders,
                        OrderStrategy::Fixed, mode)[0].loss;
            double us_batch = t_batch.seconds() * 1e6 /
                    (static_cast<double>(reps) * nc);

            table.addRow({std::to_string(lc), std::to_string(nc),
                    fmt(us_scalar, 2), fmt(us_batch, 2),
                    fmt(us_scalar / us_batch, 2) + "x"});
            traj_scalar_us = us_scalar;
            traj_batch_us = us_batch;
        }
    }

    std::printf("Steady-state gradient sweeps, %d reps per cell "
                "(sink %.3g):\n",
            reps, sink);
    table.print();
    table.writeCsv("bench_replay_batch.csv");
    bench::perfFooter(scale, timer);

    // Trajectory line over the heaviest cell (24 layers x 16
    // candidates): per-candidate microseconds for both interpreters.
    // The speedup ratio is derivable and so not stored.
    json::Value row = json::Value::object();
    row.set("bench", json::Value::string("replay_batch"));
    row.set("mode", json::Value::string(bench::modeName(scale)));
    row.set("reps", json::Value::number(int64_t(reps)));
    row.set("layers", json::Value::number(int64_t(24)));
    row.set("candidates", json::Value::number(int64_t(16)));
    row.set("scalar_per_cand_us", json::Value::number(traj_scalar_us));
    row.set("batch_per_cand_us", json::Value::number(traj_batch_us));
    row.set("wall_s", json::Value::number(timer.seconds()));
    bench::appendTrajectoryLine("BENCH_replay_batch.json",
            std::move(row));
    return 0;
}
