/**
 * @file
 * Figure 9 + Section 6.4 reproduction: separating the hardware and
 * mapping contributions of DOSA. For each workload, gradient descent
 * is run several times and four configurations are evaluated:
 *   (a) start-point hardware + CoSA mappings,
 *   (b) DOSA hardware + CoSA mappings (constant mapper),
 *   (c) DOSA hardware + best-of-N random mappings,
 *   (d) DOSA hardware + DOSA mappings.
 *
 * Paper: (d) improves 5.75x over (a); (b) improves 3.21x over (a);
 * (d) beats (b) by 1.79x and (c) by 2.78x.
 */

#include <vector>

#include "bench/common.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "stats/stats.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 9: hardware vs mapping attribution", scale);
    bench::WallTimer timer;

    const int gd_runs = scale.pick(1, 4, 10);
    const int steps = scale.pick(40, 900, 1490);
    const int random_maps = scale.pick(40, 400, 1000);

    TablePrinter table({"workload", "start HW + CoSA",
                        "DOSA HW + CoSA", "DOSA HW + random",
                        "DOSA HW + DOSA", "(normalized)"});
    std::vector<double> r_start, r_cosa, r_random;

    for (const Network &net : targetWorkloads()) {
        std::vector<double> e_start, e_cosa, e_rand, e_dosa;
        for (int run = 0; run < gd_runs; ++run) {
            SearchSpec spec;
            spec.algorithm = "dosa";
            spec.workload = net.layers;
            spec.jobs = scale.jobs;
            spec.options.set("start_points", 1)
                    .set("steps_per_start", steps)
                    .set("round_every", scale.pick(20, 300, 500));
            spec.seed = scale.seed + 31 * uint64_t(run);
            SearchReport r = runSearch(spec);

            e_start.push_back(r.best_start_edp);
            e_dosa.push_back(r.search.best_edp);

            // DOSA hardware under the constant CoSA mapper.
            std::vector<Mapping> cosa_maps;
            for (const Layer &l : net.layers)
                cosa_maps.push_back(cosaMap(l, r.search.best_hw));
            e_cosa.push_back(referenceNetworkEval(net.layers,
                    cosa_maps, r.search.best_hw).edp);

            // DOSA hardware under a random mapper.
            SearchSpec map_spec;
            map_spec.algorithm = "mapper";
            map_spec.workload = net.layers;
            map_spec.fixed_hw = r.search.best_hw;
            map_spec.budget.max_samples = random_maps;
            map_spec.jobs = scale.jobs;
            map_spec.seed = spec.seed;
            e_rand.push_back(runSearch(map_spec).search.best_edp);
        }
        double g_start = geomean(e_start), g_cosa = geomean(e_cosa);
        double g_rand = geomean(e_rand), g_dosa = geomean(e_dosa);
        table.addRow({net.name, fmt(1.0, 3),
                fmt(g_cosa / g_start, 3), fmt(g_rand / g_start, 3),
                fmt(g_dosa / g_start, 3), fmtSci(g_start, 2)});
        r_start.push_back(g_start / g_dosa);
        r_cosa.push_back(g_cosa / g_dosa);
        r_random.push_back(g_rand / g_dosa);
    }

    table.print();
    std::printf("\nGeomean over workloads (%d GD runs each):\n",
            gd_runs);
    std::printf("  DOSA end vs start point:        %.2fx "
                "(paper 5.75x)\n", geomean(r_start));
    std::printf("  DOSA HW improvement, CoSA-mapped: %.2fx over "
                "start (paper 3.21x)\n",
            geomean(r_start) / geomean(r_cosa));
    std::printf("  DOSA mappings vs CoSA on DOSA HW: %.2fx "
                "(paper 1.79x)\n", geomean(r_cosa));
    std::printf("  DOSA mappings vs random on DOSA HW: %.2fx "
                "(paper 2.78x)\n", geomean(r_random));
    table.writeCsv("bench_fig9.csv");
    bench::perfFooter(scale, timer);
    return 0;
}
