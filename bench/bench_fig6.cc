/**
 * @file
 * Figure 6 reproduction: loop-ordering optimization strategies on
 * ResNet-50 and BERT — no ordering search ("Baseline"), re-selection
 * at every rounding ("Iterate"), and softmax-weighted gradient-based
 * ordering ("Softmax").
 *
 * Paper: after ~7000 samples, Iterate improves EDP 1.70x over the
 * Baseline and Softmax improves 1.58x; both strategies realize
 * similar gains, with Iterate slightly ahead and much cheaper.
 */

#include <vector>

#include "bench/common.hh"
#include "stats/stats.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 6: loop-ordering strategies (Baseline / "
                  "Iterate / Softmax)", scale);
    bench::WallTimer timer;

    // Paper setup (Section 6.1): 7 start points, round every 300
    // steps, 890 steps per start, 3 runs.
    const int starts = scale.pick(2, 4, 7);
    const int steps = scale.pick(40, 600, 890);
    const int round_every = scale.pick(20, 300, 300);
    const int runs = scale.pick(1, 2, 3);

    const OrderStrategy strategies[] = {OrderStrategy::Fixed,
            OrderStrategy::Iterate, OrderStrategy::Softmax};

    TablePrinter table({"workload", "strategy", "mean best EDP",
                        "improvement vs Baseline"});
    TablePrinter series({"workload", "strategy", "samples",
                         "mean best EDP"});

    for (const char *wl : {"resnet50", "bert"}) {
        Network net = networkByName(wl);
        double baseline_edp = 0.0;
        for (OrderStrategy strat : strategies) {
            std::vector<double> bests;
            std::vector<std::vector<double>> traces;
            for (int run = 0; run < runs; ++run) {
                SearchSpec spec;
                spec.algorithm = "dosa";
                spec.workload = net.layers;
                spec.jobs = scale.jobs;
                spec.options.set("start_points", starts)
                        .set("steps_per_start", steps)
                        .set("round_every", round_every)
                        .set("strategy",
                                static_cast<double>(strat));
                spec.seed = scale.seed + 100 * uint64_t(run) + 17;
                SearchReport r = runSearch(spec);
                bests.push_back(r.search.best_edp);
                traces.push_back(r.search.trace);
            }
            double mean_best = geomean(bests);
            if (strat == OrderStrategy::Fixed)
                baseline_edp = mean_best;
            table.addRow({wl, strategyName(strat),
                    fmtSci(mean_best, 3),
                    fmt(baseline_edp / mean_best, 2) + "x"});
            // Downsampled mean trace.
            size_t len = traces[0].size();
            for (size_t i = len / 8; i <= len; i += len / 8) {
                size_t idx = std::min(i, len) - 1;
                std::vector<double> vals;
                for (const auto &t : traces)
                    vals.push_back(t[idx]);
                series.addRow({wl, strategyName(strat),
                        std::to_string(idx + 1),
                        fmtSci(geomean(vals), 3)});
            }
        }
    }

    table.print();
    bench::note("(paper: Iterate 1.70x, Softmax 1.58x over Baseline "
                "at ~7000 samples)");
    std::printf("\nEDP-vs-samples series:\n");
    series.print();
    table.writeCsv("bench_fig6.csv");
    series.writeCsv("bench_fig6_series.csv");
    bench::perfFooter(scale, timer);
    return 0;
}
