/**
 * @file
 * Figure 12 + Table 7 reproduction: optimizing Gemmini-RTL (the RTL
 * substitute) with DOSA under three latency models — analytical-only,
 * DNN-only and DNN-augmented analytical — with the PE array frozen at
 * 16x16 and buffer sizes + mappings searched. Final numbers use
 * RTL-substitute latency and reference-model energy, compared against
 * the default Gemmini configuration with the heuristic (CoSA-
 * substitute) mapper.
 *
 * Paper: improvements over default of 1.48x (analytical), 1.66x
 * (DNN-only) and 1.82x (combined); Table 7 buffer sizes grow well
 * beyond the default 32 KB accumulator / 128 KB scratchpad, with
 * scratchpad:accumulator ratios between 1.28 and 4.
 */

#include <vector>

#include "arch/baselines.hh"
#include "bench/common.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "stats/stats.hh"
#include "surrogate/dataset.hh"
#include "surrogate/latency_predictor.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

namespace {

/** Network EDP with RTL-substitute latency and reference energy. */
double
rtlEdp(const std::vector<Layer> &layers,
       const std::vector<Mapping> &maps, const HardwareConfig &hw)
{
    double e = 0.0, lat = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        double cnt = static_cast<double>(layers[i].count);
        e += cnt * referenceEval(layers[i], maps[i], hw).energy_uj;
        lat += cnt * rtlLatency(layers[i], maps[i], hw);
    }
    return e * lat;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 12 + Table 7: Gemmini-RTL optimization with "
                  "learned latency models", scale);
    bench::WallTimer timer;

    const int dataset_size = scale.pick(120, 800, 1567);
    const int epochs = scale.pick(30, 300, 2000);
    const int starts = scale.pick(2, 4, 7);
    const int steps = scale.pick(40, 900, 1490);

    SurrogateDataset train = generateSurrogateDataset(dataset_size,
            scale.seed);
    LatencyPredictor dnn_only =
            LatencyPredictor::trainDnnOnly(train, epochs, scale.seed);
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, epochs, scale.seed);
    LatencyPredictor analytical = LatencyPredictor::analytical();
    SurrogateDiffModel diff_dnn(dnn_only);
    SurrogateDiffModel diff_combined(combined);

    struct Setup
    {
        const char *name;
        const LatencyPredictor *pred;
        const DiffLatencyModel *diff;
        double paper_improvement;
    };
    const Setup setups[] = {
        {"DOSA Analytical", &analytical, nullptr, 1.48},
        {"DOSA DNN-Only", &dnn_only, &diff_dnn, 1.66},
        {"DOSA Analytical+DNN", &combined, &diff_combined, 1.82},
    };

    TablePrinter fig12({"workload", "config", "RTL EDP",
                        "normalized to default", "paper"});
    TablePrinter table7({"workload", "accumulator (KB)",
                         "scratchpad (KB)", "ratio"});
    table7.addRow({"Gemmini default", "32", "128", "4.00"});
    std::vector<std::vector<double>> improvements(3);

    for (const Network &net : targetWorkloads()) {
        // Default: hand-tuned buffers + heuristic mapper.
        HardwareConfig def = gemminiDefault().config;
        std::vector<Mapping> def_maps;
        for (const Layer &l : net.layers)
            def_maps.push_back(cosaMap(l, def));
        double def_edp = rtlEdp(net.layers, def_maps, def);
        fig12.addRow({net.name, "Gemmini Default", fmtSci(def_edp, 3),
                "1.00", "1.00"});

        for (size_t si = 0; si < 3; ++si) {
            const Setup &s = setups[si];
            SearchSpec spec;
            spec.algorithm = "dosa";
            spec.workload = net.layers;
            spec.jobs = scale.jobs;
            spec.options.set("start_points", starts)
                    .set("steps_per_start", steps)
                    .set("round_every", scale.pick(20, 300, 500));
            spec.mode.fix_pe = true;
            spec.mode.pe_dim = 16;
            spec.mode.latency_model = s.diff;
            spec.scorer = s.pred->scorer();
            spec.seed = scale.seed + 13 * si;
            SearchReport r = runSearch(spec);

            double edp = rtlEdp(net.layers, r.search.best_mappings,
                    r.search.best_hw);
            fig12.addRow({net.name, s.name, fmtSci(edp, 3),
                    fmt(edp / def_edp, 2),
                    fmt(1.0 / s.paper_improvement, 2)});
            improvements[si].push_back(def_edp / edp);

            if (si == 2) { // Table 7 uses the Analytical+DNN setup
                const HardwareConfig &hw = r.search.best_hw;
                table7.addRow({net.name,
                        std::to_string(hw.accum_kib),
                        std::to_string(hw.spad_kib),
                        fmt(static_cast<double>(hw.spad_kib) /
                            static_cast<double>(hw.accum_kib), 2)});
            }
        }
    }

    std::printf("Figure 12 (lower normalized EDP is better):\n");
    fig12.print();
    std::printf("\nGeomean improvement over default: analytical "
                "%.2fx (paper 1.48x), DNN-only %.2fx (paper 1.66x), "
                "combined %.2fx (paper 1.82x)\n",
            geomean(improvements[0]), geomean(improvements[1]),
            geomean(improvements[2]));
    std::printf("\nTable 7 (DOSA Analytical+DNN buffer sizing; paper: "
                "acc 64-196 KB, spad 251-322 KB):\n");
    table7.print();
    fig12.writeCsv("bench_fig12.csv");
    table7.writeCsv("bench_table7.csv");
    bench::perfFooter(scale, timer);
    return 0;
}
