/**
 * @file
 * Figure 8 reproduction: EDP of expert-designed baseline accelerators
 * (Eyeriss, NVDLA-small, NVDLA-large, default Gemmini) against the
 * DOSA-optimized Gemmini, per target workload. Baselines get a
 * random-pruned mapping search (Timeloop random mapper stand-in) and
 * the CoSA-substitute mapper; the better result is reported.
 *
 * Paper: DOSA-optimized Gemmini wins by >2x against every baseline;
 * e.g. on U-Net: Eyeriss 19.3x, NVDLA-small 39.1x, NVDLA-large 2.5x,
 * Gemmini default 4.4x.
 */

#include <algorithm>
#include <vector>

#include "arch/baselines.hh"
#include "bench/common.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Figure 8: expert baselines vs DOSA-optimized "
                  "Gemmini", scale);
    bench::WallTimer timer;

    const int mapper_samples = scale.pick(40, 1000, 10000);
    const int starts = scale.pick(2, 5, 7);
    const int steps = scale.pick(40, 900, 1490);

    TablePrinter table({"workload", "accelerator", "EDP (uJ*cycles)",
                        "normalized to DOSA"});

    for (const Network &net : targetWorkloads()) {
        SearchSpec dosa_spec;
        dosa_spec.algorithm = "dosa";
        dosa_spec.workload = net.layers;
        dosa_spec.jobs = scale.jobs;
        dosa_spec.seed = scale.seed;
        dosa_spec.options.set("start_points", starts)
                .set("steps_per_start", steps)
                .set("round_every", scale.pick(20, 300, 500));
        SearchReport dosa = runSearch(dosa_spec);
        double dosa_edp = dosa.search.best_edp;

        for (const BaselineAccelerator &base : allBaselines()) {
            // Random-pruned mapper on the baseline's fixed hardware.
            SearchSpec map_spec;
            map_spec.algorithm = "mapper";
            map_spec.workload = net.layers;
            map_spec.fixed_hw = base.config;
            map_spec.budget.max_samples = mapper_samples;
            map_spec.jobs = scale.jobs;
            map_spec.seed = scale.seed;
            SearchResult rnd = runSearch(map_spec).search;
            // CoSA-substitute mapper.
            std::vector<Mapping> cosa_maps;
            for (const Layer &l : net.layers)
                cosa_maps.push_back(cosaMap(l, base.config));
            double cosa_edp = referenceNetworkEval(net.layers,
                    cosa_maps, base.config).edp;
            double edp = std::min(rnd.best_edp, cosa_edp);
            table.addRow({net.name, base.name, fmtSci(edp, 3),
                    fmt(edp / dosa_edp, 1) + "x"});
        }
        table.addRow({net.name, "Gemmini DOSA (" +
                dosa.search.best_hw.str() + ")",
                fmtSci(dosa_edp, 3), "1.0x"});
    }
    table.print();
    bench::note("(paper normalized EDPs — U-Net: 19.3x/39.1x/2.5x/"
                "4.4x; ResNet-50: 7.8x/17.9x/2.1x/2.5x; BERT: 11.4x/"
                "42.6x/4.0x/5.3x; RetinaNet: 10.4x/19.5x/2.3x/3.1x)");
    table.writeCsv("bench_fig8.csv");
    bench::perfFooter(scale, timer);
    return 0;
}
