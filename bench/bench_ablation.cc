/**
 * @file
 * Ablation study of the optimizer design choices called out in
 * DESIGN.md (not a paper figure — supporting evidence for the
 * reproduction's engineering decisions):
 *
 *  - feasibility projection of the log-space iterates (vs the Eq 18
 *    penalty acting alone),
 *  - greedy restart from the best rounded design after a regression,
 *  - the within-segment learning-rate decay schedule,
 *  - single vs multi start points.
 *
 * Each variant runs the open co-search on ResNet-50 and BERT; lower
 * final EDP is better.
 */

#include <vector>

#include "bench/common.hh"
#include "stats/stats.hh"
#include "workload/model_zoo.hh"

using namespace dosa;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::parseScale(argc, argv);
    bench::banner("Ablation: DOSA optimizer design choices", scale);
    bench::WallTimer timer;

    const int runs = scale.pick(1, 2, 3);
    const int starts = scale.pick(2, 5, 7);
    const int steps = scale.pick(40, 900, 1490);

    struct Variant
    {
        const char *name;
        bool project;
        bool restart_best;
        double lr;
        double lr_decay;
        int start_points;
    };
    const Variant variants[] = {
        {"full (reference)", true, true, 0.02, 0.3, starts},
        {"no projection", false, true, 0.02, 0.3, starts},
        {"no greedy restart", true, false, 0.02, 0.3, starts},
        {"no lr decay", true, true, 0.02, 1.0, starts},
        {"high lr (0.05)", true, true, 0.05, 0.3, starts},
        {"single start", true, true, 0.02, 0.3, 1},
    };

    TablePrinter table({"workload", "variant", "mean best EDP",
                        "vs full"});
    for (const char *wl : {"resnet50", "bert"}) {
        Network net = networkByName(wl);
        double full_edp = 0.0;
        for (const Variant &v : variants) {
            std::vector<double> bests;
            for (int run = 0; run < runs; ++run) {
                SearchSpec spec;
                spec.algorithm = "dosa";
                spec.workload = net.layers;
                spec.jobs = scale.jobs;
                spec.options.set("start_points", v.start_points)
                        .set("steps_per_start", steps)
                        .set("round_every", 300)
                        .set("lr", v.lr)
                        .set("lr_decay", v.lr_decay)
                        .set("project_feasible", v.project ? 1 : 0)
                        .set("restart_from_best",
                                v.restart_best ? 1 : 0);
                spec.seed = scale.seed + 97 * uint64_t(run);
                bests.push_back(
                        runSearch(spec).search.best_edp);
            }
            double g = geomean(bests);
            if (std::string(v.name) == "full (reference)")
                full_edp = g;
            table.addRow({wl, v.name, fmtSci(g, 3),
                    fmt(g / full_edp, 2) + "x"});
        }
    }
    table.print();
    bench::note(">1x means the ablated variant is worse. Multi-start "
                "and a moderate, decayed learning rate carry the most "
                "weight in open co-search; the feasibility projection "
                "mainly stabilizes single-start and fixed-PE runs "
                "(see DESIGN.md).");
    table.writeCsv("bench_ablation.csv");
    bench::perfFooter(scale, timer);
    return 0;
}
