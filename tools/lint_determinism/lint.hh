/**
 * @file
 * The house determinism linter: a small static scanner that keeps
 * the reproducibility contracts (ROADMAP "serial == parallel,
 * bitwise"; canonical JSON bytes) enforceable at CI time instead of
 * by code review.
 *
 * Three tree rules plus two meta rules:
 *
 * - `raw-rng` — bans `rand()` / `srand()` / `std::random_device` /
 *   `*rand48` everywhere except the house Rng (`src/util/rng.hh`).
 *   Every random stream in the system must flow from a spec seed
 *   through `Rng::stream`, or serial==parallel breaks silently.
 * - `wall-clock` — bans wall/steady clock reads (`*_clock::now`,
 *   `time()`, `clock_gettime`, `gettimeofday`) outside the timing
 *   seams that own them: `src/obs/` (tracer timestamps, metric
 *   durations), `src/service/` (endpoint timings), and `bench/`
 *   (self-timing harnesses). A clock read on a search path is a
 *   nondeterminism bug by construction.
 * - `unordered-iter` — flags `std::unordered_{map,set,...}` in
 *   `src/search/` and `src/core/`: result-path code must not depend
 *   on hash-iteration order, which varies across libstdc++ versions
 *   and platforms. Use `std::map`/`std::set`, or sort before use.
 *
 * Suppression is explicit and audited: `// LINT-ALLOW(rule): why`
 * on the offending line or the line directly above silences exactly
 * that rule there. The meta rules keep the allows honest:
 *
 * - `bad-allow` — a LINT-ALLOW with an unknown rule name or an
 *   empty justification.
 * - `unused-allow` — a LINT-ALLOW that suppressed nothing (stale
 *   after the code it excused was fixed or moved).
 *
 * Comments and string/char literals are stripped before the rule
 * patterns run, so prose about `rand()` never trips the scanner.
 * The scan is pure and ordered (files sorted, rules in table
 * order), so its own output is deterministic too.
 */

#ifndef DOSA_TOOLS_LINT_DETERMINISM_LINT_HH
#define DOSA_TOOLS_LINT_DETERMINISM_LINT_HH

#include <string>
#include <vector>

namespace dosa::lint {

/** One rule violation (or meta finding) at a file:line. */
struct Finding
{
    std::string file; ///< path as given (tree scans: relative to root)
    int line = 0;     ///< 1-based
    std::string rule; ///< rule slug, e.g. "raw-rng"
    std::string message;
};

/** The rule slugs, in report order; meta rules last. */
std::vector<std::string> ruleNames();

/**
 * Replace comments and string/char literals in C++ source with
 * spaces, preserving line structure (newlines survive, so line
 * numbers in the sanitized text match the original). Handles `//`,
 * `/ * * /`, escapes, and raw string literals. Exposed for tests.
 */
std::string stripCommentsAndStrings(const std::string &source);

/**
 * Lint one file's content as if it lived at `path` (relative to the
 * repo root — rule applicability keys off the path prefix). Returns
 * findings in line order.
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/**
 * Walk `subdirs` (or single files) under `root`, lint every
 * `.cc`/`.hh` file, and return all findings sorted by (file, line).
 * False on a filesystem error (missing subdir, unreadable file),
 * with a diagnostic in `error`.
 */
bool lintTree(const std::string &root,
              const std::vector<std::string> &subdirs,
              std::vector<Finding> &findings, std::string &error);

/** "file:line: [rule] message" — the one-line report form. */
std::string formatFinding(const Finding &finding);

} // namespace dosa::lint

#endif // DOSA_TOOLS_LINT_DETERMINISM_LINT_HH
