// Fixture: unordered containers in result-path code.
#include <unordered_map>
#include <unordered_set>

int tally()
{
    std::unordered_map<int, int> counts;
    std::unordered_set<int> seen;
    int sum = 0;
    for (auto &kv : counts)
        sum += kv.second;
    return sum + int(seen.size());
}
