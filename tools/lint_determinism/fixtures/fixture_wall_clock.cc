// Fixture: wall-clock reads the wall-clock rule must catch.
#include <chrono>
#include <ctime>

long stamps()
{
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::system_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
    std::time_t t = time(nullptr);
    return a.time_since_epoch().count() + b.time_since_epoch().count() +
           c.time_since_epoch().count() + long(t);
}
