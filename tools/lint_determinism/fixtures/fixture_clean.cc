// Fixture: mentions of rand() and clocks in comments and strings
// must not trip the scanner.
#include <string>

/* block comment: srand(1); std::random_device; steady_clock::now() */
std::string docs()
{
    std::string s = "call rand() then time(nullptr)";
    s += 'x';
    const char *raw = R"(unordered_map<int,int> and gettimeofday)";
    return s + raw; // rand(), clock_gettime in a line comment
}
