// Fixture: every raw-RNG spelling the raw-rng rule must catch.
#include <cstdlib>

int noise()
{
    std::srand(42);
    int a = std::rand();
    std::random_device rd;
    double d = drand48();
    return a + int(rd()) + int(d);
}
