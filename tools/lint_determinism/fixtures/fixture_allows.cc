// Fixture: LINT-ALLOW handling.
#include <cstdlib>

int a()
{
    return std::rand(); // LINT-ALLOW(raw-rng): fixture same-line allow
}

int b()
{
    // LINT-ALLOW(raw-rng): fixture preceding-line allow
    return std::rand();
}

int c()
{
    return std::rand(); // LINT-ALLOW(raw-rng):
}

// LINT-ALLOW(no-such-rule): bogus rule name
// LINT-ALLOW(wall-clock): nothing on the next line reads a clock
int d()
{
    return 0;
}
