/**
 * @file
 * CLI for the determinism linter. Usage:
 *
 *     lint_determinism --root <repo-root> <subdir-or-file>...
 *     lint_determinism --list-rules
 *
 * Prints one `file:line: [rule] message` per finding and exits 1
 * when there are any, 0 on a clean tree, 2 on usage or I/O errors —
 * the contract the CTest entry and the CI job depend on.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint_determinism/lint.hh"

int
main(int argc, char **argv)
{
    std::string root;
    std::vector<std::string> subdirs;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &name : dosa::lint::ruleNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--root needs a directory\n");
                return 2;
            }
            root = argv[++i];
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf("usage: lint_determinism --root DIR "
                        "SUBDIR...\n       lint_determinism "
                        "--list-rules\n");
            return 0;
        }
        subdirs.push_back(std::move(arg));
    }
    if (root.empty() || subdirs.empty()) {
        std::fprintf(stderr, "usage: lint_determinism --root DIR "
                             "SUBDIR...\n");
        return 2;
    }

    std::vector<dosa::lint::Finding> findings;
    std::string error;
    if (!dosa::lint::lintTree(root, subdirs, findings, error)) {
        std::fprintf(stderr, "lint_determinism: %s\n", error.c_str());
        return 2;
    }
    for (const dosa::lint::Finding &finding : findings)
        std::printf("%s\n",
                    dosa::lint::formatFinding(finding).c_str());
    if (!findings.empty()) {
        std::fprintf(stderr,
                     "lint_determinism: %zu finding(s); suppress a "
                     "justified exception with "
                     "`// LINT-ALLOW(rule): why`\n",
                     findings.size());
        return 1;
    }
    return 0;
}
