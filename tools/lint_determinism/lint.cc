/**
 * @file
 * Determinism linter implementation: source sanitizer, rule table,
 * LINT-ALLOW bookkeeping and the tree walker.
 */

#include "lint_determinism/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace dosa::lint {

namespace {

/** Does `path` (with '/' separators) start with directory `prefix`? */
bool
underDir(const std::string &path, const std::string &prefix)
{
    return path.size() > prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0;
}

/** One tree rule: a pattern plus a path-applicability predicate. */
struct Rule
{
    const char *name;
    const char *pattern;
    const char *message;
    bool (*applies)(const std::string &path);
};

/**
 * The rule table. Order is report order; patterns run against
 * sanitized lines (no comments, no literals). Keep the patterns in
 * sync with the file comment in lint.hh and the docs table.
 */
const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> table = {
        {"raw-rng",
         R"(\b(rand|srand)\s*\(|\brandom_device\b|\b[dlm]rand48\b)",
         "raw RNG outside the house Rng (src/util/rng.hh); seed a "
         "deterministic stream via Rng::stream instead",
         [](const std::string &path) {
             // The one home where engine plumbing is legitimate.
             return !underDir(path, "src/util/rng");
         }},
        {"wall-clock",
         R"((system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b)"
         R"(|\bclock_gettime\b|\bgettimeofday\b)"
         R"(|\btime\s*\(\s*(nullptr|NULL|0)?\s*\))",
         "wall-clock read outside the timing seams (src/obs, "
         "src/service, bench); clocks on a search path break "
         "serial==parallel determinism",
         [](const std::string &path) {
             return !underDir(path, "src/obs/") &&
                    !underDir(path, "src/service/") &&
                    !underDir(path, "bench/");
         }},
        {"unordered-iter",
         R"(\bunordered_(map|set|multimap|multiset)\b)",
         "unordered container in a result path (hash-iteration order "
         "varies across platforms); use std::map/std::set or sort "
         "before iterating",
         [](const std::string &path) {
             return underDir(path, "src/search/") ||
                    underDir(path, "src/core/");
         }},
    };
    return table;
}

/** A parsed `// LINT-ALLOW(rule): why` comment. */
struct Allow
{
    int line = 0;
    std::string rule;
    std::string why;
    bool used = false;
};

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type pos = 0;
    while (pos <= text.size()) {
        std::string::size_type nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            if (pos < text.size())
                lines.push_back(text.substr(pos));
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

} // namespace

std::vector<std::string>
ruleNames()
{
    std::vector<std::string> names;
    for (const Rule &rule : rules())
        names.push_back(rule.name);
    names.push_back("bad-allow");
    names.push_back("unused-allow");
    return names;
}

namespace {

/**
 * The shared sanitizer: blanks string/char literals always, and
 * comments only when `strip_comments`. Allow parsing runs with
 * comments kept (allows live in comments) but strings blanked, so a
 * string literal that *mentions* `// LINT-ALLOW(...)` — the linter's
 * own tests do — is never mistaken for a real allow.
 */
std::string
sanitize(const std::string &source, bool strip_comments)
{
    std::string out = source;
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string raw_end; // ")delim\"" terminator of the raw literal
    size_t i = 0;
    const size_t n = source.size();
    auto blank = [&](size_t at) {
        if (out[at] != '\n')
            out[at] = ' ';
    };
    while (i < n) {
        char c = source[i];
        char next = i + 1 < n ? source[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                if (strip_comments) {
                    blank(i);
                    blank(i + 1);
                }
                i += 2;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                if (strip_comments) {
                    blank(i);
                    blank(i + 1);
                }
                i += 2;
            } else if (c == '"' &&
                       (i == 0 || source[i - 1] != 'R' ||
                        (i >= 2 && (std::isalnum(static_cast<unsigned char>(
                                            source[i - 2])) ||
                                    source[i - 2] == '_')))) {
                // A plain string: the quote keeps its place so the
                // structure stays visible; the body is blanked.
                state = State::String;
                ++i;
            } else if (c == '"') {
                // R"delim( ... )delim": find the opening paren.
                size_t open = source.find('(', i + 1);
                if (open == std::string::npos) {
                    ++i; // malformed; treat as plain quote
                    state = State::String;
                    break;
                }
                raw_end = ")" + source.substr(i + 1, open - i - 1) + "\"";
                for (size_t j = i; j <= open; ++j)
                    blank(j);
                i = open + 1;
                state = State::RawString;
            } else if (c == '\'' &&
                       (i == 0 ||
                        (!std::isalnum(static_cast<unsigned char>(
                                 source[i - 1])) &&
                         source[i - 1] != '_'))) {
                // A char literal (the guard skips digit separators
                // like 1'000'000).
                state = State::Char;
                ++i;
            } else {
                ++i;
            }
            break;
        case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else if (strip_comments)
                blank(i);
            ++i;
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                if (strip_comments) {
                    blank(i);
                    blank(i + 1);
                }
                i += 2;
                state = State::Code;
            } else {
                if (strip_comments)
                    blank(i);
                ++i;
            }
            break;
        case State::String:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                i += 2;
            } else if (c == '"') {
                state = State::Code;
                ++i;
            } else {
                blank(i);
                ++i;
            }
            break;
        case State::Char:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                i += 2;
            } else if (c == '\'') {
                state = State::Code;
                ++i;
            } else {
                blank(i);
                ++i;
            }
            break;
        case State::RawString:
            if (source.compare(i, raw_end.size(), raw_end) == 0) {
                for (size_t j = i; j < i + raw_end.size(); ++j)
                    blank(j);
                i += raw_end.size();
                state = State::Code;
            } else {
                blank(i);
                ++i;
            }
            break;
        }
    }
    return out;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &source)
{
    return sanitize(source, /*strip_comments=*/true);
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    static const std::regex allow_re(
        R"(//\s*LINT-ALLOW\(([A-Za-z0-9-]+)\)\s*(?::\s*(.*))?$)");

    std::vector<Finding> findings;
    // Pass 1: collect the allows. Comments are kept (allows live in
    // them) but string literals are blanked, so prose *about* allows
    // can never register one.
    std::vector<std::string> raw_lines =
        splitLines(sanitize(content, /*strip_comments=*/false));
    std::vector<Allow> allows;
    std::vector<std::string> known = ruleNames();
    for (size_t idx = 0; idx < raw_lines.size(); ++idx) {
        std::smatch m;
        if (!std::regex_search(raw_lines[idx], m, allow_re))
            continue;
        Allow allow;
        allow.line = static_cast<int>(idx + 1);
        allow.rule = m[1].str();
        allow.why = trim(m[2].str());
        if (std::find(known.begin(), known.end(), allow.rule) ==
            known.end()) {
            findings.push_back({path, allow.line, "bad-allow",
                                "LINT-ALLOW names unknown rule \"" +
                                    allow.rule + "\""});
            continue;
        }
        if (allow.why.empty()) {
            findings.push_back(
                {path, allow.line, "bad-allow",
                 "LINT-ALLOW(" + allow.rule +
                     ") has no justification; write "
                     "`// LINT-ALLOW(" +
                     allow.rule + "): <why this line is exempt>`"});
            continue;
        }
        allows.push_back(allow);
    }

    // Pass 2: run the tree rules over the sanitized lines.
    std::vector<std::string> lines =
        splitLines(stripCommentsAndStrings(content));
    for (const Rule &rule : rules()) {
        if (!rule.applies(path))
            continue;
        const std::regex pattern(rule.pattern);
        for (size_t idx = 0; idx < lines.size(); ++idx) {
            if (!std::regex_search(lines[idx], pattern))
                continue;
            int line = static_cast<int>(idx + 1);
            // Same-line or directly-preceding-line allow.
            bool suppressed = false;
            for (Allow &allow : allows) {
                if (allow.rule == rule.name &&
                    (allow.line == line || allow.line == line - 1)) {
                    allow.used = true;
                    suppressed = true;
                }
            }
            if (!suppressed)
                findings.push_back(
                    {path, line, rule.name, rule.message});
        }
    }

    // Pass 3: stale allows.
    for (const Allow &allow : allows) {
        if (!allow.used)
            findings.push_back(
                {path, allow.line, "unused-allow",
                 "LINT-ALLOW(" + allow.rule +
                     ") suppresses nothing here; remove it"});
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

bool
lintTree(const std::string &root,
         const std::vector<std::string> &subdirs,
         std::vector<Finding> &findings, std::string &error)
{
    namespace fs = std::filesystem;
    findings.clear();

    std::vector<std::string> files;
    for (const std::string &sub : subdirs) {
        fs::path base = fs::path(root) / sub;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(sub);
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            error = "lint root entry is neither a file nor a "
                    "directory: " +
                    base.string();
            return false;
        }
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end; it.increment(ec)) {
            if (ec) {
                error = "cannot walk " + base.string() + ": " +
                        ec.message();
                return false;
            }
            if (!it->is_regular_file())
                continue;
            fs::path p = it->path();
            if (p.extension() != ".cc" && p.extension() != ".hh")
                continue;
            files.push_back(
                fs::relative(p, fs::path(root)).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        std::ifstream in(fs::path(root) / file, std::ios::binary);
        if (!in) {
            error = "cannot read " + file;
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<Finding> file_findings = lintFile(file, buf.str());
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }
    // Files were visited in sorted order and per-file findings are
    // line-sorted, so the aggregate is already (file, line)-ordered.
    return true;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace dosa::lint
