/**
 * @file
 * MLP forward/backward passes and Adam training on mean-squared error.
 */
#include "nn/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dosa {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t seed)
    : sizes_(std::move(layer_sizes))
{
    if (sizes_.size() < 2 || sizes_.back() != 1)
        panic("Mlp: need [input, hidden..., 1] layer sizes");
    Rng rng(seed);
    size_t n_layers = sizes_.size() - 1;
    weight_.resize(n_layers);
    bias_.resize(n_layers);
    mw_.resize(n_layers);
    vw_.resize(n_layers);
    mb_.resize(n_layers);
    vb_.resize(n_layers);
    for (size_t l = 0; l < n_layers; ++l) {
        size_t in = size_t(sizes_[l]);
        size_t out = size_t(sizes_[l + 1]);
        double scale = std::sqrt(2.0 / static_cast<double>(in));
        weight_[l].resize(in * out);
        for (double &w : weight_[l])
            w = rng.gaussian(0.0, scale);
        bias_[l].assign(out, 0.0);
        mw_[l].assign(in * out, 0.0);
        vw_[l].assign(in * out, 0.0);
        mb_[l].assign(out, 0.0);
        vb_[l].assign(out, 0.0);
    }
}

size_t
Mlp::paramCount() const
{
    size_t n = 0;
    for (size_t l = 0; l < weight_.size(); ++l)
        n += weight_[l].size() + bias_[l].size();
    return n;
}

double
Mlp::forwardCached(const std::vector<double> &x,
                   std::vector<std::vector<double>> &acts) const
{
    acts.clear();
    acts.push_back(x);
    for (size_t l = 0; l + 1 < sizes_.size(); ++l) {
        size_t in = size_t(sizes_[l]);
        size_t out = size_t(sizes_[l + 1]);
        std::vector<double> next(out, 0.0);
        const std::vector<double> &a = acts.back();
        for (size_t o = 0; o < out; ++o) {
            double acc = bias_[l][o];
            for (size_t i = 0; i < in; ++i)
                acc += weight_[l][o * in + i] * a[i];
            if (l + 2 < sizes_.size())
                acc = relu(acc);
            next[o] = acc;
        }
        acts.push_back(std::move(next));
    }
    return acts.back()[0];
}

double
Mlp::predict(const std::vector<double> &x) const
{
    if (x.size() != size_t(sizes_.front()))
        panic("Mlp::predict: input size mismatch");
    std::vector<std::vector<double>> acts;
    return forwardCached(x, acts);
}

void
Mlp::backward(const std::vector<std::vector<double>> &acts,
              double out_grad, std::vector<std::vector<double>> &gw,
              std::vector<std::vector<double>> &gb) const
{
    size_t n_layers = sizes_.size() - 1;
    std::vector<double> delta = {out_grad};
    for (size_t li = n_layers; li-- > 0;) {
        size_t in = size_t(sizes_[li]);
        size_t out = size_t(sizes_[li + 1]);
        const std::vector<double> &a = acts[li];
        // ReLU derivative applies to hidden layers (post-activation
        // stored in acts[li+1]; zero activation means dead unit).
        std::vector<double> d = delta;
        if (li + 1 < n_layers) {
            for (size_t o = 0; o < out; ++o)
                if (acts[li + 1][o] <= 0.0)
                    d[o] = 0.0;
        }
        for (size_t o = 0; o < out; ++o) {
            gb[li][o] += d[o];
            for (size_t i = 0; i < in; ++i)
                gw[li][o * in + i] += d[o] * a[i];
        }
        if (li == 0)
            break;
        std::vector<double> prev(in, 0.0);
        for (size_t i = 0; i < in; ++i) {
            double acc = 0.0;
            for (size_t o = 0; o < out; ++o)
                acc += weight_[li][o * in + i] * d[o];
            prev[i] = acc;
        }
        delta = std::move(prev);
    }
}

double
Mlp::trainEpoch(const std::vector<std::vector<double>> &x,
                const std::vector<double> &y, double lr,
                uint64_t shuffle_seed, int batch_size)
{
    if (x.size() != y.size() || x.empty())
        panic("Mlp::trainEpoch: bad dataset");
    Rng rng(shuffle_seed);
    std::vector<size_t> idx(x.size());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);

    size_t n_layers = sizes_.size() - 1;
    std::vector<std::vector<double>> gw(n_layers), gb(n_layers);
    double epoch_loss = 0.0;

    for (size_t start = 0; start < idx.size();
         start += size_t(batch_size)) {
        size_t end = std::min(idx.size(), start + size_t(batch_size));
        for (size_t l = 0; l < n_layers; ++l) {
            gw[l].assign(weight_[l].size(), 0.0);
            gb[l].assign(bias_[l].size(), 0.0);
        }
        double inv = 1.0 / static_cast<double>(end - start);
        for (size_t s = start; s < end; ++s) {
            std::vector<std::vector<double>> acts;
            double pred = forwardCached(x[idx[s]], acts);
            double err = pred - y[idx[s]];
            epoch_loss += err * err;
            backward(acts, 2.0 * err * inv, gw, gb);
        }
        // Adam update.
        ++adam_t_;
        const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
        double bc1 = 1.0 - std::pow(b1, adam_t_);
        double bc2 = 1.0 - std::pow(b2, adam_t_);
        for (size_t l = 0; l < n_layers; ++l) {
            for (size_t i = 0; i < weight_[l].size(); ++i) {
                mw_[l][i] = b1 * mw_[l][i] + (1 - b1) * gw[l][i];
                vw_[l][i] = b2 * vw_[l][i] +
                            (1 - b2) * gw[l][i] * gw[l][i];
                weight_[l][i] -= lr * (mw_[l][i] / bc1) /
                        (std::sqrt(vw_[l][i] / bc2) + eps);
            }
            for (size_t i = 0; i < bias_[l].size(); ++i) {
                mb_[l][i] = b1 * mb_[l][i] + (1 - b1) * gb[l][i];
                vb_[l][i] = b2 * vb_[l][i] +
                            (1 - b2) * gb[l][i] * gb[l][i];
                bias_[l][i] -= lr * (mb_[l][i] / bc1) /
                        (std::sqrt(vb_[l][i] / bc2) + eps);
            }
        }
    }
    return epoch_loss / static_cast<double>(x.size());
}

} // namespace dosa
