/**
 * @file
 * Multi-layer perceptron with manual backpropagation.
 *
 * This is the performance-prediction DNN of Section 4.7: the paper uses
 * a Mind-Mappings-style network with 7 hidden fully-connected layers
 * and ~5.7k parameters. Training is Adam on mean-squared error. The
 * forward pass is additionally exposed as a template so the trained
 * network can be evaluated on autodiff variables and embedded in the
 * DOSA gradient-descent objective (the "DNN-augmented" search of
 * Section 6.5).
 */

#ifndef DOSA_NN_MLP_HH
#define DOSA_NN_MLP_HH

#include <cstdint>
#include <vector>

#include "autodiff/var.hh"
#include "util/scalar_ops.hh"

namespace dosa {

/** Fully-connected ReLU network with a scalar linear output. */
class Mlp
{
  public:
    /**
     * @param layer_sizes [input, hidden..., output]; output must be 1.
     * @param seed        deterministic He-style initialization seed.
     */
    Mlp(std::vector<int> layer_sizes, uint64_t seed);

    /** Scalar prediction for one input row. */
    double predict(const std::vector<double> &x) const;

    /**
     * One epoch of minibatch Adam on MSE; returns the epoch's mean
     * squared error. Row order is shuffled with `shuffle_seed`.
     */
    double trainEpoch(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &y, double lr,
                      uint64_t shuffle_seed, int batch_size = 64);

    /** Total trainable parameter count. */
    size_t paramCount() const;

    /** Input feature dimension. */
    int inputSize() const { return sizes_.front(); }

    /**
     * Forward pass over a generic scalar type (double or ad::Var) with
     * the trained weights held constant; used to differentiate the
     * prediction with respect to mapping features.
     */
    template <class S>
    S
    forwardT(const std::vector<S> &x) const
    {
        std::vector<S> act = x;
        for (size_t l = 0; l + 1 < sizes_.size(); ++l) {
            size_t in = size_t(sizes_[l]);
            size_t out = size_t(sizes_[l + 1]);
            std::vector<S> next(out, S(0.0));
            for (size_t o = 0; o < out; ++o) {
                S acc = S(bias_[l][o]);
                for (size_t i = 0; i < in; ++i)
                    acc = acc + S(weight_[l][o * in + i]) * act[i];
                if (l + 2 < sizes_.size())
                    acc = relu(acc);
                next[o] = acc;
            }
            act = std::move(next);
        }
        return act[0];
    }

  private:
    /** Forward pass caching activations; returns output. */
    double forwardCached(const std::vector<double> &x,
                         std::vector<std::vector<double>> &acts) const;

    /** Backprop one example, accumulating into gradient buffers. */
    void backward(const std::vector<std::vector<double>> &acts,
                  double out_grad,
                  std::vector<std::vector<double>> &gw,
                  std::vector<std::vector<double>> &gb) const;

    std::vector<int> sizes_;
    /** weight_[l] is row-major [out x in]. */
    std::vector<std::vector<double>> weight_;
    std::vector<std::vector<double>> bias_;

    // Adam state per parameter tensor.
    std::vector<std::vector<double>> mw_, vw_, mb_, vb_;
    int adam_t_ = 0;
};

} // namespace dosa

#endif // DOSA_NN_MLP_HH
