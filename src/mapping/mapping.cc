/**
 * @file
 * Mapping representation: factor products, validation and pretty-printing.
 */
#include "mapping/mapping.hh"

#include <sstream>

#include "util/divisors.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace dosa {

const char *
orderName(LoopOrder o)
{
    switch (o) {
      case LoopOrder::WS: return "WS";
      case LoopOrder::IS: return "IS";
      case LoopOrder::OS: return "OS";
    }
    return "?";
}

OrderVec
uniformOrder(LoopOrder o)
{
    OrderVec v;
    v.fill(o);
    v[kRegisters] = LoopOrder::WS;
    return v;
}

int64_t
Mapping::dimProduct(Dim d) const
{
    int64_t prod = 1;
    for (int lvl = 0; lvl < kNumLevels; ++lvl) {
        prod *= factors.t(lvl, d);
        prod *= factors.spatialAt(lvl, d);
    }
    return prod;
}

bool
Mapping::complete(const Layer &layer) const
{
    for (Dim d : kAllDims)
        if (dimProduct(d) != layer.size(d))
            return false;
    return true;
}

bool
Mapping::positive() const
{
    for (int lvl = 0; lvl < kNumLevels; ++lvl)
        for (Dim d : kAllDims)
            if (factors.t(lvl, d) < 1)
                return false;
    return factors.spatial_c >= 1 && factors.spatial_k >= 1;
}

Factors<double>
Mapping::continuousFactors() const
{
    Factors<double> f;
    for (int lvl = 0; lvl < kNumLevels; ++lvl)
        for (Dim d : kAllDims)
            f.t(lvl, d) = static_cast<double>(factors.t(lvl, d));
    f.spatial_c = static_cast<double>(factors.spatial_c);
    f.spatial_k = static_cast<double>(factors.spatial_k);
    return f;
}

std::string
Mapping::str() const
{
    std::ostringstream os;
    for (int lvl = kNumLevels - 1; lvl >= 0; --lvl) {
        os << levelName(lvl) << "[" << orderName(order[size_t(lvl)])
           << "]:";
        if (lvl == kScratchpad && factors.spatial_k > 1)
            os << " sK=" << factors.spatial_k;
        if (lvl == kAccumulator && factors.spatial_c > 1)
            os << " sC=" << factors.spatial_c;
        for (Dim d : kAllDims) {
            int64_t f = factors.t(lvl, d);
            if (f > 1)
                os << " " << dimName(d) << "=" << f;
        }
        if (lvl > 0)
            os << " | ";
    }
    return os.str();
}

Mapping
randomMapping(const Layer &layer, Rng &rng, int64_t pe_cap)
{
    Mapping m;
    // Spatial factors: random divisors bounded by the PE cap.
    {
        const auto &cdivs = divisorsOf(layer.c);
        std::vector<int64_t> ok;
        for (int64_t d : cdivs)
            if (d <= pe_cap)
                ok.push_back(d);
        m.factors.spatial_c = ok[size_t(rng.uniformInt(0,
                static_cast<int64_t>(ok.size()) - 1))];
    }
    {
        const auto &kdivs = divisorsOf(layer.k);
        std::vector<int64_t> ok;
        for (int64_t d : kdivs)
            if (d <= pe_cap)
                ok.push_back(d);
        m.factors.spatial_k = ok[size_t(rng.uniformInt(0,
                static_cast<int64_t>(ok.size()) - 1))];
    }
    // Temporal factors: split the residual of each dimension across the
    // four levels.
    for (Dim d : kAllDims) {
        int64_t residual = layer.size(d);
        if (d == Dim::C)
            residual /= m.factors.spatial_c;
        if (d == Dim::K)
            residual /= m.factors.spatial_k;
        auto split = randomFactorSplit(residual, kNumLevels, rng);
        for (int lvl = 0; lvl < kNumLevels; ++lvl)
            m.factors.t(lvl, d) = split[size_t(lvl)];
    }
    // Random ordering per level above the registers.
    for (int lvl = kAccumulator; lvl < kNumLevels; ++lvl)
        m.order[size_t(lvl)] =
                static_cast<LoopOrder>(rng.uniformInt(0, kNumOrders - 1));
    return m;
}

} // namespace dosa
