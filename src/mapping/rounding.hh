/**
 * @file
 * Rounding of continuous tiling factors to valid integer mappings
 * (Section 5.3.2).
 *
 * Gradient descent produces non-integer factors; before a mapping is
 * evaluated (or hardware inferred) each factor is rounded to the
 * nearest divisor of the remaining per-dimension quota, iterating from
 * the innermost to the outermost memory level. This divisor-quota chain
 * guarantees that the per-dimension factor product equals the problem
 * size exactly, with the outermost (DRAM) factor absorbing the residue
 * (Section 5.3.3: DRAM factors are never free optimization variables).
 */

#ifndef DOSA_MAPPING_ROUNDING_HH
#define DOSA_MAPPING_ROUNDING_HH

#include <cstdint>

#include "mapping/mapping.hh"

namespace dosa {

/**
 * Round continuous factors to the nearest valid integer mapping.
 *
 * @param factors  Continuous factors; the DRAM temporal entries are
 *                 ignored (inferred from the quota residue).
 * @param layer    Problem shape providing per-dimension totals.
 * @param order    Loop orderings to attach to the result.
 * @param pe_cap   Upper bound on each spatial factor (PE-array side).
 * @return A complete, positive mapping for `layer`.
 */
Mapping roundToValid(const Factors<double> &factors, const Layer &layer,
                     const OrderVec &order, int64_t pe_cap = kMaxPeDim);

} // namespace dosa

#endif // DOSA_MAPPING_ROUNDING_HH
