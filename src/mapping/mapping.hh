/**
 * @file
 * Mapping representation: spatial/temporal tiling factors and per-level
 * loop orderings (Section 3.1.2).
 *
 * A mapping assigns, for every memory level i and problem dimension d,
 * a temporal tiling factor f_T,i,d, plus the two Gemmini-WS spatial
 * factors (C across PE rows at the accumulator level, K across PE
 * columns at the scratchpad level). For each dimension the product of
 * all factors must equal the layer's problem size.
 *
 * Loop ordering is expressed per level as one of the three canonical
 * stationarities of Section 5.2 (WS / IS / OS); ordering X places the
 * dimensions irrelevant to tensor X innermost, so tensor X's tile is
 * refetched only when one of its own dimensions advances.
 */

#ifndef DOSA_MAPPING_MAPPING_HH
#define DOSA_MAPPING_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>

#include "arch/hardware_config.hh"
#include "workload/layer.hh"

namespace dosa {

class Rng;

/** Canonical per-level loop orderings (Section 5.2). */
enum class LoopOrder : int { WS = 0, IS = 1, OS = 2 };

/** Number of ordering choices. */
constexpr int kNumOrders = 3;

/** Name of an ordering ("WS"...). */
const char *orderName(LoopOrder o);

/** The tensor kept stationary by an ordering. */
constexpr Tensor
stationaryTensor(LoopOrder o)
{
    switch (o) {
      case LoopOrder::WS: return Tensor::Weight;
      case LoopOrder::IS: return Tensor::Input;
      case LoopOrder::OS: return Tensor::Output;
    }
    return Tensor::Weight;
}

/**
 * Whether dimension d contributes to tensor t's refetch multiplier at a
 * level ordered by `o`. Under ordering X, tensor X's irrelevant dims
 * sit innermost, so only X-relevant dims force refetches of X; every
 * other tensor has some relevant dim inside the full permutation and is
 * refetched by all loops at the level. Factors of 1 multiply harmlessly,
 * keeping this position-based rule smooth for gradient descent.
 */
constexpr bool
dimMultipliesRefetch(LoopOrder o, Tensor t, Dim d)
{
    if (stationaryTensor(o) == t)
        return dimRelevant(t, d);
    return true;
}

/** Per-level loop-ordering assignment. Level 0 is fixed WS (hardware). */
using OrderVec = std::array<LoopOrder, kNumLevels>;

/** Ordering vector with every level set to `o` (level 0 forced WS). */
OrderVec uniformOrder(LoopOrder o);

/**
 * Continuous (or integer) tiling-factor assignment, templated on the
 * scalar so the same structure carries doubles during gradient descent
 * and autodiff variables inside the objective graph.
 */
template <class S>
struct Factors
{
    /** Temporal factor per level (0..3) per dimension. */
    std::array<std::array<S, kNumDims>, kNumLevels> temporal;
    /** Spatial C factor (PE rows), logically at the accumulator level. */
    S spatial_c;
    /** Spatial K factor (PE columns), logically at the scratchpad level. */
    S spatial_k;

    Factors()
    {
        for (auto &lvl : temporal)
            lvl.fill(S(1));
        spatial_c = S(1);
        spatial_k = S(1);
    }

    const S &t(int level, Dim d) const
    {
        return temporal[size_t(level)][size_t(static_cast<int>(d))];
    }
    S &t(int level, Dim d)
    {
        return temporal[size_t(level)][size_t(static_cast<int>(d))];
    }

    /** Spatial factor of dimension d at `level`, or 1. */
    S
    spatialAt(int level, Dim d) const
    {
        if (level == kAccumulator && d == Dim::C)
            return spatial_c;
        if (level == kScratchpad && d == Dim::K)
            return spatial_k;
        return S(1);
    }

    bool operator==(const Factors &o) const
    {
        return temporal == o.temporal && spatial_c == o.spatial_c &&
               spatial_k == o.spatial_k;
    }
};

/**
 * A concrete integer mapping: factors plus loop orderings. This is the
 * unit that gets evaluated by the reference model, the RTL simulator
 * and the searchers.
 */
struct Mapping
{
    Factors<int64_t> factors;
    OrderVec order = uniformOrder(LoopOrder::WS);

    /** Product of all factors (spatial+temporal) for dimension d. */
    int64_t dimProduct(Dim d) const;

    /** True iff every dimension's factor product equals the layer size. */
    bool complete(const Layer &layer) const;

    /** True iff every factor is >= 1. */
    bool positive() const;

    /** Copy of the factors widened to double. */
    Factors<double> continuousFactors() const;

    /** One-line description (loop nest summary). */
    std::string str() const;

    bool operator==(const Mapping &o) const = default;
};

/**
 * Generate an unconstrained random complete mapping for a layer: every
 * dimension's size is randomly factor-split across the levels, spatial
 * factors are random divisors bounded by `pe_cap`, and each level gets
 * a random ordering.
 */
Mapping randomMapping(const Layer &layer, Rng &rng,
                      int64_t pe_cap = kMaxPeDim);

/** Total temporal+spatial factor count used as the GD variable count. */
constexpr int kFactorsPerLayer = kNumDims * (kNumLevels - 1) + 2;

} // namespace dosa

#endif // DOSA_MAPPING_MAPPING_HH
