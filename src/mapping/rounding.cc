/**
 * @file
 * Divisor-quota rounding of continuous tiling factors to valid integer mappings (Section 5.3.2).
 */
#include "mapping/rounding.hh"

#include "util/divisors.hh"
#include "util/logging.hh"

namespace dosa {

Mapping
roundToValid(const Factors<double> &factors, const Layer &layer,
             const OrderVec &order, int64_t pe_cap)
{
    Mapping m;
    m.order = order;

    for (Dim d : kAllDims) {
        // One memoized divisor list serves the whole quota chain of
        // this dimension (DivisorQuota); the chain walks innermost to
        // outermost: registers temporal, spatial C, accumulator
        // temporal, spatial K, scratchpad temporal; the DRAM temporal
        // absorbs whatever is left.
        DivisorQuota quota(layer.size(d));

        m.factors.t(kRegisters, d) =
                quota.take(factors.t(kRegisters, d));
        if (d == Dim::C)
            m.factors.spatial_c =
                    quota.takeAtMost(factors.spatial_c, pe_cap);
        m.factors.t(kAccumulator, d) =
                quota.take(factors.t(kAccumulator, d));
        if (d == Dim::K)
            m.factors.spatial_k =
                    quota.takeAtMost(factors.spatial_k, pe_cap);
        m.factors.t(kScratchpad, d) =
                quota.take(factors.t(kScratchpad, d));
        m.factors.t(kDram, d) = quota.remaining();
    }

    if (!m.complete(layer) || !m.positive())
        panic("roundToValid produced an invalid mapping");
    return m;
}

} // namespace dosa
