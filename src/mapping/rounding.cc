/**
 * @file
 * Divisor-quota rounding of continuous tiling factors to valid integer mappings (Section 5.3.2).
 */
#include "mapping/rounding.hh"

#include "util/divisors.hh"
#include "util/logging.hh"

namespace dosa {

Mapping
roundToValid(const Factors<double> &factors, const Layer &layer,
             const OrderVec &order, int64_t pe_cap)
{
    Mapping m;
    m.order = order;

    for (Dim d : kAllDims) {
        int64_t remaining = layer.size(d);

        // Innermost to outermost: registers temporal, spatial C,
        // accumulator temporal, spatial K, scratchpad temporal; the
        // DRAM temporal absorbs whatever is left.
        auto take = [&](double want, int64_t cap) {
            int64_t f = cap > 0
                    ? nearestDivisorAtMost(remaining, want, cap)
                    : nearestDivisor(remaining, want);
            remaining /= f;
            return f;
        };

        m.factors.t(kRegisters, d) =
                take(factors.t(kRegisters, d), 0);
        if (d == Dim::C)
            m.factors.spatial_c = take(factors.spatial_c, pe_cap);
        m.factors.t(kAccumulator, d) =
                take(factors.t(kAccumulator, d), 0);
        if (d == Dim::K)
            m.factors.spatial_k = take(factors.spatial_k, pe_cap);
        m.factors.t(kScratchpad, d) =
                take(factors.t(kScratchpad, d), 0);
        m.factors.t(kDram, d) = remaining;
    }

    if (!m.complete(layer) || !m.positive())
        panic("roundToValid produced an invalid mapping");
    return m;
}

} // namespace dosa
