/**
 * @file
 * Statistics used to report experiment results: Spearman/Pearson
 * correlation (Figs. 10-11), mean absolute percentage error (Fig. 4),
 * geometric means (Sections 6.3-6.4) and summary helpers.
 */

#ifndef DOSA_STATS_STATS_HH
#define DOSA_STATS_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dosa {

/**
 * Hit/miss/size counters reported by memoization layers (the exec/
 * evaluation cache, divisor memo). Collected here so every cache in
 * the system reports through one vocabulary.
 */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** Shard resets forced by the per-shard capacity bound. */
    uint64_t evictions = 0;
    size_t entries = 0;

    /** hits / (hits + misses); 0 when the cache was never queried. */
    double hitRate() const;

    /** One-line "hits=... misses=... rate=...% entries=..." summary. */
    std::string str() const;
};

/**
 * Order-statistics summary of one sample set — the vocabulary the
 * search service reports per-endpoint processing times in (request
 * latency min/avg/max plus tail percentiles), usable by any component
 * that accumulates durations or scores.
 */
struct Summary
{
    size_t n = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /** Summarize `v` (all zeros for empty input). */
    static Summary of(std::vector<double> v);

    /** One-line "n=... min=... mean=... p99=... max=..." summary. */
    std::string str() const;
};

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &v);

/** Sample standard deviation (n-1 denominator); 0 for size < 2. */
double stddev(const std::vector<double> &v);

/** Geometric mean of positive values; 0 for empty input. */
double geomean(const std::vector<double> &v);

/** Median (average of middle two for even sizes); 0 for empty input. */
double median(std::vector<double> v);

/** p-th percentile (0..100), linear interpolation; 0 for empty input. */
double percentile(std::vector<double> v, double p);

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Spearman rank correlation: Pearson correlation of the ranks, with
 * average ranks for ties. This is the accuracy metric the paper uses
 * for latency predictors (Section 6.5.2).
 */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Mean absolute percentage error of predictions vs. reference,
 * mean(|pred - ref| / |ref|) * 100. Reference entries of 0 are skipped.
 */
double meanAbsPercentError(const std::vector<double> &pred,
                           const std::vector<double> &ref);

/** Maximum absolute percentage error (same convention as above). */
double maxAbsPercentError(const std::vector<double> &pred,
                          const std::vector<double> &ref);

/**
 * Fraction (0..1) of points whose absolute percentage error is within
 * `pct` percent. Used for the "98.3% of results within 1%" claim.
 */
double fractionWithinPercent(const std::vector<double> &pred,
                             const std::vector<double> &ref, double pct);

/** Ranks with average-tie handling; ranks start at 1. */
std::vector<double> ranks(const std::vector<double> &v);

} // namespace dosa

#endif // DOSA_STATS_STATS_HH
