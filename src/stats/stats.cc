/**
 * @file
 * Spearman/Pearson correlation, MAPE, geomean and summary helpers.
 */
#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/logging.hh"

namespace dosa {

double
CacheStats::hitRate() const
{
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                                static_cast<double>(total);
}

std::string
CacheStats::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
            "hits=%llu misses=%llu rate=%.1f%% entries=%zu "
            "evictions=%llu",
            static_cast<unsigned long long>(hits),
            static_cast<unsigned long long>(misses), 100.0 * hitRate(),
            entries, static_cast<unsigned long long>(evictions));
    return buf;
}

Summary
Summary::of(std::vector<double> v)
{
    Summary s;
    if (v.empty())
        return s;
    s.n = v.size();
    s.mean = dosa::mean(v);
    std::sort(v.begin(), v.end());
    s.min = v.front();
    s.max = v.back();
    s.p50 = percentile(v, 50.0);
    s.p90 = percentile(v, 90.0);
    s.p99 = percentile(v, 99.0);
    return s;
}

std::string
Summary::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
            "n=%zu min=%.6g mean=%.6g p50=%.6g p90=%.6g p99=%.6g "
            "max=%.6g",
            n, min, mean, p50, p90, p99, max);
    return buf;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            panic("geomean: non-positive value");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double idx = (p / 100.0) * static_cast<double>(v.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(idx));
    size_t hi = static_cast<size_t>(std::ceil(idx));
    double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        panic("pearson: size mismatch");
    size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = mean(x), my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double dx = x[i] - mx, dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(const std::vector<double> &v)
{
    size_t n = v.size();
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n, 0.0);
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j + 1 < n && v[idx[j + 1]] == v[idx[i]])
            ++j;
        // Average rank for the tie group [i, j].
        double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                     2.0 + 1.0;
        for (size_t k = i; k <= j; ++k)
            r[idx[k]] = avg;
        i = j + 1;
    }
    return r;
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        panic("spearman: size mismatch");
    return pearson(ranks(x), ranks(y));
}

double
meanAbsPercentError(const std::vector<double> &pred,
                    const std::vector<double> &ref)
{
    if (pred.size() != ref.size())
        panic("meanAbsPercentError: size mismatch");
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (ref[i] == 0.0)
            continue;
        acc += std::abs(pred[i] - ref[i]) / std::abs(ref[i]);
        ++n;
    }
    return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

double
maxAbsPercentError(const std::vector<double> &pred,
                   const std::vector<double> &ref)
{
    if (pred.size() != ref.size())
        panic("maxAbsPercentError: size mismatch");
    double worst = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (ref[i] == 0.0)
            continue;
        worst = std::max(worst,
                100.0 * std::abs(pred[i] - ref[i]) / std::abs(ref[i]));
    }
    return worst;
}

double
fractionWithinPercent(const std::vector<double> &pred,
                      const std::vector<double> &ref, double pct)
{
    if (pred.size() != ref.size())
        panic("fractionWithinPercent: size mismatch");
    size_t ok = 0, n = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (ref[i] == 0.0)
            continue;
        ++n;
        double err = 100.0 * std::abs(pred[i] - ref[i]) / std::abs(ref[i]);
        if (err <= pct)
            ++ok;
    }
    return n == 0 ? 1.0 : static_cast<double>(ok) / static_cast<double>(n);
}

} // namespace dosa
