/**
 * @file
 * GP regression: RBF kernel, Cholesky-based fit and posterior mean/variance.
 */
#include "gp/gaussian_process.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa {

GaussianProcess::GaussianProcess(GpParams params) : params_(params) {}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    if (a.size() != b.size())
        panic("GaussianProcess: feature size mismatch");
    double d2 = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        d2 += d * d;
    }
    double ls2 = params_.length_scale * params_.length_scale;
    return params_.signal_var * std::exp(-0.5 * d2 / ls2);
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &x,
                     const std::vector<double> &y)
{
    if (x.size() != y.size() || x.empty())
        panic("GaussianProcess::fit: bad training set");
    x_ = x;
    y_mean_ = 0.0;
    for (double v : y)
        y_mean_ += v;
    y_mean_ /= static_cast<double>(y.size());

    size_t n = x.size();
    Matrix k(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j <= i; ++j) {
            double v = kernel(x[i], x[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
    k.addDiagonal(params_.noise_var + 1e-10);
    chol_ = std::make_unique<Cholesky>(k);

    std::vector<double> centred(n);
    for (size_t i = 0; i < n; ++i)
        centred[i] = y[i] - y_mean_;
    alpha_ = chol_->solve(centred);
}

double
GaussianProcess::predictMean(const std::vector<double> &x) const
{
    if (!chol_)
        panic("GaussianProcess: predict before fit");
    double acc = y_mean_;
    for (size_t i = 0; i < x_.size(); ++i)
        acc += alpha_[i] * kernel(x, x_[i]);
    return acc;
}

double
GaussianProcess::predictVar(const std::vector<double> &x) const
{
    if (!chol_)
        panic("GaussianProcess: predict before fit");
    std::vector<double> kstar(x_.size());
    for (size_t i = 0; i < x_.size(); ++i)
        kstar[i] = kernel(x, x_[i]);
    std::vector<double> v = chol_->solveLower(kstar);
    double var = kernel(x, x);
    for (double vi : v)
        var -= vi * vi;
    return var > 0.0 ? var : 0.0;
}

double
GaussianProcess::lcb(const std::vector<double> &x, double kappa) const
{
    return predictMean(x) - kappa * std::sqrt(predictVar(x));
}

} // namespace dosa
