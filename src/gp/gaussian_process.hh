/**
 * @file
 * Gaussian-process regression with an RBF kernel.
 *
 * This is the surrogate behind the BB-BO baseline (Section 6.1, after
 * Spotlight): the optimizer fits a GP to observed (hardware, mapping)
 * -> log-EDP samples and ranks unseen candidates by posterior mean
 * (optionally lower-confidence bound).
 */

#ifndef DOSA_GP_GAUSSIAN_PROCESS_HH
#define DOSA_GP_GAUSSIAN_PROCESS_HH

#include <memory>
#include <vector>

#include "linalg/cholesky.hh"
#include "linalg/matrix.hh"

namespace dosa {

/** Hyperparameters of the squared-exponential kernel. */
struct GpParams
{
    double length_scale = 1.0; ///< shared isotropic length scale
    double signal_var = 1.0;   ///< kernel amplitude sigma_f^2
    double noise_var = 1e-4;   ///< observation noise sigma_n^2
};

/** GP regressor over fixed-dimension feature vectors. */
class GaussianProcess
{
  public:
    explicit GaussianProcess(GpParams params = {});

    /**
     * Fit to (x, y) pairs. Targets are internally centred on their
     * mean; feature dimensions must agree across rows.
     */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y);

    /** Posterior mean at a point. Requires fit() first. */
    double predictMean(const std::vector<double> &x) const;

    /** Posterior variance at a point (>= 0, clipped). */
    double predictVar(const std::vector<double> &x) const;

    /**
     * Lower confidence bound mean - kappa * std; the BO baseline
     * minimizes EDP, so lower is more promising.
     */
    double lcb(const std::vector<double> &x, double kappa) const;

    /** Number of training points. */
    size_t trainSize() const { return x_.size(); }

  private:
    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;

    GpParams params_;
    std::vector<std::vector<double>> x_;
    double y_mean_ = 0.0;
    std::vector<double> alpha_; ///< K^-1 (y - mean)
    std::unique_ptr<Cholesky> chol_;
};

} // namespace dosa

#endif // DOSA_GP_GAUSSIAN_PROCESS_HH
