/**
 * @file
 * The three Gemmini-RTL latency predictors: analytical, DNN-only and DNN-augmented.
 */
#include "surrogate/latency_predictor.hh"

#include <cmath>

#include "model/reference.hh"
#include "search/search_common.hh"
#include "util/logging.hh"

namespace dosa {

const char *
latencyModelName(LatencyModelKind k)
{
    switch (k) {
      case LatencyModelKind::Analytical: return "Analytical";
      case LatencyModelKind::DnnOnly: return "DNN-Only";
      case LatencyModelKind::Combined: return "Analytical+DNN";
    }
    return "?";
}

std::vector<int>
surrogateMlpSizes()
{
    // 7 hidden layers of width 27 over the 43 features: 5752
    // trainable parameters, matching the paper's 5737-parameter
    // Mind-Mappings-style network.
    return {kFeatureSize, 27, 27, 27, 27, 27, 27, 27, 1};
}

void
Standardizer::fit(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        panic("Standardizer::fit: empty input");
    size_t dim = rows[0].size();
    mean.assign(dim, 0.0);
    stdev.assign(dim, 0.0);
    for (const auto &r : rows)
        for (size_t i = 0; i < dim; ++i)
            mean[i] += r[i];
    for (size_t i = 0; i < dim; ++i)
        mean[i] /= static_cast<double>(rows.size());
    for (const auto &r : rows)
        for (size_t i = 0; i < dim; ++i)
            stdev[i] += (r[i] - mean[i]) * (r[i] - mean[i]);
    for (size_t i = 0; i < dim; ++i) {
        stdev[i] = std::sqrt(stdev[i] /
                static_cast<double>(rows.size()));
        if (stdev[i] < 1e-9)
            stdev[i] = 1.0; // constant feature: pass through
    }
}

LatencyPredictor
LatencyPredictor::analytical()
{
    LatencyPredictor p;
    p.kind_ = LatencyModelKind::Analytical;
    return p;
}

namespace {

/** Shared MLP training loop on standardized features. */
std::shared_ptr<Mlp>
trainMlp(const std::vector<std::vector<double>> &features,
         const std::vector<double> &targets, int epochs, uint64_t seed)
{
    auto mlp = std::make_shared<Mlp>(surrogateMlpSizes(), seed);
    double lr = 3e-3;
    for (int e = 0; e < epochs; ++e) {
        // Cosine-free simple decay keeps late epochs stable.
        double cur_lr = lr * (e < epochs / 2 ? 1.0 : 0.3);
        mlp->trainEpoch(features, targets, cur_lr,
                seed + 1000 + static_cast<uint64_t>(e));
    }
    return mlp;
}

} // namespace

LatencyPredictor
LatencyPredictor::trainDnnOnly(const SurrogateDataset &train, int epochs,
                               uint64_t seed)
{
    LatencyPredictor p;
    p.kind_ = LatencyModelKind::DnnOnly;
    p.stdzr_.fit(train.features);
    std::vector<std::vector<double>> x;
    x.reserve(train.size());
    for (const auto &f : train.features)
        x.push_back(p.stdzr_.apply(f));
    std::vector<double> y;
    y.reserve(train.size());
    for (double v : train.rtl)
        y.push_back(std::log(std::max(v, 1.0)));
    p.mlp_ = trainMlp(x, y, epochs, seed);
    return p;
}

LatencyPredictor
LatencyPredictor::trainCombined(const SurrogateDataset &train,
                                int epochs, uint64_t seed)
{
    LatencyPredictor p;
    p.kind_ = LatencyModelKind::Combined;
    p.stdzr_.fit(train.features);
    std::vector<std::vector<double>> x;
    x.reserve(train.size());
    for (const auto &f : train.features)
        x.push_back(p.stdzr_.apply(f));
    std::vector<double> y;
    y.reserve(train.size());
    for (size_t i = 0; i < train.size(); ++i)
        y.push_back(std::log(std::max(train.rtl[i], 1.0) /
                             std::max(train.analytical[i], 1.0)));
    p.mlp_ = trainMlp(x, y, epochs, seed);
    return p;
}

double
LatencyPredictor::predict(const Layer &layer, const Mapping &mapping,
                          const HardwareConfig &hw) const
{
    double analytical_lat = referenceEval(layer, mapping, hw).latency;
    switch (kind_) {
      case LatencyModelKind::Analytical:
        return analytical_lat;
      case LatencyModelKind::DnnOnly: {
        std::vector<double> f = stdzr_.apply(
                encodeFeatures(layer, mapping, hw));
        return std::exp(mlp_->predict(f));
      }
      case LatencyModelKind::Combined: {
        std::vector<double> f = stdzr_.apply(
                encodeFeatures(layer, mapping, hw));
        return analytical_lat * std::exp(mlp_->predict(f));
      }
    }
    return analytical_lat;
}

void
LatencyPredictor::predictBatch(std::span<const LatencyQuery> queries,
                               std::span<double> out) const
{
    if (queries.size() != out.size())
        panic("LatencyPredictor::predictBatch: span size mismatch");
    if (queries.empty())
        return;
    if (kind_ == LatencyModelKind::Analytical) {
        for (size_t i = 0; i < queries.size(); ++i)
            out[i] = referenceEval(*queries[i].layer,
                    *queries[i].mapping, *queries[i].hw).latency;
        return;
    }

    // Recording the MLP graph costs a few point forwards, so tiny
    // batches (single designs of small networks) stay on the point
    // loop; both paths are bitwise-identical, so the cutoff is
    // invisible to callers.
    if (queries.size() < 2 * ad::Tape::kLaneWidth) {
        for (size_t i = 0; i < queries.size(); ++i)
            out[i] = predict(*queries[i].layer, *queries[i].mapping,
                    *queries[i].hw);
        return;
    }

    // Standardized feature rows, lane-major: exactly the doubles the
    // point path would feed the MLP.
    const size_t nf = static_cast<size_t>(mlp_->inputSize());
    std::vector<double> feats(queries.size() * nf);
    for (size_t i = 0; i < queries.size(); ++i) {
        std::vector<double> f = stdzr_.apply(encodeFeatures(
                *queries[i].layer, *queries[i].mapping,
                *queries[i].hw));
        std::copy(f.begin(), f.end(),
                feats.begin() + static_cast<long>(i * nf));
    }

    // Record the network forward once (a local tape keeps the call
    // thread-safe), then value every row in one lane-blocked batch
    // sweep; per lane the sweep is bitwise-identical to mlp_->predict
    // on that row.
    ad::Tape tape;
    std::vector<ad::Var> row;
    row.reserve(nf);
    for (size_t j = 0; j < nf; ++j)
        row.emplace_back(tape, feats[j]);
    ad::Var pred = mlp_->forwardT<ad::Var>(row);
    const ad::NodeId head[] = {pred.id()};
    std::vector<double> preds(queries.size());
    tape.replayBatch(feats, std::span<const ad::NodeId>(head, 1),
            preds);

    for (size_t i = 0; i < queries.size(); ++i) {
        double scale = std::exp(preds[i]);
        out[i] = kind_ == LatencyModelKind::DnnOnly
                         ? scale
                         : referenceEval(*queries[i].layer,
                                   *queries[i].mapping,
                                   *queries[i].hw).latency * scale;
    }
}

std::vector<double>
LatencyPredictor::predictAll(const SurrogateDataset &ds) const
{
    std::vector<double> out;
    out.reserve(ds.size());
    for (size_t i = 0; i < ds.size(); ++i)
        out.push_back(predict(ds.layers[i], ds.mappings[i], ds.hws[i]));
    return out;
}

LatencyScorer
LatencyPredictor::scorer() const
{
    LatencyScorer::PointFn point = [this](const Layer &layer,
                                          const Mapping &m,
                                          const HardwareConfig &hw) {
        return predict(layer, m, hw);
    };
    // Batched seam: one call per network/ordering sweep, served by
    // the bulk tape-replay backend (bitwise-identical to the point
    // path, so callers cannot tell which one ran).
    LatencyScorer::BatchFn batch =
            [this](std::span<const LatencyQuery> queries,
                   std::span<double> out) {
        predictBatch(queries, out);
    };
    return LatencyScorer::batched(std::move(point), std::move(batch));
}

ad::Var
LatencyPredictor::latencyVar(const Layer &layer,
                             const Factors<ad::Var> &factors,
                             const OrderVec &order,
                             const ad::Var &analytical_latency,
                             const HwScalars<ad::Var> &hw) const
{
    if (kind_ == LatencyModelKind::Analytical)
        return analytical_latency;

    ad::Var pe_dim = sqrt(hw.cpe);
    ad::Var accum_kib = hw.accum_words * ad::Var(4.0 / 1024.0);
    ad::Var spad_kib = hw.spad_words * ad::Var(1.0 / 1024.0);
    std::vector<ad::Var> f = encodeFeaturesT<ad::Var>(layer, factors,
            order, pe_dim, accum_kib, spad_kib);
    f = stdzr_.apply(std::move(f));
    ad::Var pred = mlp_->forwardT<ad::Var>(f);
    if (kind_ == LatencyModelKind::DnnOnly)
        return exp(pred);
    return analytical_latency * exp(pred);
}

} // namespace dosa
