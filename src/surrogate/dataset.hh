/**
 * @file
 * Dataset generation for the learned latency models (Section 6.5.1).
 *
 * The paper collects 1567 random mappings, roughly evenly distributed
 * over the training-workload layers (Table 6), and measures their
 * Gemmini-RTL latency with FireSim. Here the RTL-substitute simulator
 * provides the measurements; the PE array is fixed at 16x16 (matching
 * the Fig. 12 setup) while buffer sizes vary per sample.
 */

#ifndef DOSA_SURROGATE_DATASET_HH
#define DOSA_SURROGATE_DATASET_HH

#include <cstdint>
#include <vector>

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "workload/layer.hh"

namespace dosa {

/** A latency-prediction dataset of (layer, mapping, hw) triples. */
struct SurrogateDataset
{
    std::vector<Layer> layers;
    std::vector<Mapping> mappings;
    std::vector<HardwareConfig> hws;
    std::vector<double> analytical; ///< reference-model latency
    std::vector<double> rtl;        ///< RTL-substitute latency
    std::vector<std::vector<double>> features;

    size_t size() const { return layers.size(); }

    /** Append one sample (computes features + both latencies). */
    void add(const Layer &layer, const Mapping &mapping,
             const HardwareConfig &hw);
};

/**
 * Generate `n` random-mapping samples over the training workloads.
 * Deterministic in `seed`.
 */
SurrogateDataset generateSurrogateDataset(int n, uint64_t seed,
                                          int64_t pe_dim = 16);

/** Deterministic split into train/test by shuffled assignment. */
void splitDataset(const SurrogateDataset &all, double train_fraction,
                  uint64_t seed, SurrogateDataset &train,
                  SurrogateDataset &test);

} // namespace dosa

#endif // DOSA_SURROGATE_DATASET_HH
