/**
 * @file
 * The three Gemmini-RTL latency predictors of Section 6.5: pure
 * analytical, DNN-only, and the DNN-augmented analytical model, with
 * both a concrete (double) prediction path and a differentiable path
 * that embeds the trained MLP inside the DOSA objective.
 *
 * The MLP follows the Mind-Mappings-style architecture referenced by
 * the paper: 7 hidden fully-connected layers and approximately 5.7k
 * parameters (we use width 27 -> 5752 params over 43 input features).
 */

#ifndef DOSA_SURROGATE_LATENCY_PREDICTOR_HH
#define DOSA_SURROGATE_LATENCY_PREDICTOR_HH

#include <memory>
#include <vector>

#include "core/dosa_optimizer.hh"
#include "core/objective.hh"
#include "nn/mlp.hh"
#include "surrogate/dataset.hh"

namespace dosa {

/** Which latency model a predictor implements. */
enum class LatencyModelKind { Analytical, DnnOnly, Combined };

/** Name for reporting ("Analytical", "DNN-Only", "Analytical+DNN"). */
const char *latencyModelName(LatencyModelKind k);

/** Per-feature affine standardization fitted on the training set. */
struct Standardizer
{
    std::vector<double> mean;
    std::vector<double> stdev;

    void fit(const std::vector<std::vector<double>> &rows);

    template <class S>
    std::vector<S>
    apply(std::vector<S> row) const
    {
        for (size_t i = 0; i < row.size(); ++i)
            row[i] = (row[i] - S(mean[i])) / S(stdev[i]);
        return row;
    }
};

/** Trained (or trivial) latency predictor. */
class LatencyPredictor
{
  public:
    /** The identity analytical predictor. */
    static LatencyPredictor analytical();

    /**
     * Train a DNN-only predictor: MLP maps features -> log latency.
     * Returns the trained predictor; `epochs` full passes with Adam.
     */
    static LatencyPredictor trainDnnOnly(const SurrogateDataset &train,
                                         int epochs, uint64_t seed);

    /**
     * Train the DNN-augmented predictor: MLP maps features ->
     * log(rtl / analytical); prediction multiplies the analytical
     * latency by the learned residual (Section 4.7).
     */
    static LatencyPredictor trainCombined(const SurrogateDataset &train,
                                          int epochs, uint64_t seed);

    /** Predicted latency of a concrete design point. */
    double predict(const Layer &layer, const Mapping &mapping,
                   const HardwareConfig &hw) const;

    /**
     * Bulk predictions: record the MLP forward on a tape once, then
     * value every query's (standardized) feature row in one
     * lane-blocked `Tape::replayBatch` sweep instead of running the
     * network per query (batches below two lane blocks stay on the
     * point loop — recording the graph costs a few forwards).
     * Element i is bitwise-identical to predict(*queries[i]...).
     * This is the bulk backend behind scorer(); spans must have
     * equal length.
     */
    void predictBatch(std::span<const LatencyQuery> queries,
                      std::span<double> out) const;

    /** Predictions over a whole dataset. */
    std::vector<double> predictAll(const SurrogateDataset &ds) const;

    LatencyModelKind kind() const { return kind_; }

    /** Scorer closure for DosaConfig::score_latency. */
    LatencyScorer scorer() const;

    /**
     * Differentiable prediction on the autodiff tape: analytical
     * latency adjusted (or replaced) by the MLP evaluated on the
     * continuous mapping features.
     */
    ad::Var latencyVar(const Layer &layer,
                       const Factors<ad::Var> &factors,
                       const OrderVec &order,
                       const ad::Var &analytical_latency,
                       const HwScalars<ad::Var> &hw) const;

  private:
    LatencyModelKind kind_ = LatencyModelKind::Analytical;
    std::shared_ptr<Mlp> mlp_;
    Standardizer stdzr_;
};

/** Adapter exposing a LatencyPredictor as a DiffLatencyModel. */
class SurrogateDiffModel : public DiffLatencyModel
{
  public:
    explicit SurrogateDiffModel(const LatencyPredictor &p)
        : predictor_(&p)
    {}

    ad::Var
    latency(const Layer &layer, const Factors<ad::Var> &factors,
            const OrderVec &order, const ad::Var &analytical_latency,
            const HwScalars<ad::Var> &hw) const override
    {
        return predictor_->latencyVar(layer, factors, order,
                analytical_latency, hw);
    }

  private:
    const LatencyPredictor *predictor_;
};

/** MLP layer sizes used by both learned predictors. */
std::vector<int> surrogateMlpSizes();

} // namespace dosa

#endif // DOSA_SURROGATE_LATENCY_PREDICTOR_HH
