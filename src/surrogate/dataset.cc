/**
 * @file
 * Random-mapping dataset generation measured on the RTL substitute (Section 6.5.1).
 */
#include "surrogate/dataset.hh"

#include <numeric>

#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/search_common.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {

void
SurrogateDataset::add(const Layer &layer, const Mapping &mapping,
                      const HardwareConfig &hw)
{
    layers.push_back(layer);
    mappings.push_back(mapping);
    hws.push_back(hw);
    analytical.push_back(referenceEval(layer, mapping, hw).latency);
    rtl.push_back(rtlLatency(layer, mapping, hw));
    features.push_back(encodeFeatures(layer, mapping, hw));
}

SurrogateDataset
generateSurrogateDataset(int n, uint64_t seed, int64_t pe_dim)
{
    Rng rng(seed);
    std::vector<Layer> pool = uniqueTrainingLayers();
    if (pool.empty())
        panic("generateSurrogateDataset: empty layer pool");

    SurrogateDataset ds;
    for (int i = 0; i < n; ++i) {
        // Round-robin over the pool => roughly even distribution, as
        // in the paper's 1567-sample dataset.
        const Layer &layer = pool[size_t(i) % pool.size()];
        HardwareConfig hw = randomHardware(rng);
        hw.pe_dim = pe_dim;
        Mapping m = randomValidMapping(layer, hw, rng);
        ds.add(layer, m, hw);
    }
    return ds;
}

void
splitDataset(const SurrogateDataset &all, double train_fraction,
             uint64_t seed, SurrogateDataset &train,
             SurrogateDataset &test)
{
    Rng rng(seed);
    std::vector<size_t> idx(all.size());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    size_t n_train = static_cast<size_t>(
            train_fraction * static_cast<double>(all.size()));
    for (size_t r = 0; r < idx.size(); ++r) {
        SurrogateDataset &dst = r < n_train ? train : test;
        size_t i = idx[r];
        dst.layers.push_back(all.layers[i]);
        dst.mappings.push_back(all.mappings[i]);
        dst.hws.push_back(all.hws[i]);
        dst.analytical.push_back(all.analytical[i]);
        dst.rtl.push_back(all.rtl[i]);
        dst.features.push_back(all.features[i]);
    }
}

} // namespace dosa
