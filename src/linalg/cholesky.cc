/**
 * @file
 * Cholesky factorization and forward/back substitution.
 */
#include "linalg/cholesky.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa {

Cholesky::Cholesky(const Matrix &a)
{
    if (a.rows() != a.cols())
        panic("Cholesky: matrix not square");
    size_t n = a.rows();
    l_ = Matrix(n, n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (size_t k = 0; k < j; ++k)
                acc -= l_(i, k) * l_(j, k);
            if (i == j) {
                if (acc <= 0.0)
                    panic("Cholesky: matrix not positive definite");
                l_(i, i) = std::sqrt(acc);
            } else {
                l_(i, j) = acc / l_(j, j);
            }
        }
    }
}

std::vector<double>
Cholesky::solveLower(const std::vector<double> &b) const
{
    size_t n = l_.rows();
    if (b.size() != n)
        panic("Cholesky::solveLower: size mismatch");
    std::vector<double> y(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (size_t k = 0; k < i; ++k)
            acc -= l_(i, k) * y[k];
        y[i] = acc / l_(i, i);
    }
    return y;
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    size_t n = l_.rows();
    std::vector<double> y = solveLower(b);
    std::vector<double> x(n, 0.0);
    for (size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            acc -= l_(k, ii) * x[k];
        x[ii] = acc / l_(ii, ii);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (size_t i = 0; i < l_.rows(); ++i)
        acc += std::log(l_(i, i));
    return 2.0 * acc;
}

} // namespace dosa
