/**
 * @file
 * Row-major dense matrix container and basic ops.
 */
#include "linalg/matrix.hh"

#include "util/logging.hh"

namespace dosa {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("Matrix::matmul: shape mismatch");
    Matrix out(rows_, other.cols_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::matvec(const std::vector<double> &v) const
{
    if (cols_ != v.size())
        panic("Matrix::matvec: shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < cols_; ++j)
            acc += (*this)(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_, 0.0);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

void
Matrix::addDiagonal(double value)
{
    size_t n = rows_ < cols_ ? rows_ : cols_;
    for (size_t i = 0; i < n; ++i)
        (*this)(i, i) += value;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("dot: size mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace dosa
