/**
 * @file
 * Cholesky factorization and triangular solves for symmetric
 * positive-definite systems (Gaussian-process posterior math).
 */

#ifndef DOSA_LINALG_CHOLESKY_HH
#define DOSA_LINALG_CHOLESKY_HH

#include <vector>

#include "linalg/matrix.hh"

namespace dosa {

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite
 * matrix. Construction panics on non-SPD input (after jitter, GP kernels
 * are always SPD; failure indicates a bug upstream).
 */
class Cholesky
{
  public:
    /** Factor a; a must be square SPD. */
    explicit Cholesky(const Matrix &a);

    /** Solve A x = b via forward+backward substitution. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Solve L y = b (forward substitution only). */
    std::vector<double> solveLower(const std::vector<double> &b) const;

    /** log(det(A)) = 2 * sum(log(diag(L))). */
    double logDet() const;

    /** The lower-triangular factor. */
    const Matrix &factor() const { return l_; }

  private:
    Matrix l_;
};

} // namespace dosa

#endif // DOSA_LINALG_CHOLESKY_HH
