/**
 * @file
 * Small dense-matrix type backing the Gaussian-process regressor.
 *
 * Sizes in this project are modest (a few hundred rows for BO training
 * sets), so a simple row-major std::vector container is sufficient and
 * keeps the dependency surface at zero.
 */

#ifndef DOSA_LINALG_MATRIX_HH
#define DOSA_LINALG_MATRIX_HH

#include <cstddef>
#include <vector>

namespace dosa {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix filled with `fill`. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

    /** Matrix-matrix product; panics on shape mismatch. */
    Matrix matmul(const Matrix &other) const;

    /** Matrix-vector product; panics on shape mismatch. */
    std::vector<double> matvec(const std::vector<double> &v) const;

    /** Transpose. */
    Matrix transpose() const;

    /** Add scalar to the diagonal in place (jitter for conditioning). */
    void addDiagonal(double value);

    /** Raw storage access (row-major). */
    const std::vector<double> &data() const { return data_; }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product; panics on size mismatch. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

} // namespace dosa

#endif // DOSA_LINALG_MATRIX_HH
