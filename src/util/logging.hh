/**
 * @file
 * Minimal logging and error-exit helpers, modelled on gem5's
 * inform()/warn()/fatal()/panic() conventions.
 */

#ifndef DOSA_UTIL_LOGGING_HH
#define DOSA_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dosa {

/** Print an informational message to stderr. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** Print a warning message to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/**
 * Terminate due to a user-facing error (bad configuration or arguments).
 * Exits with status 1; this is not an internal invariant failure.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Terminate due to an internal invariant violation (a bug in this
 * library, not user error). Aborts so a core/backtrace is available.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace dosa

#endif // DOSA_UTIL_LOGGING_HH
