/**
 * @file
 * double overloads mirroring the ad::Var math vocabulary, so templated
 * numeric code (the analytical model, the MLP forward pass) compiles
 * unchanged for plain doubles and autodiff variables.
 */

#ifndef DOSA_UTIL_SCALAR_OPS_HH
#define DOSA_UTIL_SCALAR_OPS_HH

namespace dosa {

/** max(x, 0), the hinge used by penalties and first-fill clamps. */
inline double
relu(double x)
{
    return x > 0.0 ? x : 0.0;
}

} // namespace dosa

#endif // DOSA_UTIL_SCALAR_OPS_HH
