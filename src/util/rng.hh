/**
 * @file
 * Deterministic random-number utilities used across the DSE stack.
 *
 * Every stochastic component in the repository (random search, start-point
 * generation, dataset synthesis, MLP initialization) draws from an Rng
 * seeded explicitly, so all experiments are reproducible bit-for-bit.
 */

#ifndef DOSA_UTIL_RNG_HH
#define DOSA_UTIL_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace dosa {

/**
 * A seeded pseudo-random generator with convenience draws.
 *
 * Thin wrapper over std::mt19937_64 providing the handful of
 * distributions the DSE code needs. Copyable; copies continue the
 * stream independently.
 */
class Rng
{
  public:
    /** Construct with an explicit seed. */
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal draw scaled by stddev. */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /** Log-uniform real in [lo, hi); requires 0 < lo <= hi. */
    double logUniform(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Pick a uniformly random element of a non-empty vector. */
    template <class T>
    const T &
    choice(const std::vector<T> &v)
    {
        return v[static_cast<size_t>(uniformInt(0,
                static_cast<int64_t>(v.size()) - 1))];
    }

    /** Fisher-Yates shuffle. */
    template <class T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0,
                    static_cast<int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

    /**
     * Derive the `stream`-th independent generator of a seed family
     * without consuming any parent state (a pure function of the
     * pair). Parallel runtimes split one user seed into per-task
     * streams this way, so task i draws the same sequence regardless
     * of which thread runs it or in what order — the determinism
     * contract of ThreadPool (src/exec).
     */
    static Rng stream(uint64_t seed, uint64_t stream_id);

    /** Access the raw engine (for std:: distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace dosa

#endif // DOSA_UTIL_RNG_HH
