/**
 * @file
 * Recursive-descent JSON parser and the canonical compact writer.
 * See json.hh for the determinism / round-trip / no-crash contract.
 */
#include "util/json.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace dosa::json {

namespace {

/** Nesting bound: hostile inputs cannot overflow the parse stack. */
constexpr int kMaxDepth = 64;

/**
 * Decide whether an out-of-range numeric token overflows (|v| >
 * DBL_MAX) or underflows (|v| < the smallest subnormal):
 * `std::from_chars` reports both as `result_out_of_range` and leaves
 * the output unmodified, so the call site needs the token's decimal
 * exponent to reproduce strtod's ±inf / ±0 results. The two regimes
 * are hundreds of decades apart, so the sign of the first significant
 * digit's exponent discriminates exactly.
 */
bool
tokenOverflows(std::string_view tok)
{
    size_t i = 0;
    if (i < tok.size() && tok[i] == '-')
        ++i;
    // Decimal exponent of the first nonzero significand digit,
    // relative to the decimal point ("d.ddd" form has exponent 0).
    long long first_sig = 0;
    bool seen_nonzero = false;
    long long int_digits = 0;
    for (; i < tok.size() && tok[i] >= '0' && tok[i] <= '9'; ++i) {
        if (!seen_nonzero && tok[i] != '0') {
            seen_nonzero = true;
            first_sig = int_digits; // digits still to come before '.'
        }
        if (seen_nonzero)
            ++int_digits;
    }
    if (seen_nonzero)
        first_sig = int_digits - 1;
    if (i < tok.size() && tok[i] == '.') {
        ++i;
        long long frac_pos = -1;
        for (; i < tok.size() && tok[i] >= '0' && tok[i] <= '9';
             ++i) {
            if (!seen_nonzero) {
                if (tok[i] != '0') {
                    seen_nonzero = true;
                    first_sig = frac_pos;
                }
                --frac_pos;
            }
        }
    }
    long long exp10 = 0;
    if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
        ++i;
        bool neg = false;
        if (i < tok.size() && (tok[i] == '+' || tok[i] == '-')) {
            neg = tok[i] == '-';
            ++i;
        }
        for (; i < tok.size() && tok[i] >= '0' && tok[i] <= '9';
             ++i) {
            if (exp10 < 1000000000)
                exp10 = exp10 * 10 + (tok[i] - '0');
        }
        if (neg)
            exp10 = -exp10;
    }
    return first_sig + exp10 >= 0;
}

/** Saturating double→int64 conversion (NaN maps to 0). */
int64_t
clampToInt64(double d)
{
    if (!(d == d))
        return 0;
    if (d >= 9223372036854775808.0) // 2^63
        return std::numeric_limits<int64_t>::max();
    if (d < -9223372036854775808.0)
        return std::numeric_limits<int64_t>::min();
    return static_cast<int64_t>(d);
}

/** Saturating double→uint64 conversion (negative and NaN map to 0). */
uint64_t
clampToUint64(double d)
{
    if (!(d == d) || d < 0.0)
        return 0;
    if (d >= 18446744073709551616.0) // 2^64
        return std::numeric_limits<uint64_t>::max();
    return static_cast<uint64_t>(d);
}

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null: return "null";
      case Value::Kind::Bool: return "bool";
      case Value::Kind::Number: return "number";
      case Value::Kind::String: return "string";
      case Value::Kind::Array: return "array";
      case Value::Kind::Object: return "object";
    }
    return "?";
}

/** Append `s` to `out` as a quoted JSON string with escapes. */
void
appendQuoted(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

} // namespace

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::number(double d)
{
    if (!(d == d) || d > 1.7976931348623157e308 ||
        d < -1.7976931348623157e308)
        panic("json::Value::number: non-finite double");
    Value v;
    v.kind_ = Kind::Number;
    char buf[32];
    // 17 significant digits round-trip every finite IEEE double.
    // std::to_chars in general form is specified as printf "%.17g"
    // in the "C" locale, so the canonical token bytes cannot vary
    // with the host's LC_NUMERIC (snprintf's would).
    auto res = std::to_chars(buf, buf + sizeof(buf), d,
            std::chars_format::general, 17);
    v.num_.assign(buf, res.ptr);
    return v;
}

Value
Value::number(int64_t i)
{
    Value v;
    v.kind_ = Kind::Number;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
            static_cast<long long>(i));
    v.num_ = buf;
    return v;
}

Value
Value::number(uint64_t u)
{
    Value v;
    v.kind_ = Kind::Number;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
            static_cast<unsigned long long>(u));
    v.num_ = buf;
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        panic(std::string("json: asBool on ") + kindName(kind_));
    return bool_;
}

double
Value::asDouble() const
{
    if (kind_ != Kind::Number)
        panic(std::string("json: asDouble on ") + kindName(kind_));
    // Locale-independent by construction: std::from_chars always
    // parses as the "C" locale, where strtod honors LC_NUMERIC and
    // would stop at '.' under a comma-decimal locale.
    const char *begin = num_.data();
    const char *end = begin + num_.size();
    double d = 0.0;
    auto res = std::from_chars(begin, end, d,
            std::chars_format::general);
    if (res.ec == std::errc::result_out_of_range) {
        // Reproduce strtod: overflow -> ±inf, underflow -> ±0.
        double mag = tokenOverflows(num_)
                ? std::numeric_limits<double>::infinity()
                : 0.0;
        d = num_[0] == '-' ? -mag : mag;
    }
    return d;
}

int64_t
Value::asInt() const
{
    if (kind_ != Kind::Number)
        panic(std::string("json: asInt on ") + kindName(kind_));
    // Integral tokens parse exactly — no round-trip through double,
    // which silently corrupts magnitudes above 2^53.
    const char *begin = num_.data();
    const char *end = begin + num_.size();
    int64_t i = 0;
    auto res = std::from_chars(begin, end, i);
    if (res.ec == std::errc() && res.ptr == end)
        return i;
    if (res.ec == std::errc::result_out_of_range && res.ptr == end)
        return num_[0] == '-'
                ? std::numeric_limits<int64_t>::min()
                : std::numeric_limits<int64_t>::max();
    // Fractional/exponent token: truncate the double reading.
    return clampToInt64(asDouble());
}

uint64_t
Value::asUint() const
{
    if (kind_ != Kind::Number)
        panic(std::string("json: asUint on ") + kindName(kind_));
    const char *begin = num_.data();
    const char *end = begin + num_.size();
    uint64_t u = 0;
    auto res = std::from_chars(begin, end, u);
    if (res.ec == std::errc() && res.ptr == end)
        return u;
    if (res.ec == std::errc::result_out_of_range && res.ptr == end)
        return std::numeric_limits<uint64_t>::max();
    // Negative, fractional or exponent token: clamp the double
    // reading (negatives saturate to 0 instead of wrapping).
    return clampToUint64(asDouble());
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        panic(std::string("json: asString on ") + kindName(kind_));
    return str_;
}

const std::vector<Value> &
Value::elements() const
{
    if (kind_ != Kind::Array)
        panic(std::string("json: elements on ") + kindName(kind_));
    return arr_;
}

Value &
Value::push(Value v)
{
    if (kind_ != Kind::Array)
        panic(std::string("json: push on ") + kindName(kind_));
    arr_.push_back(std::move(v));
    return *this;
}

const std::map<std::string, Value> &
Value::members() const
{
    if (kind_ != Kind::Object)
        panic(std::string("json: members on ") + kindName(kind_));
    return obj_;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (kind_ != Kind::Object)
        panic(std::string("json: set on ") + kindName(kind_));
    obj_[key] = std::move(v);
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

void
Value::dumpInto(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += num_;
        break;
      case Kind::String:
        appendQuoted(out, str_);
        break;
      case Kind::Array:
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i != 0)
                out += ',';
            arr_[i].dumpInto(out);
        }
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        {
            bool first = true;
            for (const auto &[key, value] : obj_) {
                if (!first)
                    out += ',';
                first = false;
                appendQuoted(out, key);
                out += ':';
                value.dumpInto(out);
            }
        }
        out += '}';
        break;
    }
}

std::string
Value::dump() const
{
    std::string out;
    dumpInto(out);
    return out;
}

namespace {

/** Compact length of `v` capped at `limit + 1` (early-out probe). */
size_t
compactLength(const Value &v, size_t limit)
{
    std::string s = v.dump();
    return s.size() > limit ? limit + 1 : s.size();
}

} // namespace

void
Value::dumpPrettyInto(std::string &out, int indent) const
{
    // A subtree short enough for one line keeps the compact form;
    // the threshold counts the subtree alone, not the current column,
    // so the choice is independent of where the subtree sits.
    constexpr size_t kOneLineLimit = 80;
    if (kind_ != Kind::Array && kind_ != Kind::Object) {
        dumpInto(out);
        return;
    }
    if (compactLength(*this, kOneLineLimit) <= kOneLineLimit) {
        dumpInto(out);
        return;
    }
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
    if (kind_ == Kind::Array) {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (size_t i = 0; i < arr_.size(); ++i) {
            out += inner_pad;
            arr_[i].dumpPrettyInto(out, indent + 1);
            if (i + 1 != arr_.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += ']';
        return;
    }
    if (obj_.empty()) {
        out += "{}";
        return;
    }
    out += "{\n";
    size_t i = 0;
    for (const auto &[key, value] : obj_) {
        out += inner_pad;
        appendQuoted(out, key);
        out += ": ";
        value.dumpPrettyInto(out, indent + 1);
        if (++i != obj_.size())
            out += ',';
        out += '\n';
    }
    out += pad;
    out += '}';
}

std::string
Value::dumpPretty() const
{
    std::string out;
    dumpPrettyInto(out, 0);
    return out;
}

/** Single-pass recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    run(Value &out, std::string &error)
    {
        if (!parseValue(out, 0))
            goto fail;
        skipSpace();
        if (pos_ != text_.size()) {
            error_ = "trailing characters after JSON value";
            goto fail;
        }
        return true;
    fail:
        error = error_ + " (at byte " + std::to_string(pos_) + ")";
        return false;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg;
        return false;
    }

    /** Consume `lit` (after its first char was peeked). */
    bool
    literal(const char *lit)
    {
        size_t n = std::string_view(lit).size();
        if (text_.substr(pos_, n) != lit)
            return fail(std::string("invalid literal, expected \"") +
                        lit + "\"");
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case 'n':
            out = Value::null();
            return literal("null");
          case 't':
            out = Value::boolean(true);
            return literal("true");
          case 'f':
            out = Value::boolean(false);
            return literal("false");
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    /** Validate a number token and keep its exact lexeme. */
    bool
    parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        size_t int_start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ == int_start)
            return fail("malformed number");
        // JSON forbids leading zeros ("007"); keep it strict so the
        // canonical form is unique.
        if (pos_ - int_start > 1 && text_[int_start] == '0')
            return fail("number has a leading zero");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            size_t frac_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            if (pos_ == frac_start)
                return fail("malformed number fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            size_t exp_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            if (pos_ == exp_start)
                return fail("malformed number exponent");
        }
        out = Value();
        out.kind_ = Value::Kind::Number;
        out.num_ = std::string(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    parseString(Value &out)
    {
        std::string s;
        if (!parseStringRaw(s))
            return false;
        out = Value::string(std::move(s));
        return true;
    }

    bool
    parseStringRaw(std::string &s)
    {
        ++pos_; // opening quote (peeked by the caller)
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            unsigned char c =
                    static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                s += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                appendUtf8(s, code);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseHex4(unsigned &code)
    {
        code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("unterminated \\u escape");
            char c = text_[pos_++];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("invalid \\u escape digit");
            code = code * 16 + digit;
        }
        return true;
    }

    /** Encode one BMP code point as UTF-8 (surrogates kept as-is). */
    static void
    appendUtf8(std::string &s, unsigned code)
    {
        if (code < 0x80) {
            s += static_cast<char>(code);
        } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        ++pos_; // '['
        out = Value::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value elem;
            if (!parseValue(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or ']' in array");
            }
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        ++pos_; // '{'
        out = Value::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseStringRaw(key))
                return false;
            if (out.find(key) != nullptr)
                return fail("duplicate object key \"" + key + "\"");
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            out.set(key, std::move(member));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or '}' in object");
            }
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

bool
parse(std::string_view text, Value &out, std::string &error)
{
    return Parser(text).run(out, error);
}

ObjectReader::ObjectReader(const Value &value, std::string path,
                           std::string &error)
    : value_(value), path_(std::move(path)), error_(error)
{
    if (!value_.isObject())
        fail("expected an object");
}

bool
ObjectReader::fail(const std::string &msg)
{
    if (ok_) {
        ok_ = false;
        error_ = path_ + ": " + msg;
    }
    return false;
}

const Value *
ObjectReader::consume(const char *key)
{
    if (!ok_)
        return nullptr;
    const Value *member = value_.find(key);
    if (member != nullptr)
        seen_.push_back(key);
    return member;
}

const Value *
ObjectReader::number(const char *key)
{
    const Value *v = consume(key);
    if (v == nullptr)
        return nullptr;
    if (!v->isNumber()) {
        fail(std::string(key) + ": expected a number");
        return nullptr;
    }
    return v;
}

bool
ObjectReader::readInt(const char *key, int64_t &out)
{
    if (const Value *v = number(key))
        out = v->asInt();
    return ok_;
}

bool
ObjectReader::readUint(const char *key, uint64_t &out)
{
    if (const Value *v = number(key))
        out = v->asUint();
    return ok_;
}

bool
ObjectReader::readDouble(const char *key, double &out)
{
    if (const Value *v = number(key))
        out = v->asDouble();
    return ok_;
}

bool
ObjectReader::readBool(const char *key, bool &out)
{
    const Value *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isBool())
        return fail(std::string(key) + ": expected a bool");
    out = v->asBool();
    return true;
}

bool
ObjectReader::readString(const char *key, std::string &out)
{
    const Value *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isString())
        return fail(std::string(key) + ": expected a string");
    out = v->asString();
    return true;
}

bool
ObjectReader::finish()
{
    if (!ok_)
        return false;
    for (const auto &[key, member] : value_.members()) {
        (void)member;
        bool consumed = false;
        for (const std::string &s : seen_) {
            if (s == key) {
                consumed = true;
                break;
            }
        }
        if (!consumed)
            return fail("unknown key \"" + key + "\"");
    }
    return true;
}

} // namespace dosa::json
