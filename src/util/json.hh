/**
 * @file
 * Minimal deterministic JSON value, parser and writer for the wire
 * protocol of the search service (src/service).
 *
 * Design constraints, in order:
 *
 * - *Deterministic output.* Objects store their members in a sorted
 *   map and `dump()` emits them in key order with no whitespace, so
 *   the same value always serializes to the same bytes — the property
 *   the service's byte-identical streaming contract is built on.
 * - *Exact numeric round-trips.* Numbers are stored as their token
 *   text: the parser keeps the lexeme it validated, and the typed
 *   factories emit canonical tokens (decimal digits for integers,
 *   shortest-fixed-or-scientific at 17 significant digits for
 *   doubles, which round-trips every finite IEEE double).
 *   dump(parse(dump(v))) is therefore bitwise-stable. Both directions
 *   go through `std::to_chars`/`std::from_chars`, so the bytes are
 *   locale-independent — a host app calling `setlocale(LC_NUMERIC,
 *   ...)` cannot perturb the canonical form, and integer tokens
 *   never round-trip through a double (exact through the full
 *   int64/uint64 range, not just 2^53).
 * - *Never crashes on hostile input.* `parse` returns false with a
 *   diagnostic for malformed text (depth-limited against deeply
 *   nested bombs); it is the one decoder the daemon exposes to the
 *   network. Type-mismatched accessors on a parsed value panic — use
 *   the `is*()`/`kind()` checks first when reading untrusted data.
 */

#ifndef DOSA_UTIL_JSON_HH
#define DOSA_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dosa::json {

/** One JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Default-constructed value is null. */
    Value() = default;

    // -- Factories (canonical number tokens, see file comment).

    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value number(double v); ///< panics on non-finite v
    static Value number(int64_t v);
    static Value number(uint64_t v);
    static Value number(int v) { return number(int64_t(v)); }
    static Value string(std::string s);
    static Value array();
    static Value object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    // -- Typed accessors (panic on kind mismatch).

    bool asBool() const;
    /** Number as double (locale-independent parse of the token;
     *  out-of-range magnitudes saturate to ±inf / ±0). */
    double asDouble() const;
    /** Number as int64: exact for integral tokens over the full
     *  range, saturating at the type bounds; fractional/exponent
     *  tokens truncate through the double reading. */
    int64_t asInt() const;
    /** Number as uint64 (full-range seeds round-trip through this);
     *  exact and saturating like asInt, negatives clamp to 0. */
    uint64_t asUint() const;
    const std::string &asString() const;

    // -- Array access.

    /** Elements of an array (panics otherwise). */
    const std::vector<Value> &elements() const;
    /** Append an element (panics when not an array). */
    Value &push(Value v);

    // -- Object access (members kept sorted by key).

    /** Members of an object (panics otherwise). */
    const std::map<std::string, Value> &members() const;
    /** Set (or overwrite) a member; returns *this for chaining. */
    Value &set(const std::string &key, Value v);
    /** Member named `key`, or null when absent / not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Serialize to compact one-line JSON: no whitespace, object
     * members in sorted key order, numbers re-emitting their stored
     * tokens — the canonical wire form.
     */
    std::string dump() const;

    /**
     * Serialize to a deterministic human-readable form: a subtree
     * whose compact dump fits in ~80 columns is emitted compactly on
     * one line, everything else expands with 2-space indentation and
     * sorted keys. Like `dump()`, the output is a pure function of the
     * value — parse(dumpPretty(v)) == v and the bytes never vary — so
     * on-disk files (workloads/<name>.json) can be pinned to canonical
     * pretty form. No trailing newline; file writers append one.
     */
    std::string dumpPretty() const;

  private:
    void dumpInto(std::string &out) const;
    void dumpPrettyInto(std::string &out, int indent) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string num_; ///< validated numeric token (Kind::Number)
    std::string str_; ///< string payload (Kind::String)
    std::vector<Value> arr_;
    std::map<std::string, Value> obj_;

    friend class Parser;
};

/**
 * Parse one JSON document from `text` into `out`. Returns false and
 * sets `error` (with a byte offset) on malformed input: lexical
 * errors, trailing garbage, duplicate object keys, nesting deeper
 * than 64 levels. Never crashes, whatever the input.
 */
[[nodiscard]] bool parse(std::string_view text, Value &out,
                         std::string &error);

/**
 * Strict member-by-member object decoder: a caller reads each known
 * key with a typed accessor (absent keys leave the output untouched,
 * wrong-typed ones fail), then `finish()` rejects any member no
 * reader consumed — the unknown-key strictness the spec and wire
 * decoders are built on. Errors carry a field path
 * ("spec.workload[2].stride: expected a number"); the first failure
 * sticks and later reads become no-ops, so call sites can chain
 * reads and check once.
 */
class ObjectReader
{
  public:
    /** Read members of `value`; `path` prefixes every diagnostic. */
    ObjectReader(const Value &value, std::string path,
                 std::string &error);

    /** False after any failed read (the first error is kept). */
    [[nodiscard]] bool ok() const { return ok_; }

    /** Record a failure at this reader's path; returns false. */
    bool fail(const std::string &msg);

    /** Member named `key`, marking it consumed; null when absent. */
    [[nodiscard]] const Value *consume(const char *key);

    bool readInt(const char *key, int64_t &out);
    bool readUint(const char *key, uint64_t &out);
    bool readDouble(const char *key, double &out);
    bool readBool(const char *key, bool &out);
    bool readString(const char *key, std::string &out);

    /** Reject members no reader consumed (unknown-key strictness). */
    [[nodiscard]] bool finish();

    const std::string &path() const { return path_; }

  private:
    const Value *number(const char *key);

    const Value &value_;
    std::string path_;
    std::string &error_;
    std::vector<std::string> seen_;
    bool ok_ = true;
};

} // namespace dosa::json

#endif // DOSA_UTIL_JSON_HH
