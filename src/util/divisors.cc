/**
 * @file
 * Memoized divisor queries for mapping construction and rounding.
 */
#include "util/divisors.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_annotations.hh"

namespace dosa {

namespace {

std::vector<int64_t>
computeDivisors(int64_t n)
{
    std::vector<int64_t> lo, hi;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            lo.push_back(d);
            if (d != n / d)
                hi.push_back(n / d);
        }
    }
    lo.insert(lo.end(), hi.rbegin(), hi.rend());
    return lo;
}

/**
 * Mutex-striped divisor memo, mirroring the EvalCache (src/exec)
 * sharding so parallel searchers rounding mappings concurrently do
 * not contend on one lock. References handed out stay valid forever:
 * unordered_map never invalidates element references and entries are
 * never erased.
 */
struct DivisorMemo
{
    static constexpr size_t kNumShards = 16;

    struct Shard
    {
        util::Mutex mtx;
        std::unordered_map<int64_t, std::vector<int64_t>> map
                GUARDED_BY(mtx);
        // No atomics needed; summed by stats() under the same lock.
        uint64_t hits GUARDED_BY(mtx) = 0;
        uint64_t misses GUARDED_BY(mtx) = 0;
    };

    std::array<Shard, kNumShards> shards;

    const std::vector<int64_t> &
    get(int64_t n)
    {
        // Mix before masking: raw low bits would send the
        // power-of-two / multiple-of-16 sizes that dominate DNN
        // layers all to one shard.
        uint64_t h = static_cast<uint64_t>(n) * 0xbf58476d1ce4e5b9ull;
        Shard &shard = shards[(h >> 32) & (kNumShards - 1)];
        util::MutexLock lock(shard.mtx);
        auto it = shard.map.find(n);
        if (it == shard.map.end()) {
            shard.misses++;
            it = shard.map.emplace(n, computeDivisors(n)).first;
        } else {
            shard.hits++;
        }
        return it->second;
    }

    DivisorMemoStats
    stats()
    {
        DivisorMemoStats s;
        for (Shard &shard : shards) {
            util::MutexLock lock(shard.mtx);
            s.hits += shard.hits;
            s.misses += shard.misses;
            s.entries += shard.map.size();
        }
        return s;
    }
};

DivisorMemo &
divisorMemo()
{
    static DivisorMemo memo;
    // One-time hookup of the memo's live counters into metrics
    // snapshots (the memo itself stays push-free on its hot path).
    static const bool registered = [] {
        obs::globalMetrics().registerCollector(
            [](obs::MetricsSnapshot &snap) {
                DivisorMemoStats s = divisorMemoStats();
                snap.counters["divisors.memo_hits"] = s.hits;
                snap.counters["divisors.memo_misses"] = s.misses;
                snap.gauges["divisors.memo_entries"] =
                    static_cast<int64_t>(s.entries);
            });
        return true;
    }();
    (void)registered;
    return memo;
}

} // namespace

const std::vector<int64_t> &
divisorsOf(int64_t n)
{
    if (n < 1)
        panic("divisorsOf: n must be >= 1");
    return divisorMemo().get(n);
}

DivisorMemoStats
divisorMemoStats()
{
    return divisorMemo().stats();
}

int64_t
nearestDivisor(int64_t n, double target)
{
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : divs) {
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    return best;
}

int64_t
nearestDivisorAtMost(int64_t n, double target, int64_t cap)
{
    if (cap < 1)
        panic("nearestDivisorAtMost: cap must be >= 1");
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : divs) {
        if (d > cap)
            break;
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    return best;
}

int64_t
largestDivisorAtMost(int64_t n, int64_t cap)
{
    if (cap < 1)
        panic("largestDivisorAtMost: cap must be >= 1");
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    for (int64_t d : divs) {
        if (d > cap)
            break;
        best = d;
    }
    return best;
}

DivisorQuota::DivisorQuota(int64_t n)
    : divs_(&divisorsOf(n)), remaining_(n)
{
}

int64_t
DivisorQuota::take(double target)
{
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : *divs_) {
        if (remaining_ % d != 0)
            continue;
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    remaining_ /= best;
    return best;
}

int64_t
DivisorQuota::takeAtMost(double target, int64_t cap)
{
    if (cap < 1)
        panic("DivisorQuota::takeAtMost: cap must be >= 1");
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : *divs_) {
        if (d > cap)
            break;
        if (remaining_ % d != 0)
            continue;
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    remaining_ /= best;
    return best;
}

std::vector<int64_t>
randomFactorSplit(int64_t n, int parts, Rng &rng)
{
    std::vector<int64_t> out(static_cast<size_t>(parts), 1);
    int64_t remaining = n;
    for (int i = 0; i < parts - 1; ++i) {
        const auto &divs = divisorsOf(remaining);
        int64_t pick = divs[static_cast<size_t>(rng.uniformInt(0,
                static_cast<int64_t>(divs.size()) - 1))];
        out[static_cast<size_t>(i)] = pick;
        remaining /= pick;
    }
    out[static_cast<size_t>(parts - 1)] = remaining;
    return out;
}

} // namespace dosa
