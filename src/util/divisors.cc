/**
 * @file
 * Memoized divisor queries for mapping construction and rounding.
 */
#include "util/divisors.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dosa {

namespace {

std::vector<int64_t>
computeDivisors(int64_t n)
{
    std::vector<int64_t> lo, hi;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            lo.push_back(d);
            if (d != n / d)
                hi.push_back(n / d);
        }
    }
    lo.insert(lo.end(), hi.rbegin(), hi.rend());
    return lo;
}

} // namespace

const std::vector<int64_t> &
divisorsOf(int64_t n)
{
    if (n < 1)
        panic("divisorsOf: n must be >= 1");
    static std::mutex mtx;
    static std::unordered_map<int64_t, std::vector<int64_t>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, computeDivisors(n)).first;
    return it->second;
}

int64_t
nearestDivisor(int64_t n, double target)
{
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : divs) {
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    return best;
}

int64_t
nearestDivisorAtMost(int64_t n, double target, int64_t cap)
{
    if (cap < 1)
        panic("nearestDivisorAtMost: cap must be >= 1");
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    double best_err = std::abs(target - 1.0);
    for (int64_t d : divs) {
        if (d > cap)
            break;
        double err = std::abs(target - static_cast<double>(d));
        if (err < best_err) {
            best_err = err;
            best = d;
        }
    }
    return best;
}

int64_t
largestDivisorAtMost(int64_t n, int64_t cap)
{
    if (cap < 1)
        panic("largestDivisorAtMost: cap must be >= 1");
    const auto &divs = divisorsOf(n);
    int64_t best = 1;
    for (int64_t d : divs) {
        if (d > cap)
            break;
        best = d;
    }
    return best;
}

std::vector<int64_t>
randomFactorSplit(int64_t n, int parts, Rng &rng)
{
    std::vector<int64_t> out(static_cast<size_t>(parts), 1);
    int64_t remaining = n;
    for (int i = 0; i < parts - 1; ++i) {
        const auto &divs = divisorsOf(remaining);
        int64_t pick = divs[static_cast<size_t>(rng.uniformInt(0,
                static_cast<int64_t>(divs.size()) - 1))];
        out[static_cast<size_t>(i)] = pick;
        remaining /= pick;
    }
    out[static_cast<size_t>(parts - 1)] = remaining;
    return out;
}

} // namespace dosa
