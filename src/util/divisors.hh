/**
 * @file
 * Divisor arithmetic used by mapping construction and rounding.
 *
 * Tiling factors of a loop dimension must multiply exactly to the problem
 * size, so every factor manipulation in the mapspace reduces to divisor
 * queries on (usually small) integers. Results are memoized because the
 * same dimension sizes recur across thousands of mapping evaluations.
 */

#ifndef DOSA_UTIL_DIVISORS_HH
#define DOSA_UTIL_DIVISORS_HH

#include <cstdint>
#include <vector>

namespace dosa {

class Rng;

/** Return the sorted list of positive divisors of n (n >= 1). Memoized. */
const std::vector<int64_t> &divisorsOf(int64_t n);

/** Live hit/miss/entry counts of the divisor memo behind divisorsOf.
 *  Also published into the global metrics registry (obs/metrics.hh)
 *  as the `divisors.memo_*` counters via a snapshot collector. */
struct DivisorMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
};
DivisorMemoStats divisorMemoStats();

/**
 * Return the divisor of n closest to target.
 *
 * Ties are broken toward the smaller divisor, matching the paper's
 * "round to the nearest divisor" step (Section 5.3.2).
 */
int64_t nearestDivisor(int64_t n, double target);

/**
 * Return the divisor of n closest to target among divisors <= cap.
 * cap must be >= 1.
 */
int64_t nearestDivisorAtMost(int64_t n, double target, int64_t cap);

/** Largest divisor of n that is <= cap (cap >= 1). */
int64_t largestDivisorAtMost(int64_t n, int64_t cap);

/**
 * Split n into `parts` integer factors whose product is exactly n,
 * drawn uniformly-ish at random by repeatedly sampling a divisor of the
 * remaining quota. Used by random-mapping generation.
 */
std::vector<int64_t> randomFactorSplit(int64_t n, int parts, Rng &rng);

/**
 * Divisor-quota chain over one dimension size: rounding walks a chain
 * remaining -> remaining / f1 -> ... where every intermediate value
 * divides the original n. Since divisors(remaining) is a subset of
 * divisors(n), the whole chain is served from the single memoized
 * divisor list of n, grabbed once at construction — one cache probe
 * per dimension instead of one (lock + hash lookup) per factor.
 */
class DivisorQuota
{
  public:
    /** Start a chain at n (n >= 1). */
    explicit DivisorQuota(int64_t n);

    /** Quota still to be factored. */
    int64_t remaining() const { return remaining_; }

    /**
     * Take the divisor of remaining() nearest to `target` (ties to
     * the smaller, matching nearestDivisor) and divide it out.
     */
    int64_t take(double target);

    /** As take(), restricted to divisors <= cap (cap >= 1). */
    int64_t takeAtMost(double target, int64_t cap);

  private:
    /** Memoized divisor list of the original n (never mutated). */
    const std::vector<int64_t> *divs_;
    int64_t remaining_;
};

} // namespace dosa

#endif // DOSA_UTIL_DIVISORS_HH
