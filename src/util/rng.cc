/**
 * @file
 * Seeded random-number utilities for reproducible experiments.
 */
#include "util/rng.hh"

#include <cmath>

namespace dosa {

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::logUniform(double lo, double hi)
{
    double u = uniformReal(std::log(lo), std::log(hi));
    return std::exp(u);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng
Rng::fork()
{
    // Draw two words so forked streams decorrelate from the parent.
    uint64_t a = engine_();
    uint64_t b = engine_();
    return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ull);
}

namespace {

/** splitmix64 finalizer: bijective, breaks up seed/stream structure. */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

Rng
Rng::stream(uint64_t seed, uint64_t stream_id)
{
    // Two mixing rounds so nearby (seed, stream) pairs land far apart
    // in the mt19937_64 seed space.
    return Rng(splitmix64(splitmix64(seed) ^ splitmix64(~stream_id)));
}

} // namespace dosa
