/**
 * @file
 * Clang Thread Safety Analysis for the whole tree: portable
 * capability-annotation macros plus the annotated `Mutex` /
 * `MutexLock` wrappers every mutex-guarded subsystem uses.
 *
 * The annotations turn the repo's two load-bearing concurrency
 * contracts into compile-time checks on every Clang build
 * (`-Wthread-safety`, promoted to an error by the build):
 *
 * - *Lock discipline.* State declared `GUARDED_BY(mtx)` cannot be
 *   touched unless the analysis can prove `mtx` is held; helpers
 *   that assume a held lock say so with `REQUIRES(mtx)`.
 * - *Never hold a lock across a blocking call.* Functions that must
 *   run lock-free (everything that reaches `FrameSink::send`) are
 *   annotated `EXCLUDES(mtx)`, so re-introducing a
 *   mutex-held-across-send deadlock fails the build instead of
 *   hanging a service under backpressure.
 *
 * The macros expand to nothing on GCC/MSVC, so non-Clang builds are
 * byte-identical; the wrappers add zero overhead over the std types
 * they delegate to. TSan remains the *dynamic* complement (see
 * docs/ARCHITECTURE.md "Static analysis" for how the two divide the
 * work).
 *
 * Idiom (matches the LLVM/Abseil convention the macros come from):
 *
 *     class Table {
 *         util::Mutex mtx_;
 *         std::map<K, V> map_ GUARDED_BY(mtx_);
 *
 *         void insert(K k, V v) EXCLUDES(mtx_) {
 *             util::MutexLock lock(mtx_);
 *             map_[k] = v;
 *         }
 *     };
 */

#ifndef DOSA_UTIL_THREAD_ANNOTATIONS_HH
#define DOSA_UTIL_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute shims: real Clang attributes under Clang, no-ops elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define DOSA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DOSA_THREAD_ANNOTATION__(x) // no-op off Clang
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define CAPABILITY(x) DOSA_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY DOSA_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define GUARDED_BY(x) DOSA_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define PT_GUARDED_BY(x) DOSA_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function precondition: the listed capabilities are held. */
#define REQUIRES(...) \
    DOSA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function precondition: the capabilities are held shared. */
#define REQUIRES_SHARED(...) \
    DOSA_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capabilities (held on return). */
#define ACQUIRE(...) \
    DOSA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities (held on entry). */
#define RELEASE(...) \
    DOSA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function conditionally acquires: first arg is the success value. */
#define TRY_ACQUIRE(...) \
    DOSA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/**
 * Function must be entered with the capabilities NOT held — the
 * deadlock (re-entrancy) and the lock-held-across-blocking-call
 * annotation. Anything reaching `FrameSink::send` carries this.
 */
#define EXCLUDES(...) \
    DOSA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime, to the analysis) the capability is held. */
#define ASSERT_CAPABILITY(x) \
    DOSA_THREAD_ANNOTATION__(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) DOSA_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch; every use needs a comment saying why. */
#define NO_THREAD_SAFETY_ANALYSIS \
    DOSA_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace dosa::util {

// ---------------------------------------------------------------------------
// Annotated wrappers over std::mutex / std::lock_guard / std::unique_lock.
// ---------------------------------------------------------------------------

/**
 * `std::mutex` as an annotated capability. Zero overhead: the
 * wrapper holds exactly one std::mutex and every method is an inline
 * delegate. `native()` exposes the underlying std::mutex for the few
 * APIs that demand one (never lock through it directly — the
 * analysis cannot see such acquisitions).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mtx_.lock(); }
    void unlock() RELEASE() { mtx_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mtx_.try_lock(); }

    /** The wrapped std::mutex (for std APIs that require one). */
    std::mutex &native() { return mtx_; }

  private:
    std::mutex mtx_;
};

/**
 * Scoped lock over a `Mutex`, visible to the analysis: acquires in
 * the constructor, releases in the destructor. Backed by a
 * `std::unique_lock`, so it also supports the two patterns a plain
 * lock_guard cannot:
 *
 * - *Early release before a blocking call* — `lock.unlock()` (and
 *   re-acquisition with `lock.lock()`); the analysis tracks the
 *   held/released state across both.
 * - *Condition-variable waits* — `lock.wait(cv, pred)` keeps the
 *   capability held across the wait from the analysis's point of
 *   view, which matches the caller-visible contract (the predicate
 *   and the code after the wait run with the lock held).
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mtx) ACQUIRE(mtx) : lock_(mtx.native()) {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() RELEASE() {} // the unique_lock member unlocks

    /** Release early (before a blocking call / notify). */
    void unlock() RELEASE() { lock_.unlock(); }

    /** Re-acquire after an early release. */
    void lock() ACQUIRE() { lock_.lock(); }

    /** Block on `cv` until `pred()`; lock held when it returns. */
    template <class Pred>
    void
    wait(std::condition_variable &cv, Pred &&pred)
    {
        cv.wait(lock_, static_cast<Pred &&>(pred));
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace dosa::util

#endif // DOSA_UTIL_THREAD_ANNOTATIONS_HH
