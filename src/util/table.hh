/**
 * @file
 * ASCII table and CSV emission for benchmark harnesses.
 *
 * Every bench binary prints the rows/series the paper reports through a
 * TablePrinter and mirrors the data to a CSV file for post-processing.
 */

#ifndef DOSA_UTIL_TABLE_HH
#define DOSA_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace dosa {

/** Buffered fixed-column table that renders aligned ASCII output. */
class TablePrinter
{
  public:
    /** Construct with column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Render to a string with aligned columns and a rule under headers. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

    /** Write headers+rows as CSV to the given path; returns success. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed). */
std::string fmt(double v, int precision = 3);

/** Format a double in scientific notation. */
std::string fmtSci(double v, int precision = 3);

} // namespace dosa

#endif // DOSA_UTIL_TABLE_HH
