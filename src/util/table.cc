/**
 * @file
 * ASCII table rendering and CSV mirroring for bench output.
 */
#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace dosa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        panic("TablePrinter: row width does not match headers");
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

bool
TablePrinter::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return true;
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtSci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace dosa
