/**
 * @file
 * Command-line flag parsing for bench and example binaries.
 */
#include "util/cli.hh"

#include <cstdlib>

namespace dosa {

Cli::Cli(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
Cli::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

int64_t
Cli::getInt(const std::string &name, int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

} // namespace dosa
