/**
 * @file
 * Tiny command-line flag parser shared by bench and example binaries.
 *
 * Supports `--flag` (boolean), `--key value` and `--key=value` forms.
 */

#ifndef DOSA_UTIL_CLI_HH
#define DOSA_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dosa {

/** Parsed command-line options. */
class Cli
{
  public:
    /** Parse argv; unrecognized positional args are kept in order. */
    Cli(int argc, const char *const *argv);

    /** True if --name was passed (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name, or fallback. */
    int64_t getInt(const std::string &name, int64_t fallback) const;

    /** Double value of --name, or fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string> &positional() const { return pos_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> pos_;
};

} // namespace dosa

#endif // DOSA_UTIL_CLI_HH
