/**
 * @file
 * Workload registry storage and the schema-1 workload JSON codec.
 * See workload_registry.hh for the strict-decode / canonical-encode
 * contract.
 */
#include "workload/workload_registry.hh"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/logging.hh"
#include "util/thread_annotations.hh"
#include "workload/llm_zoo.hh"
#include "workload/model_zoo.hh"

namespace dosa {

namespace {

/**
 * Registered networks. Entries are heap-allocated so the pointers
 * `find()` hands out survive later registrations; an entry is never
 * mutated after it lands.
 */
struct Registry
{
    util::Mutex mtx;
    std::vector<std::unique_ptr<Network>> entries GUARDED_BY(mtx);
};

/** Registration order is deterministic; the mutex guards only
 *  against concurrent registration/lookup races. */
Registry &
registry()
{
    static Registry r;
    return r;
}

void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] { detail::registerBuiltinWorkloads(); });
}

/** Why `net` cannot be registered, or null when it is well-formed. */
const char *
checkNetwork(const Network &net)
{
    if (net.name.empty())
        return "empty workload name";
    if (net.layers.empty())
        return "workload has no layers";
    for (const Layer &layer : net.layers) {
        if (layer.name.empty())
            return "workload has an unnamed layer";
        if (!layer.valid())
            return "workload has an ill-formed layer (every "
                   "dimension must be >= 1)";
    }
    return nullptr;
}

/** Canonical layer type derived from the shape (gemm: R=S=Q=1). */
const char *
derivedType(const Layer &layer)
{
    return (layer.r == 1 && layer.s == 1 && layer.q == 1) ? "gemm"
                                                          : "conv";
}

/**
 * Encode one layer in canonical file form: `name` and the derived
 * `type` always present, dimensions only when off their default of 1.
 */
json::Value
layerToJson(const Layer &layer)
{
    json::Value v = json::Value::object();
    v.set("name", json::Value::string(layer.name));
    v.set("type", json::Value::string(derivedType(layer)));
    auto dim = [&v](const char *key, int64_t value) {
        if (value != 1)
            v.set(key, json::Value::number(value));
    };
    dim("r", layer.r);
    dim("s", layer.s);
    dim("p", layer.p);
    dim("q", layer.q);
    dim("c", layer.c);
    dim("k", layer.k);
    dim("n", layer.n);
    dim("stride", layer.stride);
    dim("count", layer.count);
    return v;
}

bool
layerFromJson(const json::Value &value, const std::string &path,
              Layer &out, std::string &error)
{
    out = Layer{};
    std::string type;
    json::ObjectReader r(value, path, error);
    r.readString("name", out.name);
    r.readString("type", type);
    r.readInt("r", out.r);
    r.readInt("s", out.s);
    r.readInt("p", out.p);
    r.readInt("q", out.q);
    r.readInt("c", out.c);
    r.readInt("k", out.k);
    r.readInt("n", out.n);
    r.readInt("stride", out.stride);
    r.readInt("count", out.count);
    if (!r.finish())
        return false;
    if (out.name.empty())
        return r.fail("name: expected a non-empty string");
    if (!out.valid())
        return r.fail("every dimension must be >= 1 (got " +
                      out.str() + ")");
    if (!type.empty()) {
        if (type != "conv" && type != "gemm")
            return r.fail("type: expected \"conv\" or \"gemm\" (got "
                          "\"" + type + "\")");
        if (type != derivedType(out))
            return r.fail("type \"" + type + "\" does not match the "
                          "shape (a layer with R=S=Q=1 is a \"gemm\","
                          " anything else a \"conv\")");
    }
    return true;
}

} // namespace

void
detail::appendWorkload(Network net)
{
    if (const char *msg = checkNetwork(net))
        panic(std::string("Workloads::registerWorkload: ") + msg +
              " (workload \"" + net.name + "\")");
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    r.entries.push_back(std::make_unique<Network>(std::move(net)));
}

void
detail::registerBuiltinWorkloads()
{
    // The paper's Table-6 networks (model_zoo)...
    appendWorkload(resnet50());
    appendWorkload(bertBase());
    appendWorkload(unet());
    appendWorkload(retinanet());
    appendWorkload(alexnet());
    appendWorkload(vgg16());
    appendWorkload(resnext50());
    appendWorkload(deepbench());
    // ...and the serving-era cells (llm_zoo).
    appendWorkload(llmDecode7b());
    appendWorkload(llmPrefill4k());
    appendWorkload(llmMoeFfn());
    appendWorkload(depthwiseEdge());
}

void
Workloads::registerWorkload(Network net)
{
    // Bootstrap the builtins first so this registration lands after
    // them: latest-wins shadowing holds no matter when a caller
    // registers relative to the first find()/names() call.
    ensureBuiltins();
    detail::appendWorkload(std::move(net));
}

const Network *
Workloads::find(std::string_view name)
{
    ensureBuiltins();
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    // Latest registration wins, so callers can shadow a builtin.
    for (auto it = r.entries.rbegin(); it != r.entries.rend(); ++it)
        if (name == (*it)->name)
            return it->get();
    return nullptr;
}

std::vector<std::string>
Workloads::names()
{
    ensureBuiltins();
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    std::vector<std::string> names;
    for (const auto &net : r.entries)
        if (std::find(names.begin(), names.end(), net->name) ==
            names.end())
            names.push_back(net->name);
    return names;
}

std::string
Workloads::nameList()
{
    std::string out;
    for (const std::string &name : names()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

json::Value
workloadToJson(const Network &net)
{
    json::Value v = json::Value::object();
    v.set("schema", json::Value::number(kWorkloadSchema));
    v.set("name", json::Value::string(net.name));
    json::Value layers = json::Value::array();
    for (const Layer &layer : net.layers)
        layers.push(layerToJson(layer));
    v.set("layers", std::move(layers));
    if (!net.metadata.empty()) {
        json::Value meta = json::Value::object();
        for (const auto &[key, value] : net.metadata)
            meta.set(key, json::Value::string(value));
        v.set("metadata", std::move(meta));
    }
    return v;
}

std::string
workloadFileText(const Network &net)
{
    return workloadToJson(net).dumpPretty() + "\n";
}

bool
workloadFromJson(const json::Value &value, Network &out,
                 std::string &error)
{
    out = Network{};
    int64_t schema = 0;
    json::ObjectReader r(value, "workload", error);
    r.readInt("schema", schema);
    r.readString("name", out.name);

    if (const json::Value *layers = r.consume("layers")) {
        if (!layers->isArray())
            return r.fail("layers: expected an array");
        const auto &elems = layers->elements();
        out.layers.resize(elems.size());
        for (size_t i = 0; i < elems.size(); ++i)
            if (!layerFromJson(elems[i],
                        "workload.layers[" + std::to_string(i) + "]",
                        out.layers[i], error))
                return false; // error carries the nested path
    }

    if (const json::Value *meta = r.consume("metadata")) {
        if (!meta->isObject())
            return r.fail("metadata: expected an object");
        for (const auto &[key, member] : meta->members()) {
            if (!member.isString())
                return r.fail("metadata." + key +
                              ": expected a string");
            out.metadata[key] = member.asString();
        }
    }

    if (!r.finish())
        return false;
    if (schema != kWorkloadSchema)
        return r.fail("schema: this build reads workload schema " +
                      std::to_string(kWorkloadSchema) + " (got " +
                      std::to_string(schema) + ")");
    if (out.name.empty())
        return r.fail("name: expected a non-empty string");
    if (out.layers.empty())
        return r.fail("layers: expected a non-empty array");
    return true;
}

Network
mustWorkloadFromJson(std::string_view text)
{
    json::Value value;
    Network net;
    std::string error;
    if (!json::parse(text, value, error) ||
        !workloadFromJson(value, net, error))
        fatal("mustWorkloadFromJson: " + error);
    return net;
}

bool
loadWorkloadFile(const std::string &path, Network &out,
                 std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = path + ": cannot open workload file";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        error = path + ": error reading workload file";
        return false;
    }
    json::Value value;
    if (!json::parse(text.str(), value, error) ||
        !workloadFromJson(value, out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace dosa
