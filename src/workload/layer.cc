/**
 * @file
 * Seven-dimensional layer arithmetic: MAC counts, tensor sizes and naming.
 */
#include "workload/layer.hh"

#include <sstream>

#include "util/logging.hh"

namespace dosa {

const char *
dimName(Dim d)
{
    switch (d) {
      case Dim::R: return "R";
      case Dim::S: return "S";
      case Dim::P: return "P";
      case Dim::Q: return "Q";
      case Dim::C: return "C";
      case Dim::K: return "K";
      case Dim::N: return "N";
    }
    return "?";
}

const char *
tensorName(Tensor t)
{
    switch (t) {
      case Tensor::Weight: return "W";
      case Tensor::Input: return "I";
      case Tensor::Output: return "O";
    }
    return "?";
}

int64_t
Layer::size(Dim d) const
{
    switch (d) {
      case Dim::R: return r;
      case Dim::S: return s;
      case Dim::P: return p;
      case Dim::Q: return q;
      case Dim::C: return c;
      case Dim::K: return k;
      case Dim::N: return n;
    }
    panic("Layer::size: bad dim");
}

double
Layer::macs() const
{
    return static_cast<double>(r) * static_cast<double>(s) *
           static_cast<double>(p) * static_cast<double>(q) *
           static_cast<double>(c) * static_cast<double>(k) *
           static_cast<double>(n);
}

double
Layer::tensorWords(Tensor t) const
{
    switch (t) {
      case Tensor::Weight:
        return static_cast<double>(r) * static_cast<double>(s) *
               static_cast<double>(c) * static_cast<double>(k);
      case Tensor::Input:
        return static_cast<double>(inputHeight()) *
               static_cast<double>(inputWidth()) *
               static_cast<double>(c) * static_cast<double>(n);
      case Tensor::Output:
        return static_cast<double>(p) * static_cast<double>(q) *
               static_cast<double>(k) * static_cast<double>(n);
    }
    panic("Layer::tensorWords: bad tensor");
}

bool
Layer::valid() const
{
    return r >= 1 && s >= 1 && p >= 1 && q >= 1 && c >= 1 && k >= 1 &&
           n >= 1 && stride >= 1 && count >= 1;
}

std::string
Layer::str() const
{
    std::ostringstream os;
    os << name << " [R=" << r << " S=" << s << " P=" << p << " Q=" << q
       << " C=" << c << " K=" << k << " N=" << n << " stride=" << stride
       << " x" << count << "]";
    return os.str();
}

bool
Layer::sameShape(const Layer &o) const
{
    return r == o.r && s == o.s && p == o.p && q == o.q && c == o.c &&
           k == o.k && n == o.n && stride == o.stride;
}

Layer
Layer::gemm(std::string name, int64_t m, int64_t kred, int64_t nout,
            int64_t batch, int64_t cnt)
{
    Layer l;
    l.name = std::move(name);
    l.p = m;
    l.c = kred;
    l.k = nout;
    l.n = batch;
    l.count = cnt;
    return l;
}

Layer
Layer::conv(std::string name, int64_t rs, int64_t pq_out, int64_t cin,
            int64_t kout, int64_t stride_, int64_t cnt, int64_t batch)
{
    Layer l;
    l.name = std::move(name);
    l.r = rs;
    l.s = rs;
    l.p = pq_out;
    l.q = pq_out;
    l.c = cin;
    l.k = kout;
    l.n = batch;
    l.stride = stride_;
    l.count = cnt;
    return l;
}

double
Network::totalMacs() const
{
    double acc = 0.0;
    for (const Layer &l : layers)
        acc += static_cast<double>(l.count) * l.macs();
    return acc;
}

} // namespace dosa
