/**
 * @file
 * The DNN workloads of Table 6.
 *
 * Target workloads (evaluated in Section 6): BERT, ResNet-50, RetinaNet
 * (non-backbone layers) and U-Net. Training workloads (for the learned
 * latency model): AlexNet, ResNeXt-50-32x4d, VGG-16, DeepBench (OCR and
 * face-recognition kernels).
 *
 * Layer lists follow the published network architectures; where a paper
 * detail is unstated (e.g. BERT sequence length) a standard setting is
 * used and noted inline.
 */

#ifndef DOSA_WORKLOAD_MODEL_ZOO_HH
#define DOSA_WORKLOAD_MODEL_ZOO_HH

#include <vector>

#include "workload/layer.hh"

namespace dosa {

/** ResNet-50 (He et al.): unique conv/fc shapes with repeat counts. */
Network resnet50();

/** BERT-base encoder GEMMs, sequence length 512, batch 1. */
Network bertBase();

/** U-Net (Ronneberger et al.) at 256x256 input. */
Network unet();

/** RetinaNet FPN + heads, excluding the ResNet backbone (Table 6). */
Network retinanet();

/** AlexNet (training workload). */
Network alexnet();

/** VGG-16 (training workload). */
Network vgg16();

/** ResNeXt-50-32x4d; grouped 3x3 convs expressed as batched small convs. */
Network resnext50();

/** DeepBench OCR + face-recognition GEMM/conv kernels. */
Network deepbench();

/** The four Section-6 target workloads, in paper order. */
std::vector<Network> targetWorkloads();

/** The Table-6 training workloads. */
std::vector<Network> trainingWorkloads();

/** Look a network up by lowercase name ("resnet50", "bert", ...). */
Network networkByName(const std::string &name);

/** Unique layer shapes pooled over the training workloads (Fig. 4 set). */
std::vector<Layer> uniqueTrainingLayers();

} // namespace dosa

#endif // DOSA_WORKLOAD_MODEL_ZOO_HH
