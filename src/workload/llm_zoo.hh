/**
 * @file
 * LLM-inference and edge-vision workload cells beyond the paper's
 * Table-6 set: decode-phase GEMVs, long-context prefill, MoE-style
 * wide-batch FFN, and depthwise/grouped convolutions. These feed the
 * workload registry (workload_registry.hh) as built-ins and are the
 * source of the checked-in `workloads/<name>.json` exports.
 */

#ifndef DOSA_WORKLOAD_LLM_ZOO_HH
#define DOSA_WORKLOAD_LLM_ZOO_HH

#include "workload/layer.hh"

namespace dosa {

/**
 * Llama-7B-class decode step: every projection is a GEMV (M=1 new
 * token) against a KV cache of 2048 tokens, 32 transformer blocks.
 * The extreme to exercise: reuse lives almost entirely in weights.
 */
Network llmDecode7b();

/**
 * The same 7B-class model in prefill over a 4096-token prompt: the
 * GEMVs become large GEMMs and attention grows quadratically with
 * context — the compute-bound counterpart of llmDecode7b().
 */
Network llmPrefill4k();

/**
 * Mixtral-style mixture-of-experts FFN slice: a thin router GEMM and
 * wide expert GEMMs batched over the 8 experts (top-2 routing spreads
 * 2048 tokens as 512 per expert).
 */
Network llmMoeFfn();

/**
 * MobileNet-style edge cell: depthwise 3x3s expressed with the
 * batched-small-conv idiom (N = channels, C = K = 1), pointwise 1x1
 * expand/project layers, a strided depthwise stage and a 16-group
 * grouped 3x3 — shapes where the paper's dense-conv mappings degrade.
 */
Network depthwiseEdge();

} // namespace dosa

#endif // DOSA_WORKLOAD_LLM_ZOO_HH
