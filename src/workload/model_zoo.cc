/**
 * @file
 * Table-6 workload definitions: target and training networks.
 */
#include "workload/model_zoo.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dosa {

Network
resnet50()
{
    Network net;
    net.name = "resnet50";
    auto &L = net.layers;
    // Stem.
    L.push_back(Layer::conv("conv1", 7, 112, 3, 64, 2));
    // Stage 1 (56x56). Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
    L.push_back(Layer::conv("res2_b1_1x1a", 1, 56, 64, 64));
    L.push_back(Layer::conv("res2_3x3", 3, 56, 64, 64, 1, 3));
    L.push_back(Layer::conv("res2_1x1b", 1, 56, 64, 256, 1, 3));
    L.push_back(Layer::conv("res2_down", 1, 56, 64, 256));
    L.push_back(Layer::conv("res2_1x1a", 1, 56, 256, 64, 1, 2));
    // Stage 2 (28x28).
    L.push_back(Layer::conv("res3_1x1a_s", 1, 28, 256, 128));
    L.push_back(Layer::conv("res3_3x3_s", 3, 28, 128, 128, 2));
    L.push_back(Layer::conv("res3_down", 1, 28, 256, 512, 2));
    L.push_back(Layer::conv("res3_1x1a", 1, 28, 512, 128, 1, 3));
    L.push_back(Layer::conv("res3_3x3", 3, 28, 128, 128, 1, 3));
    L.push_back(Layer::conv("res3_1x1b", 1, 28, 128, 512, 1, 4));
    // Stage 3 (14x14).
    L.push_back(Layer::conv("res4_1x1a_s", 1, 14, 512, 256));
    L.push_back(Layer::conv("res4_3x3_s", 3, 14, 256, 256, 2));
    L.push_back(Layer::conv("res4_down", 1, 14, 512, 1024, 2));
    L.push_back(Layer::conv("res4_1x1a", 1, 14, 1024, 256, 1, 5));
    L.push_back(Layer::conv("res4_3x3", 3, 14, 256, 256, 1, 5));
    L.push_back(Layer::conv("res4_1x1b", 1, 14, 256, 1024, 1, 6));
    // Stage 4 (7x7).
    L.push_back(Layer::conv("res5_1x1a_s", 1, 7, 1024, 512));
    L.push_back(Layer::conv("res5_3x3_s", 3, 7, 512, 512, 2));
    L.push_back(Layer::conv("res5_down", 1, 7, 1024, 2048, 2));
    L.push_back(Layer::conv("res5_1x1a", 1, 7, 2048, 512, 1, 2));
    L.push_back(Layer::conv("res5_3x3", 3, 7, 512, 512, 1, 2));
    L.push_back(Layer::conv("res5_1x1b", 1, 7, 512, 2048, 1, 3));
    // Classifier.
    L.push_back(Layer::gemm("fc1000", 1, 2048, 1000));
    return net;
}

Network
bertBase()
{
    // BERT-base: 12 encoder layers, hidden 768, 12 heads, FFN 3072.
    // Sequence length 512 (the paper does not state it; 512 is the
    // pre-training maximum and a common benchmark setting).
    Network net;
    net.name = "bert";
    auto &L = net.layers;
    const int64_t seq = 512, hid = 768, ffn = 3072, heads = 12;
    const int64_t layers = 12, dhead = hid / heads;
    // Q/K/V projections: 3 per encoder layer.
    L.push_back(Layer::gemm("qkv_proj", seq, hid, hid, 1, 3 * layers));
    // Attention scores QK^T: one GEMM per head, batched over heads.
    L.push_back(Layer::gemm("attn_score", seq, dhead, seq, heads, layers));
    // Attention context (scores x V).
    L.push_back(Layer::gemm("attn_ctx", seq, seq, dhead, heads, layers));
    // Output projection.
    L.push_back(Layer::gemm("attn_out", seq, hid, hid, 1, layers));
    // Feed-forward.
    L.push_back(Layer::gemm("ffn1", seq, hid, ffn, 1, layers));
    L.push_back(Layer::gemm("ffn2", seq, ffn, hid, 1, layers));
    return net;
}

Network
unet()
{
    // Classic U-Net contracting/expanding topology at a 256x256 input,
    // channel doubling 64..1024, 3x3 convs, 2x2 up-convolutions.
    Network net;
    net.name = "unet";
    auto &L = net.layers;
    L.push_back(Layer::conv("enc1_a", 3, 256, 3, 64));
    L.push_back(Layer::conv("enc1_b", 3, 256, 64, 64));
    L.push_back(Layer::conv("enc2_a", 3, 128, 64, 128));
    L.push_back(Layer::conv("enc2_b", 3, 128, 128, 128));
    L.push_back(Layer::conv("enc3_a", 3, 64, 128, 256));
    L.push_back(Layer::conv("enc3_b", 3, 64, 256, 256));
    L.push_back(Layer::conv("enc4_a", 3, 32, 256, 512));
    L.push_back(Layer::conv("enc4_b", 3, 32, 512, 512));
    L.push_back(Layer::conv("bottleneck_a", 3, 16, 512, 1024));
    L.push_back(Layer::conv("bottleneck_b", 3, 16, 1024, 1024));
    // Decoder: 2x2 transposed convs then two 3x3 convs per level; the
    // first 3x3 sees concatenated skip channels.
    L.push_back(Layer::conv("up4", 2, 32, 1024, 512));
    L.push_back(Layer::conv("dec4_a", 3, 32, 1024, 512));
    L.push_back(Layer::conv("dec4_b", 3, 32, 512, 512));
    L.push_back(Layer::conv("up3", 2, 64, 512, 256));
    L.push_back(Layer::conv("dec3_a", 3, 64, 512, 256));
    L.push_back(Layer::conv("dec3_b", 3, 64, 256, 256));
    L.push_back(Layer::conv("up2", 2, 128, 256, 128));
    L.push_back(Layer::conv("dec2_a", 3, 128, 256, 128));
    L.push_back(Layer::conv("dec2_b", 3, 128, 128, 128));
    L.push_back(Layer::conv("up1", 2, 256, 128, 64));
    L.push_back(Layer::conv("dec1_a", 3, 256, 128, 64));
    L.push_back(Layer::conv("dec1_b", 3, 256, 64, 64));
    L.push_back(Layer::conv("out_1x1", 1, 256, 64, 2));
    return net;
}

Network
retinanet()
{
    // RetinaNet with an 800x800 input, excluding the ResNet backbone
    // (Table 6 note). FPN feature sizes P3..P7: 100, 50, 25, 13, 7.
    Network net;
    net.name = "retinanet";
    auto &L = net.layers;
    // FPN lateral 1x1 convs from backbone stages C3/C4/C5.
    L.push_back(Layer::conv("fpn_lat_c3", 1, 100, 512, 256));
    L.push_back(Layer::conv("fpn_lat_c4", 1, 50, 1024, 256));
    L.push_back(Layer::conv("fpn_lat_c5", 1, 25, 2048, 256));
    // FPN output 3x3 smoothing convs.
    L.push_back(Layer::conv("fpn_out_p3", 3, 100, 256, 256));
    L.push_back(Layer::conv("fpn_out_p4", 3, 50, 256, 256));
    L.push_back(Layer::conv("fpn_out_p5", 3, 25, 256, 256));
    // Extra pyramid levels.
    L.push_back(Layer::conv("fpn_p6", 3, 13, 2048, 256, 2));
    L.push_back(Layer::conv("fpn_p7", 3, 7, 256, 256, 2));
    // Classification + box subnets: 4 shared 3x3 convs each, applied
    // at all 5 pyramid levels (8 convs per level).
    L.push_back(Layer::conv("head_tower_p3", 3, 100, 256, 256, 1, 8));
    L.push_back(Layer::conv("head_tower_p4", 3, 50, 256, 256, 1, 8));
    L.push_back(Layer::conv("head_tower_p5", 3, 25, 256, 256, 1, 8));
    L.push_back(Layer::conv("head_tower_p6", 3, 13, 256, 256, 1, 8));
    L.push_back(Layer::conv("head_tower_p7", 3, 7, 256, 256, 1, 8));
    // Prediction convs: 9 anchors x 80 classes = 720; 9 x 4 = 36.
    L.push_back(Layer::conv("cls_pred_p3", 3, 100, 256, 720));
    L.push_back(Layer::conv("cls_pred_p4", 3, 50, 256, 720));
    L.push_back(Layer::conv("cls_pred_p5", 3, 25, 256, 720));
    L.push_back(Layer::conv("box_pred_p3", 3, 100, 256, 36));
    L.push_back(Layer::conv("box_pred_p4", 3, 50, 256, 36));
    L.push_back(Layer::conv("box_pred_p5", 3, 25, 256, 36));
    return net;
}

Network
alexnet()
{
    Network net;
    net.name = "alexnet";
    auto &L = net.layers;
    L.push_back(Layer::conv("conv1", 11, 55, 3, 96, 4));
    L.push_back(Layer::conv("conv2", 5, 27, 96, 256));
    L.push_back(Layer::conv("conv3", 3, 13, 256, 384));
    L.push_back(Layer::conv("conv4", 3, 13, 384, 384));
    L.push_back(Layer::conv("conv5", 3, 13, 384, 256));
    L.push_back(Layer::gemm("fc6", 1, 9216, 4096));
    L.push_back(Layer::gemm("fc7", 1, 4096, 4096));
    L.push_back(Layer::gemm("fc8", 1, 4096, 1000));
    return net;
}

Network
vgg16()
{
    Network net;
    net.name = "vgg16";
    auto &L = net.layers;
    L.push_back(Layer::conv("conv1_1", 3, 224, 3, 64));
    L.push_back(Layer::conv("conv1_2", 3, 224, 64, 64));
    L.push_back(Layer::conv("conv2_1", 3, 112, 64, 128));
    L.push_back(Layer::conv("conv2_2", 3, 112, 128, 128));
    L.push_back(Layer::conv("conv3_1", 3, 56, 128, 256));
    L.push_back(Layer::conv("conv3_2", 3, 56, 256, 256, 1, 2));
    L.push_back(Layer::conv("conv4_1", 3, 28, 256, 512));
    L.push_back(Layer::conv("conv4_2", 3, 28, 512, 512, 1, 2));
    L.push_back(Layer::conv("conv5", 3, 14, 512, 512, 1, 3));
    L.push_back(Layer::gemm("fc6", 1, 25088, 4096));
    L.push_back(Layer::gemm("fc7", 1, 4096, 4096));
    L.push_back(Layer::gemm("fc8", 1, 4096, 1000));
    return net;
}

Network
resnext50()
{
    // ResNeXt-50-32x4d: the bottleneck 3x3 convs are grouped with 32
    // groups. A grouped conv is expressed as a batch (N = groups) of
    // small convs with per-group channel counts, which preserves MACs
    // and per-group data-movement structure.
    Network net;
    net.name = "resnext50";
    auto &L = net.layers;
    L.push_back(Layer::conv("conv1", 7, 112, 3, 64, 2));
    // Stage 1: width 128 (32 groups x 4).
    L.push_back(Layer::conv("rx2_1x1a", 1, 56, 64, 128));
    {
        Layer g = Layer::conv("rx2_g3x3", 3, 56, 4, 4, 1, 3, 32);
        L.push_back(g);
    }
    L.push_back(Layer::conv("rx2_1x1b", 1, 56, 128, 256, 1, 3));
    L.push_back(Layer::conv("rx2_1x1a_r", 1, 56, 256, 128, 1, 2));
    // Stage 2: width 256.
    L.push_back(Layer::conv("rx3_1x1a", 1, 28, 256, 256, 1, 4));
    L.push_back(Layer::conv("rx3_g3x3", 3, 28, 8, 8, 1, 4, 32));
    L.push_back(Layer::conv("rx3_1x1b", 1, 28, 256, 512, 1, 4));
    // Stage 3: width 512.
    L.push_back(Layer::conv("rx4_1x1a", 1, 14, 512, 512, 1, 6));
    L.push_back(Layer::conv("rx4_g3x3", 3, 14, 16, 16, 1, 6, 32));
    L.push_back(Layer::conv("rx4_1x1b", 1, 14, 512, 1024, 1, 6));
    // Stage 4: width 1024.
    L.push_back(Layer::conv("rx5_1x1a", 1, 7, 1024, 1024, 1, 3));
    L.push_back(Layer::conv("rx5_g3x3", 3, 7, 32, 32, 1, 3, 32));
    L.push_back(Layer::conv("rx5_1x1b", 1, 7, 1024, 2048, 1, 3));
    L.push_back(Layer::gemm("fc1000", 1, 2048, 1000));
    return net;
}

Network
deepbench()
{
    // Representative Baidu DeepBench inference kernels from the OCR and
    // face-recognition suites (GEMM M/N/K triples and conv shapes).
    Network net;
    net.name = "deepbench";
    auto &L = net.layers;
    L.push_back(Layer::gemm("ocr_gemm_5124x700x2048", 5124, 2048, 700));
    L.push_back(Layer::gemm("ocr_gemm_35x700x2048", 35, 2048, 700));
    L.push_back(Layer::gemm("ocr_gemm_3072x1500x1024", 3072, 1024, 1500));
    L.push_back(Layer::gemm("ocr_gemm_512x3000x1024", 512, 1024, 3000));
    L.push_back(Layer::gemm("face_gemm_128x1024x1024", 128, 1024, 1024));
    L.push_back(Layer::gemm("face_gemm_256x256x512", 256, 512, 256));
    L.push_back(Layer::conv("ocr_conv_7x7", 7, 54, 3, 64, 2));
    L.push_back(Layer::conv("ocr_conv_3x3a", 3, 54, 64, 64));
    L.push_back(Layer::conv("ocr_conv_3x3b", 3, 27, 64, 128));
    L.push_back(Layer::conv("face_conv_3x3a", 3, 28, 96, 128));
    L.push_back(Layer::conv("face_conv_3x3b", 3, 14, 128, 256));
    L.push_back(Layer::conv("face_conv_1x1", 1, 14, 256, 256));
    // Tiny recurrent / embedding kernels: these exercise the
    // small-layer regime where block-quantized DRAM accounting
    // diverges from element counts (the Fig. 4 error tail).
    L.push_back(Layer::gemm("ocr_rnn_gemm_16x64x32", 16, 64, 32));
    L.push_back(Layer::gemm("ocr_rnn_gemm_35x128x64", 35, 128, 64));
    L.push_back(Layer::gemm("face_embed_1x256x64", 1, 256, 64));
    L.push_back(Layer::conv("ocr_conv_tiny", 3, 7, 8, 16));
    L.push_back(Layer::conv("face_conv_tiny", 1, 7, 24, 12));
    return net;
}

std::vector<Network>
targetWorkloads()
{
    return {unet(), resnet50(), bertBase(), retinanet()};
}

std::vector<Network>
trainingWorkloads()
{
    return {alexnet(), resnext50(), vgg16(), deepbench()};
}

Network
networkByName(const std::string &name)
{
    if (name == "resnet50")
        return resnet50();
    if (name == "bert")
        return bertBase();
    if (name == "unet")
        return unet();
    if (name == "retinanet")
        return retinanet();
    if (name == "alexnet")
        return alexnet();
    if (name == "vgg16")
        return vgg16();
    if (name == "resnext50")
        return resnext50();
    if (name == "deepbench")
        return deepbench();
    fatal("unknown network: " + name);
}

std::vector<Layer>
uniqueTrainingLayers()
{
    std::vector<Layer> out;
    for (const Network &net : trainingWorkloads()) {
        for (const Layer &l : net.layers) {
            bool dup = false;
            for (const Layer &have : out) {
                if (have.sameShape(l)) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                out.push_back(l);
        }
    }
    return out;
}

} // namespace dosa
