/**
 * @file
 * LLM-inference and depthwise/grouped-conv workload cell definitions.
 */
#include "workload/llm_zoo.hh"

namespace dosa {

Network
llmDecode7b()
{
    // Llama-7B-class geometry: hidden 4096, 32 heads of 128, FFN
    // 11008 (gate+up fused as one 22016-wide GEMM), 32 blocks,
    // vocabulary 32000. Decode emits one token against a 2048-token
    // KV cache, so every projection is a GEMV.
    Network net;
    net.name = "llm_decode_7b";
    net.metadata["source"] = "llm_zoo (Llama-7B-class, decode)";
    net.metadata["context"] = "2048";
    auto &L = net.layers;
    const int64_t hid = 4096, heads = 32, dhead = 128, ffn = 11008;
    const int64_t blocks = 32, ctx = 2048, vocab = 32000;
    // Fused Q/K/V projection.
    L.push_back(Layer::gemm("qkv_proj", 1, hid, 3 * hid, 1, blocks));
    // Attention scores qK^T over the cache: one GEMV per head.
    L.push_back(Layer::gemm("attn_score", 1, dhead, ctx, heads, blocks));
    // Attention context (scores x V).
    L.push_back(Layer::gemm("attn_ctx", 1, ctx, dhead, heads, blocks));
    // Output projection.
    L.push_back(Layer::gemm("attn_out", 1, hid, hid, 1, blocks));
    // SwiGLU feed-forward: gate and up fused, then down.
    L.push_back(Layer::gemm("ffn_gate_up", 1, hid, 2 * ffn, 1, blocks));
    L.push_back(Layer::gemm("ffn_down", 1, ffn, hid, 1, blocks));
    // Final vocabulary projection.
    L.push_back(Layer::gemm("lm_head", 1, hid, vocab));
    return net;
}

Network
llmPrefill4k()
{
    // The same model processing a 4096-token prompt in one pass:
    // M grows from 1 to 4096 and attention is quadratic in context.
    Network net;
    net.name = "llm_prefill_4k";
    net.metadata["source"] = "llm_zoo (Llama-7B-class, prefill)";
    net.metadata["context"] = "4096";
    auto &L = net.layers;
    const int64_t hid = 4096, heads = 32, dhead = 128, ffn = 11008;
    const int64_t blocks = 32, seq = 4096;
    L.push_back(Layer::gemm("qkv_proj", seq, hid, 3 * hid, 1, blocks));
    L.push_back(Layer::gemm("attn_score", seq, dhead, seq, heads, blocks));
    L.push_back(Layer::gemm("attn_ctx", seq, seq, dhead, heads, blocks));
    L.push_back(Layer::gemm("attn_out", seq, hid, hid, 1, blocks));
    L.push_back(Layer::gemm("ffn_gate_up", seq, hid, 2 * ffn, 1, blocks));
    L.push_back(Layer::gemm("ffn_down", seq, ffn, hid, 1, blocks));
    return net;
}

Network
llmMoeFfn()
{
    // Mixtral-8x7B-style FFN slice: hidden 4096, 8 experts of FFN
    // 14336 with top-2 routing. A 2048-token batch routes 2 experts
    // per token, i.e. 512 tokens per expert on average — expressed as
    // expert GEMMs batched over N=8 experts.
    Network net;
    net.name = "llm_moe_ffn";
    net.metadata["source"] = "llm_zoo (Mixtral-style MoE FFN)";
    net.metadata["experts"] = "8";
    auto &L = net.layers;
    const int64_t hid = 4096, ffn = 14336, experts = 8;
    const int64_t tokens = 2048, per_expert = 512, blocks = 32;
    L.push_back(Layer::gemm("router", tokens, hid, experts, 1, blocks));
    L.push_back(Layer::gemm("expert_gate_up", per_expert, hid, 2 * ffn,
                            experts, blocks));
    L.push_back(Layer::gemm("expert_down", per_expert, ffn, hid,
                            experts, blocks));
    return net;
}

Network
depthwiseEdge()
{
    // MobileNetV2-flavored cell. Depthwise 3x3s use the batched-
    // small-conv idiom (one 1-channel conv per channel, N = channels);
    // the grouped 3x3 batches 16 groups of 16->16 channels.
    Network net;
    net.name = "depthwise_edge";
    net.metadata["source"] = "llm_zoo (MobileNet-style edge cell)";
    auto &L = net.layers;
    // Expand 16 -> 96 channels at 112x112, depthwise, project.
    L.push_back(Layer::conv("pw_expand_112", 1, 112, 16, 96));
    L.push_back(Layer::conv("dw3x3_112", 3, 112, 1, 1, 1, 1, 96));
    // Strided depthwise down to 56x56, then project 144 -> 24.
    L.push_back(Layer::conv("pw_expand_56", 1, 56, 24, 144));
    L.push_back(Layer::conv("dw3x3_s2_56", 3, 56, 1, 1, 2, 1, 144));
    L.push_back(Layer::conv("pw_project_56", 1, 56, 144, 24, 1, 2));
    // ResNeXt-style grouped 3x3: 16 groups of 16 channels at 28x28.
    L.push_back(Layer::conv("group3x3_28", 3, 28, 16, 16, 1, 1, 16));
    L.push_back(Layer::conv("pw_project_28", 1, 28, 256, 64));
    return net;
}

} // namespace dosa
