/**
 * @file
 * Seven-dimensional DNN layer representation (Section 3.1.1).
 *
 * Both convolutions and matrix multiplications are expressed with the
 * dimensions R (weight height), S (weight width), P (output height),
 * Q (output width), C (input channels), K (output channels) and
 * N (batch). A GEMM C[M,Nout] = A[M,Kred] * B[Kred,Nout] maps to
 * P=M, C=Kred, K=Nout with R=S=Q=1.
 */

#ifndef DOSA_WORKLOAD_LAYER_HH
#define DOSA_WORKLOAD_LAYER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dosa {

/** Problem dimension index (Table 3 notation). */
enum class Dim : int { R = 0, S, P, Q, C, K, N };

/** Number of problem dimensions. */
constexpr int kNumDims = 7;

/** All dimensions in canonical order. */
constexpr std::array<Dim, kNumDims> kAllDims = {
    Dim::R, Dim::S, Dim::P, Dim::Q, Dim::C, Dim::K, Dim::N,
};

/** Short name of a dimension ("R", "S", ...). */
const char *dimName(Dim d);

/** Data tensors of a layer. */
enum class Tensor : int { Weight = 0, Input, Output };

/** Number of data tensors. */
constexpr int kNumTensors = 3;

/** All tensors in canonical order. */
constexpr std::array<Tensor, kNumTensors> kAllTensors = {
    Tensor::Weight, Tensor::Input, Tensor::Output,
};

/** Short name of a tensor ("W", "I", "O"). */
const char *tensorName(Tensor t);

/**
 * Whether a problem dimension indexes a tensor (the D_W / D_I / D_O
 * sets of Section 4.1.1): D_W = {R,S,C,K}, D_I = {R,S,P,Q,C,N},
 * D_O = {P,Q,K,N}.
 */
constexpr bool
dimRelevant(Tensor t, Dim d)
{
    switch (t) {
      case Tensor::Weight:
        return d == Dim::R || d == Dim::S || d == Dim::C || d == Dim::K;
      case Tensor::Input:
        return d != Dim::K;
      case Tensor::Output:
        return d == Dim::P || d == Dim::Q || d == Dim::K || d == Dim::N;
    }
    return false;
}

/**
 * One matrix-multiplication or convolution layer.
 *
 * `count` records how many times the identical shape appears in its
 * network; DOSA generates one mapping per unique shape and scales its
 * energy/latency contribution by count (Section 4.5).
 */
struct Layer
{
    std::string name;
    int64_t r = 1;      ///< weight height
    int64_t s = 1;      ///< weight width
    int64_t p = 1;      ///< output activation height
    int64_t q = 1;      ///< output activation width
    int64_t c = 1;      ///< input channels
    int64_t k = 1;      ///< output channels
    int64_t n = 1;      ///< batch size
    int64_t stride = 1; ///< convolution stride (both axes)
    int64_t count = 1;  ///< occurrences of this shape in the network

    /** Size of dimension d. */
    int64_t size(Dim d) const;

    /** Total multiply-accumulate count, prod over all dims (Eq 7). */
    double macs() const;

    /** Input activation height: stride*(P-1)+R. */
    int64_t inputHeight() const { return stride * (p - 1) + r; }

    /** Input activation width: stride*(Q-1)+S. */
    int64_t inputWidth() const { return stride * (q - 1) + s; }

    /** Full tensor size in words. */
    double tensorWords(Tensor t) const;

    /** True if all dims are >= 1 (a well-formed shape). */
    bool valid() const;

    /** Human-readable "R=..,S=..,..." string. */
    std::string str() const;

    /** Shape equality ignoring name/count. */
    bool sameShape(const Layer &o) const;

    /** Convenience factory for a GEMM: out[m,nout] = a[m,kred]*b. */
    static Layer gemm(std::string name, int64_t m, int64_t kred,
                      int64_t nout, int64_t batch = 1, int64_t cnt = 1);

    /** Convenience factory for a square-kernel convolution. */
    static Layer conv(std::string name, int64_t rs, int64_t pq_out,
                      int64_t cin, int64_t kout, int64_t stride_ = 1,
                      int64_t cnt = 1, int64_t batch = 1);
};

/** A named network: an ordered list of unique layers with counts. */
struct Network
{
    std::string name;
    std::vector<Layer> layers;

    /**
     * Free-form descriptive tags ("source", "notes", ...). Carried by
     * the workload file format and registry for provenance; never read
     * by the search itself.
     */
    std::map<std::string, std::string> metadata;

    /** Sum over layers of count * macs. */
    double totalMacs() const;
};

} // namespace dosa

#endif // DOSA_WORKLOAD_LAYER_HH
