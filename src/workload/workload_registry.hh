/**
 * @file
 * The process-wide workload registry and the versioned JSON workload
 * file format behind it.
 *
 * Workloads are data, not code: a `Network` can be described in a
 * JSON file (schema 1: name, layer list, optional metadata), loaded
 * with `loadWorkloadFile`/`workloadFromJson`, registered under its
 * name, and then referenced everywhere a workload is consumed — a
 * `SearchSpec::workload_name`, a bench `--workload` flag, a service
 * request. The in-tree networks (the paper's Table-6 cells from
 * model_zoo plus the LLM/edge cells from llm_zoo) self-register as
 * built-ins the same way search algorithms do, so `Workloads::find`
 * works from any link configuration.
 *
 * Format contract (see docs/WORKLOADS.md for the field reference):
 *
 * - *Strict decode.* `workloadFromJson` uses `util/json`'s
 *   `ObjectReader`: unknown keys, type mismatches, out-of-range
 *   dimensions and a wrong `schema` all fail with a field-path
 *   diagnostic ("workload.layers[2].stride: expected a number");
 *   it never crashes on hostile input.
 * - *Canonical encode.* `workloadToJson` emits sorted keys and omits
 *   layer dimensions at their default (1), so encoding is a pure
 *   function of the value; `workloadFileText` fixes the on-disk form
 *   (pretty, trailing newline) and decode(encode(net)) == net. Every
 *   checked-in `workloads/<name>.json` is pinned to these exact bytes by
 *   test.
 */

#ifndef DOSA_WORKLOAD_WORKLOAD_REGISTRY_HH
#define DOSA_WORKLOAD_WORKLOAD_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "util/json.hh"
#include "workload/layer.hh"

namespace dosa {

/** Workload file schema version accepted by this build. */
constexpr int64_t kWorkloadSchema = 1;

/**
 * The process-wide workload registry. The in-tree networks
 * self-register on first use (anchored through
 * `registerBuiltinWorkloads` so static-library dead-stripping cannot
 * drop them); file-loaded or programmatic networks add themselves
 * with `registerWorkload` and become reachable from every
 * `--workload` flag, `SearchSpec::workload_name` and service request
 * without further plumbing.
 */
class Workloads
{
  public:
    /**
     * Register a workload under `net.name`. Panics on an ill-formed
     * network (empty name, no layers, an invalid layer) — use
     * `workloadFromJson` first for untrusted input, which rejects the
     * same shapes non-fatally. The builtin bootstrap runs first, so a
     * registration always lands after the builtins: re-registering a
     * name shadows the previous entry (latest wins).
     */
    static void registerWorkload(Network net);

    /** Workload registered under `name`, or null when unknown. */
    static const Network *find(std::string_view name);

    /** All registered workload names, in registration order. */
    static std::vector<std::string> names();

    /** `names()` joined with ", " — for error messages. */
    static std::string nameList();
};

/**
 * Encode `net` as a schema-1 workload JSON value in canonical form:
 * sorted keys, layer dimensions omitted at their default of 1, the
 * derived layer `type` always present, `metadata` present only when
 * non-empty.
 */
json::Value workloadToJson(const Network &net);

/**
 * The canonical on-disk bytes of `net`: `workloadToJson` rendered
 * with `json::Value::dumpPretty()` plus a trailing newline. The
 * checked-in `workloads/<name>.json` files hold exactly these bytes.
 */
std::string workloadFileText(const Network &net);

/**
 * Strictly decode a schema-1 workload JSON value. Returns false and
 * sets `error` (with a field path) on any malformed input; `out` is
 * left in an unspecified state on failure. A decoded workload always
 * satisfies `Workloads::registerWorkload`'s preconditions.
 */
[[nodiscard]] bool workloadFromJson(const json::Value &value, Network &out,
                      std::string &error);

/**
 * Parse + strictly decode workload JSON text. Fatal on any error —
 * the trusted-text convenience mirror of `mustSpecFromJson`.
 */
Network mustWorkloadFromJson(std::string_view text);

/**
 * Read, parse and strictly decode the workload file at `path`.
 * Returns false with a diagnostic (prefixed with the path) on I/O or
 * format errors. Does not register the result — pair with
 * `Workloads::registerWorkload` to make it name-addressable.
 */
[[nodiscard]] bool loadWorkloadFile(const std::string &path, Network &out,
                      std::string &error);

namespace detail {

/**
 * Internal registry append without the builtin bootstrap — the hook
 * `registerBuiltinWorkloads` registers through. External callers use
 * `Workloads::registerWorkload`.
 */
void appendWorkload(Network net);

/**
 * Registers the in-tree networks (model_zoo + llm_zoo); called
 * lazily by the registry so a static-library link cannot dead-strip
 * them.
 */
void registerBuiltinWorkloads();

} // namespace detail

} // namespace dosa

#endif // DOSA_WORKLOAD_WORKLOAD_REGISTRY_HH
