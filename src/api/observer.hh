/**
 * @file
 * SearchObserver: the streaming contract of the `src/api` facade.
 *
 * `runSearch(spec, observer)` delivers every recorded sample, every
 * strict improvement of the best-so-far EDP and every searcher
 * lifecycle phase, replacing post-hoc scraping of
 * `SearchResult::trace` (which is still produced). Delivery follows
 * the searcher's recording structure: the serial searchers
 * ("mapper", "bayesopt") record — and therefore stream — each
 * sample as it is computed, while the parallel searchers ("dosa",
 * "random") compute their samples across worker threads and record
 * them in the deterministic serial merge, so their events arrive in
 * trace order but deferred until each merge runs.
 *
 * Returning false from `onSample` cancels the run cooperatively:
 * recording stops within one sample (the final trace length equals
 * the number of `onSample` calls) and compute stops at the
 * searcher's next poll. For the parallel searchers, cancellation
 * raised during the merge therefore trims the output, not the
 * already-finished parallel work — bound their *work* with the
 * budget (`max_samples` derives their natural run length) or the
 * deadline instead.
 */

#ifndef DOSA_API_OBSERVER_HH
#define DOSA_API_OBSERVER_HH

#include <cstddef>

namespace dosa {

/**
 * One sample entering the Pareto front of a multi-objective run
 * (`SearchSpec::mode.pareto`), streamed in trace order right after
 * the sample's own `onSample`. Never fires on single-objective runs.
 */
struct FrontierEvent
{
    /** 0-based trace index of the sample that entered the front. */
    size_t index = 0;
    /** The entering point's metrics (disabled axes carry 0). */
    double edp = 0.0;
    double area_mm2 = 0.0;
    double power_w = 0.0;
    /** Frontier size after this insertion (dominated points whose
     *  removal this entry caused are already gone). */
    size_t front_size = 0;
};

/** One recorded sample, streamed in trace order. */
struct SampleEvent
{
    /** 0-based sample index == position in `SearchResult::trace`. */
    size_t index = 0;
    /** This sample's network EDP (+inf = invalid/rejected design). */
    double edp = 0.0;
    /** Best EDP seen up to and including this sample. */
    double best_edp = 0.0;
    /** Whether this sample strictly improved the best-so-far EDP. */
    bool improved = false;
};

/**
 * Streaming callbacks for one `runSearch` call. All callbacks are
 * invoked from the serial sections of the searcher (sample merges
 * run in trace order), never concurrently; a long-running callback
 * therefore stalls only the merge, not the parallel evaluation.
 * Default implementations ignore every event, so observers override
 * only what they need.
 */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /**
     * A searcher lifecycle phase began. The driver brackets every run
     * with "setup" and "done"; the searcher announces its own interior
     * phases (DOSA: "starts", "descent", "merge"; random: "sampling",
     * "merge"; BO: "warmup", "guided").
     */
    virtual void
    onPhase(const char *phase)
    {
        (void)phase;
    }

    /**
     * One sample was recorded. Return false to cancel the search
     * cooperatively (it stops within one sample).
     */
    virtual bool
    onSample(const SampleEvent &event)
    {
        (void)event;
        return true;
    }

    /** The best-so-far EDP strictly improved at this sample. */
    virtual void
    onImprovement(const SampleEvent &event)
    {
        (void)event;
    }

    /**
     * A sample entered the Pareto front of a multi-objective run;
     * fires after the sample's `onSample` (and `onImprovement`, when
     * both apply). Single-objective runs never deliver this.
     */
    virtual void
    onFrontier(const FrontierEvent &event)
    {
        (void)event;
    }
};

} // namespace dosa

#endif // DOSA_API_OBSERVER_HH
