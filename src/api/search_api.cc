/**
 * @file
 * Facade driver: searcher registry storage, spec validation and the
 * `runSearch` lifecycle (cache policy, SearchControl installation,
 * observer bridging).
 */
#include "api/search_api.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>

#include "exec/eval_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_annotations.hh"
#include "workload/workload_registry.hh"

namespace dosa {

namespace {

/**
 * Turns the phase-callback stream into trace spans: each phase
 * announcement closes the span of the previous phase and opens the
 * next. Phase names are the `const char *` literals the searchers
 * pass (SearchControl contract), so storing the pointer is safe.
 */
class PhaseSpanTracker
{
  public:
    void
    transition(const char *next)
    {
        obs::Tracer &tracer = obs::globalTracer();
        if (!tracer.enabled()) {
            current_ = nullptr;
            return;
        }
        uint64_t now = tracer.nowNs();
        if (current_ != nullptr)
            tracer.recordSpan(current_, "search.phase", start_ns_, now);
        current_ = next;
        start_ns_ = now;
    }

    void
    finish()
    {
        obs::Tracer &tracer = obs::globalTracer();
        if (current_ != nullptr && tracer.enabled())
            tracer.recordSpan(current_, "search.phase", start_ns_,
                              tracer.nowNs());
        current_ = nullptr;
    }

  private:
    const char *current_ = nullptr;
    uint64_t start_ns_ = 0;
};

/**
 * The searcher registry: entries plus the mutex that guards them,
 * bundled so the lock relationship is visible to the thread-safety
 * analysis. Registration order is deterministic; the mutex guards
 * only against concurrent registration/lookup races.
 */
struct Registry
{
    util::Mutex mtx;
    std::vector<const Searcher *> entries GUARDED_BY(mtx);
};

Registry &
registry()
{
    static Registry r;
    return r;
}

void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] { detail::registerBuiltinSearchers(); });
}

/** Option keys the chosen searcher does not consume, as an error. */
bool
checkOptions(const SearchSpec &spec, const Searcher &searcher,
             std::string &error)
{
    const std::vector<std::string_view> known = searcher.optionKeys();
    for (const std::string &key : spec.options.keys()) {
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        std::string valid;
        for (std::string_view k : known) {
            if (!valid.empty())
                valid += ", ";
            valid += k;
        }
        error = "unknown option \"" + key +
                "\" for search algorithm \"" + searcher.name() +
                "\" (valid: " + valid + ")";
        return false;
    }
    return true;
}

/**
 * Scoped eval-cache policy: applies the spec's mode, restores after.
 *
 * The enabled flag it toggles lives on the process-global EvalCache,
 * so two overlapping non-Inherit guards race: whichever destructor
 * runs last "restores" the flag to a value sampled while the other
 * guard's override was live. The service refuses such specs outright
 * (`SearchService::submit` rejects `cache != Inherit`); direct
 * `runSearch` callers get the docs/ARCHITECTURE.md warning plus the
 * debug assertion below when two non-Inherit guards actually overlap.
 */
class CacheModeGuard
{
  public:
    explicit CacheModeGuard(CacheMode mode)
        : restore_(globalEvalCache().enabled()),
          active_(mode != CacheMode::Inherit)
    {
        if (active_) {
            [[maybe_unused]] int prev = activeOverrides().fetch_add(
                    1, std::memory_order_acq_rel);
            assert(prev == 0 &&
                    "concurrent runSearch calls with CacheMode != "
                    "Inherit race on the process-global EvalCache "
                    "flag; use CacheMode::Inherit and set the global "
                    "cache policy once instead");
            globalEvalCache().setEnabled(mode == CacheMode::Enabled);
        }
    }

    ~CacheModeGuard()
    {
        if (active_) {
            globalEvalCache().setEnabled(restore_);
            activeOverrides().fetch_sub(1, std::memory_order_acq_rel);
        }
    }

  private:
    static std::atomic<int> &
    activeOverrides()
    {
        static std::atomic<int> count{0};
        return count;
    }

    bool restore_;
    bool active_;
};

} // namespace

void
detail::appendSearcher(const Searcher *searcher)
{
    if (searcher == nullptr || searcher->name() == nullptr ||
        searcher->name()[0] == '\0')
        panic("Search::registerSearcher: null searcher or empty name");
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    r.entries.push_back(searcher);
}

void
Search::registerSearcher(const Searcher *searcher)
{
    // Bootstrap the builtins first so this registration lands after
    // them: latest-wins shadowing holds no matter when a caller
    // registers relative to the first find()/algorithms() call.
    ensureBuiltins();
    detail::appendSearcher(searcher);
}

const Searcher *
Search::find(std::string_view name)
{
    ensureBuiltins();
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    // Latest registration wins, so tests/backends can shadow a name.
    for (auto it = r.entries.rbegin(); it != r.entries.rend(); ++it)
        if (name == (*it)->name())
            return *it;
    return nullptr;
}

std::vector<std::string>
Search::algorithms()
{
    ensureBuiltins();
    Registry &r = registry();
    util::MutexLock lock(r.mtx);
    std::vector<std::string> names;
    for (const Searcher *searcher : r.entries) {
        std::string name = searcher->name();
        if (std::find(names.begin(), names.end(), name) == names.end())
            names.push_back(std::move(name));
    }
    return names;
}

std::string
Search::algorithmList()
{
    std::string out;
    for (const std::string &name : algorithms()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

bool
validateSpec(const SearchSpec &spec, std::string &error)
{
    const Searcher *searcher = Search::find(spec.algorithm);
    if (searcher == nullptr) {
        error = "unknown search algorithm \"" + spec.algorithm +
                "\" (available: " + Search::algorithmList() + ")";
        return false;
    }
    if (!checkOptions(spec, *searcher, error))
        return false;
    if (!spec.workload_name.empty()) {
        if (!spec.workload.empty()) {
            error = "search spec sets both workload_name and an "
                    "explicit workload (pick one)";
            return false;
        }
        if (Workloads::find(spec.workload_name) == nullptr) {
            error = "unknown workload \"" + spec.workload_name +
                    "\" (available: " + Workloads::nameList() + ")";
            return false;
        }
    } else if (spec.workload.empty()) {
        error = "search spec has an empty workload";
        return false;
    }
    for (const Layer &layer : spec.workload) {
        if (!layer.valid()) {
            error = "search spec workload layer \"" + layer.name +
                    "\" is ill-formed (every dimension must be >= 1)";
            return false;
        }
    }
    if (spec.budget.max_samples < 0 || spec.budget.deadline_s < 0.0) {
        error = "search budget limits must be non-negative";
        return false;
    }
    const ParetoObjectives &pareto = spec.mode.pareto;
    if (!pareto.edp.enabled && !pareto.area.enabled &&
        !pareto.power.enabled) {
        error = "search spec pareto mode disables every objective "
                "axis (enable at least one of edp/area/power)";
        return false;
    }
    auto bad_weight = [](const ParetoAxis &axis) {
        return axis.enabled &&
               !(axis.weight > 0.0 &&
                       axis.weight <=
                               std::numeric_limits<double>::max());
    };
    if (bad_weight(pareto.edp) || bad_weight(pareto.area) ||
        bad_weight(pareto.power)) {
        error = "search spec pareto axis weights must be positive "
                "and finite";
        return false;
    }
    return true;
}

SearchReport
runSearch(const SearchSpec &spec, SearchObserver *observer)
{
    std::string error;
    if (!validateSpec(spec, error))
        fatal(error);
    if (!spec.workload_name.empty()) {
        // Resolve the named workload into its registered layers up
        // front so every searcher (and plannedSamples) sees concrete
        // layers; a by-name run is byte-identical to one whose caller
        // inlined the same layers.
        SearchSpec resolved = spec;
        resolved.workload = Workloads::find(spec.workload_name)->layers;
        resolved.workload_name.clear();
        return runSearch(resolved, observer);
    }
    const Searcher *searcher = Search::find(spec.algorithm);

    CacheModeGuard cache_guard(spec.cache);
    obs::TraceSpan run_span("runSearch", "search");
    obs::counter("api.searches").add(1);

    // Bridge the observer (and the phase-span tracker) onto the
    // cooperative run control the searchers poll; without an observer
    // the control still enforces the budget and deadline.
    PhaseSpanTracker phases;
    SearchControl::SampleFn on_sample;
    if (observer != nullptr) {
        on_sample = [observer](size_t count, double edp,
                               double best_edp, bool improved) {
            SampleEvent event{count - 1, edp, best_edp, improved};
            bool keep_going = observer->onSample(event);
            if (improved)
                observer->onImprovement(event);
            return keep_going;
        };
    }
    SearchControl::PhaseFn on_phase = [observer,
                                       &phases](const char *phase) {
        phases.transition(phase);
        if (observer != nullptr)
            observer->onPhase(phase);
    };
    SearchControl control(
            static_cast<size_t>(spec.budget.max_samples),
            spec.budget.deadline_s, std::move(on_sample),
            std::move(on_phase));
    if (observer != nullptr && spec.mode.pareto.active()) {
        control.setFrontierCallback(
                [observer](const ParetoPoint &point,
                        size_t front_size) {
                    FrontierEvent event{point.sample_index, point.edp,
                            point.area_mm2, point.power_w,
                            front_size};
                    observer->onFrontier(event);
                });
    }

    control.phase("setup");
    SearchReport report = searcher->run(spec, &control);
    control.phase("done");
    phases.finish();
    obs::counter("api.samples")
        .add(static_cast<uint64_t>(report.search.trace.size()));
    // The result leaves the driver's scope; the control dies here.
    report.search.control = nullptr;
    return report;
}

} // namespace dosa
