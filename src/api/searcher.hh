/**
 * @file
 * The abstract Searcher interface and the name registry behind the
 * `src/api` facade. Each search algorithm (DOSA one-loop descent,
 * random co-search, fixed-hardware mapper, BB-BO) registers one
 * `Searcher` under a stable name; `runSearch` dispatches specs
 * against the registry, so a new backend (RPC measurement fleet,
 * multi-process sharding, a new algorithm) is one registry entry
 * instead of a cross-cutting edit of every bench and example.
 */

#ifndef DOSA_API_SEARCHER_HH
#define DOSA_API_SEARCHER_HH

#include <string>
#include <string_view>
#include <vector>

#include "api/search_spec.hh"
#include "search/search_common.hh"

namespace dosa {

/**
 * Outcome of one facade run: the shared `SearchResult` (best design
 * + monotone trace) plus the DOSA-only start-point attribution that
 * Fig. 9 reports (left at +inf / default by the other algorithms).
 *
 * Consistency contract: `search.best_edp` always equals the minimum
 * of the recorded trace, and an installed `best_hw`/`best_mappings`
 * always scores exactly `best_edp`. When a run is cancelled (or hits
 * its budget/deadline) before the winning sample is recorded, the
 * design stays empty rather than reporting a design better than the
 * truncated trace claims.
 */
struct SearchReport
{
    SearchResult search;
    /** "dosa" only: reference EDP of the best start point (Fig. 9). */
    double best_start_edp = std::numeric_limits<double>::infinity();
    /** "dosa" only: hardware of the best start point. */
    HardwareConfig best_start_hw;
};

/**
 * One registered search algorithm. Implementations translate a
 * `SearchSpec` into their native configuration (deriving
 * natural-length options from `spec.budget.max_samples` when absent)
 * and run with the driver's `SearchControl` threaded through
 * `SearchResult::record`.
 */
class Searcher
{
  public:
    virtual ~Searcher() = default;

    /** Stable registry name ("dosa", "random", "mapper", "bayesopt"). */
    virtual const char *name() const = 0;

    /** One-line description for listings and `--algo` errors. */
    virtual const char *description() const = 0;

    /**
     * Option keys this searcher consumes. `runSearch` rejects a spec
     * whose bag holds any other key, so typos fail loudly.
     */
    virtual std::vector<std::string_view> optionKeys() const = 0;

    /**
     * Samples the spec implies (its options after budget derivation):
     * used for trace pre-reservation and budget sanity checks.
     */
    virtual size_t plannedSamples(const SearchSpec &spec) const = 0;

    /**
     * Run the search. `control` is the driver-installed cooperative
     * run control (may be null when invoked outside the driver).
     */
    virtual SearchReport run(const SearchSpec &spec,
                             SearchControl *control) const = 0;
};

/**
 * The process-wide searcher registry. The four in-tree algorithms
 * self-register on first use (anchored through
 * `registerBuiltinSearchers` so static-library dead-stripping cannot
 * drop them); external backends add themselves with
 * `registerSearcher` at startup and become reachable from every
 * `--algo` flag and `runSearch` call without further plumbing.
 */
class Search
{
  public:
    /**
     * Register a searcher under `searcher->name()`. The object must
     * outlive the process (registrants are typically function-local
     * statics). The builtin bootstrap runs first, so a registration
     * always lands after the builtins: re-registering a name shadows
     * the previous entry (latest wins), letting tests stub a builtin
     * regardless of when they register.
     */
    static void registerSearcher(const Searcher *searcher);

    /** Searcher registered under `name`, or null when unknown. */
    static const Searcher *find(std::string_view name);

    /** All registered algorithm names, in registration order. */
    static std::vector<std::string> algorithms();

    /** `algorithms()` joined with ", " — for error messages. */
    static std::string algorithmList();
};

namespace detail {

/**
 * Internal registry append without the builtin bootstrap — the hook
 * `registerBuiltinSearchers` registers through (calling the public
 * `registerSearcher` there would re-enter the bootstrap). External
 * backends use `Search::registerSearcher`.
 */
void appendSearcher(const Searcher *searcher);

/**
 * Registers the four in-tree searchers; called lazily by the
 * registry so a static-library link cannot dead-strip them.
 */
void registerBuiltinSearchers();

} // namespace detail

} // namespace dosa

#endif // DOSA_API_SEARCHER_HH
