/**
 * @file
 * The four in-tree searcher adapters ("dosa", "random", "mapper",
 * "bayesopt") and the legacy free-function compat shims.
 *
 * Each adapter translates a `SearchSpec` into the searcher's native
 * config — reading its option bag, deriving natural-length options
 * from `budget.max_samples` when absent — and calls the canonical
 * `detail::` implementation with the driver's `SearchControl`
 * installed. The shims go the other way: they pack a legacy config
 * into a spec and dispatch through `runSearch`, so the facade and
 * the free functions are the same code path (every numeric config
 * field round-trips exactly through the option bag; seed, scorer
 * and mode travel on dedicated spec fields), and the golden-trace
 * fixtures pin the equivalence bitwise.
 */
#include <algorithm>

#include "api/search_api.hh"
#include "core/dosa_optimizer.hh"
#include "search/bayes_opt.hh"
#include "search/random_search.hh"

namespace dosa {

namespace {

/** Adapter for the DOSA one-loop gradient-descent co-search. */
class DosaSearcher : public Searcher
{
  public:
    const char *name() const override { return "dosa"; }

    const char *
    description() const override
    {
        return "one-loop differentiable co-search (Adam descent with "
               "periodic rounding)";
    }

    std::vector<std::string_view>
    optionKeys() const override
    {
        return {"start_points", "steps_per_start", "round_every",
                "lr", "lr_decay", "line_search_probes", "strategy",
                "reject_factor", "max_start_tries",
                "project_feasible", "restart_from_best"};
    }

    /** Spec -> native config (budget-derived steps when absent). */
    static DosaConfig
    configFromSpec(const SearchSpec &spec)
    {
        const OptionBag &opt = spec.options;
        DosaConfig cfg;
        cfg.mode = spec.mode;
        cfg.seed = spec.seed;
        cfg.jobs = spec.jobs;
        cfg.score_latency = spec.scorer;
        cfg.start_points = static_cast<int>(
                opt.getInt("start_points", cfg.start_points));
        if (opt.has("steps_per_start"))
            cfg.steps_per_start = static_cast<int>(
                    opt.getInt("steps_per_start",
                            cfg.steps_per_start));
        else if (spec.budget.max_samples > 0)
            // One sample per step plus one per start point: spend
            // the unified budget across the starts.
            cfg.steps_per_start = std::max(1,
                    spec.budget.max_samples /
                            std::max(1, cfg.start_points) - 1);
        cfg.round_every = static_cast<int>(
                opt.getInt("round_every", cfg.round_every));
        cfg.lr = opt.get("lr", cfg.lr);
        cfg.lr_decay = opt.get("lr_decay", cfg.lr_decay);
        cfg.line_search_probes = static_cast<int>(
                opt.getInt("line_search_probes",
                        cfg.line_search_probes));
        cfg.strategy = static_cast<OrderStrategy>(opt.getInt(
                "strategy", static_cast<int64_t>(cfg.strategy)));
        cfg.reject_factor =
                opt.get("reject_factor", cfg.reject_factor);
        cfg.max_start_tries = static_cast<int>(
                opt.getInt("max_start_tries", cfg.max_start_tries));
        cfg.project_feasible =
                opt.getInt("project_feasible",
                        cfg.project_feasible ? 1 : 0) != 0;
        cfg.restart_from_best =
                opt.getInt("restart_from_best",
                        cfg.restart_from_best ? 1 : 0) != 0;
        return cfg;
    }

    size_t
    plannedSamples(const SearchSpec &spec) const override
    {
        DosaConfig cfg = configFromSpec(spec);
        return static_cast<size_t>(cfg.start_points) *
               (static_cast<size_t>(cfg.steps_per_start) + 1);
    }

    SearchReport
    run(const SearchSpec &spec, SearchControl *control) const override
    {
        DosaConfig cfg = configFromSpec(spec);
        cfg.control = control;
        DosaResult r = detail::dosaSearchImpl(spec.workload, cfg);
        SearchReport report;
        report.search = std::move(r.search);
        report.best_start_edp = r.best_start_edp;
        report.best_start_hw = r.best_start_hw;
        return report;
    }
};

/** Adapter for the random hardware+mapping co-search baseline. */
class RandomSearcher : public Searcher
{
  public:
    const char *name() const override { return "random"; }

    const char *
    description() const override
    {
        return "random hardware + mapping co-search baseline";
    }

    std::vector<std::string_view>
    optionKeys() const override
    {
        return {"hw_designs", "mappings_per_hw"};
    }

    static RandomSearchConfig
    configFromSpec(const SearchSpec &spec)
    {
        const OptionBag &opt = spec.options;
        RandomSearchConfig cfg;
        cfg.seed = spec.seed;
        cfg.jobs = spec.jobs;
        cfg.scorer = spec.scorer;
        cfg.pareto = spec.mode.pareto;
        cfg.hw_designs = static_cast<int>(
                opt.getInt("hw_designs", cfg.hw_designs));
        if (opt.has("mappings_per_hw"))
            cfg.mappings_per_hw = static_cast<int>(
                    opt.getInt("mappings_per_hw",
                            cfg.mappings_per_hw));
        else if (spec.budget.max_samples > 0)
            cfg.mappings_per_hw = std::max(1,
                    spec.budget.max_samples /
                            std::max(1, cfg.hw_designs));
        return cfg;
    }

    size_t
    plannedSamples(const SearchSpec &spec) const override
    {
        RandomSearchConfig cfg = configFromSpec(spec);
        return static_cast<size_t>(cfg.hw_designs) *
               static_cast<size_t>(cfg.mappings_per_hw);
    }

    SearchReport
    run(const SearchSpec &spec, SearchControl *control) const override
    {
        RandomSearchConfig cfg = configFromSpec(spec);
        cfg.control = control;
        SearchReport report;
        report.search = detail::randomSearchImpl(spec.workload, cfg);
        return report;
    }
};

/** Adapter for the fixed-hardware random mapper (Figs. 8 and 9). */
class MapperSearcher : public Searcher
{
  public:
    const char *name() const override { return "mapper"; }

    const char *
    description() const override
    {
        return "fixed-hardware random mapping search (Timeloop "
               "random-mapper stand-in) over spec.fixed_hw";
    }

    std::vector<std::string_view>
    optionKeys() const override
    {
        return {"samples"};
    }

    /** Sample count: explicit option, else the unified budget. */
    static int
    samplesFromSpec(const SearchSpec &spec)
    {
        if (spec.options.has("samples"))
            return static_cast<int>(
                    spec.options.getInt("samples", 1000));
        if (spec.budget.max_samples > 0)
            return spec.budget.max_samples;
        return 1000;
    }

    size_t
    plannedSamples(const SearchSpec &spec) const override
    {
        return static_cast<size_t>(samplesFromSpec(spec));
    }

    SearchReport
    run(const SearchSpec &spec, SearchControl *control) const override
    {
        SearchReport report;
        report.search = detail::randomMapperSearchImpl(spec.workload,
                spec.fixed_hw, samplesFromSpec(spec), spec.seed,
                spec.jobs, spec.scorer, control, spec.mode.pareto);
        return report;
    }
};

/** Adapter for the two-loop Bayesian-optimization baseline. */
class BayesOptSearcher : public Searcher
{
  public:
    const char *name() const override { return "bayesopt"; }

    const char *
    description() const override
    {
        return "two-loop black-box Bayesian optimization over GP "
               "posterior LCB";
    }

    std::vector<std::string_view>
    optionKeys() const override
    {
        return {"warmup_samples", "total_samples", "hw_candidates",
                "map_candidates", "refit_every", "max_train_points",
                "lcb_kappa"};
    }

    static BayesOptConfig
    configFromSpec(const SearchSpec &spec)
    {
        const OptionBag &opt = spec.options;
        BayesOptConfig cfg;
        cfg.seed = spec.seed;
        cfg.jobs = spec.jobs;
        cfg.scorer = spec.scorer;
        cfg.pareto = spec.mode.pareto;
        cfg.warmup_samples = static_cast<int>(
                opt.getInt("warmup_samples", cfg.warmup_samples));
        if (opt.has("total_samples"))
            cfg.total_samples = static_cast<int>(
                    opt.getInt("total_samples", cfg.total_samples));
        else if (spec.budget.max_samples > 0)
            cfg.total_samples = spec.budget.max_samples;
        cfg.hw_candidates = static_cast<int>(
                opt.getInt("hw_candidates", cfg.hw_candidates));
        cfg.map_candidates = static_cast<int>(
                opt.getInt("map_candidates", cfg.map_candidates));
        cfg.refit_every = static_cast<int>(
                opt.getInt("refit_every", cfg.refit_every));
        cfg.max_train_points = static_cast<int>(
                opt.getInt("max_train_points",
                        cfg.max_train_points));
        cfg.lcb_kappa = opt.get("lcb_kappa", cfg.lcb_kappa);
        return cfg;
    }

    size_t
    plannedSamples(const SearchSpec &spec) const override
    {
        return static_cast<size_t>(
                configFromSpec(spec).total_samples);
    }

    SearchReport
    run(const SearchSpec &spec, SearchControl *control) const override
    {
        BayesOptConfig cfg = configFromSpec(spec);
        cfg.control = control;
        SearchReport report;
        report.search =
                detail::bayesOptSearchImpl(spec.workload, cfg);
        return report;
    }
};

/** Shared spec scaffolding of the four compat shims. */
SearchSpec
baseSpec(const char *algorithm, const std::vector<Layer> &layers,
         uint64_t seed, int jobs, const LatencyScorer &scorer)
{
    SearchSpec spec;
    spec.algorithm = algorithm;
    spec.workload = layers;
    spec.seed = seed;
    spec.jobs = jobs;
    spec.scorer = scorer;
    return spec;
}

} // namespace

namespace detail {

void
registerBuiltinSearchers()
{
    static const DosaSearcher dosa_searcher;
    static const RandomSearcher random_searcher;
    static const MapperSearcher mapper_searcher;
    static const BayesOptSearcher bayesopt_searcher;
    // appendSearcher, not registerSearcher: this hook runs inside
    // the bootstrap, which registerSearcher would re-enter.
    appendSearcher(&dosa_searcher);
    appendSearcher(&random_searcher);
    appendSearcher(&mapper_searcher);
    appendSearcher(&bayesopt_searcher);
}

} // namespace detail

// ---------------------------------------------------------------------------
// Legacy compat shims: pack the native config into a SearchSpec and
// dispatch through the facade. A caller that installed its own
// SearchControl goes straight to the implementation (the facade
// would otherwise replace the control with its own).
// ---------------------------------------------------------------------------

DosaResult
dosaSearch(const std::vector<Layer> &layers, const DosaConfig &cfg)
{
    if (cfg.control != nullptr)
        return detail::dosaSearchImpl(layers, cfg);
    SearchSpec spec = baseSpec("dosa", layers, cfg.seed, cfg.jobs,
            cfg.score_latency);
    spec.mode = cfg.mode;
    spec.options.set("start_points", cfg.start_points)
            .set("steps_per_start", cfg.steps_per_start)
            .set("round_every", cfg.round_every)
            .set("lr", cfg.lr)
            .set("lr_decay", cfg.lr_decay)
            .set("line_search_probes", cfg.line_search_probes)
            .set("strategy", static_cast<double>(cfg.strategy))
            .set("reject_factor", cfg.reject_factor)
            .set("max_start_tries", cfg.max_start_tries)
            .set("project_feasible", cfg.project_feasible ? 1 : 0)
            .set("restart_from_best", cfg.restart_from_best ? 1 : 0);
    SearchReport report = runSearch(spec);
    DosaResult out;
    out.search = std::move(report.search);
    out.best_start_edp = report.best_start_edp;
    out.best_start_hw = report.best_start_hw;
    return out;
}

SearchResult
randomSearch(const std::vector<Layer> &layers,
             const RandomSearchConfig &cfg)
{
    if (cfg.control != nullptr)
        return detail::randomSearchImpl(layers, cfg);
    SearchSpec spec = baseSpec("random", layers, cfg.seed, cfg.jobs,
            cfg.scorer);
    spec.mode.pareto = cfg.pareto;
    spec.options.set("hw_designs", cfg.hw_designs)
            .set("mappings_per_hw", cfg.mappings_per_hw);
    SearchReport report = runSearch(spec);
    return std::move(report.search);
}

SearchResult
randomMapperSearch(const std::vector<Layer> &layers,
                   const HardwareConfig &hw, int samples, uint64_t seed,
                   int jobs, const LatencyScorer &scorer)
{
    SearchSpec spec = baseSpec("mapper", layers, seed, jobs, scorer);
    spec.fixed_hw = hw;
    spec.options.set("samples", samples);
    SearchReport report = runSearch(spec);
    return std::move(report.search);
}

SearchResult
bayesOptSearch(const std::vector<Layer> &layers,
               const BayesOptConfig &cfg)
{
    if (cfg.control != nullptr)
        return detail::bayesOptSearchImpl(layers, cfg);
    SearchSpec spec = baseSpec("bayesopt", layers, cfg.seed, cfg.jobs,
            cfg.scorer);
    spec.mode.pareto = cfg.pareto;
    spec.options.set("warmup_samples", cfg.warmup_samples)
            .set("total_samples", cfg.total_samples)
            .set("hw_candidates", cfg.hw_candidates)
            .set("map_candidates", cfg.map_candidates)
            .set("refit_every", cfg.refit_every)
            .set("max_train_points", cfg.max_train_points)
            .set("lcb_kappa", cfg.lcb_kappa);
    SearchReport report = runSearch(spec);
    return std::move(report.search);
}

} // namespace dosa
