/**
 * @file
 * SearchSpec: the one self-contained description of a search run
 * consumed by the `src/api` facade — workload, objective mode, a
 * unified budget (sample cap + wall-clock deadline), seed/jobs/
 * scorer/cache knobs and a loosely-typed per-algorithm option bag.
 *
 * Every registered searcher (`Search::algorithms()`) runs from the
 * same spec shape, so benches and services can sweep algorithms under
 * one budget without per-algorithm config plumbing.
 */

#ifndef DOSA_API_SEARCH_SPEC_HH
#define DOSA_API_SEARCH_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/hardware_config.hh"
#include "core/objective.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * Unified search budget, shared by every algorithm.
 *
 * Both limits are enforced cooperatively by the `SearchControl` the
 * driver installs; searchers poll at their natural work boundaries
 * (one descent step, one sampled design).
 *
 * `max_samples` plays two roles. It seeds per-algorithm defaults —
 * an adapter whose natural-length option (e.g. "total_samples",
 * "steps_per_start", "mappings_per_hw") is absent derives it from
 * the cap, which is how "same sample budget" comparisons are
 * expressed and how the cap bounds *work* for every algorithm. It
 * is also a hard cap on recorded samples: the trace never exceeds
 * it. Note that for the parallel searchers ("dosa", "random") an
 * explicit natural-length option larger than the cap means the
 * extra samples are still computed and only the trace is truncated
 * — leave the length option unset (budget-derived) to bound the
 * compute itself.
 *
 * `deadline_s` stops compute at the next poll; samples computed
 * before it expired are still recorded, so a timed-out run returns
 * the best design found so far.
 */
struct SearchBudget
{
    /** Hard cap on recorded samples (0 = the algorithm's natural length). */
    int max_samples = 0;
    /** Wall-clock deadline in seconds (0 = none). */
    double deadline_s = 0.0;
};

/**
 * Shared evaluation-cache policy for one run. The EvalCache (and its
 * enabled flag) is process-global, so `Enabled`/`Disabled` are A/B
 * timing knobs for one run at a time — concurrent `runSearch` calls
 * toggling it in opposite directions would fight over the same flag.
 * Runs that fan out in parallel (e.g. bench cells) use `Inherit`.
 */
enum class CacheMode
{
    Inherit,  ///< leave the global EvalCache as the caller configured it
    Enabled,  ///< force the cache on for this run (restored after)
    Disabled, ///< force the cache off for this run (restored after)
};

/**
 * Loosely-typed per-algorithm numeric options. Keys are flat names
 * ("start_points", "mappings_per_hw", ...); each registered searcher
 * documents and validates its own set via `Searcher::optionKeys` —
 * an unknown key is a fatal configuration error, so typos cannot
 * silently fall back to defaults. All values are doubles; integer
 * and boolean options are stored exactly (counts are far below
 * 2^53), and enum-valued options (e.g. the DOSA "strategy") store
 * the enumerator value.
 */
class OptionBag
{
  public:
    /** Set (or overwrite) an option; returns *this for chaining. */
    OptionBag &
    set(const std::string &key, double value)
    {
        values_[key] = value;
        return *this;
    }

    /** True when `key` was explicitly set. */
    bool has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    /** Value of `key`, or `fallback` when absent. */
    double
    get(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    /** Integer value of `key`, or `fallback` when absent. */
    int64_t
    getInt(const std::string &key, int64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                ? fallback
                : static_cast<int64_t>(it->second);
    }

    /** All explicitly-set keys, in sorted order. */
    std::vector<std::string>
    keys() const
    {
        std::vector<std::string> out;
        out.reserve(values_.size());
        for (const auto &[key, value] : values_) {
            (void)value;
            out.push_back(key);
        }
        return out;
    }

  private:
    std::map<std::string, double> values_;
};

/**
 * Everything `runSearch` needs to run any registered algorithm:
 * the public entry-point configuration of the search subsystem.
 */
struct SearchSpec
{
    /** Registry name: "dosa", "random", "mapper" or "bayesopt". */
    std::string algorithm = "dosa";

    /** Unique layers of the target network (with repeat counts). */
    std::vector<Layer> workload;

    /**
     * Alternative to `workload`: the name of a registered workload
     * (`Workloads::find`). `runSearch` resolves the name into the
     * registered layer list before dispatch; setting both the name
     * and an explicit layer list is a validation error, as is a name
     * the registry does not know. Names travel over the wire
     * (spec_json), so a service client can request a search on
     * "llm_decode_7b" without shipping its layers.
     */
    std::string workload_name;

    /**
     * Objective-level knobs (frozen PE array, area budget, layer
     * weights, differentiable latency model). Consumed by the "dosa"
     * searcher; sample-based baselines ignore it.
     */
    ObjectiveMode mode;

    /** Unified sample/wall-clock budget. */
    SearchBudget budget;

    /** Base RNG seed (split into per-work-unit streams). */
    uint64_t seed = 1;

    /** Worker threads; results are bit-identical for any value. */
    int jobs = 1;

    /** Evaluation-cache policy for this run. */
    CacheMode cache = CacheMode::Inherit;

    /**
     * Optional concrete-design latency scorer; every searcher routes
     * per-design latency queries through its batched `scoreDesigns`
     * seam. Empty = (cached) reference-model latency.
     */
    LatencyScorer scorer;

    /**
     * Fixed target hardware for the "mapper" algorithm (the other
     * algorithms search the hardware space and ignore it).
     */
    HardwareConfig fixed_hw;

    /** Per-algorithm options (see each searcher's `optionKeys`). */
    OptionBag options;
};

} // namespace dosa

#endif // DOSA_API_SEARCH_SPEC_HH
