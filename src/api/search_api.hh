/**
 * @file
 * The public entry point of the search subsystem: build a
 * `SearchSpec`, pick a registered algorithm, call `runSearch`, and
 * optionally stream progress through a `SearchObserver`.
 *
 * Typical use:
 * @code
 *   SearchSpec spec;
 *   spec.algorithm = "dosa";            // any Search::algorithms()
 *   spec.workload_name = "resnet50";    // any Workloads::names()
 *   spec.budget.max_samples = 10000;    // unified sample budget
 *   spec.seed = 7;
 *   SearchReport report = runSearch(spec);
 * @endcode
 *
 * Workloads come either inline (`spec.workload`, a layer list built
 * in code or loaded from a workload file) or by name
 * (`spec.workload_name`, resolved against the `Workloads` registry
 * before dispatch — see workload/workload_registry.hh).
 *
 * The legacy free functions (`dosaSearch`, `randomSearch`,
 * `randomMapperSearch`, `bayesOptSearch`) are thin compat shims over
 * this facade and produce bitwise-identical results (the
 * `tests/golden/` fixtures pin that equivalence).
 */

#ifndef DOSA_API_SEARCH_API_HH
#define DOSA_API_SEARCH_API_HH

#include "api/observer.hh"
#include "api/search_spec.hh"
#include "api/searcher.hh"

namespace dosa {

/**
 * Run the search described by `spec` with the registered algorithm
 * `spec.algorithm`, streaming progress to `observer` (optional).
 *
 * The driver validates the spec (unknown algorithm, option keys or
 * workload name are fatal configuration errors listing the valid
 * choices), resolves a `spec.workload_name` into its registered
 * layers (a by-name run is byte-identical to inlining those layers),
 * applies the cache policy for the duration of the run, installs a
 * `SearchControl` carrying the budget/deadline and the observer
 * bridge, and dispatches to the registered searcher (which
 * pre-reserves the result trace from its planned sample count).
 * For a fixed spec the result is bit-identical for any `spec.jobs`
 * value and for the presence/absence of an observer.
 */
SearchReport runSearch(const SearchSpec &spec,
                       SearchObserver *observer = nullptr);

/**
 * Non-fatal validation of everything `runSearch` would reject as a
 * fatal configuration error: unknown algorithm (the message lists
 * the registry), option keys the chosen searcher does not consume,
 * an empty workload or ill-formed layers, an unknown or ambiguous
 * `workload_name` (the message lists the workload registry),
 * negative budget limits.
 * Returns false and sets `error` instead of exiting — the check a
 * long-running caller (the search service) runs on untrusted specs
 * before dispatching, so a bad request cannot take the process down.
 */
[[nodiscard]] bool validateSpec(const SearchSpec &spec, std::string &error);

} // namespace dosa

#endif // DOSA_API_SEARCH_API_HH
