/**
 * @file
 * Canonical JSON serialization of `SearchSpec` — the encoding the
 * search service's wire protocol carries specs in, usable standalone
 * for config files and stored experiments.
 *
 * The encoding is total and canonical: every spec field is always
 * emitted (members in sorted key order, canonical number tokens), so
 * encode(decode(encode(s))) is bitwise-stable and two equal specs
 * always serialize to the same bytes. Two fields cannot travel by
 * value and are therefore rejected by the encoder: `spec.scorer` and
 * `spec.mode.latency_model` are process-local callbacks/objects —
 * remote backends install them server-side instead.
 *
 * The decoder is strict and non-fatal: unknown keys, type mismatches
 * and malformed JSON produce `false` plus a path diagnostic (never a
 * crash), which the service turns into structured `error` replies.
 *
 * Workloads travel either inline (`"workload"`, the full layer list)
 * or by registry name (`"workload_name"`, resolved against the
 * `Workloads` registry on the serving side at `runSearch` time) — a
 * client can request `"workload_name": "llm_decode_7b"` without
 * knowing its layers. Name resolution is deliberately not part of
 * decoding: the decoder stays structural, `validateSpec` reports an
 * unknown name against the *local* registry.
 * `mustSpecFromJson` is the parse-or-die wrapper for trusted
 * in-process text (checked-in configs, test fixtures) — fatal by
 * contract on any parse error, so a bad fixture cannot silently run
 * a default spec.
 */

#ifndef DOSA_API_SPEC_JSON_HH
#define DOSA_API_SPEC_JSON_HH

#include <string>
#include <string_view>

#include "api/search_spec.hh"
#include "util/json.hh"

namespace dosa {

/**
 * Encode `spec` as a canonical JSON value. Panics when the spec
 * carries a scorer or a differentiable latency model (process-local,
 * not serializable).
 */
json::Value specToJsonValue(const SearchSpec &spec);

/** `specToJsonValue(spec).dump()`: the canonical one-line form. */
std::string specToJson(const SearchSpec &spec);

/**
 * Strictly decode a spec from a parsed JSON value. Returns false and
 * sets `error` (with a field path) on unknown keys, type mismatches
 * or out-of-domain enum strings. Structural only: use `validateSpec`
 * (search_api.hh) for the semantic checks a decoded spec still needs
 * before running.
 */
[[nodiscard]] bool specFromJsonValue(const json::Value &value, SearchSpec &out,
                       std::string &error);

/** Parse `text` then decode; false + diagnostic on either failure. */
[[nodiscard]] bool specFromJson(std::string_view text, SearchSpec &out,
                  std::string &error);

/**
 * Parse-or-die decode for trusted in-process spec text; fatal (exit
 * 1) with the decoder's diagnostic on any error. Never use on bytes
 * that crossed a socket — the wire path reports structured errors
 * through the non-fatal decoder instead.
 */
SearchSpec mustSpecFromJson(std::string_view text);

} // namespace dosa

#endif // DOSA_API_SPEC_JSON_HH
