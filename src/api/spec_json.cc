/**
 * @file
 * SearchSpec <-> canonical JSON. See spec_json.hh for the encoding
 * contract (total, canonical, strict non-fatal decode).
 */
#include "api/spec_json.hh"


#include "util/logging.hh"

namespace dosa {

namespace {

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::Inherit: return "inherit";
      case CacheMode::Enabled: return "enabled";
      case CacheMode::Disabled: return "disabled";
    }
    return "inherit";
}

json::Value
layerToJson(const Layer &layer)
{
    json::Value v = json::Value::object();
    v.set("name", json::Value::string(layer.name));
    v.set("r", json::Value::number(layer.r));
    v.set("s", json::Value::number(layer.s));
    v.set("p", json::Value::number(layer.p));
    v.set("q", json::Value::number(layer.q));
    v.set("c", json::Value::number(layer.c));
    v.set("k", json::Value::number(layer.k));
    v.set("n", json::Value::number(layer.n));
    v.set("stride", json::Value::number(layer.stride));
    v.set("count", json::Value::number(layer.count));
    return v;
}

json::Value
hwToJson(const HardwareConfig &hw)
{
    json::Value v = json::Value::object();
    v.set("pe_dim", json::Value::number(hw.pe_dim));
    v.set("accum_kib", json::Value::number(hw.accum_kib));
    v.set("spad_kib", json::Value::number(hw.spad_kib));
    return v;
}

bool
layerFromJson(const json::Value &value, const std::string &path,
              Layer &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    r.readString("name", out.name);
    r.readInt("r", out.r);
    r.readInt("s", out.s);
    r.readInt("p", out.p);
    r.readInt("q", out.q);
    r.readInt("c", out.c);
    r.readInt("k", out.k);
    r.readInt("n", out.n);
    r.readInt("stride", out.stride);
    r.readInt("count", out.count);
    return r.finish();
}

bool
hwFromJson(const json::Value &value, const std::string &path,
           HardwareConfig &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    r.readInt("pe_dim", out.pe_dim);
    r.readInt("accum_kib", out.accum_kib);
    r.readInt("spad_kib", out.spad_kib);
    return r.finish();
}

json::Value
paretoAxisToJson(const ParetoAxis &axis)
{
    json::Value v = json::Value::object();
    v.set("enabled", json::Value::boolean(axis.enabled));
    v.set("weight", json::Value::number(axis.weight));
    return v;
}

bool
paretoAxisFromJson(const json::Value &value, const std::string &path,
                   ParetoAxis &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    r.readBool("enabled", out.enabled);
    r.readDouble("weight", out.weight);
    return r.finish();
}

} // namespace

json::Value
specToJsonValue(const SearchSpec &spec)
{
    if (spec.scorer)
        panic("specToJson: spec.scorer is process-local and cannot "
              "be serialized");
    if (spec.mode.latency_model != nullptr)
        panic("specToJson: spec.mode.latency_model is process-local "
              "and cannot be serialized");

    json::Value v = json::Value::object();
    v.set("algorithm", json::Value::string(spec.algorithm));

    json::Value workload = json::Value::array();
    for (const Layer &layer : spec.workload)
        workload.push(layerToJson(layer));
    v.set("workload", std::move(workload));
    v.set("workload_name", json::Value::string(spec.workload_name));

    json::Value mode = json::Value::object();
    mode.set("fix_pe", json::Value::boolean(spec.mode.fix_pe));
    mode.set("pe_dim", json::Value::number(spec.mode.pe_dim));
    mode.set("penalty_weight",
            json::Value::number(spec.mode.penalty_weight));
    mode.set("max_area_mm2",
            json::Value::number(spec.mode.max_area_mm2));
    json::Value weights = json::Value::array();
    for (double w : spec.mode.layer_weights)
        weights.push(json::Value::number(w));
    mode.set("layer_weights", std::move(weights));
    json::Value pareto = json::Value::object();
    pareto.set("edp", paretoAxisToJson(spec.mode.pareto.edp));
    pareto.set("area", paretoAxisToJson(spec.mode.pareto.area));
    pareto.set("power", paretoAxisToJson(spec.mode.pareto.power));
    mode.set("pareto", std::move(pareto));
    v.set("mode", std::move(mode));

    json::Value budget = json::Value::object();
    budget.set("max_samples",
            json::Value::number(int64_t(spec.budget.max_samples)));
    budget.set("deadline_s",
            json::Value::number(spec.budget.deadline_s));
    v.set("budget", std::move(budget));

    v.set("seed", json::Value::number(spec.seed));
    v.set("jobs", json::Value::number(int64_t(spec.jobs)));
    v.set("cache", json::Value::string(cacheModeName(spec.cache)));
    v.set("fixed_hw", hwToJson(spec.fixed_hw));

    json::Value options = json::Value::object();
    for (const std::string &key : spec.options.keys())
        options.set(key,
                json::Value::number(spec.options.get(key, 0.0)));
    v.set("options", std::move(options));
    return v;
}

std::string
specToJson(const SearchSpec &spec)
{
    return specToJsonValue(spec).dump();
}

bool
specFromJsonValue(const json::Value &value, SearchSpec &out,
                  std::string &error)
{
    out = SearchSpec{};
    json::ObjectReader r(value, "spec", error);
    r.readString("algorithm", out.algorithm);

    if (const json::Value *workload = r.consume("workload")) {
        if (!workload->isArray())
            return r.fail("workload: expected an array");
        const auto &elems = workload->elements();
        out.workload.resize(elems.size());
        for (size_t i = 0; i < elems.size(); ++i)
            if (!layerFromJson(elems[i],
                        "spec.workload[" + std::to_string(i) + "]",
                        out.workload[i], error))
                return false; // error carries the nested path
    }
    r.readString("workload_name", out.workload_name);

    if (const json::Value *mode = r.consume("mode")) {
        json::ObjectReader m(*mode, "spec.mode", error);
        m.readBool("fix_pe", out.mode.fix_pe);
        m.readInt("pe_dim", out.mode.pe_dim);
        m.readDouble("penalty_weight", out.mode.penalty_weight);
        m.readDouble("max_area_mm2", out.mode.max_area_mm2);
        if (const json::Value *weights = m.consume("layer_weights")) {
            if (!weights->isArray())
                return m.fail("layer_weights: expected an array");
            for (const json::Value &w : weights->elements()) {
                if (!w.isNumber())
                    return m.fail("layer_weights: expected numbers");
                out.mode.layer_weights.push_back(w.asDouble());
            }
        }
        if (const json::Value *pareto = m.consume("pareto")) {
            json::ObjectReader p(*pareto, "spec.mode.pareto", error);
            if (const json::Value *axis = p.consume("edp"))
                if (!paretoAxisFromJson(*axis,
                            "spec.mode.pareto.edp",
                            out.mode.pareto.edp, error))
                    return false;
            if (const json::Value *axis = p.consume("area"))
                if (!paretoAxisFromJson(*axis,
                            "spec.mode.pareto.area",
                            out.mode.pareto.area, error))
                    return false;
            if (const json::Value *axis = p.consume("power"))
                if (!paretoAxisFromJson(*axis,
                            "spec.mode.pareto.power",
                            out.mode.pareto.power, error))
                    return false;
            if (!p.finish())
                return false;
        }
        if (!m.finish())
            return false;
    }

    if (const json::Value *budget = r.consume("budget")) {
        json::ObjectReader b(*budget, "spec.budget", error);
        int64_t max_samples = out.budget.max_samples;
        b.readInt("max_samples", max_samples);
        out.budget.max_samples = static_cast<int>(max_samples);
        b.readDouble("deadline_s", out.budget.deadline_s);
        if (!b.finish())
            return false;
    }

    r.readUint("seed", out.seed);
    int64_t jobs = out.jobs;
    r.readInt("jobs", jobs);
    out.jobs = static_cast<int>(jobs);

    std::string cache = cacheModeName(out.cache);
    r.readString("cache", cache);
    if (cache == "inherit")
        out.cache = CacheMode::Inherit;
    else if (cache == "enabled")
        out.cache = CacheMode::Enabled;
    else if (cache == "disabled")
        out.cache = CacheMode::Disabled;
    else
        return r.fail("cache: expected \"inherit\", \"enabled\" or "
                      "\"disabled\"");

    if (const json::Value *hw = r.consume("fixed_hw"))
        if (!hwFromJson(*hw, "spec.fixed_hw", out.fixed_hw, error))
            return false; // error carries the nested path

    if (const json::Value *options = r.consume("options")) {
        if (!options->isObject())
            return r.fail("options: expected an object");
        for (const auto &[key, member] : options->members()) {
            if (!member.isNumber())
                return r.fail("options." + key +
                              ": expected a number");
            out.options.set(key, member.asDouble());
        }
    }
    return r.finish();
}

bool
specFromJson(std::string_view text, SearchSpec &out,
             std::string &error)
{
    json::Value value;
    if (!json::parse(text, value, error))
        return false;
    return specFromJsonValue(value, out, error);
}

SearchSpec
mustSpecFromJson(std::string_view text)
{
    SearchSpec spec;
    std::string error;
    if (!specFromJson(text, spec, error))
        fatal("mustSpecFromJson: " + error);
    return spec;
}

} // namespace dosa
