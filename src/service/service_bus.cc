/**
 * @file
 * ServiceBus implementation: the bounded in-memory frame queue that
 * doubles as the client's receive buffer and the service's sink.
 */
#include "service/service_bus.hh"

#include <condition_variable>
#include <deque>

#include "util/thread_annotations.hh"

namespace dosa::service {

namespace detail {

/**
 * Bounded MPSC frame queue. The service side (`send`) blocks while
 * the queue is full — the backpressure that models a full socket
 * buffer — and fails once the client closed. The client side
 * (`receive`) blocks while empty.
 */
class BusSink : public FrameSink
{
  public:
    explicit BusSink(size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {}

    bool
    send(const std::string &frame) override
    {
        util::MutexLock lock(mutex_);
        lock.wait(not_full_, [this]() REQUIRES(mutex_) {
            return closed_ || frames_.size() < capacity_;
        });
        if (closed_)
            return false;
        frames_.push_back(frame);
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    bool
    receive(std::string &frame)
    {
        util::MutexLock lock(mutex_);
        lock.wait(not_empty_, [this]() REQUIRES(mutex_) {
            return closed_ || !frames_.empty();
        });
        if (closed_)
            return false;
        frame = std::move(frames_.front());
        frames_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    void
    close()
    {
        {
            util::MutexLock lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

  private:
    const size_t capacity_;
    util::Mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<std::string> frames_ GUARDED_BY(mutex_);
    bool closed_ GUARDED_BY(mutex_) = false;
};

} // namespace detail

ServiceBus::Client::Client(SearchService &service,
                           size_t reply_capacity)
    : service_(&service),
      sink_(std::make_shared<detail::BusSink>(reply_capacity))
{}

ServiceBus::Client::~Client()
{
    if (sink_)
        sink_->close();
}

void
ServiceBus::Client::send(const std::string &line)
{
    service_->submit(line, sink_);
}

bool
ServiceBus::Client::receive(std::string &frame)
{
    return sink_->receive(frame);
}

void
ServiceBus::Client::close()
{
    sink_->close();
}

} // namespace dosa::service
