/**
 * @file
 * TCP transport implementation. POSIX sockets only; every write uses
 * MSG_NOSIGNAL so a vanished peer surfaces as an error return (the
 * cancellation signal), never SIGPIPE.
 */
#include "service/tcp_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dosa::service {

namespace {

/**
 * Thread-safe errno formatter: `std::strerror` returns a pointer to
 * an internal buffer that another thread's call may rewrite
 * (concurrency-mt-unsafe), and the reader threads here really do
 * race. Uses the POSIX `strerror_r` into a local buffer instead.
 */
std::string
errnoString(int err)
{
    char buf[256];
    buf[0] = '\0';
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
    // GNU strerror_r returns the message pointer (maybe not buf).
    return std::string(strerror_r(err, buf, sizeof(buf)));
#else
    if (strerror_r(err, buf, sizeof(buf)) != 0)
        std::snprintf(buf, sizeof(buf), "errno %d", err);
    return std::string(buf);
#endif
}

/** Write all of `data` to `fd`; false on any error. */
bool
writeAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

/**
 * One connection's sink: frames from the reader thread (inline
 * replies) and from service workers (streamed events) serialize on
 * the write mutex so lines never interleave mid-frame.
 */
class SocketSink : public FrameSink
{
  public:
    explicit SocketSink(int fd) : fd_(fd) {}

    bool
    send(const std::string &frame) override
    {
        util::MutexLock lock(mutex_);
        if (closed_)
            return false;
        if (!writeAll(fd_, frame.data(), frame.size()) ||
            !writeAll(fd_, "\n", 1)) {
            closed_ = true;
            return false;
        }
        return true;
    }

    /** Fail all future sends (the fd is owned by the connection). */
    void
    markClosed()
    {
        util::MutexLock lock(mutex_);
        closed_ = true;
    }

  private:
    const int fd_;
    util::Mutex mutex_;
    bool closed_ GUARDED_BY(mutex_) = false;
};

} // namespace

struct TcpServer::Connection
{
    int fd = -1;
    std::shared_ptr<SocketSink> sink;
    std::thread reader;
    std::atomic<bool> done{false};
};

TcpServer::TcpServer(SearchService &service, uint16_t port)
    : service_(service), port_(port)
{}

TcpServer::~TcpServer()
{
    stop();
}

bool
TcpServer::start(std::string &error)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error = std::string("socket: ") + errnoString(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
            sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        error = std::string("bind: ") + errnoString(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, 16) < 0) {
        error = std::string("listen: ") + errnoString(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd_,
                reinterpret_cast<sockaddr *>(&addr), &addr_len) == 0)
        port_ = ntohs(addr.sin_port);

    running_.store(true, std::memory_order_relaxed);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TcpServer::acceptLoop()
{
    while (running_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener shut down (or broken beyond repair)
        }
        if (!running_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        reapFinished();
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->sink = std::make_shared<SocketSink>(fd);
        {
            util::MutexLock lock(conns_mutex_);
            conns_.push_back(conn);
        }
        conn->reader =
                std::thread([this, conn] { readerLoop(conn); });
    }
}

void
TcpServer::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF or error: the client is gone
        buffer.append(chunk, size_t(n));
        size_t start = 0;
        for (size_t nl = buffer.find('\n', start);
                nl != std::string::npos;
                nl = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                service_.submit(line, conn->sink);
        }
        buffer.erase(0, start);
    }
    // Fail the sink first so an in-flight search cancels promptly
    // rather than writing into a dead socket's buffer.
    conn->sink->markClosed();
    conn->done.store(true, std::memory_order_release);
}

void
TcpServer::reapFinished()
{
    std::vector<std::shared_ptr<Connection>> finished;
    {
        util::MutexLock lock(conns_mutex_);
        for (size_t i = 0; i < conns_.size();) {
            if (conns_[i]->done.load(std::memory_order_acquire)) {
                finished.push_back(std::move(conns_[i]));
                conns_.erase(conns_.begin() +
                        std::vector<std::shared_ptr<Connection>>::
                                difference_type(i));
            } else {
                ++i;
            }
        }
    }
    for (auto &conn : finished) {
        if (conn->reader.joinable())
            conn->reader.join();
        ::close(conn->fd);
    }
}

void
TcpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_relaxed)) {
        // Never started (or already stopped); release the listener
        // if start() got as far as binding it.
        if (listen_fd_ >= 0 && !accept_thread_.joinable()) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return;
    }
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    std::vector<std::shared_ptr<Connection>> conns;
    {
        util::MutexLock lock(conns_mutex_);
        conns.swap(conns_);
    }
    for (auto &conn : conns) {
        conn->sink->markClosed();
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto &conn : conns) {
        if (conn->reader.joinable())
            conn->reader.join();
        ::close(conn->fd);
    }
}

TcpClient::~TcpClient()
{
    close();
}

bool
TcpClient::connect(const std::string &host, uint16_t port,
                   std::string &error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + errnoString(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "invalid IPv4 address \"" + host + "\"";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        error = std::string("connect: ") + errnoString(errno);
        close();
        return false;
    }
    buffer_.clear();
    return true;
}

bool
TcpClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    return writeAll(fd_, line.data(), line.size()) &&
           writeAll(fd_, "\n", 1);
}

bool
TcpClient::receiveLine(std::string &line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buffer_.append(chunk, size_t(n));
    }
}

void
TcpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace dosa::service
