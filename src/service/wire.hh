/**
 * @file
 * Wire protocol of the search service: line-delimited canonical JSON
 * in both directions.
 *
 * Clients send one *request* object per line
 * (`{"endpoint":"search","id":...,"spec":{...}}`, plus the inline
 * `stats` and `ping` endpoints); the service streams back *frames* —
 * `phase` / `sample` / `improvement` / `frontier` events mirroring
 * the `SearchObserver` callbacks in trace order, terminated by
 * exactly one `done`, `error`, `pong` or `stats` frame per request.
 * `frontier` frames only appear on multi-objective runs
 * (`spec.mode.pareto` enables a second axis); the terminal `done`
 * frame then also carries the final front in insertion order.
 *
 * Every encoder produces canonical bytes (sorted keys, canonical
 * number tokens, no whitespace, no trailing newline — transports add
 * the line delimiter), so for a fixed spec/seed the whole reply
 * stream is byte-identical across runs, clients and transports: the
 * service-side determinism contract the protocol tests pin.
 *
 * EDP values can legitimately be non-finite (an empty trace's best
 * is +inf) and JSON has no inf/nan tokens, so the frame schema
 * carries such values as the strings "inf" / "-inf" / "nan"; both
 * decoders accept either form.
 *
 * Both decoders are strict (unknown keys rejected, types checked,
 * enum domains enforced) and non-fatal: any malformed line returns
 * false plus a diagnostic — never a crash — which the service
 * answers with a structured `error` frame.
 */

#ifndef DOSA_SERVICE_WIRE_HH
#define DOSA_SERVICE_WIRE_HH

#include <string>
#include <string_view>
#include <vector>

#include "api/observer.hh"
#include "api/search_spec.hh"
#include "api/searcher.hh"
#include "obs/metrics.hh"
#include "service/endpoint_stats.hh"

namespace dosa::service {

/**
 * Version of the `stats` frame schema (and the `BENCH_*.json`
 * trajectory lines, which carry the same `schema` field). Bump when
 * a decoder would otherwise have to guess the shape.
 */
inline constexpr uint64_t kStatsSchema = 1;

/** One decoded client request. */
struct Request
{
    enum class Kind
    {
        Search, ///< run a search, streaming frames ("search")
        Stats,  ///< endpoint statistics snapshot ("stats")
        Ping,   ///< liveness probe ("ping")
    };

    Kind kind = Kind::Ping;
    /** Client-chosen correlation id, echoed on every reply frame. */
    std::string id;
    /** Decoded spec (Kind::Search only). */
    SearchSpec spec;
};

/** Encode a `search` request line for `spec` (canonical bytes). */
std::string encodeSearchRequest(const std::string &id,
                                const SearchSpec &spec);

/** Encode a `stats` request line. */
std::string encodeStatsRequest(const std::string &id);

/** Encode a `ping` request line. */
std::string encodePingRequest(const std::string &id);

/**
 * Strictly decode one request line. On failure returns false and
 * sets `error`; when the line was at least a JSON object with a
 * string `id`, that id is recovered into `out.id` so the error
 * reply can still be correlated (otherwise `out.id` is empty).
 */
[[nodiscard]] bool decodeRequest(std::string_view line, Request &out,
                   std::string &error);

/** One decoded reply frame. */
struct Frame
{
    enum class Kind
    {
        Phase,       ///< searcher lifecycle ("setup", "descent", ...)
        Sample,      ///< one recorded sample, in trace order
        Improvement, ///< sample that strictly improved the best
        Frontier,    ///< sample that entered the Pareto front
        Done,        ///< terminal: search finished, carries the result
        Error,       ///< terminal: typed failure (code + message)
        Pong,        ///< terminal reply to `ping`
        Stats,       ///< terminal reply to `stats`
    };

    /** One frontier point of the `done` frame's summary. */
    struct FrontierPoint
    {
        uint64_t index = 0; ///< trace index of the entering sample
        double edp = 0.0;
        double area_mm2 = 0.0;
        double power_w = 0.0;
        HardwareConfig hw;
    };

    Kind kind = Kind::Error;
    /** Correlation id echoed from the request. */
    std::string id;

    // -- Phase
    std::string phase;

    // -- Sample / Improvement
    SampleEvent sample{};

    // -- Frontier
    FrontierEvent frontier{};

    // -- Done
    double best_edp = 0.0;
    double best_start_edp = 0.0;
    HardwareConfig best_hw;
    HardwareConfig best_start_hw;
    std::vector<Mapping> best_mappings;
    /** Recorded trace length (the paper's sample count axis). */
    uint64_t samples = 0;
    /** Final Pareto front in insertion order (multi-objective runs;
     *  empty otherwise). Mappings stay in-process — the wire carries
     *  each point's metrics and hardware config. */
    std::vector<FrontierPoint> pareto_front;

    // -- Error
    std::string code;
    std::string message;

    // -- Stats
    /** Stats-frame schema version (kStatsSchema at encode time). */
    uint64_t schema = 0;
    std::string service_name;
    std::string service_version;
    std::vector<EndpointStats> endpoints;
    /**
     * Retention window of the per-endpoint timing ring: `processing_s`
     * percentiles cover at most this many recent requests.
     */
    uint64_t stats_window = 0;
    /** Process-wide metrics snapshot (obs/metrics.hh) at reply time. */
    obs::MetricsSnapshot metrics;
};

/** Stable error codes of the `error` frame. */
namespace errc {
inline constexpr const char *bad_request = "bad_request";
inline constexpr const char *bad_spec = "bad_spec";
inline constexpr const char *queue_full = "queue_full";
inline constexpr const char *shutdown = "shutdown";
} // namespace errc

std::string phaseFrame(const std::string &id, const char *phase);
std::string sampleFrame(const std::string &id,
                        const SampleEvent &event);
std::string improvementFrame(const std::string &id,
                             const SampleEvent &event);
std::string frontierFrame(const std::string &id,
                          const FrontierEvent &event);
std::string doneFrame(const std::string &id,
                      const SearchReport &report);
std::string errorFrame(const std::string &id, const std::string &code,
                       const std::string &message);
std::string pongFrame(const std::string &id);
/**
 * Encode the `stats` reply frame: endpoint stats plus the retention
 * window they cover, the process-wide metrics snapshot and the
 * `schema` version (kStatsSchema).
 */
std::string statsFrame(const std::string &id,
                       const std::string &service_name,
                       const std::string &service_version,
                       const std::vector<EndpointStats> &endpoints,
                       uint64_t stats_window = 0,
                       const obs::MetricsSnapshot &metrics = {});

/**
 * Strictly decode one reply frame (the client half of the protocol;
 * also what the tests use to cross-check the encoders). False plus a
 * diagnostic on any malformed line — never a crash.
 */
bool decodeFrame(std::string_view line, Frame &out,
                 std::string &error);

} // namespace dosa::service

#endif // DOSA_SERVICE_WIRE_HH
