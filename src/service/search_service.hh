/**
 * @file
 * The search service core: a transport-independent request/reply
 * engine over the `src/api` facade.
 *
 * One `SearchService` owns a pool of `max_concurrent` worker threads
 * and a bounded admission queue. `submit()` handles one request line:
 * `stats` and `ping` are answered inline on the caller's thread;
 * `search` requests are validated (structure via the wire decoder,
 * semantics via `validateSpec`) and then either queued or rejected
 * with a typed `error` frame (`queue_full`, `bad_spec`,
 * `bad_request`, `shutdown`). A worker later runs the search through
 * `runSearch`, streaming observer events to the request's `FrameSink`
 * as wire frames in trace order.
 *
 * Cancellation rides the observer bridge: when a sink's `send`
 * returns false (client gone) or the service is shutting down, the
 * streaming observer returns false from `onSample`, which trips the
 * run's `SearchControl` — the search stops within one sample, per
 * the facade's cooperative-cancel contract. The service never holds
 * its mutex across a `send` (sinks may block on backpressure).
 *
 * Determinism: the service requires `spec.cache == CacheMode::Inherit`
 * (the other modes toggle a process-global eval-cache flag, which
 * would race between concurrent searches) and otherwise adds nothing
 * to the facade's contract — for a fixed spec/seed the streamed
 * frames and final `done` frame are byte-identical across runs,
 * concurrency levels and transports.
 */

#ifndef DOSA_SERVICE_SEARCH_SERVICE_HH
#define DOSA_SERVICE_SEARCH_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/endpoint_stats.hh"
#include "service/wire.hh"
#include "util/thread_annotations.hh"

namespace dosa::service {

/** Tunables of one service instance. */
struct ServiceConfig
{
    /** Service name reported by the `stats` endpoint. */
    std::string name = "dosa-search";
    /** Service version reported by the `stats` endpoint. */
    std::string version = "1.0.0";
    /** Worker threads == searches in flight (min 1). */
    int max_concurrent = 2;
    /** Queued searches beyond the running ones before `queue_full`. */
    int max_queue = 16;
    /**
     * Retention window (per endpoint) of the processing-time ring and
     * of the request history: a long-lived daemon keeps at most this
     * many recent timings/records per endpoint, so stats memory is
     * bounded. `Summary` percentiles in the `stats` frame cover the
     * retained window; the frame reports it as `window` (min 1).
     */
    int stats_window = 1024;
};

/**
 * Where reply frames go. `send` delivers one frame line (no
 * delimiter; the transport adds it) and returns false when the
 * client is gone — the service treats that as cancellation of the
 * request the sink belongs to. `send` may block (backpressure); it
 * is never called with the service mutex held. For one request the
 * service calls `send` from a single thread at a time, but different
 * requests sharing a sink may interleave — implementations that
 * multiplex must serialize internally.
 */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;
    virtual bool send(const std::string &frame) = 0;
};

/** Outcome of one handled request, kept for tests and diagnostics. */
struct RequestRecord
{
    enum class Outcome
    {
        Done,      ///< terminal `done` / `pong` / `stats` delivered
        Cancelled, ///< client disappeared mid-stream; search stopped
        Error,     ///< answered (or tried to answer) with `error`
    };

    std::string id;       ///< request correlation id
    std::string endpoint; ///< "search", "stats", "ping", "_protocol"
    Outcome outcome = Outcome::Done;
    std::string error_code; ///< errc::* when outcome == Error
    uint64_t samples = 0;   ///< recorded trace length (searches)
    double seconds = 0.0;   ///< processing time (see EndpointStats)
};

/** The transport-independent service engine. */
class SearchService
{
  public:
    explicit SearchService(ServiceConfig config = {});

    /** Shuts down (cancelling in-flight searches) and joins. */
    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /**
     * Handle one request line. Inline endpoints reply before
     * returning; `search` requests return once admitted (frames then
     * stream from a worker thread). Every line gets exactly one
     * terminal frame attempt on `sink`, whatever happens.
     */
    void submit(const std::string &line,
                std::shared_ptr<FrameSink> sink) EXCLUDES(mutex_);

    /** Block until the queue is empty and all workers are idle. */
    void drain() EXCLUDES(mutex_);

    /**
     * Stop the service: reject new submissions, flush queued
     * requests with `shutdown` errors, cancel running searches
     * (within one sample) and join the workers. Idempotent.
     */
    void shutdown() EXCLUDES(mutex_);

    /**
     * Per-endpoint statistics snapshot, sorted by endpoint name.
     * Always lists all four endpoints, counted-into or not.
     */
    std::vector<EndpointStats> stats() const EXCLUDES(mutex_);

    /** Completed-request log, in completion order. */
    std::vector<RequestRecord> history() const EXCLUDES(mutex_);

    const ServiceConfig &config() const { return config_; }

  private:
    struct Job
    {
        Request req;
        std::shared_ptr<FrameSink> sink;
        /** Admission time, for the queue-wait histogram and span. */
        std::chrono::steady_clock::time_point enqueued{};
    };

    /** Mutable counters behind one endpoint's stats snapshot. */
    struct Endpoint
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
        std::string last_error;
        /** Capacity-limited timing ring (config.stats_window). */
        std::vector<double> times_s;
        /** Overwrite cursor once the ring is full. */
        size_t times_next = 0;
    };

    void workerLoop() EXCLUDES(mutex_);
    void runJob(Job &job) EXCLUDES(mutex_);

    /**
     * Reply with an error frame and account it (locks internally).
     * EXCLUDES enforces the "never hold the mutex across a send"
     * contract at compile time: a sink may block on backpressure.
     */
    void replyError(const std::string &endpoint, const std::string &id,
                    const std::string &code, const std::string &message,
                    FrameSink &sink, double seconds) EXCLUDES(mutex_);

    /** Count one successful request and its processing time. */
    void accountRequest(const std::string &endpoint, double seconds)
            EXCLUDES(mutex_);
    void appendRecord(RequestRecord record) EXCLUDES(mutex_);
    /** Push into an endpoint's bounded ring. */
    void pushTime(Endpoint &ep, double seconds) REQUIRES(mutex_);

    ServiceConfig config_;
    mutable util::Mutex mutex_;
    std::condition_variable work_cv_; ///< queue / stopping changes
    std::condition_variable idle_cv_; ///< drain wakeups
    std::deque<Job> queue_ GUARDED_BY(mutex_);
    int active_ GUARDED_BY(mutex_) = 0;
    std::atomic<bool> stopping_{false};
    bool joined_ GUARDED_BY(mutex_) = false;
    std::map<std::string, Endpoint> endpoints_ GUARDED_BY(mutex_);
    /** Completed-request log, bounded to config.stats_window. */
    std::deque<RequestRecord> history_ GUARDED_BY(mutex_);
    std::vector<std::thread> workers_;
};

} // namespace dosa::service

#endif // DOSA_SERVICE_SEARCH_SERVICE_HH
