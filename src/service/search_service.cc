/**
 * @file
 * SearchService implementation: admission control, the worker pool
 * and the observer->frame streaming bridge. See search_service.hh
 * for the contract.
 */
#include "service/search_service.hh"

#include <chrono>

#include "api/search_api.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dosa::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Service-wide metrics (handles cached once; see obs/metrics.hh). */
struct ServiceMetrics
{
    obs::Counter &admitted = obs::counter("service.search.admitted");
    obs::Counter &rejected = obs::counter("service.search.rejected");
    obs::Histogram &queue_wait =
        obs::histogram("service.search.queue_wait_s");
    obs::Histogram &run_time = obs::histogram("service.search.run_s");
};

ServiceMetrics &
serviceMetrics()
{
    static ServiceMetrics m;
    return m;
}

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Observer bridging one running search onto its client's sink.
 * Callbacks arrive serially (facade contract), so the flags need no
 * synchronization; only `stopping` is shared with other threads.
 */
class StreamObserver : public SearchObserver
{
  public:
    StreamObserver(FrameSink &sink, const std::string &id,
                   const std::atomic<bool> &stopping)
        : sink_(sink), id_(id), stopping_(stopping)
    {}

    /** False once a send failed: the client is gone. */
    bool alive() const { return alive_; }

    /** True when the service's shutdown cancelled this search. */
    bool shutdownCancel() const { return shutdown_cancel_; }

    void
    onPhase(const char *phase) override
    {
        if (alive_ && !sink_.send(phaseFrame(id_, phase)))
            alive_ = false;
    }

    bool
    onSample(const SampleEvent &event) override
    {
        if (stopping_.load(std::memory_order_relaxed)) {
            shutdown_cancel_ = true;
            return false;
        }
        if (!alive_)
            return false;
        if (!sink_.send(sampleFrame(id_, event))) {
            alive_ = false;
            return false;
        }
        return true;
    }

    void
    onImprovement(const SampleEvent &event) override
    {
        if (alive_ && !sink_.send(improvementFrame(id_, event)))
            alive_ = false;
    }

    void
    onFrontier(const FrontierEvent &event) override
    {
        if (alive_ && !sink_.send(frontierFrame(id_, event)))
            alive_ = false;
    }

  private:
    FrameSink &sink_;
    const std::string &id_;
    const std::atomic<bool> &stopping_;
    bool alive_ = true;
    bool shutdown_cancel_ = false;
};

} // namespace

SearchService::SearchService(ServiceConfig config)
    : config_(std::move(config))
{
    if (config_.max_concurrent < 1)
        config_.max_concurrent = 1;
    if (config_.max_queue < 0)
        config_.max_queue = 0;
    if (config_.stats_window < 1)
        config_.stats_window = 1;
    // Pre-seed every endpoint so `stats` always lists all four.
    endpoints_["search"];
    endpoints_["stats"];
    endpoints_["ping"];
    endpoints_["_protocol"];
    workers_.reserve(size_t(config_.max_concurrent));
    for (int i = 0; i < config_.max_concurrent; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SearchService::~SearchService()
{
    shutdown();
}

void
SearchService::submit(const std::string &line,
                      std::shared_ptr<FrameSink> sink)
{
    Clock::time_point t0 = Clock::now();
    Request req;
    std::string error;
    bool decoded;
    {
        obs::TraceSpan decode_span("service.decode", "service");
        decoded = decodeRequest(line, req, error);
    }
    if (!decoded) {
        // Unidentifiable traffic lands on the "_protocol" endpoint;
        // the recovered id (possibly empty) still correlates.
        replyError("_protocol", req.id, errc::bad_request, error,
                *sink, secondsSince(t0));
        return;
    }

    if (req.kind == Request::Kind::Ping ||
        req.kind == Request::Kind::Stats) {
        const char *endpoint =
                req.kind == Request::Kind::Ping ? "ping" : "stats";
        std::string frame = req.kind == Request::Kind::Ping
                ? pongFrame(req.id)
                : statsFrame(req.id, config_.name, config_.version,
                          stats(), uint64_t(config_.stats_window),
                          obs::globalMetrics().snapshot());
        bool delivered = sink->send(frame);
        double dt = secondsSince(t0);
        accountRequest(endpoint, dt);
        appendRecord({req.id, endpoint,
                delivered ? RequestRecord::Outcome::Done
                          : RequestRecord::Outcome::Cancelled,
                "", 0, dt});
        return;
    }

    // -- Search: validate, then admit or reject with a typed error.
    if (req.spec.cache != CacheMode::Inherit) {
        replyError("search", req.id, errc::bad_spec,
                "spec.cache must be \"inherit\" under the service "
                "(other modes toggle a process-global cache flag, "
                "which would race between concurrent searches)",
                *sink, secondsSince(t0));
        return;
    }
    if (!validateSpec(req.spec, error)) {
        replyError("search", req.id, errc::bad_spec, error, *sink,
                secondsSince(t0));
        return;
    }

    {
        util::MutexLock lock(mutex_);
        if (!stopping_.load(std::memory_order_relaxed)) {
            if (queue_.size() >= size_t(config_.max_queue)) {
                lock.unlock();
                serviceMetrics().rejected.add(1);
                replyError("search", req.id, errc::queue_full,
                        "search queue is full (" +
                                std::to_string(config_.max_queue) +
                                " waiting); retry later",
                        *sink, secondsSince(t0));
                return;
            }
            queue_.push_back(Job{std::move(req), std::move(sink),
                    Clock::now()});
            lock.unlock();
            serviceMetrics().admitted.add(1);
            work_cv_.notify_one();
            return;
        }
    }
    serviceMetrics().rejected.add(1);
    replyError("search", req.id, errc::shutdown,
            "service is shutting down", *sink, secondsSince(t0));
}

void
SearchService::workerLoop()
{
    for (;;) {
        Job job;
        {
            util::MutexLock lock(mutex_);
            lock.wait(work_cv_, [this]() REQUIRES(mutex_) {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping, queue flushed
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        // Queue wait: admission to dequeue. The span reconstructs the
        // interval from the stored admission time so it appears on the
        // worker's timeline without a cross-thread handoff.
        Clock::time_point dequeued = Clock::now();
        serviceMetrics().queue_wait.record(
                std::chrono::duration<double>(dequeued - job.enqueued)
                        .count());
        obs::Tracer &tracer = obs::globalTracer();
        if (tracer.enabled())
            tracer.recordSpan("service.queue", "service",
                    tracer.sinceEpochNs(job.enqueued),
                    tracer.sinceEpochNs(dequeued));
        runJob(job);
        {
            util::MutexLock lock(mutex_);
            --active_;
        }
        idle_cv_.notify_all();
    }
}

void
SearchService::runJob(Job &job)
{
    Clock::time_point t0 = Clock::now();
    if (stopping_.load(std::memory_order_relaxed)) {
        // Queued behind the shutdown: flushed, never run.
        replyError("search", job.req.id, errc::shutdown,
                "service is shutting down", *job.sink,
                secondsSince(t0));
        return;
    }

    StreamObserver observer(*job.sink, job.req.id, stopping_);
    SearchReport report = [&] {
        obs::TraceSpan run_span("service.run", "service");
        return runSearch(job.req.spec, &observer);
    }();
    double dt = secondsSince(t0);
    serviceMetrics().run_time.record(dt);
    uint64_t samples = uint64_t(report.search.trace.size());

    if (observer.shutdownCancel()) {
        std::string message = "service shutting down; "
                              "search cancelled";
        (void)job.sink->send(
                errorFrame(job.req.id, errc::shutdown, message));
        {
            util::MutexLock lock(mutex_);
            Endpoint &ep = endpoints_["search"];
            ++ep.requests;
            ++ep.errors;
            ep.last_error = message;
            pushTime(ep, dt);
        }
        appendRecord({job.req.id, "search",
                RequestRecord::Outcome::Error, errc::shutdown,
                samples, dt});
        return;
    }

    RequestRecord::Outcome outcome;
    if (!observer.alive()) {
        // The client vanished mid-stream; the observer already
        // cancelled the search within one sample.
        outcome = RequestRecord::Outcome::Cancelled;
    } else {
        obs::TraceSpan reply_span("service.reply", "service");
        bool delivered =
                job.sink->send(doneFrame(job.req.id, report));
        outcome = delivered ? RequestRecord::Outcome::Done
                            : RequestRecord::Outcome::Cancelled;
    }
    accountRequest("search", dt);
    appendRecord({job.req.id, "search", outcome, "", samples, dt});
}

void
SearchService::replyError(const std::string &endpoint,
                          const std::string &id,
                          const std::string &code,
                          const std::string &message, FrameSink &sink,
                          double seconds)
{
    (void)sink.send(errorFrame(id, code, message));
    {
        util::MutexLock lock(mutex_);
        Endpoint &ep = endpoints_[endpoint];
        ++ep.requests;
        ++ep.errors;
        ep.last_error = message;
        pushTime(ep, seconds);
    }
    appendRecord({id, endpoint, RequestRecord::Outcome::Error, code,
            0, seconds});
}

void
SearchService::accountRequest(const std::string &endpoint,
                              double seconds)
{
    util::MutexLock lock(mutex_);
    Endpoint &ep = endpoints_[endpoint];
    ++ep.requests;
    pushTime(ep, seconds);
}

void
SearchService::pushTime(Endpoint &ep, double seconds)
{
    size_t window = size_t(config_.stats_window);
    if (ep.times_s.size() < window) {
        ep.times_s.push_back(seconds);
        return;
    }
    // Ring overwrite: percentiles cover the last `window` requests.
    ep.times_s[ep.times_next] = seconds;
    ep.times_next = (ep.times_next + 1) % window;
}

void
SearchService::appendRecord(RequestRecord record)
{
    util::MutexLock lock(mutex_);
    history_.push_back(std::move(record));
    while (history_.size() > size_t(config_.stats_window))
        history_.pop_front();
}

void
SearchService::drain()
{
    util::MutexLock lock(mutex_);
    lock.wait(idle_cv_, [this]() REQUIRES(mutex_) {
        return queue_.empty() && active_ == 0;
    });
}

void
SearchService::shutdown()
{
    {
        util::MutexLock lock(mutex_);
        if (joined_)
            return;
        joined_ = true;
        stopping_.store(true, std::memory_order_relaxed);
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    idle_cv_.notify_all();
}

std::vector<EndpointStats>
SearchService::stats() const
{
    util::MutexLock lock(mutex_);
    std::vector<EndpointStats> out;
    out.reserve(endpoints_.size());
    for (const auto &[name, ep] : endpoints_) {
        EndpointStats s;
        s.name = name;
        s.requests = ep.requests;
        s.errors = ep.errors;
        s.last_error = ep.last_error;
        s.processing_s = Summary::of(ep.times_s);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<RequestRecord>
SearchService::history() const
{
    util::MutexLock lock(mutex_);
    return {history_.begin(), history_.end()};
}

} // namespace dosa::service
