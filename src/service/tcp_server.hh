/**
 * @file
 * Plain-TCP transport for the search service: newline-delimited wire
 * frames over IPv4 sockets, loopback-oriented.
 *
 * `TcpServer` owns a listener plus one reader thread per accepted
 * connection; every request line read is handed to
 * `SearchService::submit` with a write-mutexed socket sink (inline
 * replies from the reader thread and streamed frames from service
 * workers share the connection). A failed socket write — the peer
 * closed or vanished — makes the sink return false, which the
 * service turns into cooperative cancellation, same as the bus
 * transport.
 *
 * `TcpClient` is the matching blocking client: connect, send request
 * lines, read reply frames line by line. Used by the end-to-end
 * test, the smoke bench and the example daemon/client pair.
 */

#ifndef DOSA_SERVICE_TCP_SERVER_HH
#define DOSA_SERVICE_TCP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/search_service.hh"
#include "util/thread_annotations.hh"

namespace dosa::service {

/** Line-framed TCP front-end over one `SearchService`. */
class TcpServer
{
  public:
    /**
     * @param service Engine the connections feed; must outlive the
     *                server.
     * @param port    Port to bind on 127.0.0.1 (0 = ephemeral; read
     *                the chosen one back with `port()`).
     */
    explicit TcpServer(SearchService &service, uint16_t port = 0);

    /** Stops (idempotently) and joins every thread. */
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /**
     * Bind, listen and start accepting. False plus a diagnostic on
     * any socket failure (port in use, ...).
     */
    bool start(std::string &error);

    /**
     * Stop accepting, shut down every connection (failing their
     * sinks, so in-flight searches cancel within one sample) and
     * join the reader threads. Does not touch the service itself.
     */
    void stop();

    /** Bound port (valid after a successful `start`). */
    uint16_t port() const { return port_; }

  private:
    struct Connection;

    void acceptLoop() EXCLUDES(conns_mutex_);
    void readerLoop(std::shared_ptr<Connection> conn);
    void reapFinished() EXCLUDES(conns_mutex_);

    SearchService &service_;
    uint16_t port_;
    int listen_fd_ = -1;
    std::atomic<bool> running_{false};
    std::thread accept_thread_;
    util::Mutex conns_mutex_;
    /** Live connections; readers join outside the lock (reap/stop). */
    std::vector<std::shared_ptr<Connection>> conns_
            GUARDED_BY(conns_mutex_);
};

/** Blocking line-framed client for `TcpServer`. */
class TcpClient
{
  public:
    TcpClient() = default;
    ~TcpClient(); ///< closes

    TcpClient(const TcpClient &) = delete;
    TcpClient &operator=(const TcpClient &) = delete;

    /** Connect to `host:port`; false plus diagnostic on failure. */
    bool connect(const std::string &host, uint16_t port,
                 std::string &error);

    /** Send one request line (delimiter added); false on error. */
    bool sendLine(const std::string &line);

    /**
     * Read the next reply line (delimiter stripped), blocking.
     * False on EOF or a socket error.
     */
    bool receiveLine(std::string &line);

    /** Close the connection (idempotent). */
    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buffer_; ///< bytes read past the last delimiter
};

} // namespace dosa::service

#endif // DOSA_SERVICE_TCP_SERVER_HH
