/**
 * @file
 * Per-endpoint operational statistics of the search service, modeled
 * on the NATS microservice endpoint-stats idiom: every endpoint
 * reports its request count, error count, last error string and a
 * processing-time distribution through one shared vocabulary, so a
 * fleet scheduler (or the `stats` endpoint itself) reads every
 * service the same way.
 */

#ifndef DOSA_SERVICE_ENDPOINT_STATS_HH
#define DOSA_SERVICE_ENDPOINT_STATS_HH

#include <cstdint>
#include <string>

#include "stats/stats.hh"

namespace dosa::service {

/** Snapshot of one endpoint's counters and timing distribution. */
struct EndpointStats
{
    /** Endpoint name ("search", "stats", "ping", "_protocol"). */
    std::string name;
    /** Requests received (including ones that ended in an error). */
    uint64_t requests = 0;
    /** Requests answered with an `error` frame. */
    uint64_t errors = 0;
    /** Message of the most recent error reply (empty when none). */
    std::string last_error;
    /**
     * Processing-time distribution in seconds: admission-to-reply
     * for inline endpoints, dequeue-to-done for searches (queue wait
     * excluded — it measures the endpoint, not the backlog).
     */
    Summary processing_s;

    /** One-line "name requests=... errors=... [times]" summary. */
    std::string
    str() const
    {
        return name + ": requests=" + std::to_string(requests) +
               " errors=" + std::to_string(errors) + " [" +
               processing_s.str() + "]";
    }
};

} // namespace dosa::service

#endif // DOSA_SERVICE_ENDPOINT_STATS_HH
