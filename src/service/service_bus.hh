/**
 * @file
 * In-process transport for the search service: the same line framing
 * as the TCP transport, with a bounded in-memory reply queue instead
 * of a socket. This is the unit-testable seam — protocol, fault and
 * determinism tests drive the full service core (admission, workers,
 * streaming, cancellation) with no networking, no ports and no I/O
 * flakiness.
 *
 * Each `connect()` yields a `ServiceBus::Client` whose reply queue is
 * the request's `FrameSink`. The queue is bounded, which models real
 * socket backpressure: when the client stops reading, the queue
 * fills, the service's `send` blocks, and a subsequent `close()`
 * releases it with `false` — exactly the disconnect signal the
 * service turns into cooperative cancellation. Fault tests use this
 * to make "client vanished mid-stream" a deterministic, schedulable
 * event instead of a racy one.
 */

#ifndef DOSA_SERVICE_SERVICE_BUS_HH
#define DOSA_SERVICE_SERVICE_BUS_HH

#include <cstddef>
#include <memory>
#include <string>

#include "service/search_service.hh"

namespace dosa::service {

namespace detail {
class BusSink;
} // namespace detail

/** Factory of in-process connections to one `SearchService`. */
class ServiceBus
{
  public:
    /** Reply-queue capacity unless `connect` overrides it. */
    static constexpr size_t kDefaultReplyCapacity = 1024;

    explicit ServiceBus(SearchService &service) : service_(service) {}

    /**
     * One in-process connection: requests go straight to
     * `SearchService::submit`, reply frames land in this client's
     * bounded queue. Movable, not copyable.
     */
    class Client
    {
      public:
        Client(SearchService &service, size_t reply_capacity);
        ~Client(); ///< closes, releasing any blocked service send

        Client(Client &&) = default;
        Client &operator=(Client &&) = default;
        Client(const Client &) = delete;
        Client &operator=(const Client &) = delete;

        /**
         * Submit one request line. Inline endpoints (`stats`,
         * `ping`) reply into the queue before this returns — do not
         * call with the reply queue full, the inline reply would
         * deadlock against the caller. `search` admission replies
         * arrive asynchronously.
         */
        void send(const std::string &line);

        /**
         * Pop the next reply frame, blocking while the queue is
         * empty. Returns false once the client is closed.
         */
        bool receive(std::string &frame);

        /**
         * Disconnect: every blocked or future service `send` returns
         * false (the cancellation signal) and `receive` unblocks
         * with false. Idempotent.
         */
        void close();

      private:
        SearchService *service_;
        std::shared_ptr<detail::BusSink> sink_;
    };

    /** Open a connection with the given reply-queue capacity. */
    Client
    connect(size_t reply_capacity = kDefaultReplyCapacity)
    {
        return Client(service_, reply_capacity);
    }

  private:
    SearchService &service_;
};

} // namespace dosa::service

#endif // DOSA_SERVICE_SERVICE_BUS_HH
