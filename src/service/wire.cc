/**
 * @file
 * Wire protocol encoders/decoders. See wire.hh for the framing and
 * determinism contract.
 */
#include "service/wire.hh"

#include <cmath>
#include <limits>

#include "api/spec_json.hh"
#include "util/json.hh"

namespace dosa::service {

namespace {

/**
 * A possibly non-finite EDP as a JSON value: finite values are
 * canonical number tokens, the rest the strings "inf"/"-inf"/"nan"
 * (JSON has no tokens for them).
 */
json::Value
edpValue(double v)
{
    if (std::isnan(v))
        return json::Value::string("nan");
    if (std::isinf(v))
        return json::Value::string(v > 0 ? "inf" : "-inf");
    return json::Value::number(v);
}

/** Required EDP member: a number or one of the non-finite names. */
bool
needEdp(json::ObjectReader &r, const char *key, double &out)
{
    const json::Value *v = r.consume(key);
    if (v == nullptr)
        return r.fail(std::string("missing \"") + key + "\"");
    if (v->isNumber()) {
        out = v->asDouble();
        return true;
    }
    if (v->isString()) {
        const std::string &s = v->asString();
        if (s == "inf") {
            out = std::numeric_limits<double>::infinity();
            return true;
        }
        if (s == "-inf") {
            out = -std::numeric_limits<double>::infinity();
            return true;
        }
        if (s == "nan") {
            out = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
    }
    return r.fail(std::string(key) +
                  ": expected a number or \"inf\"/\"-inf\"/\"nan\"");
}

const json::Value *
need(json::ObjectReader &r, const char *key)
{
    const json::Value *v = r.consume(key);
    if (v == nullptr)
        r.fail(std::string("missing \"") + key + "\"");
    return v;
}

bool
needString(json::ObjectReader &r, const char *key, std::string &out)
{
    const json::Value *v = need(r, key);
    if (v == nullptr)
        return false;
    if (!v->isString())
        return r.fail(std::string(key) + ": expected a string");
    out = v->asString();
    return true;
}

bool
needUint(json::ObjectReader &r, const char *key, uint64_t &out)
{
    const json::Value *v = need(r, key);
    if (v == nullptr)
        return false;
    if (!v->isNumber())
        return r.fail(std::string(key) + ": expected a number");
    out = v->asUint();
    return true;
}

bool
needDouble(json::ObjectReader &r, const char *key, double &out)
{
    const json::Value *v = need(r, key);
    if (v == nullptr)
        return false;
    if (!v->isNumber())
        return r.fail(std::string(key) + ": expected a number");
    out = v->asDouble();
    return true;
}

bool
needBool(json::ObjectReader &r, const char *key, bool &out)
{
    const json::Value *v = need(r, key);
    if (v == nullptr)
        return false;
    if (!v->isBool())
        return r.fail(std::string(key) + ": expected a bool");
    out = v->asBool();
    return true;
}

json::Value
hwToJson(const HardwareConfig &hw)
{
    json::Value v = json::Value::object();
    v.set("pe_dim", json::Value::number(hw.pe_dim));
    v.set("accum_kib", json::Value::number(hw.accum_kib));
    v.set("spad_kib", json::Value::number(hw.spad_kib));
    return v;
}

bool
hwFromJson(const json::Value &value, const std::string &path,
           HardwareConfig &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    r.readInt("pe_dim", out.pe_dim);
    r.readInt("accum_kib", out.accum_kib);
    r.readInt("spad_kib", out.spad_kib);
    return r.finish();
}

json::Value
mappingToJson(const Mapping &m)
{
    json::Value v = json::Value::object();
    json::Value order = json::Value::array();
    for (LoopOrder o : m.order)
        order.push(json::Value::number(
                int64_t(static_cast<int>(o))));
    v.set("order", std::move(order));
    v.set("spatial_c", json::Value::number(m.factors.spatial_c));
    v.set("spatial_k", json::Value::number(m.factors.spatial_k));
    json::Value temporal = json::Value::array();
    for (const auto &level : m.factors.temporal) {
        json::Value row = json::Value::array();
        for (int64_t f : level)
            row.push(json::Value::number(f));
        temporal.push(std::move(row));
    }
    v.set("temporal", std::move(temporal));
    return v;
}

bool
mappingFromJson(const json::Value &value, const std::string &path,
                Mapping &out, std::string &error)
{
    json::ObjectReader r(value, path, error);

    if (const json::Value *order = r.consume("order")) {
        if (!order->isArray() ||
            order->elements().size() != size_t(kNumLevels))
            return r.fail("order: expected an array of " +
                          std::to_string(kNumLevels) + " ints");
        for (int i = 0; i < kNumLevels; ++i) {
            const json::Value &o = order->elements()[size_t(i)];
            if (!o.isNumber())
                return r.fail("order: expected ints");
            int64_t code = o.asInt();
            if (code < 0 || code >= kNumOrders)
                return r.fail("order: out-of-range loop order " +
                              std::to_string(code));
            out.order[size_t(i)] = static_cast<LoopOrder>(code);
        }
    } else {
        return r.fail("missing \"order\"");
    }

    if (!r.readInt("spatial_c", out.factors.spatial_c) ||
        !r.readInt("spatial_k", out.factors.spatial_k))
        return false;

    if (const json::Value *temporal = r.consume("temporal")) {
        if (!temporal->isArray() ||
            temporal->elements().size() != size_t(kNumLevels))
            return r.fail("temporal: expected an array of " +
                          std::to_string(kNumLevels) + " rows");
        for (int lvl = 0; lvl < kNumLevels; ++lvl) {
            const json::Value &row =
                    temporal->elements()[size_t(lvl)];
            if (!row.isArray() ||
                row.elements().size() != size_t(kNumDims))
                return r.fail("temporal: expected rows of " +
                              std::to_string(kNumDims) + " ints");
            for (int d = 0; d < kNumDims; ++d) {
                const json::Value &f = row.elements()[size_t(d)];
                if (!f.isNumber())
                    return r.fail("temporal: expected ints");
                out.factors.temporal[size_t(lvl)][size_t(d)] =
                        f.asInt();
            }
        }
    } else {
        return r.fail("missing \"temporal\"");
    }

    return r.finish();
}

json::Value
summaryToJson(const Summary &s)
{
    json::Value v = json::Value::object();
    v.set("n", json::Value::number(uint64_t(s.n)));
    v.set("min", json::Value::number(s.min));
    v.set("max", json::Value::number(s.max));
    v.set("mean", json::Value::number(s.mean));
    v.set("p50", json::Value::number(s.p50));
    v.set("p90", json::Value::number(s.p90));
    v.set("p99", json::Value::number(s.p99));
    return v;
}

bool
summaryFromJson(const json::Value &value, const std::string &path,
                Summary &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    uint64_t n = 0;
    if (!needUint(r, "n", n))
        return false;
    out.n = size_t(n);
    needDouble(r, "min", out.min);
    needDouble(r, "max", out.max);
    needDouble(r, "mean", out.mean);
    needDouble(r, "p50", out.p50);
    needDouble(r, "p90", out.p90);
    needDouble(r, "p99", out.p99);
    return r.finish();
}

json::Value
endpointToJson(const EndpointStats &ep)
{
    json::Value v = json::Value::object();
    v.set("name", json::Value::string(ep.name));
    v.set("requests", json::Value::number(ep.requests));
    v.set("errors", json::Value::number(ep.errors));
    v.set("last_error", json::Value::string(ep.last_error));
    v.set("processing_s", summaryToJson(ep.processing_s));
    return v;
}

bool
endpointFromJson(const json::Value &value, const std::string &path,
                 EndpointStats &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    needString(r, "name", out.name);
    needUint(r, "requests", out.requests);
    needUint(r, "errors", out.errors);
    needString(r, "last_error", out.last_error);
    if (const json::Value *summary = r.consume("processing_s")) {
        if (!summaryFromJson(*summary, path + ".processing_s",
                    out.processing_s, error))
            return false; // error carries the nested path
    } else {
        return r.fail("missing \"processing_s\"");
    }
    return r.finish();
}

/** Common frame envelope: {"event":...,"id":...}. */
json::Value
frameEnvelope(const char *event, const std::string &id)
{
    json::Value v = json::Value::object();
    v.set("event", json::Value::string(event));
    v.set("id", json::Value::string(id));
    return v;
}

json::Value
sampleBody(const char *event, const std::string &id,
           const SampleEvent &ev)
{
    json::Value v = frameEnvelope(event, id);
    v.set("index", json::Value::number(uint64_t(ev.index)));
    v.set("edp", edpValue(ev.edp));
    v.set("best_edp", edpValue(ev.best_edp));
    v.set("improved", json::Value::boolean(ev.improved));
    return v;
}

} // namespace

std::string
encodeSearchRequest(const std::string &id, const SearchSpec &spec)
{
    json::Value v = json::Value::object();
    v.set("endpoint", json::Value::string("search"));
    v.set("id", json::Value::string(id));
    v.set("spec", specToJsonValue(spec));
    return v.dump();
}

std::string
encodeStatsRequest(const std::string &id)
{
    json::Value v = json::Value::object();
    v.set("endpoint", json::Value::string("stats"));
    v.set("id", json::Value::string(id));
    return v.dump();
}

std::string
encodePingRequest(const std::string &id)
{
    json::Value v = json::Value::object();
    v.set("endpoint", json::Value::string("ping"));
    v.set("id", json::Value::string(id));
    return v.dump();
}

bool
decodeRequest(std::string_view line, Request &out, std::string &error)
{
    out = Request{};
    json::Value v;
    if (!json::parse(line, v, error))
        return false;
    // Recover the correlation id up front so even a rejected request
    // can be answered on the id the client is waiting on.
    if (const json::Value *id = v.find("id"))
        if (id->isString())
            out.id = id->asString();

    json::ObjectReader r(v, "request", error);
    std::string endpoint;
    if (!needString(r, "endpoint", endpoint))
        return false;
    std::string id;
    if (!needString(r, "id", id))
        return false;
    out.id = id;

    if (endpoint == "search") {
        const json::Value *spec = need(r, "spec");
        if (spec == nullptr)
            return false;
        if (!specFromJsonValue(*spec, out.spec, error))
            return false; // error carries the spec field path
        out.kind = Request::Kind::Search;
    } else if (endpoint == "stats") {
        out.kind = Request::Kind::Stats;
    } else if (endpoint == "ping") {
        out.kind = Request::Kind::Ping;
    } else {
        return r.fail("unknown endpoint \"" + endpoint + "\"");
    }
    return r.finish();
}

std::string
phaseFrame(const std::string &id, const char *phase)
{
    json::Value v = frameEnvelope("phase", id);
    v.set("phase", json::Value::string(phase));
    return v.dump();
}

std::string
sampleFrame(const std::string &id, const SampleEvent &event)
{
    return sampleBody("sample", id, event).dump();
}

std::string
improvementFrame(const std::string &id, const SampleEvent &event)
{
    return sampleBody("improvement", id, event).dump();
}

std::string
frontierFrame(const std::string &id, const FrontierEvent &event)
{
    json::Value v = frameEnvelope("frontier", id);
    v.set("index", json::Value::number(uint64_t(event.index)));
    v.set("edp", edpValue(event.edp));
    v.set("area_mm2", json::Value::number(event.area_mm2));
    v.set("power_w", json::Value::number(event.power_w));
    v.set("front_size",
            json::Value::number(uint64_t(event.front_size)));
    return v.dump();
}

std::string
doneFrame(const std::string &id, const SearchReport &report)
{
    json::Value v = frameEnvelope("done", id);
    v.set("best_edp", edpValue(report.search.best_edp));
    v.set("best_hw", hwToJson(report.search.best_hw));
    json::Value mappings = json::Value::array();
    for (const Mapping &m : report.search.best_mappings)
        mappings.push(mappingToJson(m));
    v.set("best_mappings", std::move(mappings));
    v.set("best_start_edp", edpValue(report.best_start_edp));
    v.set("best_start_hw", hwToJson(report.best_start_hw));
    v.set("samples", json::Value::number(
            uint64_t(report.search.trace.size())));
    json::Value front = json::Value::array();
    for (const ParetoPoint &p : report.search.frontier.points()) {
        json::Value point = json::Value::object();
        point.set("index",
                json::Value::number(uint64_t(p.sample_index)));
        point.set("edp", edpValue(p.edp));
        point.set("area_mm2", json::Value::number(p.area_mm2));
        point.set("power_w", json::Value::number(p.power_w));
        point.set("hw", hwToJson(p.hw));
        front.push(std::move(point));
    }
    v.set("frontier", std::move(front));
    return v.dump();
}

std::string
errorFrame(const std::string &id, const std::string &code,
           const std::string &message)
{
    json::Value v = frameEnvelope("error", id);
    v.set("code", json::Value::string(code));
    v.set("message", json::Value::string(message));
    return v.dump();
}

std::string
pongFrame(const std::string &id)
{
    return frameEnvelope("pong", id).dump();
}

std::string
statsFrame(const std::string &id, const std::string &service_name,
           const std::string &service_version,
           const std::vector<EndpointStats> &endpoints,
           uint64_t stats_window, const obs::MetricsSnapshot &metrics)
{
    json::Value v = frameEnvelope("stats", id);
    v.set("schema", json::Value::number(kStatsSchema));
    v.set("name", json::Value::string(service_name));
    v.set("version", json::Value::string(service_version));
    json::Value eps = json::Value::array();
    for (const EndpointStats &ep : endpoints)
        eps.push(endpointToJson(ep));
    v.set("endpoints", std::move(eps));
    v.set("window", json::Value::number(stats_window));
    v.set("metrics", metrics.toJson());
    return v.dump();
}

bool
decodeFrame(std::string_view line, Frame &out, std::string &error)
{
    out = Frame{};
    json::Value v;
    if (!json::parse(line, v, error))
        return false;

    json::ObjectReader r(v, "frame", error);
    std::string event;
    if (!needString(r, "event", event))
        return false;
    if (!needString(r, "id", out.id))
        return false;

    if (event == "phase") {
        out.kind = Frame::Kind::Phase;
        needString(r, "phase", out.phase);
    } else if (event == "sample" || event == "improvement") {
        out.kind = event == "sample" ? Frame::Kind::Sample
                                     : Frame::Kind::Improvement;
        uint64_t index = 0;
        needUint(r, "index", index);
        out.sample.index = size_t(index);
        needEdp(r, "edp", out.sample.edp);
        needEdp(r, "best_edp", out.sample.best_edp);
        needBool(r, "improved", out.sample.improved);
    } else if (event == "frontier") {
        out.kind = Frame::Kind::Frontier;
        uint64_t index = 0;
        needUint(r, "index", index);
        out.frontier.index = size_t(index);
        needEdp(r, "edp", out.frontier.edp);
        needDouble(r, "area_mm2", out.frontier.area_mm2);
        needDouble(r, "power_w", out.frontier.power_w);
        uint64_t front_size = 0;
        needUint(r, "front_size", front_size);
        out.frontier.front_size = size_t(front_size);
    } else if (event == "done") {
        out.kind = Frame::Kind::Done;
        needEdp(r, "best_edp", out.best_edp);
        needEdp(r, "best_start_edp", out.best_start_edp);
        needUint(r, "samples", out.samples);
        if (const json::Value *hw = r.consume("best_hw")) {
            if (!hwFromJson(*hw, "frame.best_hw", out.best_hw,
                        error))
                return false;
        } else {
            return r.fail("missing \"best_hw\"");
        }
        if (const json::Value *hw = r.consume("best_start_hw")) {
            if (!hwFromJson(*hw, "frame.best_start_hw",
                        out.best_start_hw, error))
                return false;
        } else {
            return r.fail("missing \"best_start_hw\"");
        }
        if (const json::Value *maps = r.consume("best_mappings")) {
            if (!maps->isArray())
                return r.fail("best_mappings: expected an array");
            const auto &elems = maps->elements();
            out.best_mappings.resize(elems.size());
            for (size_t i = 0; i < elems.size(); ++i)
                if (!mappingFromJson(elems[i],
                            "frame.best_mappings[" +
                                    std::to_string(i) + "]",
                            out.best_mappings[i], error))
                    return false;
        } else {
            return r.fail("missing \"best_mappings\"");
        }
        if (const json::Value *front = r.consume("frontier")) {
            if (!front->isArray())
                return r.fail("frontier: expected an array");
            const auto &elems = front->elements();
            out.pareto_front.resize(elems.size());
            for (size_t i = 0; i < elems.size(); ++i) {
                const std::string path = "frame.frontier[" +
                        std::to_string(i) + "]";
                json::ObjectReader p(elems[i], path, error);
                Frame::FrontierPoint &pt = out.pareto_front[i];
                needUint(p, "index", pt.index);
                needEdp(p, "edp", pt.edp);
                needDouble(p, "area_mm2", pt.area_mm2);
                needDouble(p, "power_w", pt.power_w);
                if (const json::Value *hw = p.consume("hw")) {
                    if (!hwFromJson(*hw, path + ".hw", pt.hw, error))
                        return false;
                } else {
                    return p.fail("missing \"hw\"");
                }
                if (!p.finish())
                    return false;
            }
        } else {
            return r.fail("missing \"frontier\"");
        }
    } else if (event == "error") {
        out.kind = Frame::Kind::Error;
        needString(r, "code", out.code);
        needString(r, "message", out.message);
    } else if (event == "pong") {
        out.kind = Frame::Kind::Pong;
    } else if (event == "stats") {
        out.kind = Frame::Kind::Stats;
        needUint(r, "schema", out.schema);
        needString(r, "name", out.service_name);
        needString(r, "version", out.service_version);
        needUint(r, "window", out.stats_window);
        if (const json::Value *metrics = r.consume("metrics")) {
            if (!obs::MetricsSnapshot::fromJson(*metrics,
                        "frame.metrics", out.metrics, error))
                return false;
        } else {
            return r.fail("missing \"metrics\"");
        }
        if (const json::Value *eps = r.consume("endpoints")) {
            if (!eps->isArray())
                return r.fail("endpoints: expected an array");
            const auto &elems = eps->elements();
            out.endpoints.resize(elems.size());
            for (size_t i = 0; i < elems.size(); ++i)
                if (!endpointFromJson(elems[i],
                            "frame.endpoints[" + std::to_string(i) +
                                    "]",
                            out.endpoints[i], error))
                    return false;
        } else {
            return r.fail("missing \"endpoints\"");
        }
    } else {
        return r.fail("unknown event \"" + event + "\"");
    }
    return r.finish();
}

} // namespace dosa::service
