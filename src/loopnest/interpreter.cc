/**
 * @file
 * Brute-force loop-nest execution: iteration-space walk with tile-residency tracking.
 */
#include "loopnest/interpreter.hh"

#include <set>
#include <tuple>
#include <vector>

#include "model/analytical.hh" // orderPermutation
#include "util/logging.hh"

namespace dosa {

namespace {

/** One temporal loop of the executable nest. */
struct Loop
{
    Dim dim;
    int64_t bound;
};

/** Nest outermost-first over temporal loops at levels >= level. */
std::vector<Loop>
outerNest(const Mapping &m, int level)
{
    std::vector<Loop> nest;
    for (int lvl = kNumLevels - 1; lvl >= level; --lvl) {
        const auto &perm = orderPermutation(m.order[size_t(lvl)]);
        for (Dim d : perm)
            nest.push_back({d, m.factors.t(lvl, d)});
    }
    return nest;
}

} // namespace

double
refetchWalkIterations(const Mapping &mapping, int level)
{
    double total = 1.0;
    for (const Loop &l : outerNest(mapping, level))
        total *= static_cast<double>(l.bound);
    return total;
}

double
observedRefetches(const Layer &layer, const Mapping &mapping, int level,
                  Tensor t)
{
    (void)layer;
    std::vector<Loop> nest = outerNest(mapping, level);
    size_t n = nest.size();
    std::vector<int64_t> idx(n, 0);

    // The tile identity is the tuple of indices of relevant loops.
    auto relevant_tuple = [&]() {
        std::vector<int64_t> key;
        key.reserve(n);
        for (size_t i = 0; i < n; ++i)
            if (dimRelevant(t, nest[i].dim))
                key.push_back(idx[i]);
        return key;
    };

    double fetches = 1.0; // the initial fill
    std::vector<int64_t> current = relevant_tuple();
    // Odometer walk, innermost loop fastest.
    while (true) {
        size_t pos = n;
        while (pos > 0) {
            --pos;
            if (++idx[pos] < nest[pos].bound)
                break;
            idx[pos] = 0;
            if (pos == 0)
                return fetches; // odometer wrapped: done
        }
        std::vector<int64_t> next = relevant_tuple();
        if (next != current) {
            fetches += 1.0;
            current = std::move(next);
        }
    }
}

double
observedTileWords(const Layer &layer, const Mapping &mapping, int level,
                  Tensor t)
{
    // Inner loops: all temporal loops strictly below `level`, plus the
    // spatial fanout (which physically sits below every SRAM).
    std::vector<Loop> loops;
    for (int lvl = level - 1; lvl >= 0; --lvl) {
        const auto &perm = orderPermutation(mapping.order[size_t(lvl)]);
        for (Dim d : perm)
            loops.push_back({d, mapping.factors.t(lvl, d)});
    }
    loops.push_back({Dim::C, mapping.factors.spatial_c});
    loops.push_back({Dim::K, mapping.factors.spatial_k});

    size_t n = loops.size();
    std::vector<int64_t> idx(n, 0);

    // Combined per-dimension coordinate inside the tile: mixed-radix
    // over all inner loops of that dimension.
    auto coord = [&](Dim d) {
        int64_t c = 0;
        for (size_t i = 0; i < n; ++i) {
            if (loops[i].dim == d)
                c = c * loops[i].bound + idx[i];
        }
        return c;
    };

    std::set<std::tuple<int64_t, int64_t, int64_t, int64_t>> words;
    while (true) {
        switch (t) {
          case Tensor::Weight:
            words.insert({coord(Dim::R), coord(Dim::S), coord(Dim::C),
                          coord(Dim::K)});
            break;
          case Tensor::Input: {
            int64_t h = layer.stride * coord(Dim::P) + coord(Dim::R);
            int64_t w = layer.stride * coord(Dim::Q) + coord(Dim::S);
            words.insert({coord(Dim::C), coord(Dim::N), h, w});
            break;
          }
          case Tensor::Output:
            words.insert({coord(Dim::P), coord(Dim::Q), coord(Dim::K),
                          coord(Dim::N)});
            break;
        }
        size_t pos = n;
        bool done = true;
        while (pos > 0) {
            --pos;
            if (++idx[pos] < loops[pos].bound) {
                done = false;
                break;
            }
            idx[pos] = 0;
        }
        if (done)
            break;
    }
    return static_cast<double>(words.size());
}

} // namespace dosa
