/**
 * @file
 * Brute-force loop-nest interpreter.
 *
 * Where the paper trusts Timeloop as ground truth, this repository adds
 * a third, independent validation layer: the mapped loop nest is
 * actually *executed* (as an iteration-space walk) on small layers, and
 * tile residency / refetch behaviour is observed directly rather than
 * computed in closed form. Tests cross-check both the differentiable
 * model and the reference model against these observations.
 *
 * Costs are exponential in the loop bounds, so this is only invoked on
 * tiny problems (tests keep total iterations in the thousands).
 */

#ifndef DOSA_LOOPNEST_INTERPRETER_HH
#define DOSA_LOOPNEST_INTERPRETER_HH

#include <cstdint>

#include "mapping/mapping.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * Observed number of times the tile of tensor t held at `level` changes
 * while the temporal loops at levels >= level run in mapping order
 * (odometer walk; a change in any relevant loop index is a refetch).
 * Equals the model's refetch multiplier by construction of the model.
 */
double observedRefetches(const Layer &layer, const Mapping &mapping,
                         int level, Tensor t);

/**
 * Observed number of distinct tensor-t words touched inside one
 * residency window of `level`: all temporal loops below the level plus
 * the spatial fanout are enumerated and unique word coordinates
 * counted. For inputs this observes true halo overlap, so it can be
 * smaller than the model's dense bounding-box footprint when
 * stride > R (or S); otherwise it matches exactly.
 */
double observedTileWords(const Layer &layer, const Mapping &mapping,
                         int level, Tensor t);

/** Total iterations the refetch walk would take (guard for tests). */
double refetchWalkIterations(const Mapping &mapping, int level);

} // namespace dosa

#endif // DOSA_LOOPNEST_INTERPRETER_HH
