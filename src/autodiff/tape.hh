/**
 * @file
 * Reverse-mode automatic differentiation tape.
 *
 * The paper implements its differentiable performance model with PyTorch
 * autograd; this is the equivalent substrate built from scratch. Each
 * arithmetic operation appends a node recording (up to two) parents and
 * the local partial derivatives; a single reverse sweep then yields the
 * gradient of one scalar output with respect to every leaf.
 *
 * The DOSA objective graph is rebuilt every descent step, so the tape is
 * optimized for append-heavy usage: flat vectors, trivially clearable.
 */

#ifndef DOSA_AUTODIFF_TAPE_HH
#define DOSA_AUTODIFF_TAPE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dosa::ad {

/** Index of a node on the tape. */
using NodeId = int32_t;

/** Sentinel for "no parent". */
constexpr NodeId kNoParent = -1;

/**
 * Append-only computation record supporting reverse-mode sweeps.
 *
 * Nodes hold at most two parents; n-ary reductions are built from
 * binary chains by the Var operators layered on top.
 */
class Tape
{
  public:
    /** Add an input (leaf) node with the given value. */
    NodeId addLeaf(double value);

    /** Add a node with one parent and local derivative w. */
    NodeId addUnary(NodeId parent, double w, double value);

    /** Add a node with two parents and local derivatives w0, w1. */
    NodeId addBinary(NodeId p0, double w0, NodeId p1, double w1,
                     double value);

    /** Value stored at a node. */
    double value(NodeId id) const { return values_[size_t(id)]; }

    /** Number of nodes currently recorded. */
    size_t size() const { return values_.size(); }

    /**
     * Reverse sweep from `output`: returns the adjoint (d output / d node)
     * for every node on the tape. Callers index this by leaf NodeIds.
     */
    std::vector<double> gradient(NodeId output) const;

    /** Drop all nodes; invalidates outstanding NodeIds. */
    void clear();

    /**
     * Reserve capacity for roughly `n` nodes (perf hint for the
     * per-step graph rebuild).
     */
    void reserve(size_t n);

  private:
    struct Node
    {
        NodeId p0;
        NodeId p1;
        double w0;
        double w1;
    };

    std::vector<Node> nodes_;
    std::vector<double> values_;
};

} // namespace dosa::ad

#endif // DOSA_AUTODIFF_TAPE_HH
