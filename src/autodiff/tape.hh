/**
 * @file
 * Reverse-mode automatic differentiation tape with arena reuse.
 *
 * The paper implements its differentiable performance model with PyTorch
 * autograd; this is the equivalent substrate built from scratch. Each
 * arithmetic operation appends a node recording its operation kind, (up
 * to two) parents and the local partial derivatives; a single reverse
 * sweep then yields the gradient of one scalar output with respect to
 * every leaf.
 *
 * Unlike PyTorch, this engine exploits a DOSA-specific invariant: for a
 * fixed (layers, orders, strategy, mode) context the objective graph has
 * an identical *shape* every descent step — only the leaf values change.
 * The tape therefore supports three lifecycle modes:
 *
 *  - build:  append nodes (via Var arithmetic), structure-of-arrays
 *            storage, `reserve()`d once and reused;
 *  - replay: `replay(leaf_values)` re-runs the recorded program in one
 *            fused forward pass, recomputing every node value *and*
 *            every local partial (data-dependent max/min/relu branches
 *            re-select from the new values), bitwise-identical to a
 *            fresh build of the same expression at the new leaves;
 *  - sweep:  `gradientInto()` reverse-sweeps into a caller-owned
 *            adjoint buffer, so steady-state descent steps allocate
 *            nothing.
 *
 * On top of the scalar replay the tape offers a *batched* mode:
 * `replayBatch(leaf_sets, ...)` values N independent leaf assignments
 * (lanes) in one sweep over the program, and `gradientBatchInto()`
 * reverse-sweeps every lane against the same output node. Each op
 * processes its lanes in fixed-width blocks of `kLaneWidth` doubles
 * with a scalar tail, and data-dependent branches (max/min/relu, the
 * softmax shift) re-select independently per lane — lane b is
 * bitwise-identical to what `replay(leaf_set_b)` + `gradientInto()`
 * would produce. Batch state lives in separate lane buffers, so the
 * scalar values/partials of the last build or replay stay untouched.
 *
 * `reset()` clears the tape without releasing capacity, making arena
 * reuse across descent steps free. A Tape is single-owner state: it may
 * only be touched by one thread at a time (each searcher start point
 * owns its tape).
 */

#ifndef DOSA_AUTODIFF_TAPE_HH
#define DOSA_AUTODIFF_TAPE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dosa::ad {

/** Index of a node on the tape. */
using NodeId = int32_t;

/** Sentinel for "no parent". */
constexpr NodeId kNoParent = -1;

/**
 * Node operation kinds. `C` marks an untaped (constant) operand folded
 * into the node's `aux` slot; `CL`/`CR` distinguish which side the
 * constant sat on where the semantics differ (tie-breaking of max/min
 * follows the left operand, matching torch.max). Replay recomputes
 * value and partials from these kinds with the exact expressions the
 * Var layer uses at build time.
 */
enum class Op : uint8_t
{
    Leaf,  ///< value supplied externally (per-step input)
    Neg,   ///< -p0
    Add,   ///< p0 + p1
    AddC,  ///< p0 + aux
    Sub,   ///< p0 - p1
    SubC,  ///< p0 - aux
    CSub,  ///< aux - p0
    Mul,   ///< p0 * p1
    MulC,  ///< p0 * aux
    Div,   ///< p0 / p1
    DivC,  ///< p0 / aux
    CDiv,  ///< aux / p0
    Log,   ///< log(p0)
    Exp,   ///< exp(p0)
    Sqrt,  ///< sqrt(p0)
    Pow,   ///< pow(p0, aux)
    Max,   ///< max(p0, p1), subgradient to the larger (ties to p0)
    MaxCL, ///< max(aux, p0), ties to the constant
    MaxCR, ///< max(p0, aux), ties to p0
    Min,   ///< min(p0, p1), ties to p0
    MinCL, ///< min(aux, p0), ties to the constant
    MinCR, ///< min(p0, aux), ties to p0
    Relu,  ///< max(p0, 0) with zero gradient at/below 0
};

/**
 * Append-only computation record supporting reverse-mode sweeps and
 * whole-graph replay.
 *
 * Nodes hold at most two parents; n-ary reductions are built from
 * binary chains by the Var operators layered on top. Storage is
 * structure-of-arrays: the replay interpreter and the reverse sweep
 * each stream over exactly the arrays they need.
 */
class Tape
{
  public:
    /** Add an input (leaf) node with the given value. */
    NodeId addLeaf(double value);

    /**
     * Add a computed node. `value`, `w0`, `w1` are the build-time
     * results; `op` + `aux` let replay recompute them from fresh
     * parent values.
     */
    NodeId addNode(Op op, NodeId p0, NodeId p1, double aux, double value,
                   double w0, double w1);

    /** Value stored at a node. */
    double value(NodeId id) const { return values_[size_t(id)]; }

    /** Number of nodes currently recorded. */
    size_t size() const { return values_.size(); }

    /** Number of leaf nodes recorded, in addLeaf order. */
    size_t numLeaves() const { return leaves_.size(); }

    /** NodeId of the k-th leaf (in addLeaf order). */
    NodeId leaf(size_t k) const { return leaves_[k]; }

    /**
     * Fused forward re-valuation: assign `leaf_values` (one per leaf,
     * in addLeaf order) and re-run the recorded program, recomputing
     * every node value and local partial in one pass. Requires the
     * expression shape to be unchanged since the last build; the
     * result is bitwise-identical to rebuilding the same expression
     * at the new leaf values.
     */
    void replay(std::span<const double> leaf_values);

    /**
     * Reverse sweep from `output` into a caller-owned adjoint buffer
     * (resized to size()): adj[n] = d output / d node n. Reusing the
     * buffer across steps eliminates the per-step allocation.
     */
    void gradientInto(NodeId output, std::vector<double> &adj) const;

    /**
     * Reverse sweep from `output`: returns the adjoint for every node
     * on the tape. Convenience wrapper over gradientInto.
     */
    std::vector<double> gradient(NodeId output) const;

    /** Lanes per fixed-width block of the batched interpreter. */
    static constexpr size_t kLaneWidth = 4;

    /**
     * Batched fused forward re-valuation: one sweep over the recorded
     * program valuing `leaf_sets.size() / numLeaves()` independent
     * leaf assignments (lanes) at once. `leaf_sets` is lane-major:
     * `leaf_sets[lane * numLeaves() + k]` is the value of the k-th
     * leaf (addLeaf order) in `lane`. The values of `outputs` are
     * gathered lane-major into `out`
     * (`out[lane * outputs.size() + j]`), and the full per-lane state
     * stays resident for `batchValue` / `gradientBatchInto`.
     *
     * Every lane re-selects its own max/min/relu branches; lane b is
     * bitwise-identical to `replay(leaf_set_b)`. The scalar state of
     * the last build/replay is not disturbed. Panics on an empty
     * batch, a `leaf_sets` size that is not a multiple of
     * `numLeaves()`, or an `out` span smaller than
     * lanes * outputs.size().
     */
    void replayBatch(std::span<const double> leaf_sets,
                     std::span<const NodeId> outputs,
                     std::span<double> out);

    /** Lanes valued by the last replayBatch (0 = no batch state). */
    size_t batchLanes() const { return batch_lanes_; }

    /** Value of a node in one lane of the last replayBatch. */
    double
    batchValue(NodeId id, size_t lane) const
    {
        return batch_v_[size_t(id) * batch_lanes_ + lane];
    }

    /**
     * Batched reverse sweep from `output` over every lane of the last
     * replayBatch, into a caller-owned buffer resized to
     * size() * batchLanes(), node-major:
     * `adj[node * batchLanes() + lane]` = d output / d node in that
     * lane. Lane b is bitwise-identical to the `gradientInto` result
     * after `replay(leaf_set_b)`. Panics when no batch state is
     * resident or `output` is out of range.
     */
    void gradientBatchInto(NodeId output, std::vector<double> &adj) const;

    /**
     * Drop all nodes without releasing capacity (arena reuse);
     * invalidates outstanding NodeIds.
     */
    void reset();

    /** Alias of reset(), kept for existing callers. */
    void clear() { reset(); }

    /**
     * Reserve capacity for roughly `n` nodes (perf hint for the
     * first graph build).
     */
    void reserve(size_t n);

  private:
    /** Program word: operation + parents (read-only after build). */
    struct NodeIn
    {
        Op op;
        NodeId p0;
        NodeId p1;
    };

    /** Derivative word: constant operand + local partials. */
    struct NodeW
    {
        double aux;
        double w0;
        double w1;
    };

    // Structure-of-arrays node storage, split by access phase: the
    // replay interpreter streams in_/w_/values_, the reverse sweep
    // streams in_ (parents) and w_ (partials) against the adjoints.
    std::vector<NodeIn> in_;
    std::vector<NodeW> w_;
    std::vector<double> values_;
    /** Leaf NodeIds in insertion order (replay input layout). */
    std::vector<NodeId> leaves_;

    // Batched-replay lane state, node-major with stride batch_lanes_.
    // batch_w0_/batch_w1_ hold per-lane partials only for ops whose
    // partials depend on values (mul/div/transcendentals/branches);
    // value-independent partials are read from w_ and shared by every
    // lane. Separate from the scalar arrays so a batch sweep never
    // invalidates the last scalar replay.
    std::vector<double> batch_v_;
    std::vector<double> batch_w0_;
    std::vector<double> batch_w1_;
    size_t batch_lanes_ = 0;
};

} // namespace dosa::ad

#endif // DOSA_AUTODIFF_TAPE_HH
