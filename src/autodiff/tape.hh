/**
 * @file
 * Reverse-mode automatic differentiation tape with arena reuse.
 *
 * The paper implements its differentiable performance model with PyTorch
 * autograd; this is the equivalent substrate built from scratch. Each
 * arithmetic operation appends a node recording its operation kind, (up
 * to two) parents and the local partial derivatives; a single reverse
 * sweep then yields the gradient of one scalar output with respect to
 * every leaf.
 *
 * Unlike PyTorch, this engine exploits a DOSA-specific invariant: for a
 * fixed (layers, orders, strategy, mode) context the objective graph has
 * an identical *shape* every descent step — only the leaf values change.
 * The tape therefore supports three lifecycle modes:
 *
 *  - build:  append nodes (via Var arithmetic), structure-of-arrays
 *            storage, `reserve()`d once and reused;
 *  - replay: `replay(leaf_values)` re-runs the recorded program in one
 *            fused forward pass, recomputing every node value *and*
 *            every local partial (data-dependent max/min/relu branches
 *            re-select from the new values), bitwise-identical to a
 *            fresh build of the same expression at the new leaves;
 *  - sweep:  `gradientInto()` reverse-sweeps into a caller-owned
 *            adjoint buffer, so steady-state descent steps allocate
 *            nothing.
 *
 * `reset()` clears the tape without releasing capacity, making arena
 * reuse across descent steps free. A Tape is single-owner state: it may
 * only be touched by one thread at a time (each searcher start point
 * owns its tape).
 */

#ifndef DOSA_AUTODIFF_TAPE_HH
#define DOSA_AUTODIFF_TAPE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dosa::ad {

/** Index of a node on the tape. */
using NodeId = int32_t;

/** Sentinel for "no parent". */
constexpr NodeId kNoParent = -1;

/**
 * Node operation kinds. `C` marks an untaped (constant) operand folded
 * into the node's `aux` slot; `CL`/`CR` distinguish which side the
 * constant sat on where the semantics differ (tie-breaking of max/min
 * follows the left operand, matching torch.max). Replay recomputes
 * value and partials from these kinds with the exact expressions the
 * Var layer uses at build time.
 */
enum class Op : uint8_t
{
    Leaf,  ///< value supplied externally (per-step input)
    Neg,   ///< -p0
    Add,   ///< p0 + p1
    AddC,  ///< p0 + aux
    Sub,   ///< p0 - p1
    SubC,  ///< p0 - aux
    CSub,  ///< aux - p0
    Mul,   ///< p0 * p1
    MulC,  ///< p0 * aux
    Div,   ///< p0 / p1
    DivC,  ///< p0 / aux
    CDiv,  ///< aux / p0
    Log,   ///< log(p0)
    Exp,   ///< exp(p0)
    Sqrt,  ///< sqrt(p0)
    Pow,   ///< pow(p0, aux)
    Max,   ///< max(p0, p1), subgradient to the larger (ties to p0)
    MaxCL, ///< max(aux, p0), ties to the constant
    MaxCR, ///< max(p0, aux), ties to p0
    Min,   ///< min(p0, p1), ties to p0
    MinCL, ///< min(aux, p0), ties to the constant
    MinCR, ///< min(p0, aux), ties to p0
    Relu,  ///< max(p0, 0) with zero gradient at/below 0
};

/**
 * Append-only computation record supporting reverse-mode sweeps and
 * whole-graph replay.
 *
 * Nodes hold at most two parents; n-ary reductions are built from
 * binary chains by the Var operators layered on top. Storage is
 * structure-of-arrays: the replay interpreter and the reverse sweep
 * each stream over exactly the arrays they need.
 */
class Tape
{
  public:
    /** Add an input (leaf) node with the given value. */
    NodeId addLeaf(double value);

    /**
     * Add a computed node. `value`, `w0`, `w1` are the build-time
     * results; `op` + `aux` let replay recompute them from fresh
     * parent values.
     */
    NodeId addNode(Op op, NodeId p0, NodeId p1, double aux, double value,
                   double w0, double w1);

    /** Value stored at a node. */
    double value(NodeId id) const { return values_[size_t(id)]; }

    /** Number of nodes currently recorded. */
    size_t size() const { return values_.size(); }

    /** Number of leaf nodes recorded, in addLeaf order. */
    size_t numLeaves() const { return leaves_.size(); }

    /** NodeId of the k-th leaf (in addLeaf order). */
    NodeId leaf(size_t k) const { return leaves_[k]; }

    /**
     * Fused forward re-valuation: assign `leaf_values` (one per leaf,
     * in addLeaf order) and re-run the recorded program, recomputing
     * every node value and local partial in one pass. Requires the
     * expression shape to be unchanged since the last build; the
     * result is bitwise-identical to rebuilding the same expression
     * at the new leaf values.
     */
    void replay(std::span<const double> leaf_values);

    /**
     * Reverse sweep from `output` into a caller-owned adjoint buffer
     * (resized to size()): adj[n] = d output / d node n. Reusing the
     * buffer across steps eliminates the per-step allocation.
     */
    void gradientInto(NodeId output, std::vector<double> &adj) const;

    /**
     * Reverse sweep from `output`: returns the adjoint for every node
     * on the tape. Convenience wrapper over gradientInto.
     */
    std::vector<double> gradient(NodeId output) const;

    /**
     * Drop all nodes without releasing capacity (arena reuse);
     * invalidates outstanding NodeIds.
     */
    void reset();

    /** Alias of reset(), kept for existing callers. */
    void clear() { reset(); }

    /**
     * Reserve capacity for roughly `n` nodes (perf hint for the
     * first graph build).
     */
    void reserve(size_t n);

  private:
    /** Program word: operation + parents (read-only after build). */
    struct NodeIn
    {
        Op op;
        NodeId p0;
        NodeId p1;
    };

    /** Derivative word: constant operand + local partials. */
    struct NodeW
    {
        double aux;
        double w0;
        double w1;
    };

    // Structure-of-arrays node storage, split by access phase: the
    // replay interpreter streams in_/w_/values_, the reverse sweep
    // streams in_ (parents) and w_ (partials) against the adjoints.
    std::vector<NodeIn> in_;
    std::vector<NodeW> w_;
    std::vector<double> values_;
    /** Leaf NodeIds in insertion order (replay input layout). */
    std::vector<NodeId> leaves_;
};

} // namespace dosa::ad

#endif // DOSA_AUTODIFF_TAPE_HH
