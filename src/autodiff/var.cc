/**
 * @file
 * Var arithmetic: each operation records parents and local partials on the tape.
 */
#include "autodiff/var.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa::ad {

namespace {

/** Pick the shared tape of two operands; panic on a cross-tape mix. */
Tape *
jointTape(const Var &a, const Var &b)
{
    Tape *ta = a.tape();
    Tape *tb = b.tape();
    if (ta && tb && ta != tb)
        panic("ad::Var: operands recorded on different tapes");
    return ta ? ta : tb;
}

} // namespace

Var
Var::make(Tape *tape, NodeId id, double val)
{
    Var v;
    v.tape_ = tape;
    v.id_ = id;
    v.val_ = val;
    return v;
}

Var
Var::operator-() const
{
    if (!tape_)
        return Var(-val_);
    return make(tape_, tape_->addUnary(id_, -1.0, -val_), -val_);
}

Var
operator+(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ + b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addBinary(a.id_, 1.0, b.id_, 1.0, v), v);
    NodeId p = a.id_ != kNoParent ? a.id_ : b.id_;
    return Var::make(t, t->addUnary(p, 1.0, v), v);
}

Var
operator-(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ - b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addBinary(a.id_, 1.0, b.id_, -1.0, v), v);
    if (a.id_ != kNoParent)
        return Var::make(t, t->addUnary(a.id_, 1.0, v), v);
    return Var::make(t, t->addUnary(b.id_, -1.0, v), v);
}

Var
operator*(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ * b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t,
                t->addBinary(a.id_, b.val_, b.id_, a.val_, v), v);
    if (a.id_ != kNoParent)
        return Var::make(t, t->addUnary(a.id_, b.val_, v), v);
    return Var::make(t, t->addUnary(b.id_, a.val_, v), v);
}

Var
operator/(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ / b.val_;
    if (!t)
        return Var(v);
    double da = 1.0 / b.val_;
    double db = -a.val_ / (b.val_ * b.val_);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addBinary(a.id_, da, b.id_, db, v), v);
    if (a.id_ != kNoParent)
        return Var::make(t, t->addUnary(a.id_, da, v), v);
    return Var::make(t, t->addUnary(b.id_, db, v), v);
}

Var
log(const Var &a)
{
    double v = std::log(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_,
            a.tape_->addUnary(a.id_, 1.0 / a.val_, v), v);
}

Var
exp(const Var &a)
{
    double v = std::exp(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_, a.tape_->addUnary(a.id_, v, v), v);
}

Var
sqrt(const Var &a)
{
    double v = std::sqrt(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_,
            a.tape_->addUnary(a.id_, 0.5 / v, v), v);
}

Var
pow(const Var &a, double e)
{
    double v = std::pow(a.val_, e);
    if (!a.tape_)
        return Var(v);
    double d = e * std::pow(a.val_, e - 1.0);
    return Var::make(a.tape_, a.tape_->addUnary(a.id_, d, v), v);
}

Var
max(const Var &a, const Var &b)
{
    // Subgradient flows only to the larger operand (ties go to a),
    // matching torch.max backward behaviour closely enough for DSE.
    const Var &win = a.val_ >= b.val_ ? a : b;
    Tape *t = jointTape(a, b);
    if (!t || win.id_ == kNoParent)
        return Var(win.val_);
    return Var::make(t, t->addUnary(win.id_, 1.0, win.val_), win.val_);
}

Var
min(const Var &a, const Var &b)
{
    const Var &win = a.val_ <= b.val_ ? a : b;
    Tape *t = jointTape(a, b);
    if (!t || win.id_ == kNoParent)
        return Var(win.val_);
    return Var::make(t, t->addUnary(win.id_, 1.0, win.val_), win.val_);
}

Var
relu(const Var &a)
{
    if (a.val_ <= 0.0) {
        // Hard zero with no gradient, as in torch.relu at/below 0.
        if (!a.tape_)
            return Var(0.0);
        return Var::make(a.tape_, a.tape_->addUnary(a.id_, 0.0, 0.0), 0.0);
    }
    if (!a.tape_)
        return Var(a.val_);
    return Var::make(a.tape_,
            a.tape_->addUnary(a.id_, 1.0, a.val_), a.val_);
}

Var
sum(const std::vector<Var> &xs)
{
    Var acc(0.0);
    for (const Var &x : xs)
        acc = acc + x;
    return acc;
}

std::vector<Var>
softmax(const std::vector<Var> &xs)
{
    if (xs.empty())
        return {};
    // Standard max-shift for numerical stability; the shift is treated
    // as a constant (its gradient contribution cancels analytically).
    double shift = xs[0].value();
    for (const Var &x : xs)
        shift = std::max(shift, x.value());
    std::vector<Var> es;
    es.reserve(xs.size());
    for (const Var &x : xs)
        es.push_back(exp(x - Var(shift)));
    Var denom = sum(es);
    std::vector<Var> out;
    out.reserve(xs.size());
    for (const Var &e : es)
        out.push_back(e / denom);
    return out;
}

} // namespace dosa::ad
