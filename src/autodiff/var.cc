/**
 * @file
 * Var arithmetic: each operation records its kind, parents and local partials on the tape.
 *
 * Every node carries a typed Op so Tape::replay can recompute values
 * and partials from new leaf values. For that to be sound the recorded
 * graph *shape* must not depend on leaf values, so data-dependent
 * selections (max/min with one constant operand) always record a node
 * — even when the constant wins — instead of collapsing to a detached
 * constant. The selected branch is encoded in the partials (weight 0
 * to the loser), which replay re-derives from the fresh values.
 */
#include "autodiff/var.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa::ad {

namespace {

/** Pick the shared tape of two operands; panic on a cross-tape mix. */
Tape *
jointTape(const Var &a, const Var &b)
{
    Tape *ta = a.tape();
    Tape *tb = b.tape();
    if (ta && tb && ta != tb)
        panic("ad::Var: operands recorded on different tapes");
    return ta ? ta : tb;
}

} // namespace

Var
Var::make(Tape *tape, NodeId id, double val)
{
    Var v;
    v.tape_ = tape;
    v.id_ = id;
    v.val_ = val;
    return v;
}

Var
Var::operator-() const
{
    if (!tape_)
        return Var(-val_);
    return make(tape_, tape_->addNode(Op::Neg, id_, kNoParent, 0.0,
            -val_, -1.0, 0.0), -val_);
}

Var
operator+(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ + b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Add, a.id_, b.id_, 0.0, v,
                1.0, 1.0), v);
    NodeId p = a.id_ != kNoParent ? a.id_ : b.id_;
    double c = a.id_ != kNoParent ? b.val_ : a.val_;
    return Var::make(t, t->addNode(Op::AddC, p, kNoParent, c, v,
            1.0, 0.0), v);
}

Var
operator-(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ - b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Sub, a.id_, b.id_, 0.0, v,
                1.0, -1.0), v);
    if (a.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::SubC, a.id_, kNoParent,
                b.val_, v, 1.0, 0.0), v);
    return Var::make(t, t->addNode(Op::CSub, b.id_, kNoParent, a.val_,
            v, -1.0, 0.0), v);
}

Var
operator*(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ * b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Mul, a.id_, b.id_, 0.0, v,
                b.val_, a.val_), v);
    NodeId p = a.id_ != kNoParent ? a.id_ : b.id_;
    double c = a.id_ != kNoParent ? b.val_ : a.val_;
    return Var::make(t, t->addNode(Op::MulC, p, kNoParent, c, v,
            c, 0.0), v);
}

Var
operator/(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    double v = a.val_ / b.val_;
    if (!t)
        return Var(v);
    double da = 1.0 / b.val_;
    double db = -a.val_ / (b.val_ * b.val_);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Div, a.id_, b.id_, 0.0, v,
                da, db), v);
    if (a.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::DivC, a.id_, kNoParent,
                b.val_, v, da, 0.0), v);
    return Var::make(t, t->addNode(Op::CDiv, b.id_, kNoParent, a.val_,
            v, db, 0.0), v);
}

Var
log(const Var &a)
{
    double v = std::log(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_, a.tape_->addNode(Op::Log, a.id_,
            kNoParent, 0.0, v, 1.0 / a.val_, 0.0), v);
}

Var
exp(const Var &a)
{
    double v = std::exp(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_, a.tape_->addNode(Op::Exp, a.id_,
            kNoParent, 0.0, v, v, 0.0), v);
}

Var
sqrt(const Var &a)
{
    double v = std::sqrt(a.val_);
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_, a.tape_->addNode(Op::Sqrt, a.id_,
            kNoParent, 0.0, v, 0.5 / v, 0.0), v);
}

Var
pow(const Var &a, double e)
{
    double v = std::pow(a.val_, e);
    if (!a.tape_)
        return Var(v);
    double d = e * std::pow(a.val_, e - 1.0);
    return Var::make(a.tape_, a.tape_->addNode(Op::Pow, a.id_,
            kNoParent, e, v, d, 0.0), v);
}

Var
max(const Var &a, const Var &b)
{
    // Subgradient flows only to the larger operand (ties go to a),
    // matching torch.max backward behaviour closely enough for DSE.
    Tape *t = jointTape(a, b);
    bool first = a.val_ >= b.val_;
    double v = first ? a.val_ : b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Max, a.id_, b.id_, 0.0, v,
                first ? 1.0 : 0.0, first ? 0.0 : 1.0), v);
    if (a.id_ == kNoParent)
        return Var::make(t, t->addNode(Op::MaxCL, b.id_, kNoParent,
                a.val_, v, first ? 0.0 : 1.0, 0.0), v);
    return Var::make(t, t->addNode(Op::MaxCR, a.id_, kNoParent, b.val_,
            v, first ? 1.0 : 0.0, 0.0), v);
}

Var
min(const Var &a, const Var &b)
{
    Tape *t = jointTape(a, b);
    bool first = a.val_ <= b.val_;
    double v = first ? a.val_ : b.val_;
    if (!t)
        return Var(v);
    if (a.id_ != kNoParent && b.id_ != kNoParent)
        return Var::make(t, t->addNode(Op::Min, a.id_, b.id_, 0.0, v,
                first ? 1.0 : 0.0, first ? 0.0 : 1.0), v);
    if (a.id_ == kNoParent)
        return Var::make(t, t->addNode(Op::MinCL, b.id_, kNoParent,
                a.val_, v, first ? 0.0 : 1.0, 0.0), v);
    return Var::make(t, t->addNode(Op::MinCR, a.id_, kNoParent, b.val_,
            v, first ? 1.0 : 0.0, 0.0), v);
}

Var
relu(const Var &a)
{
    // Hard zero with no gradient at/below 0, as in torch.relu.
    bool on = a.val_ > 0.0;
    double v = on ? a.val_ : 0.0;
    if (!a.tape_)
        return Var(v);
    return Var::make(a.tape_, a.tape_->addNode(Op::Relu, a.id_,
            kNoParent, 0.0, v, on ? 1.0 : 0.0, 0.0), v);
}

Var
sum(const std::vector<Var> &xs)
{
    Var acc(0.0);
    for (const Var &x : xs)
        acc = acc + x;
    return acc;
}

std::vector<Var>
softmax(const std::vector<Var> &xs)
{
    if (xs.empty())
        return {};
    // Standard max-shift for numerical stability. The shift is kept
    // on the tape (its gradient contribution cancels analytically) so
    // the graph shape — and hence a Tape::replay — stays valid when
    // the argmax moves between descent steps.
    Var shift = xs[0];
    for (const Var &x : xs)
        shift = max(shift, x);
    std::vector<Var> es;
    es.reserve(xs.size());
    for (const Var &x : xs)
        es.push_back(exp(x - shift));
    Var denom = sum(es);
    std::vector<Var> out;
    out.reserve(xs.size());
    for (const Var &e : es)
        out.push_back(e / denom);
    return out;
}

} // namespace dosa::ad
