/**
 * @file
 * Differentiable scalar type recorded on a Tape.
 *
 * Var mirrors double arithmetic closely enough that the analytical
 * performance model (src/model) can be written once as a template and
 * instantiated for plain double (fast evaluation) or Var (gradient
 * descent). Mixing Vars from different tapes is a programming error and
 * panics.
 *
 * Shape invariance: the sequence of nodes an expression records
 * depends only on which operands are taped, never on their values —
 * data-dependent selections (max/min/relu, the softmax shift) encode
 * the chosen branch in the node's partials, not in the graph
 * structure. This is what makes Tape::replay sound: the recorded
 * program at new leaf values is exactly what a fresh build would
 * record.
 */

#ifndef DOSA_AUTODIFF_VAR_HH
#define DOSA_AUTODIFF_VAR_HH

#include <vector>

#include "autodiff/tape.hh"

namespace dosa::ad {

/**
 * A scalar value tracked for reverse-mode differentiation.
 *
 * Default-constructed Vars are detached constants (no tape); any
 * arithmetic combining a detached constant with a taped Var records
 * the constant implicitly via a unary node.
 */
class Var
{
  public:
    /** Detached constant 0. */
    Var() : tape_(nullptr), id_(kNoParent), val_(0.0) {}

    /** Detached constant. */
    Var(double v) : tape_(nullptr), id_(kNoParent), val_(v) {}

    /** Leaf variable recorded on `tape`. */
    Var(Tape &tape, double v)
        : tape_(&tape), id_(tape.addLeaf(v)), val_(v)
    {}

    /** Numeric value. */
    double value() const { return val_; }

    /** Tape node id, or kNoParent for detached constants. */
    NodeId id() const { return id_; }

    /** The owning tape (nullptr for detached constants). */
    Tape *tape() const { return tape_; }

    Var operator-() const;
    Var &operator+=(const Var &o) { *this = *this + o; return *this; }
    Var &operator-=(const Var &o) { *this = *this - o; return *this; }
    Var &operator*=(const Var &o) { *this = *this * o; return *this; }
    Var &operator/=(const Var &o) { *this = *this / o; return *this; }

    friend Var operator+(const Var &a, const Var &b);
    friend Var operator-(const Var &a, const Var &b);
    friend Var operator*(const Var &a, const Var &b);
    friend Var operator/(const Var &a, const Var &b);

    friend Var log(const Var &a);
    friend Var exp(const Var &a);
    friend Var sqrt(const Var &a);
    friend Var pow(const Var &a, double e);
    /** max with subgradient to the larger operand (PyTorch semantics). */
    friend Var max(const Var &a, const Var &b);
    friend Var min(const Var &a, const Var &b);
    /** max(a, 0), the Eq. 18 penalty hinge. */
    friend Var relu(const Var &a);

  private:
    static Var make(Tape *tape, NodeId id, double val);

    Tape *tape_;
    NodeId id_;
    double val_;
};

/** Comparison on values only (no tape recording). */
inline bool operator<(const Var &a, const Var &b)
{ return a.value() < b.value(); }
inline bool operator>(const Var &a, const Var &b)
{ return a.value() > b.value(); }

/** Sum of a vector of Vars (binary-chain reduction). */
Var sum(const std::vector<Var> &xs);

/** Elementwise softmax of a vector of Vars. */
std::vector<Var> softmax(const std::vector<Var> &xs);

// Generic helpers so templated model code works on double and Var alike.

/** Numeric value of a scalar (identity for double). */
inline double val(double x) { return x; }
inline double val(const Var &x) { return x.value(); }

} // namespace dosa::ad

#endif // DOSA_AUTODIFF_VAR_HH
