/**
 * @file
 * Arena tape: SoA node storage, the fused replay interpreter (scalar
 * and lane-blocked batch variants) and the backward gradient sweeps.
 */
#include "autodiff/tape.hh"

#include <cmath>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace dosa::ad {

namespace {

/**
 * True when an op's local partials depend on operand values and must
 * be recomputed per lane; the partials of every other op are
 * build-time constants shared across lanes (read from the scalar
 * derivative word).
 */
constexpr bool
dynamicPartials(Op op)
{
    switch (op) {
      case Op::Mul:
      case Op::Div:
      case Op::CDiv:
      case Op::Log:
      case Op::Exp:
      case Op::Sqrt:
      case Op::Pow:
      case Op::Max:
      case Op::MaxCL:
      case Op::MaxCR:
      case Op::Min:
      case Op::MinCL:
      case Op::MinCR:
      case Op::Relu:
        return true;
      default:
        return false;
    }
}

/**
 * Apply f(lane) over `lanes` lanes in fixed-width blocks of
 * Tape::kLaneWidth (known trip count: unrolled/vectorized) with a
 * scalar tail for the remainder.
 */
template <class F>
inline void
forEachLane(size_t lanes, F &&f)
{
    constexpr size_t W = Tape::kLaneWidth;
    size_t l = 0;
    for (; l + W <= lanes; l += W)
        for (size_t j = 0; j < W; ++j)
            f(l + j);
    for (; l < lanes; ++l)
        f(l);
}

} // namespace

NodeId
Tape::addLeaf(double value)
{
    in_.push_back({Op::Leaf, kNoParent, kNoParent});
    w_.push_back({0.0, 0.0, 0.0});
    values_.push_back(value);
    NodeId id = static_cast<NodeId>(values_.size() - 1);
    leaves_.push_back(id);
    return id;
}

NodeId
Tape::addNode(Op op, NodeId p0, NodeId p1, double aux, double value,
              double w0, double w1)
{
    in_.push_back({op, p0, p1});
    w_.push_back({aux, w0, w1});
    values_.push_back(value);
    return static_cast<NodeId>(values_.size() - 1);
}

void
Tape::replay(std::span<const double> leaf_values)
{
    if (leaf_values.size() != leaves_.size())
        panic("Tape::replay: leaf count mismatch");
    const size_t n = values_.size();
    const NodeIn *in = in_.data();
    NodeW *w = w_.data();
    double *v = values_.data();
    size_t leaf = 0;

    // Every case recomputes value and partials with the exact
    // expressions Var arithmetic uses at build time, so a replay is
    // bitwise-identical to a fresh build of the same-shaped graph.
    for (size_t i = 0; i < n; ++i) {
        const double a = in[i].p0 >= 0 ? v[size_t(in[i].p0)] : 0.0;
        const double aux = w[i].aux;
        switch (in[i].op) {
          case Op::Leaf:
            v[i] = leaf_values[leaf++];
            break;
          case Op::Neg:
            v[i] = -a;
            break;
          case Op::Add:
            v[i] = a + v[size_t(in[i].p1)];
            break;
          case Op::AddC:
            v[i] = a + aux;
            break;
          case Op::Sub:
            v[i] = a - v[size_t(in[i].p1)];
            break;
          case Op::SubC:
            v[i] = a - aux;
            break;
          case Op::CSub:
            v[i] = aux - a;
            break;
          case Op::Mul: {
            double b = v[size_t(in[i].p1)];
            v[i] = a * b;
            w[i].w0 = b;
            w[i].w1 = a;
            break;
          }
          case Op::MulC:
            v[i] = a * aux;
            break;
          case Op::Div: {
            double b = v[size_t(in[i].p1)];
            v[i] = a / b;
            w[i].w0 = 1.0 / b;
            w[i].w1 = -a / (b * b);
            break;
          }
          case Op::DivC:
            v[i] = a / aux;
            break;
          case Op::CDiv:
            v[i] = aux / a;
            w[i].w0 = -aux / (a * a);
            break;
          case Op::Log:
            v[i] = std::log(a);
            w[i].w0 = 1.0 / a;
            break;
          case Op::Exp:
            v[i] = std::exp(a);
            w[i].w0 = v[i];
            break;
          case Op::Sqrt:
            v[i] = std::sqrt(a);
            w[i].w0 = 0.5 / v[i];
            break;
          case Op::Pow:
            v[i] = std::pow(a, aux);
            w[i].w0 = aux * std::pow(a, aux - 1.0);
            break;
          case Op::Max: {
            double b = v[size_t(in[i].p1)];
            bool first = a >= b;
            v[i] = first ? a : b;
            w[i].w0 = first ? 1.0 : 0.0;
            w[i].w1 = first ? 0.0 : 1.0;
            break;
          }
          case Op::MaxCL: {
            bool cwins = aux >= a;
            v[i] = cwins ? aux : a;
            w[i].w0 = cwins ? 0.0 : 1.0;
            break;
          }
          case Op::MaxCR: {
            bool pwins = a >= aux;
            v[i] = pwins ? a : aux;
            w[i].w0 = pwins ? 1.0 : 0.0;
            break;
          }
          case Op::Min: {
            double b = v[size_t(in[i].p1)];
            bool first = a <= b;
            v[i] = first ? a : b;
            w[i].w0 = first ? 1.0 : 0.0;
            w[i].w1 = first ? 0.0 : 1.0;
            break;
          }
          case Op::MinCL: {
            bool cwins = aux <= a;
            v[i] = cwins ? aux : a;
            w[i].w0 = cwins ? 0.0 : 1.0;
            break;
          }
          case Op::MinCR: {
            bool pwins = a <= aux;
            v[i] = pwins ? a : aux;
            w[i].w0 = pwins ? 1.0 : 0.0;
            break;
          }
          case Op::Relu: {
            bool on = a > 0.0;
            v[i] = on ? a : 0.0;
            w[i].w0 = on ? 1.0 : 0.0;
            break;
          }
        }
    }
}

void
Tape::gradientInto(NodeId output, std::vector<double> &adj) const
{
    if (output < 0 || static_cast<size_t>(output) >= values_.size())
        panic("Tape::gradientInto: output id out of range");
    adj.assign(values_.size(), 0.0);
    adj[static_cast<size_t>(output)] = 1.0;
    const NodeIn *in = in_.data();
    const NodeW *w = w_.data();
    double *a = adj.data();
    for (size_t ii = static_cast<size_t>(output) + 1; ii-- > 0;) {
        double g = a[ii];
        if (g == 0.0)
            continue;
        if (in[ii].p0 != kNoParent)
            a[size_t(in[ii].p0)] += g * w[ii].w0;
        if (in[ii].p1 != kNoParent)
            a[size_t(in[ii].p1)] += g * w[ii].w1;
    }
}

std::vector<double>
Tape::gradient(NodeId output) const
{
    std::vector<double> adj;
    gradientInto(output, adj);
    return adj;
}

void
Tape::replayBatch(std::span<const double> leaf_sets,
                  std::span<const NodeId> outputs, std::span<double> out)
{
    const size_t num_leaves = leaves_.size();
    if (leaf_sets.empty() || num_leaves == 0)
        panic("Tape::replayBatch: zero-width batch");
    if (leaf_sets.size() % num_leaves != 0)
        panic("Tape::replayBatch: leaf set size mismatch");
    const size_t L = leaf_sets.size() / num_leaves;
    if (out.size() < L * outputs.size())
        panic("Tape::replayBatch: output span too small");
    const size_t n = values_.size();
    obs::TraceSpan span("tape.replayBatch", "autodiff",
                        static_cast<int64_t>(L),
                        static_cast<int64_t>(n));
    batch_lanes_ = L;
    batch_v_.resize(n * L);
    batch_w0_.resize(n * L);
    batch_w1_.resize(n * L);

    const NodeIn *in = in_.data();
    const NodeW *w = w_.data();
    double *bv = batch_v_.data();
    double *bw0 = batch_w0_.data();
    double *bw1 = batch_w1_.data();
    const double *xs = leaf_sets.data();
    size_t leaf = 0;

    // One decode per op serves every lane. Each lane body uses the
    // exact expressions of the scalar replay (and re-selects its own
    // branches), so lane b is bitwise-identical to replay(leaf_set_b).
    for (size_t i = 0; i < n; ++i) {
        const double *a = in[i].p0 >= 0 ? bv + size_t(in[i].p0) * L
                                        : nullptr;
        const double *b = in[i].p1 >= 0 ? bv + size_t(in[i].p1) * L
                                        : nullptr;
        double *v = bv + i * L;
        double *w0 = bw0 + i * L;
        double *w1 = bw1 + i * L;
        const double aux = w[i].aux;
        switch (in[i].op) {
          case Op::Leaf: {
            const double *x = xs + leaf++;
            forEachLane(L, [&](size_t l) {
                v[l] = x[l * num_leaves];
            });
            break;
          }
          case Op::Neg:
            forEachLane(L, [&](size_t l) { v[l] = -a[l]; });
            break;
          case Op::Add:
            forEachLane(L, [&](size_t l) { v[l] = a[l] + b[l]; });
            break;
          case Op::AddC:
            forEachLane(L, [&](size_t l) { v[l] = a[l] + aux; });
            break;
          case Op::Sub:
            forEachLane(L, [&](size_t l) { v[l] = a[l] - b[l]; });
            break;
          case Op::SubC:
            forEachLane(L, [&](size_t l) { v[l] = a[l] - aux; });
            break;
          case Op::CSub:
            forEachLane(L, [&](size_t l) { v[l] = aux - a[l]; });
            break;
          case Op::Mul:
            forEachLane(L, [&](size_t l) {
                const double bb = b[l];
                v[l] = a[l] * bb;
                w0[l] = bb;
                w1[l] = a[l];
            });
            break;
          case Op::MulC:
            forEachLane(L, [&](size_t l) { v[l] = a[l] * aux; });
            break;
          case Op::Div:
            forEachLane(L, [&](size_t l) {
                const double bb = b[l];
                v[l] = a[l] / bb;
                w0[l] = 1.0 / bb;
                w1[l] = -a[l] / (bb * bb);
            });
            break;
          case Op::DivC:
            forEachLane(L, [&](size_t l) { v[l] = a[l] / aux; });
            break;
          case Op::CDiv:
            forEachLane(L, [&](size_t l) {
                v[l] = aux / a[l];
                w0[l] = -aux / (a[l] * a[l]);
            });
            break;
          case Op::Log:
            forEachLane(L, [&](size_t l) {
                v[l] = std::log(a[l]);
                w0[l] = 1.0 / a[l];
            });
            break;
          case Op::Exp:
            forEachLane(L, [&](size_t l) {
                v[l] = std::exp(a[l]);
                w0[l] = v[l];
            });
            break;
          case Op::Sqrt:
            forEachLane(L, [&](size_t l) {
                v[l] = std::sqrt(a[l]);
                w0[l] = 0.5 / v[l];
            });
            break;
          case Op::Pow:
            forEachLane(L, [&](size_t l) {
                v[l] = std::pow(a[l], aux);
                w0[l] = aux * std::pow(a[l], aux - 1.0);
            });
            break;
          case Op::Max:
            forEachLane(L, [&](size_t l) {
                const bool first = a[l] >= b[l];
                v[l] = first ? a[l] : b[l];
                w0[l] = first ? 1.0 : 0.0;
                w1[l] = first ? 0.0 : 1.0;
            });
            break;
          case Op::MaxCL:
            forEachLane(L, [&](size_t l) {
                const bool cwins = aux >= a[l];
                v[l] = cwins ? aux : a[l];
                w0[l] = cwins ? 0.0 : 1.0;
            });
            break;
          case Op::MaxCR:
            forEachLane(L, [&](size_t l) {
                const bool pwins = a[l] >= aux;
                v[l] = pwins ? a[l] : aux;
                w0[l] = pwins ? 1.0 : 0.0;
            });
            break;
          case Op::Min:
            forEachLane(L, [&](size_t l) {
                const bool first = a[l] <= b[l];
                v[l] = first ? a[l] : b[l];
                w0[l] = first ? 1.0 : 0.0;
                w1[l] = first ? 0.0 : 1.0;
            });
            break;
          case Op::MinCL:
            forEachLane(L, [&](size_t l) {
                const bool cwins = aux <= a[l];
                v[l] = cwins ? aux : a[l];
                w0[l] = cwins ? 0.0 : 1.0;
            });
            break;
          case Op::MinCR:
            forEachLane(L, [&](size_t l) {
                const bool pwins = a[l] <= aux;
                v[l] = pwins ? a[l] : aux;
                w0[l] = pwins ? 1.0 : 0.0;
            });
            break;
          case Op::Relu:
            forEachLane(L, [&](size_t l) {
                const bool on = a[l] > 0.0;
                v[l] = on ? a[l] : 0.0;
                w0[l] = on ? 1.0 : 0.0;
            });
            break;
        }
    }

    for (size_t j = 0; j < outputs.size(); ++j) {
        const NodeId id = outputs[j];
        if (id < 0 || static_cast<size_t>(id) >= n)
            panic("Tape::replayBatch: output id out of range");
        const double *v = bv + size_t(id) * L;
        for (size_t l = 0; l < L; ++l)
            out[l * outputs.size() + j] = v[l];
    }
}

void
Tape::gradientBatchInto(NodeId output, std::vector<double> &adj) const
{
    const size_t L = batch_lanes_;
    if (L == 0)
        panic("Tape::gradientBatchInto: no batch state "
              "(call replayBatch first)");
    if (output < 0 || static_cast<size_t>(output) >= values_.size())
        panic("Tape::gradientBatchInto: output id out of range");
    const size_t n = values_.size();
    adj.assign(n * L, 0.0);
    double *a = adj.data();
    const NodeIn *in = in_.data();
    const NodeW *w = w_.data();
    const double *bw0 = batch_w0_.data();
    const double *bw1 = batch_w1_.data();
    for (size_t l = 0; l < L; ++l)
        a[size_t(output) * L + l] = 1.0;
    // Per lane this is exactly the scalar reverse sweep, including the
    // zero-adjoint skip (adding a 0 * w product could flip -0.0
    // adjoints or manufacture NaNs the scalar path never sees).
    for (size_t ii = static_cast<size_t>(output) + 1; ii-- > 0;) {
        const NodeId p0 = in[ii].p0;
        const NodeId p1 = in[ii].p1;
        if (p0 == kNoParent && p1 == kNoParent)
            continue;
        const double *g = a + ii * L;
        double *a0 = p0 != kNoParent ? a + size_t(p0) * L : nullptr;
        double *a1 = p1 != kNoParent ? a + size_t(p1) * L : nullptr;
        if (dynamicPartials(in[ii].op)) {
            const double *w0 = bw0 + ii * L;
            const double *w1 = bw1 + ii * L;
            forEachLane(L, [&](size_t l) {
                const double gl = g[l];
                if (gl == 0.0)
                    return;
                if (a0)
                    a0[l] += gl * w0[l];
                if (a1)
                    a1[l] += gl * w1[l];
            });
        } else {
            const double w0 = w[ii].w0;
            const double w1 = w[ii].w1;
            forEachLane(L, [&](size_t l) {
                const double gl = g[l];
                if (gl == 0.0)
                    return;
                if (a0)
                    a0[l] += gl * w0;
                if (a1)
                    a1[l] += gl * w1;
            });
        }
    }
}

void
Tape::reset()
{
    in_.clear();
    w_.clear();
    values_.clear();
    leaves_.clear();
    // Lane buffers keep their capacity (arena reuse), but any resident
    // batch state describes the dropped program.
    batch_v_.clear();
    batch_w0_.clear();
    batch_w1_.clear();
    batch_lanes_ = 0;
}

void
Tape::reserve(size_t n)
{
    in_.reserve(n);
    w_.reserve(n);
    values_.reserve(n);
}

} // namespace dosa::ad
