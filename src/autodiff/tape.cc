/**
 * @file
 * Arena tape: SoA node storage, the fused replay interpreter and the
 * backward gradient sweep.
 */
#include "autodiff/tape.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa::ad {

NodeId
Tape::addLeaf(double value)
{
    in_.push_back({Op::Leaf, kNoParent, kNoParent});
    w_.push_back({0.0, 0.0, 0.0});
    values_.push_back(value);
    NodeId id = static_cast<NodeId>(values_.size() - 1);
    leaves_.push_back(id);
    return id;
}

NodeId
Tape::addNode(Op op, NodeId p0, NodeId p1, double aux, double value,
              double w0, double w1)
{
    in_.push_back({op, p0, p1});
    w_.push_back({aux, w0, w1});
    values_.push_back(value);
    return static_cast<NodeId>(values_.size() - 1);
}

void
Tape::replay(std::span<const double> leaf_values)
{
    if (leaf_values.size() != leaves_.size())
        panic("Tape::replay: leaf count mismatch");
    const size_t n = values_.size();
    const NodeIn *in = in_.data();
    NodeW *w = w_.data();
    double *v = values_.data();
    size_t leaf = 0;

    // Every case recomputes value and partials with the exact
    // expressions Var arithmetic uses at build time, so a replay is
    // bitwise-identical to a fresh build of the same-shaped graph.
    for (size_t i = 0; i < n; ++i) {
        const double a = in[i].p0 >= 0 ? v[size_t(in[i].p0)] : 0.0;
        const double aux = w[i].aux;
        switch (in[i].op) {
          case Op::Leaf:
            v[i] = leaf_values[leaf++];
            break;
          case Op::Neg:
            v[i] = -a;
            break;
          case Op::Add:
            v[i] = a + v[size_t(in[i].p1)];
            break;
          case Op::AddC:
            v[i] = a + aux;
            break;
          case Op::Sub:
            v[i] = a - v[size_t(in[i].p1)];
            break;
          case Op::SubC:
            v[i] = a - aux;
            break;
          case Op::CSub:
            v[i] = aux - a;
            break;
          case Op::Mul: {
            double b = v[size_t(in[i].p1)];
            v[i] = a * b;
            w[i].w0 = b;
            w[i].w1 = a;
            break;
          }
          case Op::MulC:
            v[i] = a * aux;
            break;
          case Op::Div: {
            double b = v[size_t(in[i].p1)];
            v[i] = a / b;
            w[i].w0 = 1.0 / b;
            w[i].w1 = -a / (b * b);
            break;
          }
          case Op::DivC:
            v[i] = a / aux;
            break;
          case Op::CDiv:
            v[i] = aux / a;
            w[i].w0 = -aux / (a * a);
            break;
          case Op::Log:
            v[i] = std::log(a);
            w[i].w0 = 1.0 / a;
            break;
          case Op::Exp:
            v[i] = std::exp(a);
            w[i].w0 = v[i];
            break;
          case Op::Sqrt:
            v[i] = std::sqrt(a);
            w[i].w0 = 0.5 / v[i];
            break;
          case Op::Pow:
            v[i] = std::pow(a, aux);
            w[i].w0 = aux * std::pow(a, aux - 1.0);
            break;
          case Op::Max: {
            double b = v[size_t(in[i].p1)];
            bool first = a >= b;
            v[i] = first ? a : b;
            w[i].w0 = first ? 1.0 : 0.0;
            w[i].w1 = first ? 0.0 : 1.0;
            break;
          }
          case Op::MaxCL: {
            bool cwins = aux >= a;
            v[i] = cwins ? aux : a;
            w[i].w0 = cwins ? 0.0 : 1.0;
            break;
          }
          case Op::MaxCR: {
            bool pwins = a >= aux;
            v[i] = pwins ? a : aux;
            w[i].w0 = pwins ? 1.0 : 0.0;
            break;
          }
          case Op::Min: {
            double b = v[size_t(in[i].p1)];
            bool first = a <= b;
            v[i] = first ? a : b;
            w[i].w0 = first ? 1.0 : 0.0;
            w[i].w1 = first ? 0.0 : 1.0;
            break;
          }
          case Op::MinCL: {
            bool cwins = aux <= a;
            v[i] = cwins ? aux : a;
            w[i].w0 = cwins ? 0.0 : 1.0;
            break;
          }
          case Op::MinCR: {
            bool pwins = a <= aux;
            v[i] = pwins ? a : aux;
            w[i].w0 = pwins ? 1.0 : 0.0;
            break;
          }
          case Op::Relu: {
            bool on = a > 0.0;
            v[i] = on ? a : 0.0;
            w[i].w0 = on ? 1.0 : 0.0;
            break;
          }
        }
    }
}

void
Tape::gradientInto(NodeId output, std::vector<double> &adj) const
{
    if (output < 0 || static_cast<size_t>(output) >= values_.size())
        panic("Tape::gradientInto: output id out of range");
    adj.assign(values_.size(), 0.0);
    adj[static_cast<size_t>(output)] = 1.0;
    const NodeIn *in = in_.data();
    const NodeW *w = w_.data();
    double *a = adj.data();
    for (size_t ii = static_cast<size_t>(output) + 1; ii-- > 0;) {
        double g = a[ii];
        if (g == 0.0)
            continue;
        if (in[ii].p0 != kNoParent)
            a[size_t(in[ii].p0)] += g * w[ii].w0;
        if (in[ii].p1 != kNoParent)
            a[size_t(in[ii].p1)] += g * w[ii].w1;
    }
}

std::vector<double>
Tape::gradient(NodeId output) const
{
    std::vector<double> adj;
    gradientInto(output, adj);
    return adj;
}

void
Tape::reset()
{
    in_.clear();
    w_.clear();
    values_.clear();
    leaves_.clear();
}

void
Tape::reserve(size_t n)
{
    in_.reserve(n);
    w_.reserve(n);
    values_.reserve(n);
}

} // namespace dosa::ad
