/**
 * @file
 * Reverse-mode tape: node storage and the backward gradient sweep.
 */
#include "autodiff/tape.hh"

#include "util/logging.hh"

namespace dosa::ad {

NodeId
Tape::addLeaf(double value)
{
    nodes_.push_back({kNoParent, kNoParent, 0.0, 0.0});
    values_.push_back(value);
    return static_cast<NodeId>(values_.size() - 1);
}

NodeId
Tape::addUnary(NodeId parent, double w, double value)
{
    nodes_.push_back({parent, kNoParent, w, 0.0});
    values_.push_back(value);
    return static_cast<NodeId>(values_.size() - 1);
}

NodeId
Tape::addBinary(NodeId p0, double w0, NodeId p1, double w1, double value)
{
    nodes_.push_back({p0, p1, w0, w1});
    values_.push_back(value);
    return static_cast<NodeId>(values_.size() - 1);
}

std::vector<double>
Tape::gradient(NodeId output) const
{
    if (output < 0 || static_cast<size_t>(output) >= values_.size())
        panic("Tape::gradient: output id out of range");
    std::vector<double> adj(values_.size(), 0.0);
    adj[static_cast<size_t>(output)] = 1.0;
    for (size_t ii = static_cast<size_t>(output) + 1; ii-- > 0;) {
        double a = adj[ii];
        if (a == 0.0)
            continue;
        const Node &n = nodes_[ii];
        if (n.p0 != kNoParent)
            adj[static_cast<size_t>(n.p0)] += a * n.w0;
        if (n.p1 != kNoParent)
            adj[static_cast<size_t>(n.p1)] += a * n.w1;
    }
    return adj;
}

void
Tape::clear()
{
    nodes_.clear();
    values_.clear();
}

void
Tape::reserve(size_t n)
{
    nodes_.reserve(n);
    values_.reserve(n);
}

} // namespace dosa::ad
