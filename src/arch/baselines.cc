/**
 * @file
 * Expert baseline accelerator configurations (Fig. 8) as Gemmini-style designs.
 */
#include "arch/baselines.hh"

namespace dosa {

BaselineAccelerator
eyeriss()
{
    // 12x14 = 168 PEs in the original; nearest square is 13x13 = 169.
    // 108 KB global buffer split between activations/weights; a modest
    // partial-sum store.
    return {"Eyeriss", HardwareConfig{13, 16, 108}};
}

BaselineAccelerator
nvdlaSmall()
{
    // nv_small: 64 MACs, heavily area-constrained buffers.
    return {"NVDLA Small", HardwareConfig{8, 8, 64}};
}

BaselineAccelerator
nvdlaLarge()
{
    // nv_large: 1024 MACs (32x32), 512 KB CBUF; generous accumulator.
    return {"NVDLA Large", HardwareConfig{32, 128, 512}};
}

BaselineAccelerator
gemminiDefault()
{
    // Default Gemmini WS config (Section 6.5: 16x16 PEs, 32 KB
    // accumulator, 128 KB scratchpad, single-buffer accounting).
    return {"Gemmini Default", HardwareConfig{16, 32, 128}};
}

std::vector<BaselineAccelerator>
allBaselines()
{
    return {eyeriss(), nvdlaSmall(), nvdlaLarge(), gemminiDefault()};
}

} // namespace dosa
