/**
 * @file
 * Gemmini-style accelerator configuration and the Table-2 energy /
 * bandwidth model.
 *
 * The memory hierarchy (Table 4) is fixed: level 0 per-PE registers
 * holding weights, level 1 accumulator SRAM holding outputs (4 B words),
 * level 2 scratchpad SRAM holding weights+inputs (1 B words), level 3
 * DRAM holding everything. The free hardware parameters are the square
 * PE-array side and the two SRAM capacities.
 */

#ifndef DOSA_ARCH_HARDWARE_CONFIG_HH
#define DOSA_ARCH_HARDWARE_CONFIG_HH

#include <cmath>
#include <cstdint>
#include <string>

#include "workload/layer.hh"

namespace dosa {

/** Memory level indices (Table 2/4). */
enum MemLevel : int
{
    kRegisters = 0,
    kAccumulator = 1,
    kScratchpad = 2,
    kDram = 3,
};

/** Number of memory levels. */
constexpr int kNumLevels = 4;

/** Human-readable level name. */
const char *levelName(int level);

/** Bytes per word of each tensor (paper Fig. 3): W/I 1 B, O 4 B. */
constexpr double
wordBytes(Tensor t)
{
    return t == Tensor::Output ? 4.0 : 1.0;
}

/** Whether memory level `level` stores tensor `t` (Table 4 matrix B). */
constexpr bool
levelHoldsTensor(int level, Tensor t)
{
    switch (level) {
      case kRegisters:
        return t == Tensor::Weight;
      case kAccumulator:
        return t == Tensor::Output;
      case kScratchpad:
        return t == Tensor::Weight || t == Tensor::Input;
      case kDram:
        return true;
      default:
        return false;
    }
}

/** Innermost memory level that holds tensor t (W:0, O:1, I:2). */
constexpr int
innermostLevel(Tensor t)
{
    switch (t) {
      case Tensor::Weight: return kRegisters;
      case Tensor::Output: return kAccumulator;
      case Tensor::Input: return kScratchpad;
    }
    return kDram;
}

/** Next inner level below `level` that holds tensor t, or -1. */
constexpr int
nextInnerLevel(int level, Tensor t)
{
    for (int j = level - 1; j >= 0; --j)
        if (levelHoldsTensor(j, t))
            return j;
    return -1;
}

/**
 * A concrete hardware design point.
 *
 * Capacities are stated per logical buffer; like the paper we quote
 * single-buffer sizes (Gemmini default 32 KB accumulator / 128 KB
 * scratchpad, doubling for double-buffering is out of model scope).
 */
struct HardwareConfig
{
    int64_t pe_dim = 16;    ///< side of the square PE array
    int64_t accum_kib = 32; ///< accumulator SRAM capacity, KiB
    int64_t spad_kib = 128; ///< scratchpad SRAM capacity, KiB

    /** Total PE count C_PE = pe_dim^2 (Eq 1). */
    double cpe() const
    {
        return static_cast<double>(pe_dim) * static_cast<double>(pe_dim);
    }

    /** Accumulator capacity in (4-byte) words. */
    double accumWords() const
    {
        return static_cast<double>(accum_kib) * 1024.0 / 4.0;
    }

    /** Scratchpad capacity in (1-byte) words. */
    double spadWords() const
    {
        return static_cast<double>(spad_kib) * 1024.0;
    }

    /** Human-readable description. */
    std::string str() const;

    bool operator==(const HardwareConfig &o) const = default;
};

/** Maximum supported PE-array side (Section 6.1: capped at 128x128). */
constexpr int64_t kMaxPeDim = 128;

/**
 * Round raw per-mapping requirements up to a manufacturable config:
 * integer PE side (clamped to [1, kMaxPeDim]) and SRAM sizes in whole
 * KiB increments (Section 6.1).
 */
HardwareConfig quantizeConfig(double pe_dim, double accum_words,
                              double spad_words);

/**
 * Parameter-wise max of two configs (Fig. 3: the final design must
 * support all per-layer mappings).
 */
HardwareConfig configMax(const HardwareConfig &a, const HardwareConfig &b);

/**
 * Table 2 energy-per-access and bandwidth model, parameterized on the
 * scalar type so gradients can flow through derived hardware sizes.
 *
 * EPA values are in pJ/word (the paper prints "uJ", evidently a unit
 * typo — 100 pJ/word DRAM is the standard figure). The SRAM EPA grows
 * with capacity per Table 2; the capacity term is taken in KiB, the
 * only reading that keeps SRAM accesses in the physically plausible
 * few-pJ range (CACTI 40nm) for the buffer sizes the paper's Table 7
 * selects — in words, a 196 KB accumulator access would cost 300+ pJ
 * and the optimizer would never grow buffers as the paper observes.
 * See DESIGN.md (modelling decisions).
 */
struct EnergyModel
{
    static constexpr double kEpaMac = 0.561;       ///< pJ per MAC
    static constexpr double kEpaRegister = 0.487;  ///< pJ per word
    static constexpr double kEpaAccumBase = 1.94;
    static constexpr double kEpaAccumSlope = 0.1005; ///< per KiB/col
    static constexpr double kEpaSpadBase = 0.49;
    static constexpr double kEpaSpadSlope = 0.025;   ///< per KiB/col
    static constexpr double kEpaDram = 100.0;      ///< pJ per word
    static constexpr double kDramBandwidth = 8.0;  ///< words per cycle

    /** Accumulator EPA given capacity (4-byte words) and C_PE. */
    template <class S>
    static S
    accumEpa(const S &capacity_words, const S &cpe)
    {
        using std::sqrt;
        S kib = capacity_words * S(4.0 / 1024.0);
        return S(kEpaAccumBase) + S(kEpaAccumSlope) * kib / sqrt(cpe);
    }

    /** Scratchpad EPA given capacity (1-byte words) and C_PE. */
    template <class S>
    static S
    spadEpa(const S &capacity_words, const S &cpe)
    {
        using std::sqrt;
        S kib = capacity_words * S(1.0 / 1024.0);
        return S(kEpaSpadBase) + S(kEpaSpadSlope) * kib / sqrt(cpe);
    }

    /** Bandwidth of a level in words/cycle (Table 2). */
    template <class S>
    static S
    bandwidth(int level, const S &cpe)
    {
        using std::sqrt;
        switch (level) {
          case kRegisters:
            return S(2.0) * cpe;
          case kAccumulator:
          case kScratchpad:
            return S(2.0) * sqrt(cpe);
          case kDram:
            return S(kDramBandwidth);
          default:
            return S(1.0);
        }
    }
};

} // namespace dosa

#endif // DOSA_ARCH_HARDWARE_CONFIG_HH
