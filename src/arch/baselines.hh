/**
 * @file
 * Expert-designed baseline accelerator configurations (Fig. 8).
 *
 * The paper evaluates Eyeriss, NVDLA-small, NVDLA-large and the default
 * Gemmini configuration under Timeloop. Here each baseline is expressed
 * as the closest Gemmini-style configuration (square PE array plus two
 * SRAM levels); the published PE counts and buffer capacities are
 * preserved to the nearest square / KiB.
 */

#ifndef DOSA_ARCH_BASELINES_HH
#define DOSA_ARCH_BASELINES_HH

#include <string>
#include <vector>

#include "arch/hardware_config.hh"

namespace dosa {

/** A named expert baseline. */
struct BaselineAccelerator
{
    std::string name;
    HardwareConfig config;
};

/** Eyeriss: 168 PEs (~13x13), 108 KB global buffer. */
BaselineAccelerator eyeriss();

/** NVDLA-small: 64 MACs with small dedicated buffers. */
BaselineAccelerator nvdlaSmall();

/** NVDLA-large: 1024 MACs, 512 KB convolution buffer. */
BaselineAccelerator nvdlaLarge();

/** Gemmini default: 16x16 PEs, 32 KB accumulator, 128 KB scratchpad. */
BaselineAccelerator gemminiDefault();

/** The four Fig. 8 baselines in paper order. */
std::vector<BaselineAccelerator> allBaselines();

} // namespace dosa

#endif // DOSA_ARCH_BASELINES_HH
