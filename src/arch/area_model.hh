/**
 * @file
 * Area model for the Gemmini-style accelerator.
 *
 * The paper lists area as a natural third objective for the DOSA flow
 * ("the model for each objective — latency, energy, and in future
 * work, potentially area — can be replaced and augmented
 * independently", Section 6.5.3). This implements that extension: a
 * closed-form area estimate differentiable in the hardware scalars,
 * usable both for reporting and as a search constraint
 * (DosaConfig::max_area_mm2).
 *
 * Constants are representative 40nm figures (same node as the Table 2
 * energies): an int8 MAC PE with weight register at ~2500 um^2 and
 * single-port SRAM at ~0.05 mm^2 per 32 KB plus periphery.
 */

#ifndef DOSA_ARCH_AREA_MODEL_HH
#define DOSA_ARCH_AREA_MODEL_HH

#include "arch/hardware_config.hh"

namespace dosa {

/** Closed-form area estimate, templated like the energy model. */
struct AreaModel
{
    static constexpr double kPeAreaMm2 = 0.0025;     ///< per PE
    static constexpr double kSramMm2PerKib = 0.0016; ///< bit-cell array
    static constexpr double kSramPeripheryMm2 = 0.02; ///< per macro
    static constexpr double kNocOverheadFactor = 1.15; ///< wiring etc.

    /** Total area in mm^2 given hardware scalars. */
    template <class S>
    static S
    areaMm2(const S &cpe, const S &accum_words, const S &spad_words)
    {
        S accum_kib = accum_words * S(4.0 / 1024.0);
        S spad_kib = spad_words * S(1.0 / 1024.0);
        S macros = cpe * S(kPeAreaMm2) +
                (accum_kib + spad_kib) * S(kSramMm2PerKib) +
                S(2.0 * kSramPeripheryMm2);
        return macros * S(kNocOverheadFactor);
    }
};

/** Area of a concrete configuration in mm^2. */
inline double
configAreaMm2(const HardwareConfig &hw)
{
    return AreaModel::areaMm2(hw.cpe(), hw.accumWords(),
            hw.spadWords());
}

} // namespace dosa

#endif // DOSA_ARCH_AREA_MODEL_HH
