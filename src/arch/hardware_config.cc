/**
 * @file
 * Gemmini-style hardware configuration: Table-2 energy/bandwidth numbers, validation and printing.
 */
#include "arch/hardware_config.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace dosa {

const char *
levelName(int level)
{
    switch (level) {
      case kRegisters: return "Registers";
      case kAccumulator: return "Accumulator";
      case kScratchpad: return "Scratchpad";
      case kDram: return "DRAM";
      default: return "?";
    }
}

std::string
HardwareConfig::str() const
{
    std::ostringstream os;
    os << pe_dim << "x" << pe_dim << " PEs, " << accum_kib
       << " KB accumulator, " << spad_kib << " KB scratchpad";
    return os.str();
}

HardwareConfig
quantizeConfig(double pe_dim, double accum_words, double spad_words)
{
    HardwareConfig cfg;
    cfg.pe_dim = std::clamp<int64_t>(
            static_cast<int64_t>(std::ceil(pe_dim - 1e-9)), 1, kMaxPeDim);
    double accum_bytes = std::max(accum_words, 1.0) * 4.0;
    double spad_bytes = std::max(spad_words, 1.0);
    cfg.accum_kib = std::max<int64_t>(1,
            static_cast<int64_t>(std::ceil(accum_bytes / 1024.0 - 1e-9)));
    cfg.spad_kib = std::max<int64_t>(1,
            static_cast<int64_t>(std::ceil(spad_bytes / 1024.0 - 1e-9)));
    return cfg;
}

HardwareConfig
configMax(const HardwareConfig &a, const HardwareConfig &b)
{
    HardwareConfig cfg;
    cfg.pe_dim = std::max(a.pe_dim, b.pe_dim);
    cfg.accum_kib = std::max(a.accum_kib, b.accum_kib);
    cfg.spad_kib = std::max(a.spad_kib, b.spad_kib);
    return cfg;
}

} // namespace dosa
