/**
 * @file
 * Sharded, mutex-striped memoization of reference-model evaluations.
 *
 * Every searcher hammers referenceEval with near-identical
 * (layer, mapping, hardware) triples — DOSA rounding revisits the same
 * divisor-grid points across segments, random search and BB-BO
 * redraw duplicate mappings, and ordering selection rescoring repeats
 * whole designs. The cache memoizes the scoring-relevant slice of
 * RefEval keyed on the functional fields of the triple, striped over
 * independently locked shards so parallel searchers (src/exec
 * ThreadPool) scale without contending on one mutex.
 *
 * Keys compare full field-by-field (the hash only picks the shard and
 * bucket), so a hit is always exact and cached results are
 * bit-identical to a direct referenceEval — caching never changes any
 * search outcome, it only removes repeated work.
 */

#ifndef DOSA_EXEC_EVAL_CACHE_HH
#define DOSA_EXEC_EVAL_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "stats/stats.hh"
#include "util/thread_annotations.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * The slice of RefEval the searchers consume. Kept small (32 B) so
 * cache entries stay compact; callers needing full access breakdowns
 * (Fig. 4 model-error studies) use referenceEval directly.
 */
struct LayerEval
{
    double latency = 0.0;   ///< cycles
    double energy_uj = 0.0; ///< microjoules
    double edp = 0.0;       ///< per-layer uJ * cycles
    bool fits = true;       ///< capacity/PE feasibility
};

/** Memoizing front-end to referenceEval. Thread-safe. */
class EvalCache
{
  public:
    /** Shard count; a power of two so the hash maps by mask. */
    static constexpr size_t kNumShards = 16;

    /**
     * Per-shard entry bound. A shard that grows past this is reset
     * (counted as an eviction): full LRU bookkeeping costs more than
     * re-evaluating the handful of entries a reset throws away.
     */
    static constexpr size_t kMaxEntriesPerShard = 1 << 15;

    /**
     * Evaluate layer/mapping/hw through the cache. Disabled caches
     * delegate straight to referenceEval and count nothing.
     */
    LayerEval eval(const Layer &layer, const Mapping &mapping,
                   const HardwareConfig &hw);

    /** Drop every entry (counters survive; clears are not evictions). */
    void clear();

    /** Enable or disable memoization (enabled by default). */
    void setEnabled(bool enabled) { enabled_.store(enabled); }
    bool enabled() const { return enabled_.load(); }

    /** Snapshot of hit/miss/eviction/size counters. */
    CacheStats stats() const;

    /** Reset the stats counters to zero (entries stay cached). */
    void resetStats();

  private:
    /** Functional fields of an evaluation triple (name/count omitted). */
    struct Key
    {
        std::array<int64_t, 8> layer; ///< r,s,p,q,c,k,n,stride
        Factors<int64_t> factors;
        OrderVec order;
        int64_t pe_dim;
        int64_t accum_kib;
        int64_t spad_kib;

        bool operator==(const Key &o) const = default;
    };

    struct KeyHash
    {
        size_t operator()(const Key &k) const;
    };

    struct Shard
    {
        /** mutable: `stats()` is const but must lock each shard. */
        mutable util::Mutex mtx;
        std::unordered_map<Key, LayerEval, KeyHash> map GUARDED_BY(mtx);
    };

    static Key makeKey(const Layer &layer, const Mapping &mapping,
                       const HardwareConfig &hw);

    std::array<Shard, kNumShards> shards_;
    std::atomic<bool> enabled_{true};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

/**
 * The process-wide evaluation cache every searcher consults through
 * cachedEval. Benches toggle it via --no-cache.
 */
EvalCache &globalEvalCache();

/** Evaluate through the global cache. */
LayerEval cachedEval(const Layer &layer, const Mapping &mapping,
                     const HardwareConfig &hw);

} // namespace dosa

#endif // DOSA_EXEC_EVAL_CACHE_HH
