/**
 * @file
 * Shared parallel-execution runtime for searchers and benches.
 *
 * A fixed-size worker pool exposing a blocking parallelFor/parallelMap
 * API. Determinism contract: the pool never owns randomness — callers
 * derive one independent Rng stream per task index (Rng::stream) before
 * dispatch, so results are bit-identical for any thread count,
 * including 1. A pool of size 1 runs every task inline on the calling
 * thread with zero synchronization overhead.
 *
 * The pool executes one parallelFor at a time (calls from several
 * threads serialize internally); tasks must not call back into the
 * pool that is running them.
 */

#ifndef DOSA_EXEC_THREAD_POOL_HH
#define DOSA_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hh"

namespace dosa {

/** Fixed-size worker pool with a blocking fork-join API. */
class ThreadPool
{
  public:
    /**
     * Create a pool running tasks on `threads` threads (clamped to
     * >= 1). `threads == 1` spawns no workers: parallelFor degenerates
     * to an inline loop, which is the serial reference behaviour every
     * parallel caller must reproduce bit-for-bit.
     */
    explicit ThreadPool(int threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of threads that execute tasks (workers + caller). */
    int size() const { return static_cast<int>(workers_.size()) + 1; }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareConcurrency();

    /**
     * Run fn(0) .. fn(n-1), dynamically load-balanced across the pool;
     * the calling thread participates. Blocks until every index has
     * completed. If any task throws, the first exception (in
     * completion order) is rethrown here after all indices finish or
     * are skipped.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * parallelFor collecting fn(i) into a vector (element type must be
     * default-constructible). Results land at their own index, so the
     * output is independent of execution order.
     */
    template <class F>
    auto
    parallelMap(size_t n, F &&fn) -> std::vector<decltype(fn(size_t(0)))>
    {
        std::vector<decltype(fn(size_t(0)))> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One fork-join region; lives on the heap until the last user. */
    struct Job;

    /** Claim loop shared by workers and the calling thread. */
    void runJob(Job &job);

    void workerLoop();

    std::vector<std::thread> workers_;
    util::Mutex mtx_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    /** Serializes concurrent parallelFor calls. */
    util::Mutex submit_mtx_;
    std::shared_ptr<Job> job_ GUARDED_BY(mtx_);
    uint64_t generation_ GUARDED_BY(mtx_) = 0;
    bool stop_ GUARDED_BY(mtx_) = false;
};

} // namespace dosa

#endif // DOSA_EXEC_THREAD_POOL_HH
