/**
 * @file
 * Fork-join worker pool: dynamic index claiming, first-exception
 * propagation, safe teardown via shared job ownership.
 */
#include "exec/thread_pool.hh"

#include <atomic>

#include "obs/metrics.hh"

namespace dosa {

namespace {

/** Pool-wide metrics (handles cached once; one atomic op per use). */
struct PoolMetrics
{
    obs::Counter &regions = obs::counter("exec.pool.regions");
    obs::Counter &tasks = obs::counter("exec.pool.tasks");
    obs::Gauge &inflight = obs::gauge("exec.pool.inflight");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

} // namespace

struct ThreadPool::Job
{
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    /** Next unclaimed index. */
    std::atomic<size_t> next{0};
    /** Indices claimed and finished (ran or skipped after an error). */
    std::atomic<size_t> processed{0};
    std::atomic<bool> has_error{false};
    util::Mutex err_mtx;
    std::exception_ptr error GUARDED_BY(err_mtx);
};

ThreadPool::ThreadPool(int threads)
{
    int n = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<size_t>(n - 1));
    for (int i = 0; i < n - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        util::MutexLock lock(mtx_);
        stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

int
ThreadPool::hardwareConcurrency()
{
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

void
ThreadPool::runJob(Job &job)
{
    size_t i;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.n) {
        // After a failure the remaining indices are claimed and
        // skipped so the join completes promptly.
        if (!job.has_error.load(std::memory_order_relaxed)) {
            try {
                (*job.fn)(i);
            } catch (...) {
                util::MutexLock lock(job.err_mtx);
                if (!job.error)
                    job.error = std::current_exception();
                job.has_error.store(true, std::memory_order_relaxed);
            }
        }
        if (job.processed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.n) {
            util::MutexLock lock(mtx_);
            cv_done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            util::MutexLock lock(mtx_);
            lock.wait(cv_job_, [&]() REQUIRES(mtx_) {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        if (job)
            runJob(*job);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    PoolMetrics &pm = poolMetrics();
    pm.regions.add(1);
    pm.tasks.add(n);
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    util::MutexLock submit(submit_mtx_);
    pm.inflight.add(static_cast<int64_t>(n));
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    {
        util::MutexLock lock(mtx_);
        job_ = job;
        ++generation_;
    }
    cv_job_.notify_all();

    runJob(*job);

    {
        util::MutexLock lock(mtx_);
        lock.wait(cv_done_, [&] {
            return job->processed.load(std::memory_order_acquire) ==
                   job->n;
        });
        job_.reset();
    }
    pm.inflight.add(-static_cast<int64_t>(n));
    // Stragglers may still hold their shared_ptr copy, but every index
    // has finished: only the claim counter is touched after this point.
    // The error slot is guarded by err_mtx; the join above already
    // ordered every writer before us, so the lock is uncontended.
    std::exception_ptr error;
    {
        util::MutexLock lock(job->err_mtx);
        error = job->error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace dosa
