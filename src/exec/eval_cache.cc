/**
 * @file
 * Mutex-striped referenceEval memoization behind the searchers.
 */
#include "exec/eval_cache.hh"

#include "model/reference.hh"
#include "obs/metrics.hh"

namespace dosa {

namespace {

/** splitmix64-style word mixer for hash combining. */
uint64_t
mixWord(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    return h ^ (h >> 27);
}

LayerEval
computeEval(const Layer &layer, const Mapping &mapping,
            const HardwareConfig &hw)
{
    RefEval ev = referenceEval(layer, mapping, hw);
    LayerEval out;
    out.latency = ev.latency;
    out.energy_uj = ev.energy_uj;
    out.edp = ev.edp;
    out.fits = ev.fits;
    return out;
}

} // namespace

size_t
EvalCache::KeyHash::operator()(const Key &k) const
{
    uint64_t h = 0x51ed270b0a1f8ce1ull;
    for (int64_t v : k.layer)
        h = mixWord(h, static_cast<uint64_t>(v));
    for (const auto &lvl : k.factors.temporal)
        for (int64_t v : lvl)
            h = mixWord(h, static_cast<uint64_t>(v));
    h = mixWord(h, static_cast<uint64_t>(k.factors.spatial_c));
    h = mixWord(h, static_cast<uint64_t>(k.factors.spatial_k));
    uint64_t ow = 0;
    for (LoopOrder o : k.order)
        ow = ow * 4 + static_cast<uint64_t>(o);
    h = mixWord(h, ow);
    h = mixWord(h, static_cast<uint64_t>(k.pe_dim));
    h = mixWord(h, static_cast<uint64_t>(k.accum_kib));
    h = mixWord(h, static_cast<uint64_t>(k.spad_kib));
    return static_cast<size_t>(h);
}

EvalCache::Key
EvalCache::makeKey(const Layer &layer, const Mapping &mapping,
                   const HardwareConfig &hw)
{
    Key k;
    k.layer = {layer.r, layer.s, layer.p, layer.q, layer.c, layer.k,
               layer.n, layer.stride};
    k.factors = mapping.factors;
    k.order = mapping.order;
    k.pe_dim = hw.pe_dim;
    k.accum_kib = hw.accum_kib;
    k.spad_kib = hw.spad_kib;
    return k;
}

LayerEval
EvalCache::eval(const Layer &layer, const Mapping &mapping,
                const HardwareConfig &hw)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return computeEval(layer, mapping, hw);

    Key key = makeKey(layer, mapping, hw);
    size_t h = KeyHash{}(key);
    Shard &shard = shards_[h & (kNumShards - 1)];

    {
        util::MutexLock lock(shard.mtx);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    // Compute outside the lock; a concurrent duplicate costs one
    // redundant (deterministic) evaluation, never a wrong result.
    misses_.fetch_add(1, std::memory_order_relaxed);
    LayerEval ev = computeEval(layer, mapping, hw);

    util::MutexLock lock(shard.mtx);
    if (shard.map.size() >= kMaxEntriesPerShard) {
        shard.map.clear();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.emplace(std::move(key), ev);
    return ev;
}

void
EvalCache::clear()
{
    for (Shard &shard : shards_) {
        util::MutexLock lock(shard.mtx);
        shard.map.clear();
    }
}

CacheStats
EvalCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load();
    s.misses = misses_.load();
    s.evictions = evictions_.load();
    for (const Shard &shard : shards_) {
        util::MutexLock lock(shard.mtx);
        s.entries += shard.map.size();
    }
    return s;
}

void
EvalCache::resetStats()
{
    hits_.store(0);
    misses_.store(0);
    evictions_.store(0);
}

EvalCache &
globalEvalCache()
{
    static EvalCache cache;
    // One-time hookup of the global cache's own counters into metrics
    // snapshots (collector pull: the eval hot path gains zero cost).
    static const bool registered = [] {
        obs::globalMetrics().registerCollector(
            [](obs::MetricsSnapshot &snap) {
                CacheStats s = globalEvalCache().stats();
                snap.counters["eval_cache.evictions"] = s.evictions;
                snap.counters["eval_cache.hits"] = s.hits;
                snap.counters["eval_cache.misses"] = s.misses;
                snap.gauges["eval_cache.entries"] =
                    static_cast<int64_t>(s.entries);
            });
        return true;
    }();
    (void)registered;
    return cache;
}

LayerEval
cachedEval(const Layer &layer, const Mapping &mapping,
           const HardwareConfig &hw)
{
    return globalEvalCache().eval(layer, mapping, hw);
}

} // namespace dosa
