/**
 * @file
 * Process-wide metrics registry: one vocabulary for every counter,
 * gauge and duration histogram in the system.
 *
 * Before this subsystem the telemetry was three disconnected
 * dialects — `CacheStats` counters on the eval cache, per-endpoint
 * `EndpointStats` in the service, and hand-rolled perf footers in
 * every bench. The registry unifies them: a source either owns
 * registry *instruments* (cheap atomics it bumps inline) or stays
 * push-free and registers a *collector* that contributes its counters
 * at snapshot time (the eval cache and divisor memo report this way,
 * so their hot paths gain zero cost).
 *
 * Contracts, in order:
 *
 * - *Observability is invisible.* Instruments never feed back into
 *   any computation: enabling or disabling the registry cannot change
 *   a search result by a single bit (pinned by tests/test_obs.cc).
 * - *Thread-safe and cheap.* Instrument handles are stable references
 *   to atomics (callers cache them in function-local statics); the
 *   name->instrument maps are mutex-striped like the EvalCache so
 *   first-use lookups from parallel searchers do not contend.
 * - *Deterministic snapshots.* `snapshot()` returns every value
 *   sorted by name, and `MetricsSnapshot::toJson()` serializes via
 *   `util/json` (sorted keys, canonical number tokens), so the same
 *   state always produces the same bytes — the property the service
 *   `stats` frame and the bench trajectory lines are built on.
 *
 * ### Memory-order contract
 *
 * Every instrument atomic — counter/gauge values, histogram
 * count/sum/min/max/buckets, and the `enabled_` gate — is accessed
 * with `memory_order_relaxed`, deliberately. The audit behind that:
 *
 * - *Per-cell exactness needs no ordering.* Increments are atomic
 *   RMW ops, so no update is ever lost; relaxed only permits
 *   *reordering between* cells, never torn counts within one.
 * - *No reader depends on cross-cell invariants.* A snapshot may
 *   observe a histogram whose `count` has advanced past the `sum`
 *   it pairs with (or counters from two subsystems at slightly
 *   different moments); consumers treat every value as an
 *   independent monotone reading, so no acquire/release edges are
 *   required. Anything that needs a consistent *pair* must own a
 *   lock (the service keeps its exact `EndpointStats` under the
 *   service mutex for exactly this reason).
 * - *Instruments never gate computation* (the invisibility
 *   contract), so metric reads never need to synchronize-with the
 *   writes they observe — stale-by-a-few-events is always fine.
 * - *Publication is the mutex's job.* The instrument objects
 *   themselves are created and their addresses published under the
 *   shard mutex; the happens-before edge a thread needs before
 *   first touching an atomic comes from that lock (and, for cached
 *   references, from the caller's own synchronization), never from
 *   the instrument ops.
 * - *`enabled_` is advisory.* An `add` racing `setEnabled` may or
 *   may not land; the flag is a test/bench seam, not a fence. Code
 *   must never infer "no more writes" from reading it — disable,
 *   then synchronize by other means (join/lock) before asserting
 *   quiescence.
 *
 * Strengthen an op past relaxed only with a comment naming the
 * invariant that needs it; the obs golden tests pin byte-stable
 * snapshots, not orderings.
 */

#ifndef DOSA_OBS_METRICS_HH
#define DOSA_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hh"
#include "util/thread_annotations.hh"

namespace dosa::obs {

class MetricsRegistry;

/** Monotone event counter (relaxed atomic; exact under contention). */
class Counter
{
  public:
    /** Count `n` events (no-op while the registry is disabled). */
    void
    add(uint64_t n = 1)
    {
        if (enabled_->load(std::memory_order_relaxed))
            v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    explicit Counter(const std::atomic<bool> *enabled)
        : enabled_(enabled)
    {}

    std::atomic<uint64_t> v_{0};
    const std::atomic<bool> *enabled_;
};

/** Last-value-wins level (queue depth, in-flight tasks, sizes). */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        if (enabled_->load(std::memory_order_relaxed))
            v_.store(v, std::memory_order_relaxed);
    }

    /** Add a (possibly negative) delta. */
    void
    add(int64_t d)
    {
        if (enabled_->load(std::memory_order_relaxed))
            v_.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    explicit Gauge(const std::atomic<bool> *enabled) : enabled_(enabled)
    {}

    std::atomic<int64_t> v_{0};
    const std::atomic<bool> *enabled_;
};

/**
 * Duration histogram over power-of-two nanosecond buckets (bucket i
 * counts durations in [2^i, 2^(i+1)) ns), plus exact count / sum /
 * min / max. Quantiles read from the bucket bounds are therefore
 * upper estimates with at most 2x resolution — the service keeps its
 * exact per-endpoint `Summary` for tighter tails; this is the cheap
 * always-on distribution every subsystem can afford.
 */
class Histogram
{
  public:
    /** Bucket count: 2^48 ns ~ 3.3 days caps any sane duration. */
    static constexpr size_t kBuckets = 48;

    /** Record one duration in seconds (negative clamps to 0). */
    void record(double seconds);

    /** Record one duration in nanoseconds. */
    void recordNs(uint64_t ns);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Histogram(const std::atomic<bool> *enabled)
        : enabled_(enabled)
    {}

    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_ns_{0};
    std::atomic<uint64_t> min_ns_{UINT64_MAX};
    std::atomic<uint64_t> max_ns_{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    const std::atomic<bool> *enabled_;
};

/**
 * Point-in-time copy of every metric, sorted by name. The unit of
 * exchange between the registry and its consumers: the service
 * `stats` frame carries one, every bench perf footer prints one, and
 * `toJson`/`fromJson` round-trip it over the wire byte-stably.
 */
struct MetricsSnapshot
{
    /** Serialized histogram state (durations in seconds). */
    struct HistogramData
    {
        uint64_t count = 0;
        double sum_s = 0.0;
        double min_s = 0.0; ///< 0 when count == 0
        double max_s = 0.0;
        /** Non-empty buckets as (upper bound in seconds, count). */
        std::vector<std::pair<double, uint64_t>> buckets;

        /**
         * Upper estimate of the q-th quantile (q in [0,1]) from the
         * bucket bounds, clamped to [min_s, max_s]; 0 when empty.
         */
        double quantile(double q) const;

        /** One-line "n=... mean=... p50<=... p99<=... max=..." text. */
        std::string str() const;
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramData> histograms;

    /**
     * Canonical JSON object {"counters":{...},"gauges":{...},
     * "histograms":{...}} — sorted keys, canonical number tokens, so
     * equal snapshots always serialize to equal bytes.
     */
    json::Value toJson() const;

    /**
     * Strict inverse of toJson. False plus a diagnostic (prefixed
     * with `path`) on any malformed value; never crashes.
     */
    [[nodiscard]] static bool fromJson(const json::Value &value,
                         const std::string &path, MetricsSnapshot &out,
                         std::string &error);
};

/**
 * The striped name->instrument registry. Instruments are created on
 * first use and live for the registry's lifetime, so the returned
 * references are stable — callers cache them in function-local
 * statics and pay one relaxed atomic op per event after that.
 */
class MetricsRegistry
{
  public:
    /** Shard count for the name maps; a power of two. */
    static constexpr size_t kNumShards = 16;

    /**
     * A pull-style metrics source: called during `snapshot()` to
     * contribute values for state it already counts elsewhere (the
     * eval cache's CacheStats, the divisor memo). Collectors must be
     * thread-safe and must not call back into the registry.
     */
    using Collector = std::function<void(MetricsSnapshot &)>;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The counter named `name`, created on first use. */
    Counter &counter(std::string_view name);

    /** The gauge named `name`, created on first use. */
    Gauge &gauge(std::string_view name);

    /** The histogram named `name`, created on first use. */
    Histogram &histogram(std::string_view name);

    /** Register a pull-style source (kept for the registry's life). */
    void registerCollector(Collector fn);

    /**
     * Copy of every instrument plus every collector's contribution,
     * sorted by name.
     */
    MetricsSnapshot snapshot() const;

    /**
     * Gate recording on registry-owned instruments (collectors keep
     * reporting their sources' live state). Enabled by default;
     * disabling makes add/set/record no-ops but never changes any
     * computation either way.
     */
    void setEnabled(bool enabled) { enabled_.store(enabled); }
    bool enabled() const { return enabled_.load(); }

    /** Zero every registry-owned instrument (names survive). */
    void reset();

  private:
    /** One instrument of any kind, keyed by name within a shard. */
    struct Instrument
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Shard
    {
        /** mutable: `snapshot()` is const but locks each shard. */
        mutable util::Mutex mtx;
        std::map<std::string, Instrument> map GUARDED_BY(mtx);
    };

    Shard &shardFor(std::string_view name);
    Instrument &instrument(std::string_view name);

    std::array<Shard, kNumShards> shards_;
    std::atomic<bool> enabled_{true};
    mutable util::Mutex collectors_mtx_;
    std::vector<Collector> collectors_ GUARDED_BY(collectors_mtx_);
};

/** The process-wide registry every subsystem reports into. */
MetricsRegistry &globalMetrics();

/** Shorthand for globalMetrics().counter(name). */
inline Counter &
counter(std::string_view name)
{
    return globalMetrics().counter(name);
}

/** Shorthand for globalMetrics().gauge(name). */
inline Gauge &
gauge(std::string_view name)
{
    return globalMetrics().gauge(name);
}

/** Shorthand for globalMetrics().histogram(name). */
inline Histogram &
histogram(std::string_view name)
{
    return globalMetrics().histogram(name);
}

} // namespace dosa::obs

#endif // DOSA_OBS_METRICS_HH
