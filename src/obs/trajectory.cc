/**
 * @file
 * Trajectory-line parsing, comparability, and regression checking.
 */

#include "obs/trajectory.hh"

#include <cmath>
#include <cstdio>

namespace dosa::obs {

namespace {

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

/** Context fields of a line: everything that is not a measurement,
 *  with an absent `schema` normalized to 1 (pre-versioning lines). */
json::Value
contextOf(const json::Value &line)
{
    json::Value ctx = json::Value::object();
    for (const auto &[key, v] : line.members()) {
        if (metricKind(key) == MetricKind::Context)
            ctx.set(key, v);
    }
    if (ctx.find("schema") == nullptr)
        ctx.set("schema", json::Value::number(uint64_t(1)));
    return ctx;
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

} // namespace

MetricKind
metricKind(std::string_view key)
{
    if (key == "unix_time")
        return MetricKind::Ignored;
    if (endsWith(key, "_per_s"))
        return MetricKind::HigherBetter;
    if (endsWith(key, "_s") || endsWith(key, "_us") ||
        endsWith(key, "_ns"))
        return MetricKind::LowerBetter;
    return MetricKind::Context;
}

bool
parseTrajectory(const std::string &text,
                std::vector<json::Value> &lines, std::string &error)
{
    lines.clear();
    size_t pos = 0;
    size_t lineno = 0;
    while (pos < text.size()) {
        size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        lineno++;
        if (line.find_first_not_of(" \t\r") == std::string_view::npos)
            continue;
        json::Value v;
        std::string perr;
        if (!json::parse(line, v, perr)) {
            error = "line " + std::to_string(lineno) + ": " + perr;
            return false;
        }
        if (!v.isObject()) {
            error = "line " + std::to_string(lineno) +
                    ": trajectory lines must be JSON objects";
            return false;
        }
        lines.push_back(std::move(v));
    }
    return true;
}

TrajectoryCheck
checkTrajectory(const std::vector<json::Value> &lines, double threshold)
{
    TrajectoryCheck out;
    if (lines.size() < 2) {
        out.detail = "no baseline: fewer than two lines; "
                     "nothing to compare\n";
        return out;
    }
    const json::Value &newest = lines.back();
    json::Value want_ctx = contextOf(newest);
    const json::Value *prior = nullptr;
    for (size_t i = lines.size() - 1; i-- > 0;) {
        if (contextOf(lines[i]).dump() == want_ctx.dump()) {
            prior = &lines[i];
            break;
        }
    }
    if (prior == nullptr) {
        out.detail = "no baseline: no prior line with a matching "
                     "context; nothing to compare\n";
        return out;
    }
    out.compared = true;
    std::string report;
    for (const auto &[key, nv] : newest.members()) {
        MetricKind kind = metricKind(key);
        if (kind != MetricKind::LowerBetter &&
            kind != MetricKind::HigherBetter)
            continue;
        const json::Value *ov = prior->find(key);
        if (ov == nullptr || !ov->isNumber() || !nv.isNumber())
            continue;
        double nu = nv.asDouble();
        double old = ov->asDouble();
        if (!(std::isfinite(nu) && std::isfinite(old)) || old <= 0.0)
            continue;
        double ratio = nu / old;
        bool regressed = kind == MetricKind::LowerBetter
                             ? ratio > 1.0 + threshold
                             : ratio < 1.0 - threshold;
        std::string dir =
            kind == MetricKind::LowerBetter ? "slower" : "lower";
        std::string msg = key + ": " + fmt(old) + " -> " + fmt(nu) +
                          " (" + fmt((ratio - 1.0) * 100.0) + "%, " +
                          dir + "-is-worse)";
        if (regressed) {
            out.ok = false;
            out.regressions.push_back(msg);
            report += "REGRESSION " + msg + "\n";
        } else {
            report += "ok         " + msg + "\n";
        }
    }
    if (report.empty())
        report = "comparable prior found but no shared measurements\n";
    out.detail = report;
    return out;
}

} // namespace dosa::obs
