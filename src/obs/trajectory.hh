/**
 * @file
 * Perf-trajectory diffing for the `bench/BENCH_*.json` files.
 *
 * Every bench appends one canonical-JSON object per run (a
 * "trajectory line") mixing *context* fields that identify the
 * configuration (bench name, mode, jobs, schema, ...) with
 * *measurement* fields named by convention:
 *
 * - keys ending in `_per_s`  — throughput, higher is better
 * - keys ending in `_s`/`_us`/`_ns` (and not `_per_s`) — latency,
 *   lower is better
 * - `unix_time` — ignored
 * - everything else — context; two lines are comparable only when
 *   all their context fields match exactly
 *
 * `checkTrajectory` compares the newest line against the most recent
 * comparable prior line and flags any measurement that regressed by
 * more than the threshold — the CI gate behind `bench/check_trajectory`.
 * Lines without a `schema` field are treated as schema 1 (the format
 * the PR-6 seed files used before versioning existed).
 */

#ifndef DOSA_OBS_TRAJECTORY_HH
#define DOSA_OBS_TRAJECTORY_HH

#include <string>
#include <string_view>
#include <vector>

#include "util/json.hh"

namespace dosa::obs {

/** Schema version stamped on trajectory lines and stats frames. */
inline constexpr uint64_t kTelemetrySchema = 1;

/** How a trajectory key participates in the regression check. */
enum class MetricKind
{
    Context,      ///< must match exactly for lines to be comparable
    LowerBetter,  ///< latency-like measurement
    HigherBetter, ///< throughput-like measurement
    Ignored,      ///< timestamps etc.
};

/** Classification by the naming convention in the file comment. */
MetricKind metricKind(std::string_view key);

/**
 * Parse a JSON-lines trajectory file body (one object per line,
 * blank lines skipped). False + `error` on any malformed line or
 * non-object value.
 */
bool parseTrajectory(const std::string &text,
                     std::vector<json::Value> &lines,
                     std::string &error);

/** Result of diffing the newest line against its comparable prior. */
struct TrajectoryCheck
{
    bool ok = true;       ///< false iff a regression exceeded threshold
    bool compared = false; ///< false when no comparable prior exists
    std::vector<std::string> regressions; ///< one message per metric
    std::string detail; ///< human-readable multi-line report
};

/**
 * Diff the last line of `lines` against the most recent earlier line
 * whose context fields all match. `threshold` is fractional (0.25 ==
 * 25%): a lower-better metric fails when new > old * (1 + threshold),
 * a higher-better one when new < old * (1 - threshold).
 */
TrajectoryCheck checkTrajectory(const std::vector<json::Value> &lines,
                                double threshold);

} // namespace dosa::obs

#endif // DOSA_OBS_TRAJECTORY_HH
