/**
 * @file
 * Tracer implementation: per-thread ring registration, bounded
 * event storage, and the Chrome trace-event JSON emitter.
 */

#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>

namespace dosa::obs {

namespace {

/**
 * Thread-local handle onto the calling thread's ring. The generation
 * stamp makes every thread re-register after an enable() (which
 * starts a fresh epoch and drops old rings); the shared_ptr keeps a
 * stale ring alive until the thread notices, so there is never a
 * dangling write.
 */
struct ThreadHandle
{
    const Tracer *owner = nullptr;
    uint64_t generation = 0;
    std::shared_ptr<void> ring;
};

thread_local ThreadHandle t_handle;

/**
 * Generation source shared by every Tracer instance. Generations must
 * be process-unique, not per-instance: a new Tracer allocated at a
 * recycled address could otherwise match a stale thread handle
 * (owner pointer and per-instance counter both equal) and write into
 * the dead tracer's ring with the wrong capacity.
 */
std::atomic<uint64_t> g_generation{0};

} // namespace

void
Tracer::enable()
{
    util::MutexLock lock(mtx_);
    if (enabled_.load(std::memory_order_relaxed))
        return;
    rings_.clear();
    next_tid_ = 1;
    epoch_ns_.store(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count()),
        std::memory_order_relaxed);
    generation_.store(
        g_generation.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    // Release pairs with the acquire in enabled(): a thread that sees
    // enabled==true also sees the new epoch and generation.
    enabled_.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

void
Tracer::setCapacity(size_t events)
{
    util::MutexLock lock(mtx_);
    capacity_ = std::max<size_t>(events, 1);
}

uint64_t
Tracer::nowNs() const
{
    return sinceEpochNs(std::chrono::steady_clock::now());
}

uint64_t
Tracer::sinceEpochNs(std::chrono::steady_clock::time_point t) const
{
    uint64_t t_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
    uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
    if (epoch == 0)
        return 0; // never enabled
    return t_ns > epoch ? t_ns - epoch : 0;
}

Tracer::Ring &
Tracer::threadRing()
{
    uint64_t gen = generation_.load(std::memory_order_relaxed);
    if (t_handle.owner != this || t_handle.generation != gen ||
        !t_handle.ring) {
        auto ring = std::make_shared<Ring>();
        {
            util::MutexLock lock(mtx_);
            // The fresh ring's own lock is uncontended (nothing else
            // can reach it before rings_.push_back publishes it), but
            // its storage and tid are ring-guarded state: initialize
            // them under the ring lock so the annotation — and the
            // happens-before edge dump threads rely on — is explicit
            // rather than implied by publication order.
            util::MutexLock ring_lock(ring->mtx);
            ring->events.resize(capacity_);
            ring->tid = next_tid_++;
            rings_.push_back(ring);
        }
        t_handle.owner = this;
        t_handle.generation = gen;
        t_handle.ring = ring;
    }
    return *static_cast<Ring *>(t_handle.ring.get());
}

void
Tracer::push(const Event &ev)
{
    Ring &ring = threadRing();
    util::MutexLock lock(ring.mtx);
    ring.events[ring.next] = ev;
    ring.next = (ring.next + 1) % ring.events.size();
    ring.recorded++;
}

void
Tracer::recordSpan(const char *name, const char *cat, uint64_t start_ns,
                   uint64_t end_ns, int64_t arg0, int64_t arg1)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ts_ns = start_ns;
    ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    ev.ph = 'X';
    push(ev);
}

void
Tracer::recordInstant(const char *name, const char *cat, int64_t arg0)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ts_ns = nowNs();
    ev.dur_ns = 0;
    ev.arg0 = arg0;
    ev.arg1 = -1;
    ev.ph = 'i';
    push(ev);
}

size_t
Tracer::eventCount() const
{
    size_t total = 0;
    std::vector<std::shared_ptr<Ring>> rings;
    {
        util::MutexLock lock(mtx_);
        rings = rings_;
    }
    for (const auto &ring : rings) {
        util::MutexLock lock(ring->mtx);
        total += std::min<uint64_t>(ring->recorded, ring->events.size());
    }
    return total;
}

uint64_t
Tracer::droppedCount() const
{
    uint64_t dropped = 0;
    std::vector<std::shared_ptr<Ring>> rings;
    {
        util::MutexLock lock(mtx_);
        rings = rings_;
    }
    for (const auto &ring : rings) {
        util::MutexLock lock(ring->mtx);
        uint64_t cap = ring->events.size();
        if (ring->recorded > cap)
            dropped += ring->recorded - cap;
    }
    return dropped;
}

json::Value
Tracer::toJson() const
{
    struct Tagged
    {
        Event ev;
        uint64_t tid;
    };
    std::vector<Tagged> all;
    std::vector<std::shared_ptr<Ring>> rings;
    {
        util::MutexLock lock(mtx_);
        rings = rings_;
    }
    for (const auto &ring : rings) {
        util::MutexLock lock(ring->mtx);
        size_t cap = ring->events.size();
        size_t n = static_cast<size_t>(
            std::min<uint64_t>(ring->recorded, cap));
        // Oldest retained event first: once wrapped, the cursor points
        // at it.
        size_t start = ring->recorded > cap ? ring->next : 0;
        for (size_t i = 0; i < n; ++i)
            all.push_back(
                Tagged{ring->events[(start + i) % cap], ring->tid});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Tagged &a, const Tagged &b) {
                         if (a.ev.ts_ns != b.ev.ts_ns)
                             return a.ev.ts_ns < b.ev.ts_ns;
                         return a.tid < b.tid;
                     });

    json::Value events = json::Value::array();
    for (const Tagged &t : all) {
        const Event &ev = t.ev;
        json::Value obj = json::Value::object();
        obj.set("name", json::Value::string(ev.name));
        obj.set("cat", json::Value::string(ev.cat));
        obj.set("ph", json::Value::string(std::string(1, ev.ph)));
        obj.set("ts", json::Value::number(
                          static_cast<double>(ev.ts_ns) / 1e3));
        if (ev.ph == 'X')
            obj.set("dur", json::Value::number(
                               static_cast<double>(ev.dur_ns) / 1e3));
        if (ev.ph == 'i')
            obj.set("s", json::Value::string("t"));
        obj.set("pid", json::Value::number(1));
        obj.set("tid", json::Value::number(t.tid));
        if (ev.arg0 >= 0 || ev.arg1 >= 0) {
            json::Value args = json::Value::object();
            if (ev.arg0 >= 0)
                args.set("arg0", json::Value::number(ev.arg0));
            if (ev.arg1 >= 0)
                args.set("arg1", json::Value::number(ev.arg1));
            obj.set("args", std::move(args));
        }
        events.push(std::move(obj));
    }
    json::Value doc = json::Value::object();
    doc.set("traceEvents", std::move(events));
    return doc;
}

bool
Tracer::writeFile(const std::string &path, std::string &error) const
{
    std::string text = toJson().dump();
    text += '\n';
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok)
        error = "short write to " + path;
    return ok;
}

Tracer &
globalTracer()
{
    static Tracer tracer;
    return tracer;
}

} // namespace dosa::obs
