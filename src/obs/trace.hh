/**
 * @file
 * Span tracing on per-thread ring buffers, dumped as Chrome
 * trace-event JSON (load the file in Perfetto / chrome://tracing).
 *
 * The tracer answers the question metrics cannot: *where does the
 * time go inside one request* — searcher phases, service queue
 * waits, batch-replay sweeps — on a live process. Design
 * constraints, in order:
 *
 * - *Near-zero cost when disabled.* Every record path starts with one
 *   relaxed atomic load and returns; `TraceSpan` does not even read
 *   the clock. Benches run with tracing off by default and must not
 *   regress (pinned by the fig7 acceptance bar).
 * - *Bounded memory, TSan-clean.* Each thread records into its own
 *   fixed-capacity ring (oldest events overwritten, drops counted)
 *   guarded by a per-ring mutex that is uncontended except while a
 *   dump walks the rings. No event ever allocates.
 * - *Observability is invisible.* Recording never feeds back into a
 *   computation; enabling tracing cannot change a search result by a
 *   single bit (pinned by tests/test_obs.cc).
 *
 * Event names and categories are `const char *` and are stored by
 * pointer, not copied: pass string literals (or strings that outlive
 * the dump), the same rule the Chrome tracing macros impose.
 */

#ifndef DOSA_OBS_TRACE_HH
#define DOSA_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/thread_annotations.hh"

namespace dosa::obs {

/**
 * The process-wide trace recorder. Threads register a private ring on
 * first record; `toJson()` merges all rings into one Chrome
 * trace-event document. Clocked on `steady_clock` relative to the
 * `enable()` epoch, so timestamps are monotone and start near zero.
 */
class Tracer
{
  public:
    /** Default per-thread ring capacity, in events. */
    static constexpr size_t kDefaultCapacity = 1 << 16;

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start recording: resets the epoch and drops any events from a
     * previous enable. No-op when already enabled.
     */
    void enable();

    /** Stop recording (already-recorded events stay dumpable). */
    void disable();

    /** One relaxed load — the whole cost of a disabled record path. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    /**
     * Set the per-thread ring capacity (events). Takes effect for
     * rings registered after the call; call before `enable()`.
     */
    void setCapacity(size_t events);

    /** Nanoseconds since the enable() epoch (0 when never enabled). */
    uint64_t nowNs() const;

    /** A steady_clock time point mapped onto the epoch timeline. */
    uint64_t sinceEpochNs(std::chrono::steady_clock::time_point t) const;

    /**
     * Record a complete span [start_ns, end_ns] on the calling
     * thread's ring. Args < 0 are "absent" and omitted from the JSON.
     */
    void recordSpan(const char *name, const char *cat, uint64_t start_ns,
                    uint64_t end_ns, int64_t arg0 = -1, int64_t arg1 = -1);

    /** Record an instant event at now. */
    void recordInstant(const char *name, const char *cat,
                       int64_t arg0 = -1);

    /** Events currently retained across all rings. */
    size_t eventCount() const;

    /** Events overwritten by ring wraparound since enable(). */
    uint64_t droppedCount() const;

    /**
     * All retained events as a Chrome trace-event document:
     * {"traceEvents":[{"name","cat","ph","ts","dur","pid","tid",...}]}
     * with timestamps in microseconds, events sorted by (ts, tid),
     * serialized canonically by util/json (parse-back is tested).
     */
    json::Value toJson() const;

    /**
     * Write `toJson().dump()` to `path`. False + `error` on I/O
     * failure.
     */
    [[nodiscard]] bool writeFile(const std::string &path,
                                 std::string &error) const;

  private:
    /** One recorded event; "X" (complete) or "i" (instant). */
    struct Event
    {
        const char *name;
        const char *cat;
        uint64_t ts_ns;
        uint64_t dur_ns; ///< 0 for instants
        int64_t arg0;    ///< < 0 means absent
        int64_t arg1;
        char ph; ///< 'X' or 'i'
    };

    /** A thread's private ring; mtx is uncontended except in dumps. */
    struct Ring
    {
        util::Mutex mtx;
        /** Event storage; capacity fixed at registration. */
        std::vector<Event> events GUARDED_BY(mtx);
        size_t next GUARDED_BY(mtx) = 0;       ///< overwrite cursor
        uint64_t recorded GUARDED_BY(mtx) = 0; ///< events ever recorded
        /** Stable small id for the JSON; written once at registration
         *  (under the ring lock, pre-publication) then immutable. */
        uint64_t tid GUARDED_BY(mtx) = 0;
    };

    Ring &threadRing();
    void push(const Event &ev);

    mutable util::Mutex mtx_; ///< guards rings_/capacity_/tids
    std::vector<std::shared_ptr<Ring>> rings_ GUARDED_BY(mtx_);
    size_t capacity_ GUARDED_BY(mtx_) = kDefaultCapacity;
    uint64_t next_tid_ GUARDED_BY(mtx_) = 1;
    /** Stamped by enable() from a process-unique counter, so threads
     *  re-register their rings (and never match a stale handle onto a
     *  different Tracer instance at a recycled address). */
    std::atomic<uint64_t> generation_{0};
    std::atomic<bool> enabled_{false};
    /** Epoch as ns on the steady_clock timeline (atomic: read by
     *  every recording thread, rewritten by enable()). */
    std::atomic<uint64_t> epoch_ns_{0};
};

/** The process-wide tracer (the `--trace` flags enable it). */
Tracer &globalTracer();

/**
 * RAII span on the global tracer: captures the start time at
 * construction (when tracing is enabled) and records one complete
 * event at destruction. A disabled tracer makes both ends a single
 * relaxed load. `name`/`cat` must be literals (see file comment).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *cat = "dosa",
                       int64_t arg0 = -1, int64_t arg1 = -1)
        : name_(name), cat_(cat), arg0_(arg0), arg1_(arg1)
    {
        Tracer &t = globalTracer();
        if (t.enabled()) {
            active_ = true;
            start_ns_ = t.nowNs();
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (active_) {
            Tracer &t = globalTracer();
            t.recordSpan(name_, cat_, start_ns_, t.nowNs(), arg0_,
                         arg1_);
        }
    }

    /** Attach (or update) the args recorded at destruction. */
    void
    setArgs(int64_t arg0, int64_t arg1 = -1)
    {
        arg0_ = arg0;
        arg1_ = arg1;
    }

  private:
    const char *name_;
    const char *cat_;
    int64_t arg0_;
    int64_t arg1_;
    uint64_t start_ns_ = 0;
    bool active_ = false;
};

} // namespace dosa::obs

#endif // DOSA_OBS_TRACE_HH
