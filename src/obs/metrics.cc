/**
 * @file
 * MetricsRegistry implementation: striped instrument storage,
 * histogram bucketing, and the canonical-JSON snapshot codec.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace dosa::obs {

namespace {

/** FNV-1a over the name; same shard-picking idiom as EvalCache. */
size_t
nameShard(std::string_view name)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return static_cast<size_t>(h) & (MetricsRegistry::kNumShards - 1);
}

/** Bucket index for a duration: floor(log2(ns)), 0 ns in bucket 0. */
size_t
bucketIndex(uint64_t ns)
{
    if (ns <= 1)
        return 0;
    size_t idx = static_cast<size_t>(std::bit_width(ns)) - 1;
    return std::min(idx, Histogram::kBuckets - 1);
}

/** Upper bound of bucket i in seconds: 2^(i+1) ns. */
double
bucketUpperSeconds(size_t idx)
{
    return std::ldexp(1.0, static_cast<int>(idx) + 1) * 1e-9;
}

/** Lock-free running-min update. */
void
atomicMin(std::atomic<uint64_t> &slot, uint64_t v)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

/** Lock-free running-max update. */
void
atomicMax(std::atomic<uint64_t> &slot, uint64_t v)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

} // namespace

void
Histogram::record(double seconds)
{
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    if (!(seconds > 0.0))
        seconds = 0.0;
    double ns = seconds * 1e9;
    recordNs(ns >= 1.8e19 ? UINT64_MAX : static_cast<uint64_t>(ns));
}

void
Histogram::recordNs(uint64_t ns)
{
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    atomicMin(min_ns_, ns);
    atomicMax(max_ns_, ns);
    buckets_[bucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
}

double
MetricsSnapshot::HistogramData::quantile(double q) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (const auto &[le_s, n] : buckets) {
        seen += n;
        if (seen >= rank)
            return std::clamp(le_s, min_s, max_s);
    }
    return max_s;
}

std::string
MetricsSnapshot::HistogramData::str() const
{
    char buf[192];
    double mean = count ? sum_s / static_cast<double>(count) : 0.0;
    std::snprintf(buf, sizeof buf,
                  "n=%llu mean=%.3gs p50<=%.3gs p99<=%.3gs max=%.3gs",
                  static_cast<unsigned long long>(count), mean,
                  quantile(0.5), quantile(0.99), max_s);
    return buf;
}

json::Value
MetricsSnapshot::toJson() const
{
    json::Value counters_obj = json::Value::object();
    for (const auto &[name, v] : counters)
        counters_obj.set(name, json::Value::number(v));

    json::Value gauges_obj = json::Value::object();
    for (const auto &[name, v] : gauges)
        gauges_obj.set(name, json::Value::number(v));

    json::Value histos_obj = json::Value::object();
    for (const auto &[name, h] : histograms) {
        json::Value buckets = json::Value::array();
        for (const auto &[le_s, n] : h.buckets) {
            json::Value pair = json::Value::array();
            pair.push(json::Value::number(le_s));
            pair.push(json::Value::number(n));
            buckets.push(std::move(pair));
        }
        json::Value hobj = json::Value::object();
        hobj.set("buckets", std::move(buckets));
        hobj.set("count", json::Value::number(h.count));
        hobj.set("max_s", json::Value::number(h.max_s));
        hobj.set("min_s", json::Value::number(h.min_s));
        hobj.set("sum_s", json::Value::number(h.sum_s));
        histos_obj.set(name, std::move(hobj));
    }

    json::Value out = json::Value::object();
    out.set("counters", std::move(counters_obj));
    out.set("gauges", std::move(gauges_obj));
    out.set("histograms", std::move(histos_obj));
    return out;
}

namespace {

/** Read one histogram object; false + error on any shape mismatch. */
bool
histogramFromJson(const json::Value &value, const std::string &path,
                  MetricsSnapshot::HistogramData &out, std::string &error)
{
    json::ObjectReader r(value, path, error);
    const json::Value *buckets = r.consume("buckets");
    const json::Value *count = r.consume("count");
    const json::Value *max_s = r.consume("max_s");
    const json::Value *min_s = r.consume("min_s");
    const json::Value *sum_s = r.consume("sum_s");
    if (!r.ok())
        return false;
    if (buckets == nullptr || count == nullptr || max_s == nullptr ||
        min_s == nullptr || sum_s == nullptr)
        return r.fail(
            "histogram needs buckets/count/max_s/min_s/sum_s");
    if (!buckets->isArray() || !count->isNumber() ||
        !max_s->isNumber() || !min_s->isNumber() || !sum_s->isNumber())
        return r.fail("histogram member has the wrong type");
    out.count = count->asUint();
    out.max_s = max_s->asDouble();
    out.min_s = min_s->asDouble();
    out.sum_s = sum_s->asDouble();
    for (const json::Value &pair : buckets->elements()) {
        if (!pair.isArray() || pair.elements().size() != 2 ||
            !pair.elements()[0].isNumber() ||
            !pair.elements()[1].isNumber())
            return r.fail("bucket entries must be [le_s, count] pairs");
        out.buckets.emplace_back(pair.elements()[0].asDouble(),
                                 pair.elements()[1].asUint());
    }
    return r.finish();
}

} // namespace

bool
MetricsSnapshot::fromJson(const json::Value &value,
                          const std::string &path, MetricsSnapshot &out,
                          std::string &error)
{
    out = MetricsSnapshot{};
    json::ObjectReader r(value, path, error);
    const json::Value *counters = r.consume("counters");
    const json::Value *gauges = r.consume("gauges");
    const json::Value *histos = r.consume("histograms");
    if (counters == nullptr || gauges == nullptr || histos == nullptr)
        return r.fail("missing counters/gauges/histograms");
    if (!counters->isObject() || !gauges->isObject() ||
        !histos->isObject())
        return r.fail("counters/gauges/histograms must be objects");
    for (const auto &[name, v] : counters->members()) {
        if (!v.isNumber())
            return r.fail("counter \"" + name + "\" must be a number");
        out.counters[name] = v.asUint();
    }
    for (const auto &[name, v] : gauges->members()) {
        if (!v.isNumber())
            return r.fail("gauge \"" + name + "\" must be a number");
        out.gauges[name] = v.asInt();
    }
    for (const auto &[name, v] : histos->members()) {
        HistogramData h;
        if (!histogramFromJson(v, path + ".histograms." + name, h,
                               error))
            return false;
        out.histograms[name] = std::move(h);
    }
    return r.finish();
}

MetricsRegistry::Shard &
MetricsRegistry::shardFor(std::string_view name)
{
    return shards_[nameShard(name)];
}

MetricsRegistry::Instrument &
MetricsRegistry::instrument(std::string_view name)
{
    Shard &shard = shardFor(name);
    util::MutexLock lock(shard.mtx);
    return shard.map[std::string(name)];
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    Shard &shard = shardFor(name);
    util::MutexLock lock(shard.mtx);
    Instrument &in = shard.map[std::string(name)];
    if (!in.counter)
        in.counter.reset(new Counter(&enabled_));
    return *in.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    Shard &shard = shardFor(name);
    util::MutexLock lock(shard.mtx);
    Instrument &in = shard.map[std::string(name)];
    if (!in.gauge)
        in.gauge.reset(new Gauge(&enabled_));
    return *in.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    Shard &shard = shardFor(name);
    util::MutexLock lock(shard.mtx);
    Instrument &in = shard.map[std::string(name)];
    if (!in.histogram)
        in.histogram.reset(new Histogram(&enabled_));
    return *in.histogram;
}

void
MetricsRegistry::registerCollector(Collector fn)
{
    if (!fn)
        panic("MetricsRegistry::registerCollector: null collector");
    util::MutexLock lock(collectors_mtx_);
    collectors_.push_back(std::move(fn));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const Shard &shard : shards_) {
        util::MutexLock lock(shard.mtx);
        for (const auto &[name, in] : shard.map) {
            if (in.counter)
                snap.counters[name] = in.counter->value();
            if (in.gauge)
                snap.gauges[name] = in.gauge->value();
            if (in.histogram) {
                const Histogram &h = *in.histogram;
                MetricsSnapshot::HistogramData d;
                d.count = h.count_.load(std::memory_order_relaxed);
                d.sum_s =
                    static_cast<double>(
                        h.sum_ns_.load(std::memory_order_relaxed)) *
                    1e-9;
                uint64_t mn = h.min_ns_.load(std::memory_order_relaxed);
                d.min_s = d.count == 0 || mn == UINT64_MAX
                              ? 0.0
                              : static_cast<double>(mn) * 1e-9;
                d.max_s = static_cast<double>(h.max_ns_.load(
                              std::memory_order_relaxed)) *
                          1e-9;
                for (size_t i = 0; i < Histogram::kBuckets; ++i) {
                    uint64_t n =
                        h.buckets_[i].load(std::memory_order_relaxed);
                    if (n != 0)
                        d.buckets.emplace_back(bucketUpperSeconds(i), n);
                }
                snap.histograms[name] = std::move(d);
            }
        }
    }
    std::vector<Collector> collectors;
    {
        util::MutexLock lock(collectors_mtx_);
        collectors = collectors_;
    }
    for (const Collector &fn : collectors)
        fn(snap);
    return snap;
}

void
MetricsRegistry::reset()
{
    for (Shard &shard : shards_) {
        util::MutexLock lock(shard.mtx);
        for (auto &[name, in] : shard.map) {
            if (in.counter)
                in.counter->v_.store(0, std::memory_order_relaxed);
            if (in.gauge)
                in.gauge->v_.store(0, std::memory_order_relaxed);
            if (in.histogram) {
                Histogram &h = *in.histogram;
                h.count_.store(0, std::memory_order_relaxed);
                h.sum_ns_.store(0, std::memory_order_relaxed);
                h.min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
                h.max_ns_.store(0, std::memory_order_relaxed);
                for (auto &b : h.buckets_)
                    b.store(0, std::memory_order_relaxed);
            }
        }
    }
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace dosa::obs
