/**
 * @file
 * Cycle-approximate Gemmini-RTL substitute simulator (Section 6.5 stand-in for FireSim).
 */
#include "rtl/gemmini_rtl.hh"

#include <algorithm>
#include <cmath>

#include "model/reference.hh"
#include "util/logging.hh"

namespace dosa {

double
rtlLatency(const Layer &layer, const Mapping &mapping,
           const HardwareConfig &hw, const RtlParams &params)
{
    RefEval ev = referenceEval(layer, mapping, hw);
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };

    // ---- DMA transactions: every tile movement between DRAM and the
    // SRAMs is one transaction. Transaction counts are refetch counts,
    // i.e. traffic divided by the moved tile's size.
    auto safe_div = [](double a, double b) {
        return b > 0.0 ? a / b : 0.0;
    };
    double w_moves = safe_div(ev.writes[size_t(kScratchpad)]
                                       [at(Tensor::Weight)],
            std::max(1.0, ev.spad_w_tile_words));
    double i_moves = safe_div(ev.writes[size_t(kScratchpad)]
                                       [at(Tensor::Input)],
            std::max(1.0, ev.spad_i_tile_words));
    double o_moves = safe_div(ev.writes[size_t(kAccumulator)]
                                       [at(Tensor::Output)] +
                              ev.updates[size_t(kDram)],
            std::max(1.0, ev.accum_words_req));
    double transactions = w_moves + i_moves + o_moves;
    double dma_cycles = transactions * params.dma_startup_cycles;

    // ---- Systolic fill/drain: each accumulator tile computation pays
    // a pipeline bubble proportional to the array side.
    double acc_tiles = safe_div(ev.updates[size_t(kDram)],
            std::max(1.0, ev.accum_words_req));
    double fill_drain = acc_tiles * params.fill_drain_per_tile *
            static_cast<double>(hw.pe_dim);

    // ---- Instruction front-end: one instruction per moved tile and
    // per compute tile.
    double insn_cycles =
            (transactions + acc_tiles) * params.insn_overhead_cycles;

    // ---- Memory-side latencies with implementation penalties.
    double sram_bw = 2.0 * std::sqrt(hw.cpe());
    double spad_lat = ev.accesses[size_t(kScratchpad)] / sram_bw;
    if (mapping.factors.spatial_c % params.spad_banks != 0)
        spad_lat *= params.bank_conflict_factor;
    double accum_lat = ev.accesses[size_t(kAccumulator)] / sram_bw;

    double dram_lat =
            ev.dram_bytes_quant / EnergyModel::kDramBandwidth;
    // Narrow bursts: if the scratchpad input tile row is not a
    // multiple of the burst size, each burst is partially wasted.
    double row_words = layer.stride *
            (static_cast<double>(mapping.factors.t(kRegisters, Dim::Q)) -
             1.0) + static_cast<double>(layer.s);
    if (std::fmod(row_words, kDramBlockBytes) != 0.0)
        dram_lat *= params.unaligned_dram_factor;

    double reg_lat = ev.accesses[size_t(kRegisters)] / (2.0 * hw.cpe());

    double compute = layer.macs() /
            (static_cast<double>(mapping.factors.spatial_c) *
             static_cast<double>(mapping.factors.spatial_k));

    // ---- Imperfect overlap: the machine achieves only a fraction of
    // ideal max(compute, memory) overlap; the loser phase bleeds into
    // the total.
    double mem = std::max({reg_lat, accum_lat, spad_lat, dram_lat});
    double ideal = std::max(compute, mem);
    double hidden = std::min(compute, mem);
    double base = ideal + (1.0 - params.overlap_efficiency) * hidden;

    double total = base + dma_cycles + fill_drain + insn_cycles;

    // Capacity violations: real hardware would need spill logic the
    // mapper does not emit; penalize steeply instead of crashing.
    if (!ev.fits)
        total *= 10.0;
    return total;
}

} // namespace dosa
