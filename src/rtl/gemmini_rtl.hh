/**
 * @file
 * Gemmini-RTL substitute: a deterministic cycle-approximate latency
 * simulator standing in for FireSim RTL simulation (Section 6.5).
 *
 * The paper's premise is that real hardware deviates from analytical
 * models through implementation effects that are hard to express in
 * closed form but *systematic* — and therefore learnable by a small
 * DNN. This simulator reproduces that premise: it starts from the
 * reference model's exactly counted traffic and layers on physically
 * motivated effects of a decoupled-access-execute systolic-array SoC:
 *
 *  - per-DMA-transaction startup latency (tile moves are transactions,
 *    so fine-grained tilings pay heavily — the dominant reason random
 *    mappings diverge from analytical predictions),
 *  - systolic-array fill/drain bubbles per accumulator tile,
 *  - scratchpad bank conflicts when the spatial C fanout is not a
 *    multiple of the bank count,
 *  - DRAM row/alignment penalties for narrow, unaligned bursts,
 *  - a load/compute overlap factor below 100% (imperfect double
 *    buffering), and per-instruction front-end overhead.
 *
 * All effects are deterministic functions of (layer, mapping, hw), so
 * datasets are reproducible. See DESIGN.md (substitutions) for the
 * paper -> built -> why mapping.
 */

#ifndef DOSA_RTL_GEMMINI_RTL_HH
#define DOSA_RTL_GEMMINI_RTL_HH

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "workload/layer.hh"

namespace dosa {

/** Tunable constants of the RTL-like simulator. */
struct RtlParams
{
    double dma_startup_cycles = 80.0;   ///< per DMA transaction
    double fill_drain_per_tile = 2.0;   ///< x pe_dim cycles per acc tile
    double bank_conflict_factor = 1.18; ///< spad penalty on odd fanout
    int64_t spad_banks = 4;
    double unaligned_dram_factor = 1.12;///< bursts not 64 B aligned
    double overlap_efficiency = 0.85;   ///< load/compute overlap < 1
    double insn_overhead_cycles = 6.0;  ///< per issued tile instruction
};

/**
 * Cycle-approximate latency of one layer under one mapping. The
 * mapping must be complete; fit violations are tolerated (real RTL
 * would spill) and modelled with a steep penalty factor so searchers
 * avoid them.
 */
double rtlLatency(const Layer &layer, const Mapping &mapping,
                  const HardwareConfig &hw,
                  const RtlParams &params = RtlParams());

} // namespace dosa

#endif // DOSA_RTL_GEMMINI_RTL_HH
