/**
 * @file
 * DOSA one-loop co-search driver: start sampling, Adam descent, rounding schedule, ordering re-selection and minimal-hardware inference.
 */
#include "core/dosa_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "arch/area_model.hh"
#include "core/adam.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "mapping/rounding.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "util/logging.hh"

namespace dosa {

namespace {

/**
 * Project the log-space variables onto the feasible region: for every
 * (layer, dimension) whose on-chip factor product exceeds the problem
 * size (inferred DRAM residual below 1), shave the excess evenly off
 * the participating coordinates, and clamp factors to [1, pe-cap for
 * spatial / dim size for temporal].
 *
 * Without this, the Eq 18 penalty acts as a hard wall that blocks the
 * coordinated moves gradient descent needs (e.g. growing a spatial
 * factor while shrinking the same dimension's temporal factor): the
 * hinge gradient pushes every factor of the dimension down the moment
 * any one of them grows. Projection turns those walls into exact
 * exchanges.
 */
void
projectFeasible(std::vector<double> &x, const std::vector<Layer> &layers,
                int64_t pe_cap)
{
    const double log_cap = std::log(static_cast<double>(pe_cap));
    for (size_t li = 0; li < layers.size(); ++li) {
        size_t base = li * kVarsPerLayer;
        double *xl = x.data() + base;
        double *sc = xl + kNumDims * (kNumLevels - 1);
        double *sk = sc + 1;
        // Clamp raw coordinates first.
        for (int i = 0; i < kNumDims * (kNumLevels - 1); ++i)
            xl[i] = std::max(0.0, xl[i]);
        *sc = std::clamp(*sc, 0.0, log_cap);
        *sk = std::clamp(*sk, 0.0, log_cap);
        for (Dim d : kAllDims) {
            double cap = std::log(
                    static_cast<double>(layers[li].size(d)));
            // Coordinates participating in this dimension.
            double *coords[4];
            int n = 0;
            for (int lvl = 0; lvl < kDram; ++lvl)
                coords[n++] = xl + lvl * kNumDims +
                        static_cast<int>(d);
            if (d == Dim::C)
                coords[n++] = sc;
            if (d == Dim::K)
                coords[n++] = sk;
            for (int iter = 0; iter < 4; ++iter) {
                double total = 0.0;
                for (int i = 0; i < n; ++i)
                    total += *coords[i];
                double excess = total - cap;
                if (excess <= 1e-12)
                    break;
                // Shave evenly off the positive coordinates; repeat
                // in case some clamp at zero.
                int positive = 0;
                for (int i = 0; i < n; ++i)
                    if (*coords[i] > 0.0)
                        ++positive;
                if (positive == 0)
                    break;
                double shave = excess / positive;
                for (int i = 0; i < n; ++i)
                    if (*coords[i] > 0.0)
                        *coords[i] = std::max(0.0,
                                *coords[i] - shave);
            }
        }
    }
}

/** Infer the scoring hardware for a set of mappings under a mode. */
HardwareConfig
scoringHw(const std::vector<Layer> &layers,
          const std::vector<Mapping> &mappings, const ObjectiveMode &mode)
{
    HardwareConfig hw = inferMinimalHw(layers, mappings);
    if (mode.fix_pe)
        hw.pe_dim = mode.pe_dim;
    return hw;
}

/** Whether a concrete design violates the optional area budget. */
bool
overAreaBudget(const HardwareConfig &hw, const ObjectiveMode &mode)
{
    return mode.max_area_mm2 > 0.0 &&
           configAreaMm2(hw) > mode.max_area_mm2;
}

} // namespace

NetworkEval
scoreDesign(const std::vector<Layer> &layers,
            const std::vector<Mapping> &mappings,
            const HardwareConfig &hw, const LatencyScorer &scorer)
{
    const size_t n = layers.size();
    // Latency goes through the batched seam so amortizing backends
    // see the whole network at once; energy always comes from the
    // (cached) reference model.
    std::vector<double> lats(n, 0.0);
    if (scorer)
        scorer.scoreDesigns(makeLayerQueries(layers, mappings, hw),
                lats);
    NetworkEval out;
    for (size_t li = 0; li < n; ++li) {
        LayerEval ev = cachedEval(layers[li], mappings[li], hw);
        double lat = scorer ? lats[li] : ev.latency;
        double cnt = static_cast<double>(layers[li].count);
        out.energy_uj += cnt * ev.energy_uj;
        out.latency += cnt * lat;
        out.fits = out.fits && ev.fits;
    }
    out.edp = out.energy_uj * out.latency;
    return out;
}

std::vector<OrderVec>
selectOrders(const std::vector<Layer> &layers,
             std::vector<Mapping> &mappings, const HardwareConfig &hw,
             const LatencyScorer &scorer)
{
    const size_t n = layers.size();
    // Per-layer (energy, latency) for each of the 3 uniform orderings.
    // The 3n re-ordered variants are materialized up front so custom
    // scorers see them as one scoreDesigns batch.
    std::vector<Mapping> variants(n * size_t(kNumOrders));
    for (size_t li = 0; li < n; ++li) {
        for (int o = 0; o < kNumOrders; ++o) {
            Mapping &m = variants[li * size_t(kNumOrders) + size_t(o)];
            m = mappings[li];
            m.order = uniformOrder(static_cast<LoopOrder>(o));
        }
    }
    std::vector<double> lats(variants.size(), 0.0);
    if (scorer) {
        std::vector<LatencyQuery> queries(variants.size());
        for (size_t li = 0; li < n; ++li)
            for (int o = 0; o < kNumOrders; ++o) {
                size_t i = li * size_t(kNumOrders) + size_t(o);
                queries[i] = {&layers[li], &variants[i], &hw};
            }
        scorer.scoreDesigns(queries, lats);
    }
    std::vector<std::array<double, kNumOrders>> energy(n), latency(n);
    for (size_t li = 0; li < n; ++li) {
        for (int o = 0; o < kNumOrders; ++o) {
            size_t i = li * size_t(kNumOrders) + size_t(o);
            LayerEval ev = cachedEval(layers[li], variants[i], hw);
            double lat = scorer ? lats[i] : ev.latency;
            double cnt = static_cast<double>(layers[li].count);
            energy[li][size_t(o)] = cnt * ev.energy_uj;
            latency[li][size_t(o)] = cnt * lat;
        }
    }

    // Coordinate-descend on the network EDP (Eq 14 couples layers
    // through the sums) from two starts — the incoming orders (so the
    // selection can never regress the current design) and the
    // per-layer EDP argmin — keeping the better result.
    auto descend = [&](std::vector<int> choice) {
        double e_sum = 0.0, l_sum = 0.0;
        for (size_t li = 0; li < n; ++li) {
            e_sum += energy[li][size_t(choice[li])];
            l_sum += latency[li][size_t(choice[li])];
        }
        for (int pass = 0; pass < 2; ++pass) {
            for (size_t li = 0; li < n; ++li) {
                int cur = choice[li];
                double e_rest = e_sum - energy[li][size_t(cur)];
                double l_rest = l_sum - latency[li][size_t(cur)];
                int best = cur;
                double best_edp = e_sum * l_sum;
                for (int o = 0; o < kNumOrders; ++o) {
                    double edp = (e_rest + energy[li][size_t(o)]) *
                                 (l_rest + latency[li][size_t(o)]);
                    if (edp < best_edp) {
                        best_edp = edp;
                        best = o;
                    }
                }
                if (best != cur) {
                    choice[li] = best;
                    e_sum = e_rest + energy[li][size_t(best)];
                    l_sum = l_rest + latency[li][size_t(best)];
                }
            }
        }
        return std::make_pair(choice, e_sum * l_sum);
    };

    std::vector<int> incoming(n, 0), argmin(n, 0);
    for (size_t li = 0; li < n; ++li) {
        incoming[li] =
                static_cast<int>(mappings[li].order[size_t(kDram)]);
        int best = 0;
        for (int o = 1; o < kNumOrders; ++o)
            if (energy[li][size_t(o)] * latency[li][size_t(o)] <
                energy[li][size_t(best)] * latency[li][size_t(best)])
                best = o;
        argmin[li] = best;
    }
    auto [c_inc, edp_inc] = descend(incoming);
    auto [c_arg, edp_arg] = descend(argmin);
    std::vector<int> choice = edp_inc <= edp_arg ? c_inc : c_arg;

    std::vector<OrderVec> orders(n);
    for (size_t li = 0; li < n; ++li) {
        orders[li] = uniformOrder(static_cast<LoopOrder>(choice[li]));
        mappings[li].order = orders[li];
    }
    return orders;
}

RoundedDesign
roundAndScore(const std::vector<Layer> &layers,
              const std::vector<double> &x,
              const std::vector<OrderVec> &orders,
              const ObjectiveMode &mode, const LatencyScorer &scorer)
{
    RoundedDesign design;
    design.mappings.resize(layers.size());
    for (size_t li = 0; li < layers.size(); ++li) {
        Factors<double> f = unpackFactors(x, li);
        design.mappings[li] = roundToValid(f, layers[li], orders[li],
                mode.peCap());
    }
    design.hw = scoringHw(layers, design.mappings, mode);
    NetworkEval ev = scoreDesign(layers, design.mappings, design.hw,
            scorer);
    design.edp = ev.edp;
    design.energy_uj = ev.energy_uj;
    design.latency = ev.latency;
    return design;
}

namespace {

/** One candidate start: hardware, CoSA mappings, packed variables. */
struct StartCandidate
{
    HardwareConfig hw;
    std::vector<Mapping> mappings;
    std::vector<OrderVec> orders;
    std::vector<double> x;
    /** Differentiable-model EDP used by the rejection rule. */
    double model_edp = 0.0;
};

/**
 * Everything one start point contributes, recorded locally so starts
 * can run on any thread and be merged in start order afterwards.
 */
struct StartOutcome
{
    /** Raw per-sample values in record() order (inf placeholders). */
    std::vector<double> samples;
    double best_edp = std::numeric_limits<double>::infinity();
    HardwareConfig best_hw;
    std::vector<Mapping> best_mappings;
    /** Concrete start-point score (Fig. 9 attribution), if valid. */
    bool start_valid = false;
    double start_edp = std::numeric_limits<double>::infinity();
    HardwareConfig start_hw;
    /**
     * Concrete samples that entered this start's *local* Pareto front
     * (multi-objective runs only), keyed by offset into `samples`;
     * the serial merge re-checks them globally.
     */
    std::vector<ParetoCandidate> candidates;
};

/**
 * Generate one start attempt, drawing from the start's own stream.
 * `model_edp` is left unset: every attempt of a start shares the same
 * objective shape, so the caller scores all of them in one
 * ObjectiveEngine::evalBatch lane sweep after generation.
 */
StartCandidate
makeStartCandidate(const std::vector<Layer> &layers,
                   const DosaConfig &cfg, Rng &rng)
{
    StartCandidate c;
    c.orders.assign(layers.size(), uniformOrder(LoopOrder::WS));
    c.mappings.resize(layers.size());
    c.hw = randomHardware(rng);
    if (cfg.mode.fix_pe)
        c.hw.pe_dim = cfg.mode.pe_dim;
    // Under an area budget, sample start hardware inside it (falling
    // back to the smallest design point).
    if (cfg.mode.max_area_mm2 > 0.0) {
        for (int t = 0; t < 64 && overAreaBudget(c.hw, cfg.mode);
             ++t) {
            c.hw = randomHardware(rng);
            if (cfg.mode.fix_pe)
                c.hw.pe_dim = cfg.mode.pe_dim;
        }
        if (overAreaBudget(c.hw, cfg.mode))
            c.hw = HardwareConfig{cfg.mode.fix_pe ? cfg.mode.pe_dim
                                                  : 4, 8, 16};
    }
    for (size_t li = 0; li < layers.size(); ++li) {
        c.mappings[li] = cosaMap(layers[li], c.hw);
        c.mappings[li].order = c.orders[li];
    }
    for (const Mapping &m : c.mappings) {
        std::vector<double> xl = packMapping(m);
        c.x.insert(c.x.end(), xl.begin(), xl.end());
    }
    return c;
}

/**
 * Gradient descent with periodic rounding from one start point. Each
 * rounding projects onto the divisor grid; descent restarts from the
 * best design seen so far in this start (greedy restart keeps the
 * search anchored while the fresh lr schedule explores). Fully
 * deterministic given the candidate — no RNG draws past this point.
 */
StartOutcome
runStartPoint(const std::vector<Layer> &layers, const DosaConfig &cfg,
              StartCandidate start)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    StartOutcome out;
    out.samples.reserve(static_cast<size_t>(cfg.steps_per_start) + 1);
    std::vector<Mapping> mappings = std::move(start.mappings);
    std::vector<OrderVec> orders = std::move(start.orders);
    std::vector<double> x = std::move(start.x);

    // Local frontier filter for multi-objective runs: only points of
    // this start's own Pareto front travel to the merge (everything
    // the start dominates locally is dominated globally too).
    const bool pareto = cfg.mode.pareto.active();
    ParetoFront local;
    if (pareto)
        local.configure(cfg.mode.pareto);
    auto offer = [&](double edp, double energy_uj, double latency,
                     const HardwareConfig &hw,
                     const std::vector<Mapping> &maps) {
        if (!pareto || latency <= 0.0)
            return;
        ParetoPoint point;
        point.edp = edp;
        point.area_mm2 = configAreaMm2(hw);
        point.power_w = energy_uj / latency * 1000.0;
        point.hw = hw;
        if (local.wouldAccept(point.edp, point.area_mm2,
                    point.power_w)) {
            point.mappings = maps;
            out.candidates.push_back({out.samples.size(), point});
            local.consider(std::move(point));
        }
    };

    // Score the concrete start point (one sample).
    {
        HardwareConfig hw0 = scoringHw(layers, mappings, cfg.mode);
        NetworkEval ev0 = scoreDesign(layers, mappings, hw0,
                cfg.score_latency);
        bool valid0 = !overAreaBudget(hw0, cfg.mode);
        if (valid0) {
            out.start_valid = true;
            out.start_edp = ev0.edp;
            out.start_hw = hw0;
            offer(ev0.edp, ev0.energy_uj, ev0.latency, hw0, mappings);
        }
        if (valid0 && ev0.edp < out.best_edp) {
            out.best_edp = ev0.edp;
            out.best_hw = hw0;
            out.best_mappings = mappings;
        }
        out.samples.push_back(valid0 ? ev0.edp : kInf);
    }

    double start_best_edp = kInf;
    std::vector<double> start_best_x = x;
    std::vector<OrderVec> start_best_orders = orders;
    Adam adam(x.size(), cfg.lr);
    const int probes = std::max(1, cfg.line_search_probes);
    std::vector<std::vector<double>> ls_cands(
            static_cast<size_t>(probes));
    // Arena-reused objective evaluator: within a rounding segment the
    // context (orders, mode, strategy) is fixed, so every step after
    // the first is a fused tape replay with zero graph construction.
    ObjectiveEngine engine;
    // In line-search mode the batch sweep already valued and
    // differentiated the committed candidate, so its eval is carried
    // into the next step instead of being recomputed; null = the
    // current x has no usable eval (start of segment, plain step,
    // post-rounding reset). Points at engine-owned storage, valid
    // until the next eval/evalBatch call.
    const ObjectiveEval *carried = nullptr;
    for (int step = 1; step <= cfg.steps_per_start; ++step) {
        // Cooperative cancellation/deadline poll, once per descent
        // step (each step is a full tape replay over the network, so
        // the clock read is noise).
        if (cfg.control != nullptr && cfg.control->stopRequested())
            break;
        const ObjectiveEval &ev = carried
                ? *carried
                : engine.eval(layers, x, orders, cfg.strategy,
                          cfg.mode);
        carried = nullptr;
        // Geometric decay within the current rounding segment.
        int seg_pos = (step - 1) % cfg.round_every;
        double frac = static_cast<double>(seg_pos) /
                static_cast<double>(std::max(1,
                        cfg.round_every - 1));
        double lr_scale = std::pow(cfg.lr_decay, frac);
        if (probes == 1) {
            adam.step(x, ev.grad, lr_scale);
            if (cfg.project_feasible)
                projectFeasible(x, layers, cfg.mode.peCap());
        } else {
            // Batched line search: commit the gradient to the moments
            // once, preview the same Adam direction at `probes`
            // halving step sizes, value every candidate in one
            // lane-blocked batch sweep and keep the lowest loss
            // (first wins ties, so probe 0 reproduces the plain step
            // whenever shrinking does not strictly help).
            adam.advance(ev.grad);
            double scale = 1.0;
            for (int k = 0; k < probes; ++k, scale *= 0.5) {
                ls_cands[size_t(k)] = x;
                adam.apply(ls_cands[size_t(k)], lr_scale * scale);
                if (cfg.project_feasible)
                    projectFeasible(ls_cands[size_t(k)], layers,
                            cfg.mode.peCap());
            }
            const std::vector<ObjectiveEval> &cand_evs =
                    engine.evalBatch(layers, ls_cands, orders,
                            cfg.strategy, cfg.mode);
            size_t best_k = 0;
            for (size_t k = 1; k < cand_evs.size(); ++k)
                if (cand_evs[k].loss < cand_evs[best_k].loss)
                    best_k = k;
            x = ls_cands[best_k];
            carried = &cand_evs[best_k];
        }

        bool round_now = (step % cfg.round_every == 0) ||
                         step == cfg.steps_per_start;
        if (!round_now) {
            // Model evaluation consumed; no new concrete point.
            out.samples.push_back(kInf);
            continue;
        }

        RoundedDesign design = roundAndScore(layers, x, orders,
                cfg.mode, cfg.score_latency);
        if (cfg.strategy != OrderStrategy::Fixed) {
            orders = selectOrders(layers, design.mappings,
                    design.hw, cfg.score_latency);
            NetworkEval ev2 = scoreDesign(layers, design.mappings,
                    design.hw, cfg.score_latency);
            design.edp = ev2.edp;
            design.energy_uj = ev2.energy_uj;
            design.latency = ev2.latency;
        }
        bool valid = !overAreaBudget(design.hw, cfg.mode);
        if (valid && design.edp < out.best_edp) {
            out.best_edp = design.edp;
            out.best_hw = design.hw;
            out.best_mappings = design.mappings;
        }
        if (valid)
            offer(design.edp, design.energy_uj, design.latency,
                    design.hw, design.mappings);
        out.samples.push_back(valid ? design.edp : kInf);

        // Project the variables onto the rounded point; if this
        // rounding regressed, fall back to the best point of the
        // current start. Either way the moments restart.
        x.clear();
        for (const Mapping &m : design.mappings) {
            std::vector<double> xl = packMapping(m);
            x.insert(x.end(), xl.begin(), xl.end());
        }
        if (valid && design.edp < start_best_edp) {
            start_best_edp = design.edp;
            start_best_x = x;
            start_best_orders = orders;
        } else if (cfg.restart_from_best) {
            x = start_best_x;
            orders = start_best_orders;
        }
        adam.reset();
        carried = nullptr; // x was reset; its eval is stale
    }
    return out;
}

} // namespace

DosaResult
detail::dosaSearchImpl(const std::vector<Layer> &layers,
                       const DosaConfig &cfg)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    DosaResult result;
    result.best_start_edp = kInf;
    result.search.control = cfg.control;
    if (cfg.mode.pareto.active())
        result.search.frontier.configure(cfg.mode.pareto);

    ThreadPool pool(cfg.jobs);
    const size_t num_starts = static_cast<size_t>(cfg.start_points);
    const int tries = std::max(1, cfg.max_start_tries);
    result.search.reserveTrace(num_starts *
            (static_cast<size_t>(cfg.steps_per_start) + 1));
    if (cfg.control != nullptr)
        cfg.control->phase("starts");

    // ---- Phase 1 (parallel): candidate attempts per start point.
    // Start sp draws from its own stream (cfg.seed, sp), so attempts
    // are identical for any thread count or scheduling order. All
    // `tries` attempts are generated eagerly because the rejection
    // threshold couples start points; generation is a few model
    // evaluations against thousands of descent steps.
    auto attempts = pool.parallelMap(num_starts, [&](size_t sp) {
        Rng rng = Rng::stream(cfg.seed, sp);
        std::vector<StartCandidate> a;
        a.reserve(static_cast<size_t>(tries));
        std::vector<std::vector<double>> xs;
        xs.reserve(static_cast<size_t>(tries));
        for (int t = 0; t < tries; ++t) {
            a.push_back(makeStartCandidate(layers, cfg, rng));
            xs.push_back(a.back().x);
        }
        // All attempts share one objective shape (WS orders, Fixed
        // strategy): one build + one lane-blocked batch sweep scores
        // every attempt's model EDP.
        ObjectiveEngine engine; // per-task arena
        const std::vector<ObjectiveEval> &evs = engine.evalBatch(
                layers, xs, a[0].orders, OrderStrategy::Fixed,
                cfg.mode);
        for (size_t t = 0; t < a.size(); ++t)
            a[t].model_edp = evs[t].edp;
        return a;
    });

    // ---- Phase 2 (serial, cheap): rejection rule (Section 5.3.1) —
    // accept the first attempt predicted within reject_factor of the
    // best start so far, else keep the last attempt.
    std::vector<StartCandidate> starts;
    starts.reserve(num_starts);
    double best_start_model_edp = kInf;
    for (std::vector<StartCandidate> &a : attempts) {
        size_t chosen = a.size() - 1;
        for (size_t t = 0; t < a.size(); ++t) {
            if (a[t].model_edp <=
                cfg.reject_factor * best_start_model_edp) {
                chosen = t;
                break;
            }
        }
        best_start_model_edp = std::min(best_start_model_edp,
                a[chosen].model_edp);
        starts.push_back(std::move(a[chosen]));
    }

    // ---- Phase 3 (parallel): gradient descent per start point.
    if (cfg.control != nullptr)
        cfg.control->phase("descent");
    auto outcomes = pool.parallelMap(starts.size(), [&](size_t sp) {
        return runStartPoint(layers, cfg, std::move(starts[sp]));
    });

    // ---- Phase 4 (serial): merge in start order. Concatenating the
    // per-start sample records reproduces the serial trace (the Fig. 7
    // sample-order convention) byte for byte; the best-design check
    // runs before this start's samples so strict-< tie-breaking
    // matches the serial stream.
    if (cfg.control != nullptr)
        cfg.control->phase("merge");
    for (const StartOutcome &o : outcomes) {
        // Hard stop only: a deadline hit during descent must not
        // discard the samples the starts already computed.
        if (cfg.control != nullptr && cfg.control->recordingStopped())
            break;
        if (o.start_valid && o.start_edp < result.best_start_edp) {
            result.best_start_edp = o.start_edp;
            result.best_start_hw = o.start_hw;
        }
        // mergeOutcome keeps the serial-stream strict-< tie-breaking
        // and the design/trace consistency contract under hard stops.
        result.search.mergeOutcome(o.samples, o.best_edp, o.best_hw,
                o.best_mappings, o.candidates);
    }
    return result;
}

} // namespace dosa
