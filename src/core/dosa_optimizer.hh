/**
 * @file
 * The DOSA one-loop co-search driver (Sections 3.2 and 5).
 *
 * Flow per start point: sample a random hardware design, seed with
 * CoSA-substitute mappings (rejecting starts predicted >10x worse than
 * the best start so far, Section 5.3.1), then run Adam on the
 * differentiable objective, rounding to valid integer mappings on a
 * fixed schedule (Section 5.3.2), re-selecting loop orderings per the
 * chosen strategy, inferring minimal hardware from the mappings and
 * scoring the concrete design on the reference model.
 */

#ifndef DOSA_CORE_DOSA_OPTIMIZER_HH
#define DOSA_CORE_DOSA_OPTIMIZER_HH

#include <functional>
#include <vector>

#include "core/objective.hh"
#include "model/reference.hh"
#include "search/search_common.hh"

namespace dosa {

// LatencyScorer (the point + batched concrete-design scoring seam)
// lives in core/objective.hh next to the differentiable objective.

/** DOSA run configuration (defaults follow Section 6.1). */
struct DosaConfig
{
    int start_points = 7;
    int steps_per_start = 1490;
    int round_every = 500;
    /**
     * Adam learning rate on the log-space factors. Within each
     * rounding segment the effective rate decays geometrically from
     * lr down to lr * lr_decay: the early large steps explore
     * (log-space steps act multiplicatively on the factors), the
     * late small steps settle near the divisor grid so rounding does
     * not destroy the solution.
     */
    double lr = 0.02;
    double lr_decay = 0.3;
    /**
     * Batched line-search probes per descent step (1 = plain Adam
     * step, the default). With k > 1, Adam's moments fix the step
     * direction once, k candidate step sizes (the scheduled rate
     * scaled by 1, 1/2, ..., 1/2^(k-1)) are valued in a single
     * ObjectiveEngine::evalBatch lane sweep, and the lowest-loss
     * candidate is committed. Changes the descent trajectory, so it
     * is off by default to keep baseline traces stable; results stay
     * bit-identical for any `jobs` value either way.
     */
    int line_search_probes = 1;
    OrderStrategy strategy = OrderStrategy::Iterate;
    ObjectiveMode mode;
    uint64_t seed = 1;
    /**
     * Worker threads for the start points (independent given per-start
     * RNG streams). Results are bit-identical for any value; 1 runs
     * fully serial on the calling thread.
     */
    int jobs = 1;
    /** Reject starts predicted worse than reject_factor x best start. */
    double reject_factor = 10.0;
    int max_start_tries = 5;
    /** Optional predicted-latency scorer for concrete designs. */
    LatencyScorer score_latency;

    // ---- Ablation toggles (see bench_ablation): both default on.
    /** Project iterates onto the feasible divisor region each step. */
    bool project_feasible = true;
    /** Restart each segment from the best rounded design so far. */
    bool restart_from_best = true;

    /**
     * Cooperative run control (cancellation, deadline, sample budget,
     * streaming callbacks), installed by the `src/api` driver — leave
     * null when calling the searcher directly. Not owned.
     */
    SearchControl *control = nullptr;
};

/** DOSA run outcome. */
struct DosaResult
{
    SearchResult search;
    /** Reference EDP of the best start point (Fig. 9 attribution). */
    double best_start_edp = 0.0;
    /** Hardware of the best start point. */
    HardwareConfig best_start_hw;
};

/**
 * Run the one-loop gradient-descent co-search.
 *
 * Compat shim over the `src/api` facade: builds a `SearchSpec` for
 * the registered "dosa" searcher and dispatches through `runSearch`,
 * so this call and the facade are bitwise-identical by construction
 * (the golden-trace fixtures pin it).
 */
DosaResult dosaSearch(const std::vector<Layer> &layers,
                      const DosaConfig &cfg);

namespace detail {

/**
 * Canonical DOSA implementation behind the facade; honors
 * `cfg.control`. Call `dosaSearch` or `runSearch` instead.
 */
DosaResult dosaSearchImpl(const std::vector<Layer> &layers,
                          const DosaConfig &cfg);

} // namespace detail

/**
 * Greedy per-layer uniform-ordering selection on concrete mappings
 * (the Iterate strategy of Section 5.2.1): coordinate-descent on the
 * network EDP, two passes.
 */
std::vector<OrderVec> selectOrders(const std::vector<Layer> &layers,
                                   std::vector<Mapping> &mappings,
                                   const HardwareConfig &hw,
                                   const LatencyScorer &scorer = {});

/**
 * Round the continuous variables of every layer and score the concrete
 * design on the reference model with inferred (or PE-frozen) hardware.
 */
struct RoundedDesign
{
    std::vector<Mapping> mappings;
    HardwareConfig hw;
    double edp = 0.0;
    double energy_uj = 0.0;
    double latency = 0.0;
};

RoundedDesign roundAndScore(const std::vector<Layer> &layers,
                            const std::vector<double> &x,
                            const std::vector<OrderVec> &orders,
                            const ObjectiveMode &mode,
                            const LatencyScorer &scorer = {});

/**
 * Score a concrete design: reference energy, reference-or-predicted
 * latency (Eq 14 composition over repeat counts).
 */
NetworkEval scoreDesign(const std::vector<Layer> &layers,
                        const std::vector<Mapping> &mappings,
                        const HardwareConfig &hw,
                        const LatencyScorer &scorer = {});

} // namespace dosa

#endif // DOSA_CORE_DOSA_OPTIMIZER_HH
