/**
 * @file
 * The differentiable DOSA objective (Sections 4.5, 5.1-5.3).
 *
 * Tiling factors are optimized in log-space (f = exp(x)), a better
 * conditioned but otherwise equivalent parameterization of the paper's
 * raw factors. The loss is log(total energy) + log(total latency)
 * plus the Eq 18 validity penalty — the log transform keeps the hinge
 * penalty on a comparable scale with the EDP term while preserving
 * the EDP minimizers.
 *
 * DRAM temporal factors are never free variables: they are inferred by
 * dividing the problem size by the inner-factor product (Section 5.3.3)
 * and penalized when they fall below 1.
 */

#ifndef DOSA_CORE_OBJECTIVE_HH
#define DOSA_CORE_OBJECTIVE_HH

#include <vector>

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "model/analytical.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * Pluggable differentiable latency model (Section 6.5): replaces or
 * augments the analytical latency inside the gradient-descent
 * objective. Implementations receive the analytical prediction plus
 * the full mapping context on the autodiff tape.
 */
class DiffLatencyModel
{
  public:
    virtual ~DiffLatencyModel() = default;

    /** Adjusted latency for one layer/ordering on the tape. */
    virtual ad::Var latency(const Layer &layer,
                            const Factors<ad::Var> &factors,
                            const OrderVec &order,
                            const ad::Var &analytical_latency,
                            const HwScalars<ad::Var> &hw) const = 0;
};

/** Loop-ordering search strategies (Section 5.2 / Fig. 6). */
enum class OrderStrategy
{
    Fixed,   ///< "Baseline": weight-stationary everywhere
    Iterate, ///< re-select the best ordering at each rounding
    Softmax, ///< blend orderings with softmax weights every step
};

/** Name of a strategy ("Baseline", "Iterate", "Softmax"). */
const char *strategyName(OrderStrategy s);

/** Objective-evaluation mode. */
struct ObjectiveMode
{
    /**
     * When true the PE array is frozen to `pe_dim` (Fig. 12: buffer
     * sizes and mappings are searched for a fixed 16x16 Gemmini);
     * otherwise C_PE is derived from the spatial factors (Eq 1).
     */
    bool fix_pe = false;
    int64_t pe_dim = 16;

    /** Weight of the Eq 18 validity penalty in the loss. */
    double penalty_weight = 100.0;

    /**
     * Optional silicon-area budget in mm^2 (0 = unconstrained); the
     * Section 6.5.3 "area as a third objective" extension. Inside the
     * loss this adds a hinge on the differentiable area estimate;
     * concrete designs over budget are rejected by the driver.
     */
    double max_area_mm2 = 0.0;

    /**
     * Optional learned/augmented latency model applied inside the
     * objective (nullptr = pure analytical latency). Not owned.
     */
    const DiffLatencyModel *latency_model = nullptr;

    /**
     * Optional per-layer loss weights (Section 4.5's noted extension:
     * "the flexibility of the GD loss function also enables the user
     * to weight layers differently"). When set, layer l's energy and
     * latency contributions are scaled by layer_weights[l] on top of
     * its repeat count. Empty = uniform weighting.
     */
    std::vector<double> layer_weights;

    /** Spatial cap used for penalties and rounding. */
    int64_t peCap() const { return fix_pe ? pe_dim : kMaxPeDim; }
};

/** Per-layer variable layout: 21 temporal logs + log sC + log sK. */
constexpr int kVarsPerLayer = kFactorsPerLayer;

/** Value-and-gradient of one objective evaluation. */
struct ObjectiveEval
{
    double loss = 0.0;
    double energy_uj = 0.0;
    double latency = 0.0;
    double edp = 0.0;
    double penalty = 0.0;
    std::vector<double> grad; ///< d loss / d x, same layout as x
};

/** Pack a concrete mapping into log-space variables (per layer). */
std::vector<double> packMapping(const Mapping &m);

/** Unpack per-layer log variables into continuous factors. */
Factors<double> unpackFactors(const std::vector<double> &x,
                              size_t layer_index);

/**
 * Evaluate loss and gradient at x (size layers.size()*kVarsPerLayer).
 *
 * @param orders   Per-layer loop orderings (Fixed / Iterate modes).
 *                 Ignored by the Softmax strategy, which blends the
 *                 three uniform orderings per layer (Eq 15-17).
 */
ObjectiveEval evalObjective(const std::vector<Layer> &layers,
                            const std::vector<double> &x,
                            const std::vector<OrderVec> &orders,
                            OrderStrategy strategy,
                            const ObjectiveMode &mode);

} // namespace dosa

#endif // DOSA_CORE_OBJECTIVE_HH
