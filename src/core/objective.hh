/**
 * @file
 * The differentiable DOSA objective (Sections 4.5, 5.1-5.3).
 *
 * Tiling factors are optimized in log-space (f = exp(x)), a better
 * conditioned but otherwise equivalent parameterization of the paper's
 * raw factors. The loss is log(total energy) + log(total latency)
 * plus the Eq 18 validity penalty — the log transform keeps the hinge
 * penalty on a comparable scale with the EDP term while preserving
 * the EDP minimizers.
 *
 * DRAM temporal factors are never free variables: they are inferred by
 * dividing the problem size by the inner-factor product (Section 5.3.3)
 * and penalized when they fall below 1.
 */

#ifndef DOSA_CORE_OBJECTIVE_HH
#define DOSA_CORE_OBJECTIVE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "arch/hardware_config.hh"
#include "autodiff/tape.hh"
#include "mapping/mapping.hh"
#include "model/analytical.hh"
#include "workload/layer.hh"

namespace dosa {

/** One (layer, mapping, hardware) latency query for batched scoring. */
struct LatencyQuery
{
    const Layer *layer = nullptr;
    const Mapping *mapping = nullptr;
    const HardwareConfig *hw = nullptr;
};

/**
 * One query per layer over parallel layer/mapping storage — the batch
 * every searcher hands to `LatencyScorer::scoreDesigns` when scoring
 * a whole design. The referenced containers must outlive the queries.
 */
inline std::vector<LatencyQuery>
makeLayerQueries(const std::vector<Layer> &layers,
                 const std::vector<Mapping> &mappings,
                 const HardwareConfig &hw)
{
    std::vector<LatencyQuery> queries(layers.size());
    for (size_t li = 0; li < layers.size(); ++li)
        queries[li] = {&layers[li], &mappings[li], &hw};
    return queries;
}

/**
 * Concrete-design latency scorer used when ranking rounded mappings.
 * Empty means "reference-model latency" (served through the global
 * EvalCache). Fig. 12 passes a learned predictor here so designs are
 * selected by predicted performance.
 *
 * Beyond the point call, the class exposes the batched seam the
 * ROADMAP asks for: `scoreDesigns` scores a whole span of queries in
 * one call, so a SIMD/GPU/remote backend can amortize per-call
 * overhead (construct one with `batched()` to install a bulk
 * implementation; the default loops the point function). All searcher
 * scoring paths route through this seam.
 */
class LatencyScorer
{
  public:
    using PointFn = std::function<double(
            const Layer &, const Mapping &, const HardwareConfig &)>;
    using BatchFn = std::function<void(std::span<const LatencyQuery>,
                                       std::span<double>)>;

    /** Empty scorer: reference-model latency. */
    LatencyScorer() = default;

    /** Wrap a point function (implicit, keeps lambda call sites). */
    LatencyScorer(PointFn point) : point_(std::move(point)) {}

    /** Wrap a point function plus an amortized bulk implementation. */
    static LatencyScorer batched(PointFn point, BatchFn batch);

    /** True when a custom scorer (point or bulk) is installed. */
    explicit operator bool() const
    {
        return static_cast<bool>(point_) || static_cast<bool>(batch_);
    }

    /**
     * Score one design. Uses the point function when present, else a
     * single-query bulk call (a batch-only backend stays usable from
     * point call sites).
     */
    double
    operator()(const Layer &l, const Mapping &m,
               const HardwareConfig &hw) const
    {
        if (point_)
            return point_(l, m, hw);
        LatencyQuery q{&l, &m, &hw};
        double out = 0.0;
        batch_(std::span<const LatencyQuery>(&q, 1),
                std::span<double>(&out, 1));
        return out;
    }

    /**
     * Score `queries.size()` designs into `out` (same length). Uses
     * the bulk implementation when installed, the point function
     * otherwise, and cached reference latency when empty.
     */
    void scoreDesigns(std::span<const LatencyQuery> queries,
                      std::span<double> out) const;

  private:
    PointFn point_;
    BatchFn batch_;
};

/**
 * Pluggable differentiable latency model (Section 6.5): replaces or
 * augments the analytical latency inside the gradient-descent
 * objective. Implementations receive the analytical prediction plus
 * the full mapping context on the autodiff tape.
 */
class DiffLatencyModel
{
  public:
    virtual ~DiffLatencyModel() = default;

    /** Adjusted latency for one layer/ordering on the tape. */
    virtual ad::Var latency(const Layer &layer,
                            const Factors<ad::Var> &factors,
                            const OrderVec &order,
                            const ad::Var &analytical_latency,
                            const HwScalars<ad::Var> &hw) const = 0;
};

/** Loop-ordering search strategies (Section 5.2 / Fig. 6). */
enum class OrderStrategy
{
    Fixed,   ///< "Baseline": weight-stationary everywhere
    Iterate, ///< re-select the best ordering at each rounding
    Softmax, ///< blend orderings with softmax weights every step
};

/** Name of a strategy ("Baseline", "Iterate", "Softmax"). */
const char *strategyName(OrderStrategy s);

/** One axis of the multi-objective set: enabled + descent weight. */
struct ParetoAxis
{
    bool enabled = false;
    /** Weight of this axis' log-metric term in the scalarized loss
     *  the gradient descent follows (ignored when disabled). */
    double weight = 1.0;

    bool
    operator==(const ParetoAxis &o) const
    {
        return enabled == o.enabled && weight == o.weight;
    }
};

/**
 * The multi-objective (Pareto) objective set: which of {EDP, area,
 * power} the search minimizes and how the differentiable loss weighs
 * them. EDP defaults on; enabling area or power switches the search
 * into multi-objective mode — `ObjectiveEngine` values every enabled
 * axis in the same tape replay, and the searchers maintain a
 * non-dominated `ParetoFront` over the enabled axes in addition to
 * the scalar best-EDP incumbent. With only EDP enabled the mode is
 * inert: the loss, trace and every recorded byte are identical to a
 * default-mode run.
 */
struct ParetoObjectives
{
    ParetoAxis edp{true, 1.0};
    ParetoAxis area;  ///< silicon area in mm^2 (AreaModel)
    ParetoAxis power; ///< average power in W at the 1 GHz clock
    /** True when any axis beyond plain EDP participates. */
    bool
    active() const
    {
        return area.enabled || power.enabled;
    }

    bool
    operator==(const ParetoObjectives &o) const
    {
        return edp == o.edp && area == o.area && power == o.power;
    }
};

/** Objective-evaluation mode. */
struct ObjectiveMode
{
    /**
     * When true the PE array is frozen to `pe_dim` (Fig. 12: buffer
     * sizes and mappings are searched for a fixed 16x16 Gemmini);
     * otherwise C_PE is derived from the spatial factors (Eq 1).
     */
    bool fix_pe = false;
    int64_t pe_dim = 16;

    /** Weight of the Eq 18 validity penalty in the loss. */
    double penalty_weight = 100.0;

    /**
     * Optional silicon-area budget in mm^2 (0 = unconstrained); the
     * Section 6.5.3 "area as a third objective" extension. Inside the
     * loss this adds a hinge on the differentiable area estimate;
     * concrete designs over budget are rejected by the driver.
     */
    double max_area_mm2 = 0.0;

    /**
     * Optional learned/augmented latency model applied inside the
     * objective (nullptr = pure analytical latency). Not owned.
     */
    const DiffLatencyModel *latency_model = nullptr;

    /**
     * Optional per-layer loss weights (Section 4.5's noted extension:
     * "the flexibility of the GD loss function also enables the user
     * to weight layers differently"). When set, layer l's energy and
     * latency contributions are scaled by layer_weights[l] on top of
     * its repeat count. Empty = uniform weighting.
     */
    std::vector<double> layer_weights;

    /**
     * Multi-objective axis set. Default ({EDP}) keeps every
     * single-objective code path bitwise-unchanged; see
     * `ParetoObjectives`.
     */
    ParetoObjectives pareto;

    /** Spatial cap used for penalties and rounding. */
    int64_t peCap() const { return fix_pe ? pe_dim : kMaxPeDim; }
};

/** Per-layer variable layout: 21 temporal logs + log sC + log sK. */
constexpr int kVarsPerLayer = kFactorsPerLayer;

/** Value-and-gradient of one objective evaluation. */
struct ObjectiveEval
{
    double loss = 0.0;
    double energy_uj = 0.0;
    double latency = 0.0;
    double edp = 0.0;
    double penalty = 0.0;
    /** Differentiable area estimate in mm^2; valued only when
     *  `mode.pareto.active()` (0.0 otherwise). */
    double area_mm2 = 0.0;
    /** Average power in W (energy/latency at 1 GHz); valued only
     *  when `mode.pareto.active()` (0.0 otherwise). */
    double power_w = 0.0;
    std::vector<double> grad; ///< d loss / d x, same layout as x
};

/** Pack a concrete mapping into log-space variables (per layer). */
std::vector<double> packMapping(const Mapping &m);

/** Unpack per-layer log variables into continuous factors. */
Factors<double> unpackFactors(const std::vector<double> &x,
                              size_t layer_index);

/**
 * Arena-reusing evaluator of the differentiable objective.
 *
 * The objective graph has an identical shape for a fixed context
 * (layer shapes/counts, orderings, strategy, mode), so across the
 * descent steps of one start point only the leaf values x change.
 * The engine records the graph once on an owned Tape, then serves
 * subsequent evaluations with a fused `Tape::replay` (forward
 * re-valuation + partial recomputation) and a reverse sweep into a
 * reused adjoint buffer — no graph reconstruction, no allocation.
 * Context changes (e.g. re-selected orderings after a rounding) are
 * detected automatically and trigger a rebuild; results are
 * bitwise-identical either way.
 *
 * Thread ownership: an engine (like its Tape) must only be used by
 * one thread at a time. Each searcher start point owns one engine.
 * If `mode.latency_model` is set, the model object must not be
 * mutated (e.g. retrained) between evaluations sharing the engine.
 */
class ObjectiveEngine
{
  public:
    ObjectiveEngine() = default;
    // Non-copyable: the destructor flushes this engine's counters into
    // the global metrics registry exactly once (obs/metrics.hh), and
    // the tape/arena state is not meaningfully copyable anyway.
    ObjectiveEngine(const ObjectiveEngine &) = delete;
    ObjectiveEngine &operator=(const ObjectiveEngine &) = delete;
    ~ObjectiveEngine();

    /**
     * Evaluate loss and gradient at x (layers.size()*kVarsPerLayer).
     *
     * @param orders   Per-layer loop orderings (Fixed / Iterate
     *                 modes). Ignored by the Softmax strategy, which
     *                 blends the three uniform orderings (Eq 15-17).
     * @return a reference to engine-owned storage, valid until the
     *         next eval() call.
     */
    const ObjectiveEval &eval(const std::vector<Layer> &layers,
                              const std::vector<double> &x,
                              const std::vector<OrderVec> &orders,
                              OrderStrategy strategy,
                              const ObjectiveMode &mode);

    /**
     * Batched evaluation: value and differentiate every candidate in
     * `xs` (same layout as eval's x) under one shared context with a
     * single lane-blocked sweep over the tape (`Tape::replayBatch` +
     * `gradientBatchInto`) instead of xs.size() scalar replays.
     * Candidate k of the result is bitwise-identical to
     * eval(layers, xs[k], ...). Panics on an empty batch.
     *
     * @return a reference to engine-owned storage (one ObjectiveEval
     *         per candidate), valid until the next eval()/evalBatch().
     */
    const std::vector<ObjectiveEval> &
    evalBatch(const std::vector<Layer> &layers,
              std::span<const std::vector<double>> xs,
              const std::vector<OrderVec> &orders,
              OrderStrategy strategy, const ObjectiveMode &mode);

    /** Graph (re)constructions served so far. */
    uint64_t builds() const { return builds_; }

    /** Replay-path evaluations served so far. */
    uint64_t replays() const { return replays_; }

    /** Batched sweeps served so far. */
    uint64_t batchSweeps() const { return batch_sweeps_; }

    /** Candidates served through batched sweeps so far. */
    uint64_t batchCandidates() const { return batch_candidates_; }

  private:
    bool contextMatches(const std::vector<Layer> &layers,
                        const std::vector<OrderVec> &orders,
                        OrderStrategy strategy,
                        const ObjectiveMode &mode) const;

    void build(const std::vector<Layer> &layers,
               const std::vector<double> &x,
               const std::vector<OrderVec> &orders,
               OrderStrategy strategy, const ObjectiveMode &mode);

    void extract(const std::vector<double> &x);

    ad::Tape tape_;
    std::vector<double> adj_; ///< reused adjoint buffer
    ObjectiveEval out_;       ///< reused result (grad storage)
    // Reused batch-path storage (evalBatch).
    std::vector<double> batch_leaves_;    ///< lane-major leaf sets
    std::vector<double> batch_heads_;     ///< gathered output values
    std::vector<double> batch_adj_;       ///< node-major lane adjoints
    std::vector<ObjectiveEval> batch_out_;
    ad::NodeId loss_id_ = ad::kNoParent;
    ad::NodeId energy_id_ = ad::kNoParent;
    ad::NodeId latency_id_ = ad::kNoParent;
    ad::NodeId penalty_id_ = ad::kNoParent;
    // Multi-objective heads (kNoParent unless mode.pareto.active()).
    ad::NodeId area_id_ = ad::kNoParent;
    ad::NodeId power_id_ = ad::kNoParent;

    // Cached context signature guarding the replay fast path.
    bool has_context_ = false;
    std::vector<Layer> layers_;
    std::vector<OrderVec> orders_;
    OrderStrategy strategy_ = OrderStrategy::Fixed;
    ObjectiveMode mode_;
    uint64_t builds_ = 0;
    uint64_t replays_ = 0;
    uint64_t batch_sweeps_ = 0;
    uint64_t batch_candidates_ = 0;
};

/**
 * Evaluate loss and gradient at x (size layers.size()*kVarsPerLayer)
 * with a one-shot engine (fresh graph build). Prefer a long-lived
 * ObjectiveEngine in descent loops.
 *
 * @param orders   Per-layer loop orderings (Fixed / Iterate modes).
 *                 Ignored by the Softmax strategy, which blends the
 *                 three uniform orderings per layer (Eq 15-17).
 */
ObjectiveEval evalObjective(const std::vector<Layer> &layers,
                            const std::vector<double> &x,
                            const std::vector<OrderVec> &orders,
                            OrderStrategy strategy,
                            const ObjectiveMode &mode);

} // namespace dosa

#endif // DOSA_CORE_OBJECTIVE_HH
