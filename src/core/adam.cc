/**
 * @file
 * Adam update rule over a flat parameter vector.
 */
#include "core/adam.hh"

#include <cmath>

#include "util/logging.hh"

namespace dosa {

Adam::Adam(size_t dim, double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      m_(dim, 0.0), v_(dim, 0.0)
{
}

void
Adam::step(std::vector<double> &params, std::span<const double> grad,
           double lr_scale)
{
    if (params.size() != m_.size())
        panic("Adam::step: size mismatch");
    advance(grad);
    apply(params, lr_scale);
}

void
Adam::advance(std::span<const double> grad)
{
    if (grad.size() != m_.size())
        panic("Adam::advance: size mismatch");
    ++t_;
    for (size_t i = 0; i < m_.size(); ++i) {
        double g = grad[i];
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
    }
}

void
Adam::apply(std::vector<double> &params, double lr_scale) const
{
    if (params.size() != m_.size())
        panic("Adam::apply: size mismatch");
    double bc1 = 1.0 - std::pow(beta1_, t_);
    double bc2 = 1.0 - std::pow(beta2_, t_);
    double lr = lr_ * lr_scale;
    for (size_t i = 0; i < params.size(); ++i) {
        double mhat = m_[i] / bc1;
        double vhat = v_[i] / bc2;
        params[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
}

void
Adam::reset()
{
    t_ = 0;
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
}

} // namespace dosa
