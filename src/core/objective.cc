/**
 * @file
 * Differentiable DOSA objective: log-space tiling parameters, log-EDP loss and the Eq 18 validity penalty.
 */
#include "core/objective.hh"

#include <cmath>

#include "arch/area_model.hh"
#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "model/analytical.hh"
#include "util/logging.hh"

namespace dosa {

using ad::Tape;
using ad::Var;

const char *
strategyName(OrderStrategy s)
{
    switch (s) {
      case OrderStrategy::Fixed: return "Baseline";
      case OrderStrategy::Iterate: return "Iterate";
      case OrderStrategy::Softmax: return "Softmax";
    }
    return "?";
}

std::vector<double>
packMapping(const Mapping &m)
{
    std::vector<double> x;
    x.reserve(kVarsPerLayer);
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            x.push_back(std::log(
                    static_cast<double>(m.factors.t(lvl, d))));
    x.push_back(std::log(static_cast<double>(m.factors.spatial_c)));
    x.push_back(std::log(static_cast<double>(m.factors.spatial_k)));
    return x;
}

Factors<double>
unpackFactors(const std::vector<double> &x, size_t layer_index)
{
    Factors<double> f;
    size_t base = layer_index * kVarsPerLayer;
    size_t idx = 0;
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            f.t(lvl, d) = std::exp(x[base + idx++]);
    f.spatial_c = std::exp(x[base + idx++]);
    f.spatial_k = std::exp(x[base + idx++]);
    // DRAM entries are inferred downstream; leave them neutral.
    return f;
}

namespace {

/** The three uniform orderings blended by the Softmax strategy. */
const OrderVec kUniformOrders[kNumOrders] = {
    uniformOrder(LoopOrder::WS),
    uniformOrder(LoopOrder::IS),
    uniformOrder(LoopOrder::OS),
};

} // namespace

ObjectiveEval
evalObjective(const std::vector<Layer> &layers,
              const std::vector<double> &x,
              const std::vector<OrderVec> &orders, OrderStrategy strategy,
              const ObjectiveMode &mode)
{
    const size_t num_layers = layers.size();
    if (x.size() != num_layers * kVarsPerLayer)
        panic("evalObjective: variable vector size mismatch");
    if (strategy != OrderStrategy::Softmax &&
        orders.size() != num_layers)
        panic("evalObjective: orders size mismatch");

    Tape tape;
    tape.reserve(num_layers * 4096);
    std::vector<ad::NodeId> leaf_ids(x.size());

    // Reconstruct per-layer factors on the tape; infer DRAM residuals.
    std::vector<Factors<Var>> factors(num_layers);
    Var penalty(0.0);
    const double cap = static_cast<double>(mode.peCap());

    for (size_t li = 0; li < num_layers; ++li) {
        size_t base = li * kVarsPerLayer;
        size_t idx = 0;
        Factors<Var> &f = factors[li];
        for (int lvl = 0; lvl < kDram; ++lvl) {
            for (Dim d : kAllDims) {
                Var leaf(tape, x[base + idx]);
                leaf_ids[base + idx] = leaf.id();
                f.t(lvl, d) = exp(leaf);
                ++idx;
            }
        }
        Var leaf_sc(tape, x[base + idx]);
        leaf_ids[base + idx] = leaf_sc.id();
        f.spatial_c = exp(leaf_sc);
        ++idx;
        Var leaf_sk(tape, x[base + idx]);
        leaf_ids[base + idx] = leaf_sk.id();
        f.spatial_k = exp(leaf_sk);
        ++idx;

        for (Dim d : kAllDims) {
            Var inner(1.0);
            for (int lvl = 0; lvl < kDram; ++lvl) {
                inner = inner * f.t(lvl, d);
                inner = inner * f.spatialAt(lvl, d);
            }
            f.t(kDram, d) =
                    Var(static_cast<double>(layers[li].size(d))) / inner;
        }

        // Eq 18 validity penalty over every factor (including the
        // inferred DRAM residuals), plus normalized spatial-cap hinges.
        for (int lvl = 0; lvl < kNumLevels; ++lvl)
            for (Dim d : kAllDims)
                penalty = penalty + relu(Var(1.0) - f.t(lvl, d));
        penalty = penalty + relu(Var(1.0) - f.spatial_c) +
                  relu(Var(1.0) - f.spatial_k);
        penalty = penalty + relu(f.spatial_c / Var(cap) - Var(1.0)) +
                  relu(f.spatial_k / Var(cap) - Var(1.0));
    }

    // Which orderings each layer needs.
    auto layer_orders = [&](size_t li) -> std::vector<OrderVec> {
        if (strategy == OrderStrategy::Softmax)
            return {kUniformOrders[0], kUniformOrders[1],
                    kUniformOrders[2]};
        return {orders[li]};
    };

    // Counts per layer per ordering. Capacity fields are
    // ordering-independent, so the first entry serves hardware
    // inference.
    std::vector<std::vector<LayerCounts<Var>>> counts(num_layers);
    for (size_t li = 0; li < num_layers; ++li)
        for (const OrderVec &ov : layer_orders(li))
            counts[li].push_back(
                    computeCounts(layers[li], factors[li], ov));

    // Shared hardware scalars: fixed C_PE (Fig. 12 mode) or the
    // differentiable max over layers (Eq 1 + Section 4.5).
    HwScalars<Var> hw;
    if (mode.fix_pe) {
        double pd = static_cast<double>(mode.pe_dim);
        hw.cpe = Var(pd * pd);
    } else {
        Var pe_req = counts[0][0].pe_dim_req;
        for (size_t li = 1; li < num_layers; ++li)
            pe_req = max(pe_req, counts[li][0].pe_dim_req);
        hw.cpe = pe_req * pe_req;
    }
    hw.accum_words = counts[0][0].accum_words_req;
    hw.spad_words = counts[0][0].spad_words_req;
    for (size_t li = 1; li < num_layers; ++li) {
        hw.accum_words = max(hw.accum_words,
                counts[li][0].accum_words_req);
        hw.spad_words = max(hw.spad_words,
                counts[li][0].spad_words_req);
    }
    hw.accum_words = max(hw.accum_words, Var(1.0));
    hw.spad_words = max(hw.spad_words, Var(1.0));

    // Per-layer energy/latency, blended across orderings for Softmax
    // (Eq 15-17, with the inverse-EDP scores normalized by the best
    // option so the softmax operates on O(1) values).
    if (!mode.layer_weights.empty() &&
        mode.layer_weights.size() != num_layers)
        panic("evalObjective: layer_weights size mismatch");

    Var total_energy(0.0), total_latency(0.0);
    for (size_t li = 0; li < num_layers; ++li) {
        double cnt = static_cast<double>(layers[li].count);
        if (!mode.layer_weights.empty())
            cnt *= mode.layer_weights[li];
        std::vector<OrderVec> l_orders = layer_orders(li);
        std::vector<LayerPerf<Var>> perfs;
        for (size_t oi = 0; oi < counts[li].size(); ++oi) {
            LayerPerf<Var> p = computePerf(counts[li][oi], hw);
            if (mode.latency_model) {
                p.latency = mode.latency_model->latency(layers[li],
                        factors[li], l_orders[oi], p.latency, hw);
            }
            perfs.push_back(p);
        }

        Var e_l, l_l;
        if (perfs.size() == 1) {
            e_l = perfs[0].energy_uj;
            l_l = perfs[0].latency;
        } else {
            std::vector<Var> scores;
            double best_edp = ad::val(perfs[0].energy_uj) *
                              ad::val(perfs[0].latency);
            for (const auto &p : perfs)
                best_edp = std::min(best_edp,
                        ad::val(p.energy_uj) * ad::val(p.latency));
            for (const auto &p : perfs)
                scores.push_back(Var(best_edp) /
                        (p.energy_uj * p.latency));
            std::vector<Var> w = ad::softmax(scores);
            e_l = Var(0.0);
            l_l = Var(0.0);
            for (size_t oi = 0; oi < perfs.size(); ++oi) {
                e_l = e_l + w[oi] * perfs[oi].energy_uj;
                l_l = l_l + w[oi] * perfs[oi].latency;
            }
        }
        total_energy = total_energy + Var(cnt) * e_l;
        total_latency = total_latency + Var(cnt) * l_l;
    }

    Var loss = log(total_energy) + log(total_latency) +
               Var(mode.penalty_weight) * penalty;
    if (mode.max_area_mm2 > 0.0) {
        Var area = AreaModel::areaMm2(hw.cpe, hw.accum_words,
                hw.spad_words);
        loss = loss + Var(mode.penalty_weight) *
                relu(area / Var(mode.max_area_mm2) - Var(1.0));
    }

    ObjectiveEval out;
    out.loss = loss.value();
    out.energy_uj = total_energy.value();
    out.latency = total_latency.value();
    out.edp = out.energy_uj * out.latency;
    out.penalty = penalty.value();
    std::vector<double> adj = tape.gradient(loss.id());
    out.grad.resize(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out.grad[i] = adj[size_t(leaf_ids[i])];
    return out;
}

} // namespace dosa
