/**
 * @file
 * Differentiable DOSA objective: log-space tiling parameters, log-EDP loss and the Eq 18 validity penalty.
 *
 * The graph is recorded through ObjectiveEngine, which reuses its
 * arena Tape across descent steps: evaluations under an unchanged
 * context run as a fused replay instead of a rebuild.
 */
#include "core/objective.hh"

#include <cmath>

#include "arch/area_model.hh"
#include "autodiff/var.hh"
#include "exec/eval_cache.hh"
#include "model/analytical.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace dosa {

using ad::Tape;
using ad::Var;

const char *
strategyName(OrderStrategy s)
{
    switch (s) {
      case OrderStrategy::Fixed: return "Baseline";
      case OrderStrategy::Iterate: return "Iterate";
      case OrderStrategy::Softmax: return "Softmax";
    }
    return "?";
}

LatencyScorer
LatencyScorer::batched(PointFn point, BatchFn batch)
{
    LatencyScorer s;
    s.point_ = std::move(point);
    s.batch_ = std::move(batch);
    return s;
}

void
LatencyScorer::scoreDesigns(std::span<const LatencyQuery> queries,
                            std::span<double> out) const
{
    if (queries.size() != out.size())
        panic("LatencyScorer::scoreDesigns: span size mismatch");
    if (batch_) {
        batch_(queries, out);
        return;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
        const LatencyQuery &q = queries[i];
        out[i] = point_ ? point_(*q.layer, *q.mapping, *q.hw)
                        : cachedEval(*q.layer, *q.mapping, *q.hw)
                                  .latency;
    }
}

std::vector<double>
packMapping(const Mapping &m)
{
    std::vector<double> x;
    x.reserve(kVarsPerLayer);
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            x.push_back(std::log(
                    static_cast<double>(m.factors.t(lvl, d))));
    x.push_back(std::log(static_cast<double>(m.factors.spatial_c)));
    x.push_back(std::log(static_cast<double>(m.factors.spatial_k)));
    return x;
}

Factors<double>
unpackFactors(const std::vector<double> &x, size_t layer_index)
{
    Factors<double> f;
    size_t base = layer_index * kVarsPerLayer;
    size_t idx = 0;
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            f.t(lvl, d) = std::exp(x[base + idx++]);
    f.spatial_c = std::exp(x[base + idx++]);
    f.spatial_k = std::exp(x[base + idx++]);
    // DRAM entries are inferred downstream; leave them neutral.
    return f;
}

namespace {

/** The three uniform orderings blended by the Softmax strategy. */
const OrderVec kUniformOrders[kNumOrders] = {
    uniformOrder(LoopOrder::WS),
    uniformOrder(LoopOrder::IS),
    uniformOrder(LoopOrder::OS),
};

/** Equality of the mode fields that shape the objective graph. */
bool
modeEquals(const ObjectiveMode &a, const ObjectiveMode &b)
{
    return a.fix_pe == b.fix_pe && a.pe_dim == b.pe_dim &&
           a.penalty_weight == b.penalty_weight &&
           a.max_area_mm2 == b.max_area_mm2 &&
           a.latency_model == b.latency_model &&
           a.layer_weights == b.layer_weights &&
           a.pareto == b.pareto;
}

} // namespace

bool
ObjectiveEngine::contextMatches(const std::vector<Layer> &layers,
                                const std::vector<OrderVec> &orders,
                                OrderStrategy strategy,
                                const ObjectiveMode &mode) const
{
    if (!has_context_ || strategy != strategy_ ||
        layers.size() != layers_.size() ||
        !modeEquals(mode, mode_))
        return false;
    for (size_t li = 0; li < layers.size(); ++li)
        if (!layers[li].sameShape(layers_[li]) ||
            layers[li].count != layers_[li].count)
            return false;
    // The Softmax strategy ignores the orders argument entirely.
    if (strategy != OrderStrategy::Softmax && orders != orders_)
        return false;
    return true;
}

void
ObjectiveEngine::build(const std::vector<Layer> &layers,
                       const std::vector<double> &x,
                       const std::vector<OrderVec> &orders,
                       OrderStrategy strategy, const ObjectiveMode &mode)
{
    const size_t num_layers = layers.size();
    Tape &tape = tape_;
    tape.reset();
    tape.reserve(num_layers * 4096);

    // Reconstruct per-layer factors on the tape; infer DRAM residuals.
    std::vector<Factors<Var>> factors(num_layers);
    Var penalty(0.0);
    const double cap = static_cast<double>(mode.peCap());

    for (size_t li = 0; li < num_layers; ++li) {
        size_t base = li * kVarsPerLayer;
        size_t idx = 0;
        Factors<Var> &f = factors[li];
        for (int lvl = 0; lvl < kDram; ++lvl) {
            for (Dim d : kAllDims) {
                Var leaf(tape, x[base + idx]);
                f.t(lvl, d) = exp(leaf);
                ++idx;
            }
        }
        Var leaf_sc(tape, x[base + idx]);
        f.spatial_c = exp(leaf_sc);
        ++idx;
        Var leaf_sk(tape, x[base + idx]);
        f.spatial_k = exp(leaf_sk);
        ++idx;

        for (Dim d : kAllDims) {
            Var inner(1.0);
            for (int lvl = 0; lvl < kDram; ++lvl) {
                inner = inner * f.t(lvl, d);
                inner = inner * f.spatialAt(lvl, d);
            }
            f.t(kDram, d) =
                    Var(static_cast<double>(layers[li].size(d))) / inner;
        }

        // Eq 18 validity penalty over every factor (including the
        // inferred DRAM residuals), plus normalized spatial-cap hinges.
        for (int lvl = 0; lvl < kNumLevels; ++lvl)
            for (Dim d : kAllDims)
                penalty = penalty + relu(Var(1.0) - f.t(lvl, d));
        penalty = penalty + relu(Var(1.0) - f.spatial_c) +
                  relu(Var(1.0) - f.spatial_k);
        penalty = penalty + relu(f.spatial_c / Var(cap) - Var(1.0)) +
                  relu(f.spatial_k / Var(cap) - Var(1.0));
    }

    // Which orderings each layer needs.
    auto layer_orders = [&](size_t li) -> std::vector<OrderVec> {
        if (strategy == OrderStrategy::Softmax)
            return {kUniformOrders[0], kUniformOrders[1],
                    kUniformOrders[2]};
        return {orders[li]};
    };

    // Counts per layer per ordering. Capacity fields are
    // ordering-independent, so the first entry serves hardware
    // inference.
    std::vector<std::vector<LayerCounts<Var>>> counts(num_layers);
    for (size_t li = 0; li < num_layers; ++li)
        for (const OrderVec &ov : layer_orders(li))
            counts[li].push_back(
                    computeCounts(layers[li], factors[li], ov));

    // Shared hardware scalars: fixed C_PE (Fig. 12 mode) or the
    // differentiable max over layers (Eq 1 + Section 4.5).
    HwScalars<Var> hw;
    if (mode.fix_pe) {
        double pd = static_cast<double>(mode.pe_dim);
        hw.cpe = Var(pd * pd);
    } else {
        Var pe_req = counts[0][0].pe_dim_req;
        for (size_t li = 1; li < num_layers; ++li)
            pe_req = max(pe_req, counts[li][0].pe_dim_req);
        hw.cpe = pe_req * pe_req;
    }
    hw.accum_words = counts[0][0].accum_words_req;
    hw.spad_words = counts[0][0].spad_words_req;
    for (size_t li = 1; li < num_layers; ++li) {
        hw.accum_words = max(hw.accum_words,
                counts[li][0].accum_words_req);
        hw.spad_words = max(hw.spad_words,
                counts[li][0].spad_words_req);
    }
    hw.accum_words = max(hw.accum_words, Var(1.0));
    hw.spad_words = max(hw.spad_words, Var(1.0));

    // Per-layer energy/latency, blended across orderings for Softmax
    // (Eq 15-17, with the inverse-EDP scores normalized by the best
    // option so the softmax operates on O(1) values; the best-EDP
    // normalizer stays on the tape so the graph shape is independent
    // of which ordering currently wins).
    Var total_energy(0.0), total_latency(0.0);
    for (size_t li = 0; li < num_layers; ++li) {
        double cnt = static_cast<double>(layers[li].count);
        if (!mode.layer_weights.empty())
            cnt *= mode.layer_weights[li];
        std::vector<OrderVec> l_orders = layer_orders(li);
        std::vector<LayerPerf<Var>> perfs;
        for (size_t oi = 0; oi < counts[li].size(); ++oi) {
            LayerPerf<Var> p = computePerf(counts[li][oi], hw);
            if (mode.latency_model) {
                p.latency = mode.latency_model->latency(layers[li],
                        factors[li], l_orders[oi], p.latency, hw);
            }
            perfs.push_back(p);
        }

        Var e_l, l_l;
        if (perfs.size() == 1) {
            e_l = perfs[0].energy_uj;
            l_l = perfs[0].latency;
        } else {
            std::vector<Var> edps;
            edps.reserve(perfs.size());
            for (const auto &p : perfs)
                edps.push_back(p.energy_uj * p.latency);
            Var best_edp = edps[0];
            for (size_t oi = 1; oi < edps.size(); ++oi)
                best_edp = min(best_edp, edps[oi]);
            std::vector<Var> scores;
            scores.reserve(edps.size());
            for (const Var &edp : edps)
                scores.push_back(best_edp / edp);
            std::vector<Var> w = ad::softmax(scores);
            e_l = Var(0.0);
            l_l = Var(0.0);
            for (size_t oi = 0; oi < perfs.size(); ++oi) {
                e_l = e_l + w[oi] * perfs[oi].energy_uj;
                l_l = l_l + w[oi] * perfs[oi].latency;
            }
        }
        total_energy = total_energy + Var(cnt) * e_l;
        total_latency = total_latency + Var(cnt) * l_l;
    }

    if (!mode.pareto.active()) {
        // Single-objective path: the exact node sequence the golden
        // traces pin — no Pareto machinery touches the tape here.
        Var loss = log(total_energy) + log(total_latency) +
                   Var(mode.penalty_weight) * penalty;
        if (mode.max_area_mm2 > 0.0) {
            Var area = AreaModel::areaMm2(hw.cpe, hw.accum_words,
                    hw.spad_words);
            loss = loss + Var(mode.penalty_weight) *
                    relu(area / Var(mode.max_area_mm2) - Var(1.0));
        }
        loss_id_ = loss.id();
        area_id_ = ad::kNoParent;
        power_id_ = ad::kNoParent;
    } else {
        // Multi-objective path: every enabled axis is a head on the
        // same tape (one replay values them all), and the descent
        // follows the weighted sum of log-metrics — with one axis at
        // weight 1 this degenerates to the single-objective loss.
        // Power is the 1 GHz proxy W = uJ * 1e-6 / (cycles * 1e-9).
        Var area = AreaModel::areaMm2(hw.cpe, hw.accum_words,
                hw.spad_words);
        Var power = total_energy / total_latency * Var(1000.0);
        Var loss = Var(mode.penalty_weight) * penalty;
        if (mode.pareto.edp.enabled)
            loss = loss + Var(mode.pareto.edp.weight) *
                    (log(total_energy) + log(total_latency));
        if (mode.pareto.area.enabled)
            loss = loss + Var(mode.pareto.area.weight) * log(area);
        if (mode.pareto.power.enabled)
            loss = loss + Var(mode.pareto.power.weight) * log(power);
        if (mode.max_area_mm2 > 0.0)
            loss = loss + Var(mode.penalty_weight) *
                    relu(area / Var(mode.max_area_mm2) - Var(1.0));
        loss_id_ = loss.id();
        area_id_ = area.id();
        power_id_ = power.id();
    }
    energy_id_ = total_energy.id();
    latency_id_ = total_latency.id();
    penalty_id_ = penalty.id();

    // Capture the context signature guarding future replays.
    layers_ = layers;
    orders_ = strategy == OrderStrategy::Softmax
                      ? std::vector<OrderVec>{}
                      : orders;
    strategy_ = strategy;
    mode_ = mode;
    has_context_ = true;
}

void
ObjectiveEngine::extract(const std::vector<double> &x)
{
    out_.loss = tape_.value(loss_id_);
    out_.energy_uj = tape_.value(energy_id_);
    out_.latency = tape_.value(latency_id_);
    out_.penalty = tape_.value(penalty_id_);
    out_.edp = out_.energy_uj * out_.latency;
    out_.area_mm2 =
            area_id_ == ad::kNoParent ? 0.0 : tape_.value(area_id_);
    out_.power_w =
            power_id_ == ad::kNoParent ? 0.0 : tape_.value(power_id_);
    tape_.gradientInto(loss_id_, adj_);
    out_.grad.resize(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out_.grad[i] = adj_[size_t(tape_.leaf(i))];
}

ObjectiveEngine::~ObjectiveEngine()
{
    // Engines are short-lived (one per start point / task): flushing
    // the lifetime totals here keeps the eval/replay hot paths free of
    // shared-counter traffic while the global registry still sees
    // every engine's work.
    if (builds_ == 0 && replays_ == 0 && batch_sweeps_ == 0)
        return;
    static struct
    {
        obs::Counter &builds = obs::counter("objective.builds");
        obs::Counter &replays = obs::counter("objective.replays");
        obs::Counter &batch_sweeps =
            obs::counter("objective.batch_sweeps");
        obs::Counter &batch_candidates =
            obs::counter("objective.batch_candidates");
    } counters;
    counters.builds.add(builds_);
    counters.replays.add(replays_);
    counters.batch_sweeps.add(batch_sweeps_);
    counters.batch_candidates.add(batch_candidates_);
}

const ObjectiveEval &
ObjectiveEngine::eval(const std::vector<Layer> &layers,
                      const std::vector<double> &x,
                      const std::vector<OrderVec> &orders,
                      OrderStrategy strategy, const ObjectiveMode &mode)
{
    if (x.size() != layers.size() * kVarsPerLayer)
        panic("evalObjective: variable vector size mismatch");
    if (strategy != OrderStrategy::Softmax &&
        orders.size() != layers.size())
        panic("evalObjective: orders size mismatch");
    if (!mode.layer_weights.empty() &&
        mode.layer_weights.size() != layers.size())
        panic("evalObjective: layer_weights size mismatch");

    if (contextMatches(layers, orders, strategy, mode)) {
        tape_.replay(x);
        ++replays_;
    } else {
        build(layers, x, orders, strategy, mode);
        ++builds_;
    }
    extract(x);
    return out_;
}

const std::vector<ObjectiveEval> &
ObjectiveEngine::evalBatch(const std::vector<Layer> &layers,
                           std::span<const std::vector<double>> xs,
                           const std::vector<OrderVec> &orders,
                           OrderStrategy strategy,
                           const ObjectiveMode &mode)
{
    if (xs.empty())
        panic("evalBatch: empty candidate batch");
    const size_t dim = layers.size() * kVarsPerLayer;
    for (const std::vector<double> &x : xs)
        if (x.size() != dim)
            panic("evalBatch: variable vector size mismatch");
    if (strategy != OrderStrategy::Softmax &&
        orders.size() != layers.size())
        panic("evalBatch: orders size mismatch");
    if (!mode.layer_weights.empty() &&
        mode.layer_weights.size() != layers.size())
        panic("evalBatch: layer_weights size mismatch");

    // One shared graph serves every candidate: the context fixes the
    // shape, only leaf values differ per lane.
    if (!contextMatches(layers, orders, strategy, mode)) {
        build(layers, xs[0], orders, strategy, mode);
        ++builds_;
    }
    const size_t lanes = xs.size();
    batch_leaves_.resize(lanes * dim);
    for (size_t k = 0; k < lanes; ++k)
        std::copy(xs[k].begin(), xs[k].end(),
                batch_leaves_.begin() + static_cast<long>(k * dim));
    // 4 heads single-objective, +area +power in Pareto mode — the
    // extra axes ride the same lane-blocked sweep for free.
    const ad::NodeId heads[] = {loss_id_,    energy_id_, latency_id_,
                                penalty_id_, area_id_,   power_id_};
    const size_t kHeads = area_id_ == ad::kNoParent ? 4 : 6;
    batch_heads_.resize(lanes * kHeads);
    tape_.replayBatch(batch_leaves_,
            std::span<const ad::NodeId>(heads, kHeads), batch_heads_);
    tape_.gradientBatchInto(loss_id_, batch_adj_);
    ++batch_sweeps_;
    batch_candidates_ += lanes;

    batch_out_.resize(lanes);
    for (size_t k = 0; k < lanes; ++k) {
        ObjectiveEval &ev = batch_out_[k];
        ev.loss = batch_heads_[k * kHeads + 0];
        ev.energy_uj = batch_heads_[k * kHeads + 1];
        ev.latency = batch_heads_[k * kHeads + 2];
        ev.penalty = batch_heads_[k * kHeads + 3];
        ev.edp = ev.energy_uj * ev.latency;
        ev.area_mm2 = kHeads > 4 ? batch_heads_[k * kHeads + 4] : 0.0;
        ev.power_w = kHeads > 4 ? batch_heads_[k * kHeads + 5] : 0.0;
        ev.grad.resize(dim);
        for (size_t i = 0; i < dim; ++i)
            ev.grad[i] =
                    batch_adj_[size_t(tape_.leaf(i)) * lanes + k];
    }
    return batch_out_;
}

ObjectiveEval
evalObjective(const std::vector<Layer> &layers,
              const std::vector<double> &x,
              const std::vector<OrderVec> &orders, OrderStrategy strategy,
              const ObjectiveMode &mode)
{
    ObjectiveEngine engine;
    return engine.eval(layers, x, orders, strategy, mode);
}

} // namespace dosa
