/**
 * @file
 * Adam optimizer over a flat parameter vector (Section 6.1: "the
 * specific descent algorithm DOSA uses is Adam").
 */

#ifndef DOSA_CORE_ADAM_HH
#define DOSA_CORE_ADAM_HH

#include <cstddef>
#include <span>
#include <vector>

namespace dosa {

/** Standard Adam with bias correction. */
class Adam
{
  public:
    /** @param dim parameter count, @param lr learning rate. */
    Adam(size_t dim, double lr = 0.05, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    /**
     * Apply one descent step in place; sizes must match dim. The
     * gradient is read through a span so callers (e.g. the arena
     * ObjectiveEngine) can pass reused buffers without copies.
     * Equivalent to advance(grad) followed by apply(params, lr_scale).
     * @param lr_scale multiplies the base learning rate (schedules).
     */
    void step(std::vector<double> &params, std::span<const double> grad,
              double lr_scale = 1.0);

    /**
     * Commit one gradient observation to the moments (t, m, v) without
     * touching any parameters. Pairs with apply(): the split lets a
     * line search advance once and preview the same Adam step at
     * several learning-rate scales.
     */
    void advance(std::span<const double> grad);

    /**
     * Apply the update direction implied by the current moments to
     * `params` at `lr_scale` times the base rate. Const: callers may
     * apply one advance() to any number of parameter copies, and
     * advance+apply is bitwise-identical to step() at the same scale.
     */
    void apply(std::vector<double> &params, double lr_scale = 1.0) const;

    /** Vector-gradient convenience overload. */
    void
    step(std::vector<double> &params, const std::vector<double> &grad,
         double lr_scale = 1.0)
    {
        step(params, std::span<const double>(grad), lr_scale);
    }

    /** Reset moments (used after rounding projections). */
    void reset();

    size_t dim() const { return m_.size(); }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    int t_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

} // namespace dosa

#endif // DOSA_CORE_ADAM_HH
