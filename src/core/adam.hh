/**
 * @file
 * Adam optimizer over a flat parameter vector (Section 6.1: "the
 * specific descent algorithm DOSA uses is Adam").
 */

#ifndef DOSA_CORE_ADAM_HH
#define DOSA_CORE_ADAM_HH

#include <cstddef>
#include <span>
#include <vector>

namespace dosa {

/** Standard Adam with bias correction. */
class Adam
{
  public:
    /** @param dim parameter count, @param lr learning rate. */
    Adam(size_t dim, double lr = 0.05, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    /**
     * Apply one descent step in place; sizes must match dim. The
     * gradient is read through a span so callers (e.g. the arena
     * ObjectiveEngine) can pass reused buffers without copies.
     * @param lr_scale multiplies the base learning rate (schedules).
     */
    void step(std::vector<double> &params, std::span<const double> grad,
              double lr_scale = 1.0);

    /** Vector-gradient convenience overload. */
    void
    step(std::vector<double> &params, const std::vector<double> &grad,
         double lr_scale = 1.0)
    {
        step(params, std::span<const double>(grad), lr_scale);
    }

    /** Reset moments (used after rounding projections). */
    void reset();

    size_t dim() const { return m_.size(); }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    int t_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

} // namespace dosa

#endif // DOSA_CORE_ADAM_HH
