/**
 * @file
 * DOSA's closed-form differentiable performance model (Section 4).
 *
 * Every quantity — tile capacities (Eq 2-5), per-level traffic
 * (Eq 6-11), roofline latency (Eq 12) and event-based energy (Eq 13) —
 * is written as a template over the scalar type, so the identical code
 * evaluates with plain doubles (fast point evaluation) or with
 * ad::Var (gradient descent over the tiling factors).
 *
 * Modelling interpretation choices (see DESIGN.md):
 *  - Tile capacities include the temporal factors strictly inside the
 *    level plus the relevant *spatial* factors of all levels, matching
 *    the worked example of paper Fig. 3 (the PE-array fanout sits below
 *    every SRAM, so a shared SRAM holds the whole array's tiles).
 *  - Refetch multipliers follow the paper's "factors outer to the
 *    innermost relevant loop with bound > 1" rule, evaluated over the
 *    canonical per-level permutations implied by the WS/IS/OS
 *    orderings. The rule is piecewise smooth: the active set is chosen
 *    from current values, then differentiated within the piece
 *    (identical to what PyTorch autograd does for data-dependent
 *    control flow).
 *  - DRAM originates weights/inputs, so it receives no "writes";
 *    outputs cost an update per accumulator write-back and a read per
 *    partial-sum refill beyond the first (zero-initialized) fill.
 */

#ifndef DOSA_MODEL_ANALYTICAL_HH
#define DOSA_MODEL_ANALYTICAL_HH

#include <algorithm>
#include <array>
#include <cmath>

#include "arch/hardware_config.hh"
#include "autodiff/var.hh"
#include "mapping/mapping.hh"
#include "util/scalar_ops.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * Canonical loop permutation (outermost first) of an ordering.
 * Dimensions irrelevant to the stationary tensor are placed innermost
 * so that tensor is refetched only when its own dims advance.
 */
const std::array<Dim, kNumDims> &orderPermutation(LoopOrder o);

/** Per-level per-tensor traffic in native words. */
template <class S>
struct Traffic
{
    /** reads[level][tensor]: words leaving the level downward. */
    std::array<std::array<S, kNumTensors>, kNumLevels> reads{};
    /** writes[level][tensor]: words arriving from the backing store. */
    std::array<std::array<S, kNumTensors>, kNumLevels> writes{};
    /** updates[level]: output/partial-sum words arriving from below. */
    std::array<S, kNumLevels> updates{};

    const S &
    read(int level, Tensor t) const
    {
        return reads[size_t(level)][size_t(static_cast<int>(t))];
    }
    const S &
    write(int level, Tensor t) const
    {
        return writes[size_t(level)][size_t(static_cast<int>(t))];
    }
};

/** Mapping-derived, hardware-independent quantities of one layer. */
template <class S>
struct LayerCounts
{
    double macs = 0.0;      ///< total MAC operations (Eq 7), constant
    S pe_dim_req;           ///< required PE-array side, max(sC, sK)
    S accum_words_req;      ///< required accumulator capacity (words)
    S spad_words_req;       ///< required scratchpad capacity (words)
    S spatial_product;      ///< utilized PEs, sC * sK
    std::array<S, kNumLevels> accesses; ///< total word accesses per level
    S dram_bytes;           ///< DRAM traffic in bytes (mixed word sizes)
};

/** Hardware parameters as scalars (differentiable in min-HW mode). */
template <class S>
struct HwScalars
{
    S cpe;          ///< total PEs (Eq 1)
    S accum_words;  ///< accumulator capacity in 4-byte words
    S spad_words;   ///< scratchpad capacity in 1-byte words
};

/** Latency (cycles) and energy (uJ) of one layer instance. */
template <class S>
struct LayerPerf
{
    S latency;
    S energy_uj;
};

/**
 * Tile footprint of tensor t held at `level`, in words (Eq 2-4 with the
 * spatial treatment described in the file header). Inputs account for
 * convolution halo via stride: (stride*(P-1)+R) x (stride*(Q-1)+S).
 */
template <class S>
S
tileWords(const Layer &layer, const Factors<S> &f, int level, Tensor t)
{
    if (t == Tensor::Input) {
        S cn = S(1);
        for (int j = 0; j < level; ++j)
            cn = cn * f.t(j, Dim::C) * f.t(j, Dim::N);
        cn = cn * f.spatial_c; // spatial C is input-relevant
        S inner_p = S(1), inner_q = S(1), inner_r = S(1), inner_s = S(1);
        for (int j = 0; j < level; ++j) {
            inner_p = inner_p * f.t(j, Dim::P);
            inner_q = inner_q * f.t(j, Dim::Q);
            inner_r = inner_r * f.t(j, Dim::R);
            inner_s = inner_s * f.t(j, Dim::S);
        }
        double stride = static_cast<double>(layer.stride);
        S h = S(stride) * (inner_p - S(1)) + inner_r;
        S w = S(stride) * (inner_q - S(1)) + inner_s;
        return cn * h * w;
    }
    S prod = S(1);
    for (int j = 0; j < level; ++j)
        for (Dim d : kAllDims)
            if (dimRelevant(t, d))
                prod = prod * f.t(j, d);
    if (dimRelevant(t, Dim::C))
        prod = prod * f.spatial_c;
    if (dimRelevant(t, Dim::K))
        prod = prod * f.spatial_k;
    return prod;
}

/**
 * Refetch multiplier for tensor t's tile at `from_level` (Eq 6's
 * outer product): the product of all temporal loop bounds outer to
 * (and including) the innermost loop relevant to t with bound > 1,
 * scanning the nest from the loops at `from_level` outward to DRAM.
 *
 * Implemented in a gated form that is exact at integer mappings and
 * continuous everywhere: for each relevant loop r, the candidate
 * refetch count is P(r) = prod of all bounds outer-to-and-including
 * r, blended by a gate clamp(f_r - 1, 0, 1); the multiplier is the
 * max over candidates. At integer points the gate is 0 for unit
 * bounds and 1 otherwise, reproducing the discrete rule; in between,
 * activating a loop ramps its (potentially large) refetch cost in
 * smoothly instead of jumping, which is what lets gradient descent
 * leave a rounded point without falling off a cliff.
 */
template <class S>
S
refetchMultiplier(const Factors<S> &f, const OrderVec &order,
                  int from_level, Tensor t)
{
    using std::max;
    using std::min;
    S best(1.0);
    S outer_prod(1.0);
    for (int j = kNumLevels - 1; j >= from_level; --j) {
        const auto &perm = orderPermutation(order[size_t(j)]);
        for (Dim d : perm) { // outermost loop first
            const S &fv = f.t(j, d);
            outer_prod = outer_prod * fv;
            if (dimRelevant(t, d)) {
                S gate = min(max(fv - S(1.0), S(0.0)), S(1.0));
                S cand = S(1.0) + gate * (outer_prod - S(1.0));
                best = max(best, cand);
            }
        }
    }
    return best;
}

/**
 * Spatial discount F_S,t(level) (Eq 8/10): spatial fanout at `level`
 * over dims irrelevant to t (broadcast for reads, in-network reduction
 * for output updates).
 */
template <class S>
S
spatialDiscount(const Factors<S> &f, int level, Tensor t)
{
    S prod = S(1);
    if (level == kAccumulator && !dimRelevant(t, Dim::C))
        prod = prod * f.spatial_c;
    if (level == kScratchpad && !dimRelevant(t, Dim::K))
        prod = prod * f.spatial_k;
    return prod;
}

/** Full traffic computation (Eq 6-11). */
template <class S>
Traffic<S>
computeTraffic(const Layer &layer, const Factors<S> &f,
               const OrderVec &order)
{
    Traffic<S> tr;
    const double macs = layer.macs();

    // Writes (Eq 6): tile footprint times refetch multiplier, for every
    // on-chip level holding the tensor. DRAM originates W/I.
    for (Tensor t : kAllTensors) {
        for (int i = 0; i < kDram; ++i) {
            if (!levelHoldsTensor(i, t))
                continue;
            tr.writes[size_t(i)][size_t(static_cast<int>(t))] =
                    tileWords(layer, f, i, t) *
                    refetchMultiplier(f, order, i, t);
        }
    }

    // Reads (Eq 10-11): at a tensor's innermost level every MAC pulls a
    // word (discounted by broadcast); outer levels source the writes of
    // the next inner level holding the tensor.
    for (Tensor t : kAllTensors) {
        for (int i = 0; i < kNumLevels; ++i) {
            if (!levelHoldsTensor(i, t))
                continue;
            S &dst = tr.reads[size_t(i)][size_t(static_cast<int>(t))];
            if (i == innermostLevel(t)) {
                dst = S(macs) / spatialDiscount(f, i, t);
            } else if (i > innermostLevel(t)) {
                int inner = nextInnerLevel(i, t);
                dst = tr.writes[size_t(inner)]
                               [size_t(static_cast<int>(t))] /
                      spatialDiscount(f, i, t);
            }
        }
    }
    // DRAM reads of outputs fetch only genuine partial-sum refills;
    // the first fill of each output word is a zero-init, not a read.
    {
        S &o_reads = tr.reads[size_t(kDram)]
                             [size_t(static_cast<int>(Tensor::Output))];
        o_reads = relu(o_reads - S(layer.tensorWords(Tensor::Output)));
    }

    // Updates (Eq 9): MACs reach the innermost output level after
    // in-network spatial reduction; outer output levels absorb the
    // write-backs of the level below.
    tr.updates[size_t(kAccumulator)] =
            S(macs) / spatialDiscount(f, kAccumulator, Tensor::Output);
    tr.updates[size_t(kDram)] =
            tr.write(kAccumulator, Tensor::Output) /
            spatialDiscount(f, kDram, Tensor::Output);
    return tr;
}

/** Derive the per-layer counts consumed by the performance equations. */
template <class S>
LayerCounts<S>
computeCounts(const Layer &layer, const Factors<S> &f,
              const OrderVec &order)
{
    using std::max;
    LayerCounts<S> c;
    c.macs = layer.macs();
    c.pe_dim_req = max(f.spatial_c, f.spatial_k);
    c.accum_words_req = tileWords(layer, f, kAccumulator, Tensor::Output);
    c.spad_words_req =
            tileWords(layer, f, kScratchpad, Tensor::Weight) +
            tileWords(layer, f, kScratchpad, Tensor::Input);
    c.spatial_product = f.spatial_c * f.spatial_k;

    Traffic<S> tr = computeTraffic(layer, f, order);
    for (int i = 0; i < kNumLevels; ++i) {
        S acc = tr.updates[size_t(i)];
        for (Tensor t : kAllTensors) {
            acc = acc + tr.read(i, t);
            if (i < kDram)
                acc = acc + tr.write(i, t);
        }
        c.accesses[size_t(i)] = acc;
    }
    c.dram_bytes =
            (tr.read(kDram, Tensor::Weight) +
             tr.read(kDram, Tensor::Input)) * S(1.0) +
            (tr.read(kDram, Tensor::Output) +
             tr.updates[size_t(kDram)]) * S(4.0);
    return c;
}

/**
 * Roofline latency (Eq 12) and event energy (Eq 13) given shared
 * hardware scalars (which, in min-HW mode, are the differentiable max
 * over all layers' requirements).
 */
template <class S>
LayerPerf<S>
computePerf(const LayerCounts<S> &c, const HwScalars<S> &hw)
{
    using std::max;
    using std::sqrt;

    S compute_lat = S(c.macs) / c.spatial_product;
    S lat = compute_lat;
    lat = max(lat, c.accesses[size_t(kRegisters)] / (S(2.0) * hw.cpe));
    S sram_bw = S(2.0) * sqrt(hw.cpe);
    lat = max(lat, c.accesses[size_t(kAccumulator)] / sram_bw);
    lat = max(lat, c.accesses[size_t(kScratchpad)] / sram_bw);
    lat = max(lat, c.dram_bytes / S(EnergyModel::kDramBandwidth));

    S energy_pj =
            S(c.macs) * S(EnergyModel::kEpaMac) +
            c.accesses[size_t(kRegisters)] *
                    S(EnergyModel::kEpaRegister) +
            c.accesses[size_t(kAccumulator)] *
                    EnergyModel::accumEpa(hw.accum_words, hw.cpe) +
            c.accesses[size_t(kScratchpad)] *
                    EnergyModel::spadEpa(hw.spad_words, hw.cpe) +
            c.dram_bytes * S(EnergyModel::kEpaDram);

    LayerPerf<S> perf;
    perf.latency = lat;
    perf.energy_uj = energy_pj * S(1e-6);
    return perf;
}

/** Hardware scalars for a fixed configuration. */
template <class S>
HwScalars<S>
hwScalars(const HardwareConfig &cfg)
{
    return HwScalars<S>{S(cfg.cpe()), S(cfg.accumWords()),
                        S(cfg.spadWords())};
}

} // namespace dosa

#endif // DOSA_MODEL_ANALYTICAL_HH
