/**
 * @file
 * The Timeloop-substitute reference model.
 *
 * An independently coded, integer-exact "iterative program" evaluator
 * for concrete mappings, playing the role Timeloop+Accelergy play in
 * the paper: the trusted ground truth that the differentiable model is
 * validated against (Fig. 4) and that the black-box searchers sample.
 *
 * It differs from the differentiable model deliberately in one place
 * the paper calls out: DRAM energy is computed from the number of
 * 64-byte blocks touched (a ceiling per tensor), not from raw element
 * counts, which produces the small-layer divergence of Fig. 4.
 */

#ifndef DOSA_MODEL_REFERENCE_HH
#define DOSA_MODEL_REFERENCE_HH

#include <array>
#include <vector>

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "workload/layer.hh"

namespace dosa {

/** DRAM burst granularity used for block-quantized accounting. */
constexpr double kDramBlockBytes = 64.0;

/** Detailed per-layer reference evaluation. */
struct RefEval
{
    double latency = 0.0;      ///< cycles
    double energy_uj = 0.0;    ///< microjoules
    double edp = 0.0;          ///< uJ * cycles

    /** Per-level total word accesses (DRAM entry is in words too). */
    std::array<double, kNumLevels> accesses{};
    /** reads[level][tensor] in words. */
    std::array<std::array<double, kNumTensors>, kNumLevels> reads{};
    /** writes[level][tensor] in words. */
    std::array<std::array<double, kNumTensors>, kNumLevels> writes{};
    /** updates[level] in words. */
    std::array<double, kNumLevels> updates{};

    double dram_bytes = 0.0;        ///< raw DRAM traffic
    double dram_bytes_quant = 0.0;  ///< block-quantized DRAM traffic

    /** Hardware requirements implied by the mapping. */
    double pe_dim_req = 0.0;
    double accum_words_req = 0.0;
    double spad_words_req = 0.0;
    double spad_w_tile_words = 0.0; ///< weight tile at the scratchpad
    double spad_i_tile_words = 0.0; ///< input tile at the scratchpad

    /** Whether the mapping fits the hardware it was evaluated on. */
    bool fits = true;
};

/**
 * Evaluate a concrete integer mapping of `layer` on `hw`.
 *
 * The mapping must be complete for the layer (panics otherwise, since
 * incomplete mappings indicate an upstream bug). `fits` reports
 * capacity/PE violations rather than failing, so searchers can reject.
 */
RefEval referenceEval(const Layer &layer, const Mapping &mapping,
                      const HardwareConfig &hw);

/**
 * Infer the minimal hardware configuration supporting every
 * layer/mapping pair (Fig. 3: parameter-wise max, then quantization to
 * integer PE side and whole-KiB SRAMs).
 */
HardwareConfig inferMinimalHw(const std::vector<Layer> &layers,
                              const std::vector<Mapping> &mappings);

/**
 * Network-level EDP (Eq 14): energies and latencies are summed over
 * layers (weighted by repeat counts) and the sums multiplied.
 */
struct NetworkEval
{
    double energy_uj = 0.0;
    double latency = 0.0;
    double edp = 0.0;
    bool fits = true;
};

NetworkEval referenceNetworkEval(const std::vector<Layer> &layers,
                                 const std::vector<Mapping> &mappings,
                                 const HardwareConfig &hw);

} // namespace dosa

#endif // DOSA_MODEL_REFERENCE_HH
