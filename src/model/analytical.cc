/**
 * @file
 * Non-template entry points of the differentiable analytical model (Section 4).
 */
#include "model/analytical.hh"

namespace dosa {

const std::array<Dim, kNumDims> &
orderPermutation(LoopOrder o)
{
    // Outermost first. Each ordering pushes the dims irrelevant to its
    // stationary tensor innermost: WS keeps weights resident across
    // N/Q/P, IS keeps inputs resident across K, OS keeps outputs
    // resident across C/S/R.
    static const std::array<Dim, kNumDims> ws = {
        Dim::K, Dim::C, Dim::S, Dim::R, Dim::N, Dim::Q, Dim::P,
    };
    static const std::array<Dim, kNumDims> is = {
        Dim::N, Dim::C, Dim::Q, Dim::P, Dim::S, Dim::R, Dim::K,
    };
    static const std::array<Dim, kNumDims> os = {
        Dim::N, Dim::K, Dim::Q, Dim::P, Dim::C, Dim::S, Dim::R,
    };
    switch (o) {
      case LoopOrder::WS: return ws;
      case LoopOrder::IS: return is;
      case LoopOrder::OS: return os;
    }
    return ws;
}

} // namespace dosa
