/**
 * @file
 * Timeloop-substitute reference model: integer-exact traffic, latency and energy for concrete mappings.
 */
#include "model/reference.hh"

#include <algorithm>
#include <cmath>

#include "model/analytical.hh" // orderPermutation only
#include "util/logging.hh"

namespace dosa {

namespace {

/** One temporal loop of the concrete nest. */
struct LoopEntry
{
    int level;
    Dim dim;
    int64_t bound;
};

/** Temporal nest, outermost first, covering levels >= from_level. */
std::vector<LoopEntry>
buildNest(const Mapping &m, int from_level)
{
    std::vector<LoopEntry> nest;
    nest.reserve(size_t(kNumDims * (kNumLevels - from_level)));
    for (int lvl = kNumLevels - 1; lvl >= from_level; --lvl) {
        const auto &perm = orderPermutation(m.order[size_t(lvl)]);
        for (Dim d : perm)
            nest.push_back({lvl, d, m.factors.t(lvl, d)});
    }
    return nest;
}

/**
 * Times the tile of tensor t at from_level is (re)fetched: the product
 * of all loop bounds outer to, and including, the innermost relevant
 * loop whose bound exceeds 1.
 */
double
refetchCount(const Mapping &m, int from_level, Tensor t)
{
    std::vector<LoopEntry> nest = buildNest(m, from_level);
    int innermost_rel = -1;
    for (int i = static_cast<int>(nest.size()) - 1; i >= 0; --i) {
        if (dimRelevant(t, nest[size_t(i)].dim) &&
            nest[size_t(i)].bound > 1) {
            innermost_rel = i;
            break;
        }
    }
    if (innermost_rel < 0)
        return 1.0;
    double prod = 1.0;
    for (int i = 0; i <= innermost_rel; ++i)
        prod *= static_cast<double>(nest[size_t(i)].bound);
    return prod;
}

/** Integer tile footprint (words) of tensor t at a level. */
double
tileFootprint(const Layer &layer, const Mapping &m, int level, Tensor t)
{
    const Factors<int64_t> &f = m.factors;
    if (t == Tensor::Input) {
        int64_t cn = 1, ip = 1, iq = 1, ir = 1, is = 1;
        for (int j = 0; j < level; ++j) {
            cn *= f.t(j, Dim::C) * f.t(j, Dim::N);
            ip *= f.t(j, Dim::P);
            iq *= f.t(j, Dim::Q);
            ir *= f.t(j, Dim::R);
            is *= f.t(j, Dim::S);
        }
        cn *= f.spatial_c;
        double h = static_cast<double>(layer.stride * (ip - 1) + ir);
        double w = static_cast<double>(layer.stride * (iq - 1) + is);
        return static_cast<double>(cn) * h * w;
    }
    int64_t prod = 1;
    for (int j = 0; j < level; ++j)
        for (Dim d : kAllDims)
            if (dimRelevant(t, d))
                prod *= f.t(j, d);
    if (dimRelevant(t, Dim::C))
        prod *= f.spatial_c;
    if (dimRelevant(t, Dim::K))
        prod *= f.spatial_k;
    return static_cast<double>(prod);
}

/** Spatial broadcast/reduction discount at a level for tensor t. */
double
discount(const Mapping &m, int level, Tensor t)
{
    double d = 1.0;
    if (level == kAccumulator && !dimRelevant(t, Dim::C))
        d *= static_cast<double>(m.factors.spatial_c);
    if (level == kScratchpad && !dimRelevant(t, Dim::K))
        d *= static_cast<double>(m.factors.spatial_k);
    return d;
}

/** Round bytes up to whole DRAM blocks (Timeloop-style accounting). */
double
quantizeToBlocks(double bytes)
{
    if (bytes <= 0.0)
        return 0.0;
    return std::ceil(bytes / kDramBlockBytes) * kDramBlockBytes;
}

} // namespace

RefEval
referenceEval(const Layer &layer, const Mapping &mapping,
              const HardwareConfig &hw)
{
    if (!mapping.complete(layer) || !mapping.positive())
        panic("referenceEval: mapping is not a valid complete mapping "
              "for layer " + layer.str());

    RefEval ev;
    const double macs = layer.macs();
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };

    // Writes into on-chip levels.
    for (Tensor t : kAllTensors) {
        for (int i = 0; i < kDram; ++i) {
            if (!levelHoldsTensor(i, t))
                continue;
            ev.writes[size_t(i)][at(t)] =
                    tileFootprint(layer, mapping, i, t) *
                    refetchCount(mapping, i, t);
        }
    }

    // Reads.
    for (Tensor t : kAllTensors) {
        for (int i = 0; i < kNumLevels; ++i) {
            if (!levelHoldsTensor(i, t))
                continue;
            if (i == innermostLevel(t)) {
                ev.reads[size_t(i)][at(t)] =
                        macs / discount(mapping, i, t);
            } else if (i > innermostLevel(t)) {
                int inner = nextInnerLevel(i, t);
                ev.reads[size_t(i)][at(t)] =
                        ev.writes[size_t(inner)][at(t)] /
                        discount(mapping, i, t);
            }
        }
    }
    // First output fill is a zero-init, not a DRAM read.
    ev.reads[size_t(kDram)][at(Tensor::Output)] = std::max(0.0,
            ev.reads[size_t(kDram)][at(Tensor::Output)] -
            layer.tensorWords(Tensor::Output));

    // Updates.
    ev.updates[size_t(kAccumulator)] =
            macs / discount(mapping, kAccumulator, Tensor::Output);
    ev.updates[size_t(kDram)] =
            ev.writes[size_t(kAccumulator)][at(Tensor::Output)] /
            discount(mapping, kDram, Tensor::Output);

    // Per-level access totals.
    for (int i = 0; i < kNumLevels; ++i) {
        double acc = ev.updates[size_t(i)];
        for (Tensor t : kAllTensors) {
            acc += ev.reads[size_t(i)][at(t)];
            if (i < kDram)
                acc += ev.writes[size_t(i)][at(t)];
        }
        ev.accesses[size_t(i)] = acc;
    }

    // DRAM bytes, raw and block-quantized per tensor stream.
    double w_bytes = ev.reads[size_t(kDram)][at(Tensor::Weight)] *
                     wordBytes(Tensor::Weight);
    double i_bytes = ev.reads[size_t(kDram)][at(Tensor::Input)] *
                     wordBytes(Tensor::Input);
    double o_bytes = (ev.reads[size_t(kDram)][at(Tensor::Output)] +
                      ev.updates[size_t(kDram)]) *
                     wordBytes(Tensor::Output);
    ev.dram_bytes = w_bytes + i_bytes + o_bytes;
    ev.dram_bytes_quant = quantizeToBlocks(w_bytes) +
                          quantizeToBlocks(i_bytes) +
                          quantizeToBlocks(o_bytes);

    // Hardware requirements.
    ev.pe_dim_req = static_cast<double>(std::max(
            mapping.factors.spatial_c, mapping.factors.spatial_k));
    ev.accum_words_req =
            tileFootprint(layer, mapping, kAccumulator, Tensor::Output);
    ev.spad_w_tile_words =
            tileFootprint(layer, mapping, kScratchpad, Tensor::Weight);
    ev.spad_i_tile_words =
            tileFootprint(layer, mapping, kScratchpad, Tensor::Input);
    ev.spad_words_req = ev.spad_w_tile_words + ev.spad_i_tile_words;
    ev.fits = ev.pe_dim_req <= static_cast<double>(hw.pe_dim) &&
              ev.accum_words_req <= hw.accumWords() &&
              ev.spad_words_req <= hw.spadWords();

    // Latency: roofline over compute and every memory level (Eq 12),
    // with block-quantized DRAM traffic.
    double cpe = hw.cpe();
    double spatial = static_cast<double>(mapping.factors.spatial_c) *
                     static_cast<double>(mapping.factors.spatial_k);
    double lat = macs / spatial;
    lat = std::max(lat, ev.accesses[size_t(kRegisters)] / (2.0 * cpe));
    double sram_bw = 2.0 * std::sqrt(cpe);
    lat = std::max(lat, ev.accesses[size_t(kAccumulator)] / sram_bw);
    lat = std::max(lat, ev.accesses[size_t(kScratchpad)] / sram_bw);
    lat = std::max(lat,
            ev.dram_bytes_quant / EnergyModel::kDramBandwidth);
    ev.latency = lat;

    // Energy (Eq 13), with block-quantized DRAM traffic.
    double energy_pj =
            macs * EnergyModel::kEpaMac +
            ev.accesses[size_t(kRegisters)] * EnergyModel::kEpaRegister +
            ev.accesses[size_t(kAccumulator)] *
                    EnergyModel::accumEpa(hw.accumWords(), cpe) +
            ev.accesses[size_t(kScratchpad)] *
                    EnergyModel::spadEpa(hw.spadWords(), cpe) +
            ev.dram_bytes_quant * EnergyModel::kEpaDram;
    ev.energy_uj = energy_pj * 1e-6;
    ev.edp = ev.energy_uj * ev.latency;
    return ev;
}

HardwareConfig
inferMinimalHw(const std::vector<Layer> &layers,
               const std::vector<Mapping> &mappings)
{
    if (layers.size() != mappings.size())
        panic("inferMinimalHw: layer/mapping count mismatch");
    double pe = 1.0, accum = 1.0, spad = 1.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        const Mapping &m = mappings[i];
        pe = std::max(pe, static_cast<double>(std::max(
                m.factors.spatial_c, m.factors.spatial_k)));
        accum = std::max(accum, tileFootprint(layers[i], m,
                kAccumulator, Tensor::Output));
        spad = std::max(spad,
                tileFootprint(layers[i], m, kScratchpad,
                              Tensor::Weight) +
                tileFootprint(layers[i], m, kScratchpad,
                              Tensor::Input));
    }
    return quantizeConfig(pe, accum, spad);
}

NetworkEval
referenceNetworkEval(const std::vector<Layer> &layers,
                     const std::vector<Mapping> &mappings,
                     const HardwareConfig &hw)
{
    if (layers.size() != mappings.size())
        panic("referenceNetworkEval: layer/mapping count mismatch");
    NetworkEval out;
    for (size_t i = 0; i < layers.size(); ++i) {
        RefEval ev = referenceEval(layers[i], mappings[i], hw);
        double cnt = static_cast<double>(layers[i].count);
        out.energy_uj += cnt * ev.energy_uj;
        out.latency += cnt * ev.latency;
        out.fits = out.fits && ev.fits;
    }
    out.edp = out.energy_uj * out.latency;
    return out;
}

} // namespace dosa
