/**
 * @file
 * Random-search co-design baseline (Section 6.1).
 *
 * Samples hardware design points and, for each, random valid mappings
 * per layer; the best mapping per layer (by per-layer EDP) defines the
 * design's performance. Also provides the fixed-hardware random mapper
 * used by Fig. 8 (random-pruned Timeloop mapper stand-in) and Fig. 9.
 */

#ifndef DOSA_SEARCH_RANDOM_SEARCH_HH
#define DOSA_SEARCH_RANDOM_SEARCH_HH

#include <vector>

#include "core/objective.hh"
#include "search/search_common.hh"

namespace dosa {

/** Configuration of the random co-search. */
struct RandomSearchConfig
{
    int hw_designs = 10;        ///< hardware points to sample
    int mappings_per_hw = 1000; ///< mapping samples per hardware point
    uint64_t seed = 1;
    /**
     * Worker threads fanning out over hardware design points (each
     * design draws from its own RNG stream). Results are bit-identical
     * for any value.
     */
    int jobs = 1;
    /**
     * Optional predicted-latency scorer for sampled designs; each
     * sample's per-layer latencies go through the batched
     * `scoreDesigns` seam as one call, so bulk backends see whole
     * networks. Empty = reference-model latency (unchanged behavior).
     */
    LatencyScorer scorer;
    /**
     * Cooperative run control (cancellation, deadline, sample budget,
     * streaming callbacks), installed by the `src/api` driver — leave
     * null when calling the searcher directly. Not owned.
     */
    SearchControl *control = nullptr;
    /**
     * Multi-objective axes. When a second axis is enabled
     * (`pareto.active()`), the search also maintains the Pareto front
     * over the enabled axes in `SearchResult::frontier`; otherwise
     * the single-objective path runs bit-identically to before.
     */
    ParetoObjectives pareto;
};

/**
 * Run random hardware+mapping co-search over the unique layers of a
 * network. One sample = one mapping per layer on one hardware design.
 *
 * Compat shim over the `src/api` facade: dispatches through the
 * registered "random" searcher, bitwise-identical by construction.
 */
SearchResult randomSearch(const std::vector<Layer> &layers,
                          const RandomSearchConfig &cfg);

/**
 * Fixed-hardware mapping search: `samples` random valid mappings per
 * layer; returns the best mapping per layer by per-layer EDP, plus the
 * resulting network EDP. Each sample draws from its own RNG stream, so
 * results are bit-identical for any `jobs` value. An optional scorer
 * replaces the reference latency (batched per sample through
 * `scoreDesigns`).
 *
 * Compat shim over the `src/api` facade: dispatches through the
 * registered "mapper" searcher, bitwise-identical by construction.
 */
SearchResult randomMapperSearch(const std::vector<Layer> &layers,
                                const HardwareConfig &hw, int samples,
                                uint64_t seed, int jobs = 1,
                                const LatencyScorer &scorer = {});

namespace detail {

/**
 * Canonical random co-search implementation behind the facade;
 * honors `cfg.control`. Call `randomSearch` or `runSearch` instead.
 */
SearchResult randomSearchImpl(const std::vector<Layer> &layers,
                              const RandomSearchConfig &cfg);

/**
 * Canonical fixed-hardware mapper implementation behind the facade;
 * honors `control`. Call `randomMapperSearch` or `runSearch` instead.
 */
SearchResult randomMapperSearchImpl(const std::vector<Layer> &layers,
                                    const HardwareConfig &hw,
                                    int samples, uint64_t seed,
                                    int jobs,
                                    const LatencyScorer &scorer,
                                    SearchControl *control,
                                    const ParetoObjectives &pareto =
                                            {});

} // namespace detail

} // namespace dosa

#endif // DOSA_SEARCH_RANDOM_SEARCH_HH
