/**
 * @file
 * Random-search co-design baseline and the fixed-hardware random mapper.
 *
 * Parallel structure: randomness is split into one independent stream
 * per unit of work (per hardware design for the co-search, per sample
 * for the fixed-hardware mapper) before dispatch, so any jobs value
 * reproduces the same samples; reductions then run serially in work
 * order, keeping traces byte-identical to the jobs=1 path.
 */
#include "search/random_search.hh"

#include <algorithm>

#include "arch/area_model.hh"
#include "exec/thread_pool.hh"
#include "model/reference.hh"
#include "util/logging.hh"

namespace dosa {

namespace {

/** Per-hardware-design outcome of the random co-search. */
struct HwOutcome
{
    HardwareConfig hw;
    /** Network EDP after each sample (incumbent per-layer mappings). */
    std::vector<double> sample_edp;
    std::vector<Mapping> best;
    double best_edp = std::numeric_limits<double>::infinity();
    /**
     * Samples that entered this design's *local* Pareto front
     * (multi-objective runs only), keyed by offset into
     * `sample_edp`; the serial merge re-checks them globally.
     */
    std::vector<ParetoCandidate> candidates;
};

/**
 * Sample `samples` random mappings per layer on one hardware design,
 * tracking the incumbent best mapping per layer by per-layer EDP.
 * With a scorer installed, each sample's per-layer latencies are
 * served by one batched `scoreDesigns` call.
 */
HwOutcome
sampleHardware(const std::vector<Layer> &layers, const HardwareConfig &hw,
               int samples, Rng rng, const LatencyScorer &scorer,
               const SearchControl *control,
               const ParetoObjectives &pareto)
{
    HwOutcome out;
    out.hw = hw;
    out.sample_edp.reserve(static_cast<size_t>(samples));
    // Local frontier filter for multi-objective runs: a sample the
    // design's own history dominates is dominated globally too, so
    // only local front entries travel to the merge.
    ParetoFront local;
    const double area_mm2 = pareto.active() ? configAreaMm2(hw) : 0.0;
    if (pareto.active())
        local.configure(pareto);
    std::vector<Mapping> incumbent(layers.size());
    std::vector<double> best_layer_edp(layers.size(),
            std::numeric_limits<double>::infinity());
    std::vector<double> best_energy(layers.size(), 0.0);
    std::vector<double> best_latency(layers.size(), 0.0);
    std::vector<Mapping> maps(layers.size());
    std::vector<double> lats(layers.size(), 0.0);
    // maps elements are assigned in place each sample, so the queries
    // (pointers into them) are built once and stay valid throughout.
    const std::vector<LatencyQuery> queries =
            scorer ? makeLayerQueries(layers, maps, hw)
                   : std::vector<LatencyQuery>();

    for (int s = 0; s < samples; ++s) {
        // Cooperative cancellation/deadline poll, once per sample.
        if (control != nullptr && control->stopRequested())
            break;
        // One sample: a fresh mapping per layer (drawn before any
        // evaluation; the draw order defines the RNG stream).
        for (size_t li = 0; li < layers.size(); ++li)
            maps[li] = randomValidMapping(layers[li], hw, rng);
        if (scorer)
            scorer.scoreDesigns(queries, lats);
        for (size_t li = 0; li < layers.size(); ++li) {
            // Fresh random mappings are almost always unique; scoring
            // them through the EvalCache would only pollute it (see
            // randomValidMapping), so evaluate directly.
            RefEval ev = referenceEval(layers[li], maps[li], hw);
            double lat = scorer ? lats[li] : ev.latency;
            double layer_edp = ev.energy_uj * lat;
            if (layer_edp < best_layer_edp[li]) {
                best_layer_edp[li] = layer_edp;
                incumbent[li] = maps[li];
                best_energy[li] = ev.energy_uj;
                best_latency[li] = lat;
            }
        }
        // Network EDP with the incumbent per-layer mappings. Not
        // monotone (a per-layer EDP win can trade energy against
        // latency), so the best design is snapshotted at the minimum.
        double e = 0.0, l = 0.0;
        for (size_t li = 0; li < layers.size(); ++li) {
            double cnt = static_cast<double>(layers[li].count);
            e += cnt * best_energy[li];
            l += cnt * best_latency[li];
        }
        double edp = e * l;
        if (edp < out.best_edp) {
            out.best_edp = edp;
            out.best = incumbent;
        }
        if (pareto.active() && l > 0.0) {
            ParetoPoint point;
            point.edp = edp;
            point.area_mm2 = area_mm2;
            point.power_w = e / l * 1000.0;
            point.hw = hw;
            if (local.wouldAccept(point.edp, point.area_mm2,
                        point.power_w)) {
                point.mappings = incumbent;
                out.candidates.push_back(
                        {out.sample_edp.size(), point});
                local.consider(std::move(point));
            }
        }
        out.sample_edp.push_back(edp);
    }
    return out;
}

} // namespace

SearchResult
detail::randomSearchImpl(const std::vector<Layer> &layers,
                         const RandomSearchConfig &cfg)
{
    SearchResult result;
    result.control = cfg.control;
    if (cfg.pareto.active())
        result.frontier.configure(cfg.pareto);
    result.reserveTrace(static_cast<size_t>(cfg.hw_designs) *
            static_cast<size_t>(cfg.mappings_per_hw));
    ThreadPool pool(cfg.jobs);

    // Hardware design h draws everything (its own config plus all of
    // its mapping samples) from stream (seed, h).
    if (cfg.control != nullptr)
        cfg.control->phase("sampling");
    auto outcomes = pool.parallelMap(
            static_cast<size_t>(cfg.hw_designs), [&](size_t h) {
        Rng rng = Rng::stream(cfg.seed, h);
        HardwareConfig hw = randomHardware(rng);
        return sampleHardware(layers, hw, cfg.mappings_per_hw,
                std::move(rng), cfg.scorer, cfg.control, cfg.pareto);
    });

    // Serial merge in design order (trace convention; mergeOutcome
    // keeps strict-< tie-breaking and design/trace consistency).
    if (cfg.control != nullptr)
        cfg.control->phase("merge");
    for (const HwOutcome &o : outcomes) {
        // Hard stop only: a deadline hit during the fan-out must not
        // discard the samples the designs already computed.
        if (cfg.control != nullptr &&
            cfg.control->recordingStopped())
            break;
        result.mergeOutcome(o.sample_edp, o.best_edp, o.hw, o.best,
                o.candidates);
    }
    return result;
}

SearchResult
detail::randomMapperSearchImpl(const std::vector<Layer> &layers,
                               const HardwareConfig &hw, int samples,
                               uint64_t seed, int jobs,
                               const LatencyScorer &scorer,
                               SearchControl *control,
                               const ParetoObjectives &pareto)
{
    SearchResult result;
    result.control = control;
    if (pareto.active())
        result.frontier.configure(pareto);
    const double area_mm2 = pareto.active() ? configAreaMm2(hw) : 0.0;
    result.reserveTrace(static_cast<size_t>(samples));
    ThreadPool pool(jobs);
    if (control != nullptr)
        control->phase("sampling");

    /** One sample: a mapping per layer plus its evaluation. */
    struct Sample
    {
        std::vector<Mapping> maps;
        std::vector<double> edp, energy, latency;
    };

    // Fan out in fixed-size chunks so the in-flight working set stays
    // bounded (a --full run is 10k samples; materializing them all
    // would hold ~100 MB of mappings). Sample s always draws from
    // stream (seed, s) regardless of its chunk, so chunking does not
    // affect results.
    constexpr size_t kChunk = 256;
    std::vector<Mapping> best(layers.size());
    std::vector<double> best_layer_edp(layers.size(),
            std::numeric_limits<double>::infinity());
    std::vector<double> best_energy(layers.size(), 0.0);
    std::vector<double> best_latency(layers.size(), 0.0);

    for (size_t chunk = 0; chunk < static_cast<size_t>(samples);
         chunk += kChunk) {
        if (control != nullptr && control->stopRequested())
            break;
        size_t n = std::min(kChunk,
                static_cast<size_t>(samples) - chunk);
        auto drawn = pool.parallelMap(n, [&](size_t i) {
            Rng rng = Rng::stream(seed, chunk + i);
            Sample out;
            out.maps.reserve(layers.size());
            for (const Layer &layer : layers)
                out.maps.push_back(randomValidMapping(layer, hw, rng));
            std::vector<double> lats;
            if (scorer) {
                lats.resize(layers.size(), 0.0);
                scorer.scoreDesigns(
                        makeLayerQueries(layers, out.maps, hw), lats);
            }
            for (size_t li = 0; li < layers.size(); ++li) {
                RefEval ev = referenceEval(layers[li], out.maps[li],
                        hw);
                double lat = scorer ? lats[li] : ev.latency;
                out.edp.push_back(ev.energy_uj * lat);
                out.energy.push_back(ev.energy_uj);
                out.latency.push_back(lat);
            }
            return out;
        });

        // Serial incumbent reduction in sample order (hard stop
        // only: computed samples survive an expired deadline).
        for (Sample &sample : drawn) {
            if (control != nullptr && control->recordingStopped())
                break;
            for (size_t li = 0; li < layers.size(); ++li) {
                if (sample.edp[li] < best_layer_edp[li]) {
                    best_layer_edp[li] = sample.edp[li];
                    best[li] = std::move(sample.maps[li]);
                    best_energy[li] = sample.energy[li];
                    best_latency[li] = sample.latency[li];
                }
            }
            double e = 0.0, l = 0.0;
            for (size_t li = 0; li < layers.size(); ++li) {
                double cnt = static_cast<double>(layers[li].count);
                e += cnt * best_energy[li];
                l += cnt * best_latency[li];
            }
            double edp = e * l;
            // Merges run one sample at a time, so the global front
            // *is* the local history: pre-filtering against it keeps
            // the mapping-snapshot copy off the dominated path.
            ParetoCandidate candidate;
            std::span<const ParetoCandidate> candidates;
            if (pareto.active() && l > 0.0 &&
                result.frontier.wouldAccept(edp, area_mm2,
                        e / l * 1000.0)) {
                candidate.point.edp = edp;
                candidate.point.area_mm2 = area_mm2;
                candidate.point.power_w = e / l * 1000.0;
                candidate.point.hw = hw;
                candidate.point.mappings = best;
                candidates = std::span<const ParetoCandidate>(
                        &candidate, 1);
            }
            result.mergeOutcome(std::span<const double>(&edp, 1),
                    edp, hw, best, candidates);
        }
    }
    return result;
}

} // namespace dosa
