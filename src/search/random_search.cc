/**
 * @file
 * Random-search co-design baseline and the fixed-hardware random mapper.
 *
 * Parallel structure: randomness is split into one independent stream
 * per unit of work (per hardware design for the co-search, per sample
 * for the fixed-hardware mapper) before dispatch, so any jobs value
 * reproduces the same samples; reductions then run serially in work
 * order, keeping traces byte-identical to the jobs=1 path.
 */
#include "search/random_search.hh"

#include <algorithm>

#include "exec/thread_pool.hh"
#include "model/reference.hh"
#include "util/logging.hh"

namespace dosa {

namespace {

/** Per-hardware-design outcome of the random co-search. */
struct HwOutcome
{
    HardwareConfig hw;
    /** Network EDP after each sample (incumbent per-layer mappings). */
    std::vector<double> sample_edp;
    std::vector<Mapping> best;
    double best_edp = std::numeric_limits<double>::infinity();
};

/**
 * Sample `samples` random mappings per layer on one hardware design,
 * tracking the incumbent best mapping per layer by per-layer EDP.
 * With a scorer installed, each sample's per-layer latencies are
 * served by one batched `scoreDesigns` call.
 */
HwOutcome
sampleHardware(const std::vector<Layer> &layers, const HardwareConfig &hw,
               int samples, Rng rng, const LatencyScorer &scorer)
{
    HwOutcome out;
    out.hw = hw;
    out.sample_edp.reserve(static_cast<size_t>(samples));
    std::vector<Mapping> incumbent(layers.size());
    std::vector<double> best_layer_edp(layers.size(),
            std::numeric_limits<double>::infinity());
    std::vector<double> best_energy(layers.size(), 0.0);
    std::vector<double> best_latency(layers.size(), 0.0);
    std::vector<Mapping> maps(layers.size());
    std::vector<double> lats(layers.size(), 0.0);
    // maps elements are assigned in place each sample, so the queries
    // (pointers into them) are built once and stay valid throughout.
    const std::vector<LatencyQuery> queries =
            scorer ? makeLayerQueries(layers, maps, hw)
                   : std::vector<LatencyQuery>();

    for (int s = 0; s < samples; ++s) {
        // One sample: a fresh mapping per layer (drawn before any
        // evaluation; the draw order defines the RNG stream).
        for (size_t li = 0; li < layers.size(); ++li)
            maps[li] = randomValidMapping(layers[li], hw, rng);
        if (scorer)
            scorer.scoreDesigns(queries, lats);
        for (size_t li = 0; li < layers.size(); ++li) {
            // Fresh random mappings are almost always unique; scoring
            // them through the EvalCache would only pollute it (see
            // randomValidMapping), so evaluate directly.
            RefEval ev = referenceEval(layers[li], maps[li], hw);
            double lat = scorer ? lats[li] : ev.latency;
            double layer_edp = ev.energy_uj * lat;
            if (layer_edp < best_layer_edp[li]) {
                best_layer_edp[li] = layer_edp;
                incumbent[li] = maps[li];
                best_energy[li] = ev.energy_uj;
                best_latency[li] = lat;
            }
        }
        // Network EDP with the incumbent per-layer mappings. Not
        // monotone (a per-layer EDP win can trade energy against
        // latency), so the best design is snapshotted at the minimum.
        double e = 0.0, l = 0.0;
        for (size_t li = 0; li < layers.size(); ++li) {
            double cnt = static_cast<double>(layers[li].count);
            e += cnt * best_energy[li];
            l += cnt * best_latency[li];
        }
        double edp = e * l;
        if (edp < out.best_edp) {
            out.best_edp = edp;
            out.best = incumbent;
        }
        out.sample_edp.push_back(edp);
    }
    return out;
}

} // namespace

SearchResult
randomSearch(const std::vector<Layer> &layers,
             const RandomSearchConfig &cfg)
{
    SearchResult result;
    ThreadPool pool(cfg.jobs);

    // Hardware design h draws everything (its own config plus all of
    // its mapping samples) from stream (seed, h).
    auto outcomes = pool.parallelMap(
            static_cast<size_t>(cfg.hw_designs), [&](size_t h) {
        Rng rng = Rng::stream(cfg.seed, h);
        HardwareConfig hw = randomHardware(rng);
        return sampleHardware(layers, hw, cfg.mappings_per_hw,
                std::move(rng), cfg.scorer);
    });

    // Serial merge in design order (trace convention; strict-< best).
    for (const HwOutcome &o : outcomes) {
        if (o.best_edp < result.best_edp) {
            result.best_hw = o.hw;
            result.best_mappings = o.best;
        }
        for (double edp : o.sample_edp)
            result.record(edp);
    }
    return result;
}

SearchResult
randomMapperSearch(const std::vector<Layer> &layers,
                   const HardwareConfig &hw, int samples, uint64_t seed,
                   int jobs, const LatencyScorer &scorer)
{
    SearchResult result;
    ThreadPool pool(jobs);

    /** One sample: a mapping per layer plus its evaluation. */
    struct Sample
    {
        std::vector<Mapping> maps;
        std::vector<double> edp, energy, latency;
    };

    // Fan out in fixed-size chunks so the in-flight working set stays
    // bounded (a --full run is 10k samples; materializing them all
    // would hold ~100 MB of mappings). Sample s always draws from
    // stream (seed, s) regardless of its chunk, so chunking does not
    // affect results.
    constexpr size_t kChunk = 256;
    std::vector<Mapping> best(layers.size());
    std::vector<double> best_layer_edp(layers.size(),
            std::numeric_limits<double>::infinity());
    std::vector<double> best_energy(layers.size(), 0.0);
    std::vector<double> best_latency(layers.size(), 0.0);

    for (size_t chunk = 0; chunk < static_cast<size_t>(samples);
         chunk += kChunk) {
        size_t n = std::min(kChunk,
                static_cast<size_t>(samples) - chunk);
        auto drawn = pool.parallelMap(n, [&](size_t i) {
            Rng rng = Rng::stream(seed, chunk + i);
            Sample out;
            out.maps.reserve(layers.size());
            for (const Layer &layer : layers)
                out.maps.push_back(randomValidMapping(layer, hw, rng));
            std::vector<double> lats;
            if (scorer) {
                lats.resize(layers.size(), 0.0);
                scorer.scoreDesigns(
                        makeLayerQueries(layers, out.maps, hw), lats);
            }
            for (size_t li = 0; li < layers.size(); ++li) {
                RefEval ev = referenceEval(layers[li], out.maps[li],
                        hw);
                double lat = scorer ? lats[li] : ev.latency;
                out.edp.push_back(ev.energy_uj * lat);
                out.energy.push_back(ev.energy_uj);
                out.latency.push_back(lat);
            }
            return out;
        });

        // Serial incumbent reduction in sample order.
        for (Sample &sample : drawn) {
            for (size_t li = 0; li < layers.size(); ++li) {
                if (sample.edp[li] < best_layer_edp[li]) {
                    best_layer_edp[li] = sample.edp[li];
                    best[li] = std::move(sample.maps[li]);
                    best_energy[li] = sample.energy[li];
                    best_latency[li] = sample.latency[li];
                }
            }
            double e = 0.0, l = 0.0;
            for (size_t li = 0; li < layers.size(); ++li) {
                double cnt = static_cast<double>(layers[li].count);
                e += cnt * best_energy[li];
                l += cnt * best_latency[li];
            }
            double edp = e * l;
            if (edp < result.best_edp) {
                result.best_hw = hw;
                result.best_mappings = best;
            }
            result.record(edp);
        }
    }
    return result;
}

} // namespace dosa
