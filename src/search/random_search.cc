/**
 * @file
 * Random-search co-design baseline and the fixed-hardware random mapper.
 */
#include "search/random_search.hh"

#include "model/reference.hh"
#include "util/logging.hh"

namespace dosa {

SearchResult
randomSearch(const std::vector<Layer> &layers,
             const RandomSearchConfig &cfg)
{
    Rng rng(cfg.seed);
    SearchResult result;

    for (int h = 0; h < cfg.hw_designs; ++h) {
        HardwareConfig hw = randomHardware(rng);
        // Per-layer best mapping under this hardware.
        std::vector<Mapping> best(layers.size());
        std::vector<double> best_layer_edp(layers.size(),
                std::numeric_limits<double>::infinity());
        std::vector<double> best_energy(layers.size(), 0.0);
        std::vector<double> best_latency(layers.size(), 0.0);

        for (int s = 0; s < cfg.mappings_per_hw; ++s) {
            // One sample: a fresh mapping per layer.
            for (size_t li = 0; li < layers.size(); ++li) {
                Mapping m = randomValidMapping(layers[li], hw, rng);
                RefEval ev = referenceEval(layers[li], m, hw);
                double layer_edp = ev.energy_uj * ev.latency;
                if (layer_edp < best_layer_edp[li]) {
                    best_layer_edp[li] = layer_edp;
                    best[li] = m;
                    best_energy[li] = ev.energy_uj;
                    best_latency[li] = ev.latency;
                }
            }
            // Network EDP with the incumbent per-layer mappings.
            double e = 0.0, l = 0.0;
            for (size_t li = 0; li < layers.size(); ++li) {
                double cnt = static_cast<double>(layers[li].count);
                e += cnt * best_energy[li];
                l += cnt * best_latency[li];
            }
            double edp = e * l;
            if (edp < result.best_edp) {
                result.best_hw = hw;
                result.best_mappings = best;
            }
            result.record(edp);
        }
    }
    return result;
}

SearchResult
randomMapperSearch(const std::vector<Layer> &layers,
                   const HardwareConfig &hw, int samples, uint64_t seed)
{
    Rng rng(seed);
    SearchResult result;
    std::vector<Mapping> best(layers.size());
    std::vector<double> best_layer_edp(layers.size(),
            std::numeric_limits<double>::infinity());
    std::vector<double> best_energy(layers.size(), 0.0);
    std::vector<double> best_latency(layers.size(), 0.0);

    for (int s = 0; s < samples; ++s) {
        for (size_t li = 0; li < layers.size(); ++li) {
            Mapping m = randomValidMapping(layers[li], hw, rng);
            RefEval ev = referenceEval(layers[li], m, hw);
            double layer_edp = ev.energy_uj * ev.latency;
            if (layer_edp < best_layer_edp[li]) {
                best_layer_edp[li] = layer_edp;
                best[li] = m;
                best_energy[li] = ev.energy_uj;
                best_latency[li] = ev.latency;
            }
        }
        double e = 0.0, l = 0.0;
        for (size_t li = 0; li < layers.size(); ++li) {
            double cnt = static_cast<double>(layers[li].count);
            e += cnt * best_energy[li];
            l += cnt * best_latency[li];
        }
        double edp = e * l;
        if (edp < result.best_edp) {
            result.best_hw = hw;
            result.best_mappings = best;
        }
        result.record(edp);
    }
    return result;
}

} // namespace dosa
