/**
 * @file
 * Shared DSE infrastructure: traces, random hardware/mapping sampling and surrogate feature encoding.
 */
#include "search/search_common.hh"

#include <algorithm>
#include <cmath>

#include "model/reference.hh"
#include "util/logging.hh"

namespace dosa {

void
SearchResult::record(double edp)
{
    // Samples after a hard stop (cancellation / exhausted budget)
    // are dropped so the trace and the observer sample count end at
    // the trigger; an expired deadline only stops compute, so
    // already-computed samples still land here.
    if (control != nullptr && control->recordingStopped())
        return;
    bool improved = edp < best_edp;
    if (improved)
        best_edp = edp;
    trace.push_back(best_edp);
    if (control != nullptr)
        control->onRecord(edp, best_edp, improved);
}

void
SearchResult::mergeOutcome(std::span<const double> samples,
                           double unit_best_edp,
                           const HardwareConfig &hw,
                           const std::vector<Mapping> &mappings,
                           std::span<const ParetoCandidate>
                                   frontier_candidates)
{
    double before = best_edp;
    size_t ci = 0;
    for (size_t si = 0; si < samples.size(); ++si) {
        const size_t len_before = trace.size();
        record(samples[si]);
        const bool landed = trace.size() > len_before;
        // Re-offer this sample's frontier candidate (if any) to the
        // global front. A unit filters against its *local* frontier
        // history, so a candidate here may still be dominated by a
        // point another unit merged earlier — and by transitivity,
        // every sample the unit filtered out is dominated globally
        // too, which is what makes this stream identical to the
        // serial single-threaded one.
        while (ci < frontier_candidates.size() &&
               frontier_candidates[ci].sample_offset == si) {
            if (landed) {
                ParetoPoint point = frontier_candidates[ci].point;
                point.sample_index = trace.size() - 1;
                if (frontier.consider(std::move(point)) &&
                    control != nullptr)
                    control->frontier(frontier.points().back(),
                            frontier.size());
            }
            ++ci;
        }
    }
    if (best_edp == before)
        return; // no recorded improvement; keep the current design
    if (unit_best_edp < before && best_edp == unit_best_edp) {
        best_hw = hw;
        best_mappings = mappings;
    } else {
        // The recorded best improved past the installed design, but
        // the improving sample's design was not the unit's winner
        // (a hard stop dropped the winning sample mid-unit) — clear
        // the stale design instead of pairing it with a best_edp it
        // does not score.
        best_hw = HardwareConfig{};
        best_mappings.clear();
    }
}

void
SearchResult::reserveTrace(size_t planned)
{
    if (control != nullptr && control->maxSamples() != 0)
        planned = std::min(planned, control->maxSamples());
    trace.reserve(planned);
}

HardwareConfig
randomHardware(Rng &rng)
{
    static const int64_t pe_options[] = {4, 8, 16, 32, 64, 128};
    HardwareConfig hw;
    hw.pe_dim = pe_options[rng.uniformInt(0, 5)];
    hw.accum_kib = static_cast<int64_t>(
            std::llround(rng.logUniform(8.0, 512.0)));
    hw.spad_kib = static_cast<int64_t>(
            std::llround(rng.logUniform(16.0, 1024.0)));
    return hw;
}

Mapping
minimalMapping(const Layer &layer)
{
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = layer.size(d);
    return m;
}

Mapping
randomValidMapping(const Layer &layer, const HardwareConfig &hw, Rng &rng,
                   int max_tries)
{
    for (int i = 0; i < max_tries; ++i) {
        Mapping m = randomMapping(layer, rng, hw.pe_dim);
        // Deliberately not routed through the EvalCache: rejection
        // samples are almost always unique, so memoizing the fit
        // probe would only fill the cache with dead entries.
        RefEval ev = referenceEval(layer, m, hw);
        if (ev.fits)
            return m;
    }
    return minimalMapping(layer);
}

std::vector<double>
encodeFeatures(const Layer &layer, const Mapping &mapping,
               const HardwareConfig &hw)
{
    std::vector<double> f = encodeFeaturesT<double>(layer,
            mapping.continuousFactors(), mapping.order,
            static_cast<double>(hw.pe_dim),
            static_cast<double>(hw.accum_kib),
            static_cast<double>(hw.spad_kib));
    if (static_cast<int>(f.size()) != kFeatureSize)
        panic("encodeFeatures: feature size drift");
    return f;
}

} // namespace dosa
