/**
 * @file
 * CoSA-substitute constructive mapper.
 *
 * The paper uses CoSA (a Gurobi mixed-integer program) to seed gradient
 * descent and as a strong constant-mapper baseline. This substitute is
 * a deterministic greedy constructor pursuing the same objectives CoSA
 * encodes: maximize spatial utilization of the PE array, then maximize
 * buffer utilization (biggest tiles that fit) with weight/input reuse
 * ordering. It requires no solver and produces valid mappings for any
 * layer/hardware pair. See DESIGN.md (substitutions).
 */

#ifndef DOSA_SEARCH_COSA_MAPPER_HH
#define DOSA_SEARCH_COSA_MAPPER_HH

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * Construct a performant valid mapping of `layer` onto `hw`.
 * The result is complete, positive and fits the hardware.
 */
Mapping cosaMap(const Layer &layer, const HardwareConfig &hw);

} // namespace dosa

#endif // DOSA_SEARCH_COSA_MAPPER_HH
