/**
 * @file
 * Two-loop Bayesian-optimization co-search baseline over GP posterior LCB.
 */
#include "search/bayes_opt.hh"

#include <algorithm>
#include <cmath>

#include "arch/area_model.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "gp/gaussian_process.hh"
#include "util/logging.hh"

namespace dosa {

namespace {

/** Rolling GP training set with a size cap (keeps the newest points). */
struct TrainSet
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    size_t cap;

    explicit TrainSet(size_t cap_) : cap(cap_) {}

    void
    add(std::vector<double> features, double target)
    {
        if (x.size() >= cap) {
            // Drop the oldest half to amortize erase cost.
            size_t keep = cap / 2;
            x.erase(x.begin(), x.end() - static_cast<long>(keep));
            y.erase(y.begin(), y.end() - static_cast<long>(keep));
        }
        x.push_back(std::move(features));
        y.push_back(target);
    }
};

} // namespace

SearchResult
detail::bayesOptSearchImpl(const std::vector<Layer> &layers,
                           const BayesOptConfig &cfg)
{
    Rng rng(cfg.seed);
    SearchResult result;
    result.control = cfg.control;
    if (cfg.pareto.active())
        result.frontier.configure(cfg.pareto);
    result.reserveTrace(static_cast<size_t>(cfg.total_samples));
    ThreadPool pool(cfg.jobs);
    TrainSet train(static_cast<size_t>(cfg.max_train_points));
    GpParams gp_params;
    gp_params.length_scale = 3.0;
    gp_params.signal_var = 4.0;
    gp_params.noise_var = 1e-2;
    GaussianProcess gp(gp_params);
    bool gp_ready = false;

    auto evaluate_design = [&](const HardwareConfig &hw,
                               const std::vector<Mapping> &maps) {
        // With a scorer installed, the design's per-layer latencies
        // come from one batched scoreDesigns call.
        std::vector<double> lats(layers.size(), 0.0);
        if (cfg.scorer)
            cfg.scorer.scoreDesigns(
                    makeLayerQueries(layers, maps, hw), lats);
        double e = 0.0, l = 0.0;
        for (size_t li = 0; li < layers.size(); ++li) {
            LayerEval ev = cachedEval(layers[li], maps[li], hw);
            double lat = cfg.scorer ? lats[li] : ev.latency;
            double cnt = static_cast<double>(layers[li].count);
            e += cnt * ev.energy_uj;
            l += cnt * lat;
            double layer_edp = ev.energy_uj * lat;
            train.add(encodeFeatures(layers[li], maps[li], hw),
                      std::log(std::max(layer_edp, 1e-30)));
        }
        double edp = e * l;
        // Serial searcher: merges run one sample at a time, so the
        // global front is the local history and pre-filtering against
        // it skips the mapping-snapshot copy for dominated samples.
        ParetoCandidate candidate;
        std::span<const ParetoCandidate> candidates;
        if (cfg.pareto.active() && l > 0.0 &&
            result.frontier.wouldAccept(edp, configAreaMm2(hw),
                    e / l * 1000.0)) {
            candidate.point.edp = edp;
            candidate.point.area_mm2 = configAreaMm2(hw);
            candidate.point.power_w = e / l * 1000.0;
            candidate.point.hw = hw;
            candidate.point.mappings = maps;
            candidates = std::span<const ParetoCandidate>(
                    &candidate, 1);
        }
        result.mergeOutcome(std::span<const double>(&edp, 1), edp, hw,
                maps, candidates);
        return edp;
    };

    if (cfg.control != nullptr)
        cfg.control->phase("warmup");
    for (int sample = 0; sample < cfg.total_samples; ++sample) {
        // Cooperative cancellation/deadline poll, once per sample.
        if (cfg.control != nullptr && cfg.control->stopRequested())
            break;
        if (cfg.control != nullptr && sample == cfg.warmup_samples)
            cfg.control->phase("guided");
        HardwareConfig hw;
        std::vector<Mapping> maps(layers.size());

        if (sample < cfg.warmup_samples || !gp_ready) {
            hw = randomHardware(rng);
            for (size_t li = 0; li < layers.size(); ++li)
                maps[li] = randomValidMapping(layers[li], hw, rng);
        } else {
            // Inner loop: per candidate hardware, pick the LCB-best
            // mapping per layer; outer loop: pick the hardware whose
            // predicted network score is best. Hardware proposals stay
            // on the main stream (serial, cheap); the expensive
            // (hardware x layer) pool slices are scored in parallel,
            // each drawing its map_candidates from its own stream so
            // any jobs value reproduces the same pool.
            const size_t n_layers = layers.size();
            std::vector<HardwareConfig> cand_hws(
                    static_cast<size_t>(cfg.hw_candidates));
            for (HardwareConfig &cand : cand_hws)
                cand = randomHardware(rng);

            struct Slice
            {
                double lcb = std::numeric_limits<double>::infinity();
                Mapping map;
            };
            auto slices = pool.parallelMap(
                    cand_hws.size() * n_layers, [&](size_t t) {
                size_t hc = t / n_layers;
                size_t li = t % n_layers;
                uint64_t sid = (static_cast<uint64_t>(sample) *
                        cand_hws.size() + hc) * n_layers + li;
                Rng srng = Rng::stream(cfg.seed, sid);
                Slice s;
                for (int mc = 0; mc < cfg.map_candidates; ++mc) {
                    Mapping m = randomValidMapping(layers[li],
                            cand_hws[hc], srng, 16);
                    double v = gp.lcb(encodeFeatures(layers[li], m,
                            cand_hws[hc]), cfg.lcb_kappa);
                    if (v < s.lcb) {
                        s.lcb = v;
                        s.map = std::move(m);
                    }
                }
                return s;
            });

            double best_score =
                    std::numeric_limits<double>::infinity();
            for (size_t hc = 0; hc < cand_hws.size(); ++hc) {
                // Sum of per-layer log-EDP LCBs scores the design.
                double score = 0.0;
                for (size_t li = 0; li < n_layers; ++li)
                    score += slices[hc * n_layers + li].lcb *
                            static_cast<double>(layers[li].count);
                if (score < best_score) {
                    best_score = score;
                    hw = cand_hws[hc];
                    for (size_t li = 0; li < n_layers; ++li)
                        maps[li] = slices[hc * n_layers + li].map;
                }
            }
        }

        evaluate_design(hw, maps);

        bool refit_now = (sample + 1 == cfg.warmup_samples) ||
                (gp_ready && (sample % cfg.refit_every == 0));
        if (refit_now && !train.x.empty()) {
            gp.fit(train.x, train.y);
            gp_ready = true;
        }
    }
    return result;
}

} // namespace dosa
