/**
 * @file
 * CoSA-substitute greedy constructive mapper: spatial utilization first, then buffer utilization.
 */
#include "search/cosa_mapper.hh"

#include <algorithm>

#include "exec/eval_cache.hh"
#include "util/divisors.hh"
#include "util/logging.hh"

namespace dosa {

namespace {

/**
 * Build one candidate mapping given the degrees of freedom the greedy
 * pass has settled on. Level 0 grows the accumulator output tile
 * (Q, P, N), level 1 holds the R/S/C loops that enlarge scratchpad
 * tiles without touching the accumulator, everything else spills to
 * DRAM.
 */
Mapping
buildCandidate(const Layer &layer, const HardwareConfig &hw,
               bool keep_rs_inner, bool use_spatial)
{
    Mapping m;
    int64_t pe = use_spatial ? hw.pe_dim : 1;
    m.factors.spatial_c = largestDivisorAtMost(layer.c, pe);
    m.factors.spatial_k = largestDivisorAtMost(layer.k, pe);
    const int64_t sc = m.factors.spatial_c;
    const int64_t sk = m.factors.spatial_k;

    // Accumulator budget: output tile q0*p0*n0*sk words.
    const int64_t accum_budget = static_cast<int64_t>(hw.accumWords());
    int64_t q0 = largestDivisorAtMost(layer.q,
            std::max<int64_t>(1, accum_budget / sk));
    int64_t p0 = largestDivisorAtMost(layer.p,
            std::max<int64_t>(1, accum_budget / (sk * q0)));
    int64_t n0 = largestDivisorAtMost(layer.n,
            std::max<int64_t>(1, accum_budget / (sk * q0 * p0)));
    m.factors.t(kRegisters, Dim::Q) = q0;
    m.factors.t(kRegisters, Dim::P) = p0;
    m.factors.t(kRegisters, Dim::N) = n0;

    // Level-1 loops feeding the scratchpad tiles. CoSA partitions the
    // scratchpad equally between weights and inputs (Section 6.1).
    int64_t r1 = keep_rs_inner ? layer.r : 1;
    int64_t s1 = keep_rs_inner ? layer.s : 1;
    m.factors.t(kAccumulator, Dim::R) = r1;
    m.factors.t(kAccumulator, Dim::S) = s1;

    const int64_t w_budget = static_cast<int64_t>(hw.spadWords()) / 2;
    const int64_t i_budget = w_budget;
    const int64_t c_residual = layer.c / sc;
    int64_t input_h = layer.stride * (p0 - 1) + r1;
    int64_t input_w = layer.stride * (q0 - 1) + s1;
    int64_t c1 = 1;
    for (int64_t d : divisorsOf(c_residual)) {
        int64_t w_tile = sc * sk * r1 * s1 * d;
        int64_t i_tile = sc * d * n0 * input_h * input_w;
        if (w_tile <= w_budget && i_tile <= i_budget)
            c1 = std::max(c1, d);
    }
    m.factors.t(kAccumulator, Dim::C) = c1;

    // Everything remaining iterates at DRAM.
    for (Dim d : kAllDims) {
        int64_t prod = 1;
        for (int lvl = 0; lvl < kDram; ++lvl) {
            prod *= m.factors.t(lvl, d);
            prod *= m.factors.spatialAt(lvl, d);
        }
        m.factors.t(kDram, d) = layer.size(d) / prod;
    }
    m.order = uniformOrder(LoopOrder::WS);
    return m;
}

} // namespace

Mapping
cosaMap(const Layer &layer, const HardwareConfig &hw)
{
    // Candidates from richest to safest; return the first that fits.
    const bool opts[][2] = {
        {true, true}, {false, true}, {true, false}, {false, false},
    };
    for (const auto &o : opts) {
        Mapping m = buildCandidate(layer, hw, o[0], o[1]);
        if (!m.complete(layer) || !m.positive())
            panic("cosaMap produced an incomplete mapping");
        if (cachedEval(layer, m, hw).fits)
            return m;
    }
    // Unit tiles fit any hardware.
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = layer.size(d);
    return m;
}

} // namespace dosa
