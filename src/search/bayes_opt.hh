/**
 * @file
 * Two-loop Bayesian-optimization co-search baseline (Section 6.1,
 * hyperparameters after Spotlight).
 *
 * A Gaussian process is trained on per-layer (hardware, mapping)
 * features -> log per-layer EDP observations. Each outer round proposes
 * candidate hardware designs, selects the most promising mapping per
 * layer by posterior LCB from a candidate pool, evaluates the chosen
 * design for real, and periodically refits the GP.
 */

#ifndef DOSA_SEARCH_BAYES_OPT_HH
#define DOSA_SEARCH_BAYES_OPT_HH

#include <vector>

#include "core/objective.hh"
#include "search/search_common.hh"

namespace dosa {

/** Configuration of the BO co-search. */
struct BayesOptConfig
{
    int warmup_samples = 40;     ///< random samples before the GP kicks in
    int total_samples = 400;     ///< full-network evaluation budget
    int hw_candidates = 8;       ///< hardware proposals per round
    int map_candidates = 24;     ///< mapping proposals per layer per hw
    int refit_every = 10;        ///< rounds between GP refits
    int max_train_points = 600;  ///< GP training-set cap (O(n^3) fit)
    double lcb_kappa = 1.0;
    uint64_t seed = 1;
    /**
     * Worker threads scoring the per-round candidate pool (each
     * (hardware, layer) pool slice draws from its own RNG stream).
     * Results are bit-identical for any value.
     */
    int jobs = 1;
    /**
     * Optional predicted-latency scorer for the evaluated designs
     * (and the GP's log-EDP training targets); each design's layer
     * latencies go through the batched `scoreDesigns` seam as one
     * call. Empty = cached reference latency (unchanged behavior).
     */
    LatencyScorer scorer;
    /**
     * Cooperative run control (cancellation, deadline, sample budget,
     * streaming callbacks), installed by the `src/api` driver — leave
     * null when calling the searcher directly. Not owned.
     */
    SearchControl *control = nullptr;
    /**
     * Multi-objective axes. When a second axis is enabled
     * (`pareto.active()`), the search also maintains the Pareto front
     * over the enabled axes in `SearchResult::frontier`; otherwise
     * the single-objective path runs bit-identically to before.
     */
    ParetoObjectives pareto;
};

/**
 * Run BO co-search over the unique layers of a network.
 *
 * Compat shim over the `src/api` facade: dispatches through the
 * registered "bayesopt" searcher, bitwise-identical by construction.
 */
SearchResult bayesOptSearch(const std::vector<Layer> &layers,
                            const BayesOptConfig &cfg);

namespace detail {

/**
 * Canonical BO implementation behind the facade; honors
 * `cfg.control`. Call `bayesOptSearch` or `runSearch` instead.
 */
SearchResult bayesOptSearchImpl(const std::vector<Layer> &layers,
                                const BayesOptConfig &cfg);

} // namespace detail

} // namespace dosa

#endif // DOSA_SEARCH_BAYES_OPT_HH
