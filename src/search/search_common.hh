/**
 * @file
 * Shared infrastructure for the DSE baselines: search traces, random
 * hardware sampling, capacity-respecting random mappings and the
 * feature encoding used by the learned surrogates.
 *
 * Sample-count convention (consistent across every searcher and with
 * the paper's Fig. 7 x-axis): one sample = one full-network model
 * evaluation, i.e. evaluating one mapping per unique layer on one
 * hardware configuration.
 */

#ifndef DOSA_SEARCH_SEARCH_COMMON_HH
#define DOSA_SEARCH_SEARCH_COMMON_HH

#include <limits>
#include <vector>

#include "arch/hardware_config.hh"
#include "autodiff/var.hh"
#include "mapping/mapping.hh"
#include "util/rng.hh"
#include "workload/layer.hh"

namespace dosa {

/** Outcome of a co-search run. */
struct SearchResult
{
    double best_edp = std::numeric_limits<double>::infinity();
    HardwareConfig best_hw;
    std::vector<Mapping> best_mappings;
    /** trace[i] = best EDP seen after i+1 samples. */
    std::vector<double> trace;

    /** Record a sample, maintaining the monotone best-so-far trace. */
    void record(double edp);
};

/** Random hardware design point (log-uniform over the design ranges). */
HardwareConfig randomHardware(Rng &rng);

/**
 * Random mapping guaranteed to fit `hw`: rejection-sample up to
 * `max_tries`, then fall back to the minimal (all-at-DRAM) mapping
 * which fits any configuration.
 */
Mapping randomValidMapping(const Layer &layer, const HardwareConfig &hw,
                           Rng &rng, int max_tries = 64);

/** The minimal mapping: unit tiles everywhere, all loops at DRAM. */
Mapping minimalMapping(const Layer &layer);

/**
 * Feature vector for learned models: log-scaled layer dims, mapping
 * factors (levels 0..2 + spatial), ordering one-hots and hardware
 * parameters. Fixed length kFeatureSize.
 */
std::vector<double> encodeFeatures(const Layer &layer,
                                   const Mapping &mapping,
                                   const HardwareConfig &hw);

/** Length of encodeFeatures output. */
constexpr int kFeatureSize = 7    // layer dims
        + 1                       // stride
        + 21                      // temporal factors, levels 0..2
        + 2                       // spatial factors
        + 9                       // ordering one-hot, levels 1..3
        + 3;                      // hardware parameters

/**
 * Templated feature encoder shared by the double path (encodeFeatures)
 * and the autodiff path (surrogate models inside the GD objective).
 * Factors below 1 are clamped to 1 before the log so gradients stay
 * finite during unconstrained descent.
 */
template <class S>
std::vector<S>
encodeFeaturesT(const Layer &layer, const Factors<S> &factors,
                const OrderVec &order, const S &pe_dim,
                const S &accum_kib, const S &spad_kib)
{
    using std::log;
    using std::max;
    const double inv_ln2 = 1.4426950408889634;
    auto lg = [&](const S &v) {
        return log(max(v, S(1.0))) * S(inv_ln2);
    };

    std::vector<S> f;
    f.reserve(kFeatureSize);
    for (Dim d : kAllDims)
        f.push_back(lg(S(static_cast<double>(layer.size(d)))));
    f.push_back(S(static_cast<double>(layer.stride)));
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            f.push_back(lg(factors.t(lvl, d)));
    f.push_back(lg(factors.spatial_c));
    f.push_back(lg(factors.spatial_k));
    for (int lvl = kAccumulator; lvl < kNumLevels; ++lvl)
        for (int o = 0; o < kNumOrders; ++o)
            f.push_back(S(order[size_t(lvl)] ==
                    static_cast<LoopOrder>(o) ? 1.0 : 0.0));
    f.push_back(lg(pe_dim));
    f.push_back(lg(accum_kib));
    f.push_back(lg(spad_kib));
    return f;
}

} // namespace dosa

#endif // DOSA_SEARCH_SEARCH_COMMON_HH
