/**
 * @file
 * Shared infrastructure for the DSE baselines: search traces, random
 * hardware sampling, capacity-respecting random mappings and the
 * feature encoding used by the learned surrogates.
 *
 * Sample-count convention (consistent across every searcher and with
 * the paper's Fig. 7 x-axis): one sample = one full-network model
 * evaluation, i.e. evaluating one mapping per unique layer on one
 * hardware configuration.
 */

#ifndef DOSA_SEARCH_SEARCH_COMMON_HH
#define DOSA_SEARCH_SEARCH_COMMON_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "arch/hardware_config.hh"
#include "autodiff/var.hh"
#include "core/objective.hh"
#include "mapping/mapping.hh"
#include "util/rng.hh"
#include "workload/layer.hh"

namespace dosa {

/**
 * One point of a multi-objective frontier: the enabled-axis metrics
 * plus the concrete design behind them. Disabled axes carry 0 and do
 * not participate in domination.
 */
struct ParetoPoint
{
    double edp = 0.0;
    double area_mm2 = 0.0;
    double power_w = 0.0;
    /** 0-based trace index of the sample that entered the front. */
    size_t sample_index = 0;
    HardwareConfig hw;
    std::vector<Mapping> mappings;
};

/**
 * A frontier-entering sample produced inside one work unit, keyed by
 * its offset within the unit's sample span so the serial merge can
 * assign the global trace index. Units filter against their local
 * frontier history; `SearchResult::mergeOutcome` re-checks each
 * candidate against the global front, which by domination
 * transitivity reproduces the single-threaded event stream exactly.
 */
struct ParetoCandidate
{
    size_t sample_offset = 0;
    ParetoPoint point;
};

/**
 * Non-dominated set over the enabled axes, minimizing every axis.
 * Points are kept in insertion order — entries only ever append, and
 * strictly-dominated incumbents are erased order-preservingly — so
 * for a fixed merge order the frontier (and its event stream) is
 * byte-deterministic, serial == parallel under the `Rng::stream`
 * contract.
 *
 * Domination is weak-vs-strict asymmetric on purpose: a candidate
 * weakly dominated by an incumbent (<= on all enabled axes,
 * including exact ties) is rejected, while an incumbent is pruned
 * only when the entrant strictly dominates it (<= on all, < on at
 * least one). Duplicates therefore never enter, and an entrant never
 * erases a point it merely ties.
 */
class ParetoFront
{
  public:
    /** Select the axes that participate in domination. */
    void configure(const ParetoObjectives &axes) { axes_ = axes; }

    const ParetoObjectives &axes() const { return axes_; }

    /**
     * Cheap entry pre-check: would a sample with these metrics enter?
     * Matches `consider`'s accept test — callers use it to avoid
     * copying a design's mappings for a dominated sample.
     */
    bool
    wouldAccept(double edp, double area_mm2, double power_w) const
    {
        for (const ParetoPoint &p : points_)
            if (weaklyDominates(p.edp, p.area_mm2, p.power_w, edp,
                        area_mm2, power_w))
                return false;
        return true;
    }

    /**
     * Offer a point: reject if weakly dominated by an incumbent,
     * otherwise prune strictly-dominated incumbents and append.
     * Returns true when the point entered (it is then
     * `points().back()`).
     */
    bool
    consider(ParetoPoint point)
    {
        if (!wouldAccept(point.edp, point.area_mm2, point.power_w))
            return false;
        std::erase_if(points_, [&](const ParetoPoint &p) {
            return strictlyDominates(point.edp, point.area_mm2,
                    point.power_w, p.edp, p.area_mm2, p.power_w);
        });
        points_.push_back(std::move(point));
        return true;
    }

    /** Frontier points in insertion order. */
    const std::vector<ParetoPoint> &points() const { return points_; }

    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    /** a <= b on every enabled axis. */
    bool
    weaklyDominates(double ae, double aa, double ap, double be,
                    double ba, double bp) const
    {
        if (axes_.edp.enabled && ae > be)
            return false;
        if (axes_.area.enabled && aa > ba)
            return false;
        if (axes_.power.enabled && ap > bp)
            return false;
        return true;
    }

    /** a <= b on every enabled axis, < on at least one. */
    bool
    strictlyDominates(double ae, double aa, double ap, double be,
                      double ba, double bp) const
    {
        if (!weaklyDominates(ae, aa, ap, be, ba, bp))
            return false;
        return (axes_.edp.enabled && ae < be) ||
               (axes_.area.enabled && aa < ba) ||
               (axes_.power.enabled && ap < bp);
    }

    ParetoObjectives axes_;
    std::vector<ParetoPoint> points_;
};

/**
 * Cooperative run control shared between a search driver and the
 * searcher implementations. The `src/api` facade installs one per
 * `runSearch` call; the searchers thread it through
 * `SearchResult::record` (sample accounting + streaming callbacks)
 * and poll `stopRequested()` at their natural work boundaries (one
 * descent step, one sampled design).
 *
 * Two stop severities keep early stops lossless:
 *
 * - A *hard* stop (observer cancellation, sample budget exhausted,
 *   `requestStop()`) ends both compute and recording: the trace ends
 *   within one sample of the trigger.
 * - The *deadline* ends compute only. Samples already computed when
 *   it expires are still recorded, so a deadline that fires during a
 *   parallel phase (DOSA descent, random-search fan-out) returns the
 *   best design found so far instead of discarding the finished
 *   work.
 *
 * Thread contract: `stopRequested()` / `requestStop()` / `samples()`
 * may be called from any worker thread; `onRecord()` and `phase()`
 * are only ever called from the serial sections of a searcher (trace
 * merges run in sample order), so the callbacks observe samples in
 * trace order.
 */
class SearchControl
{
  public:
    /**
     * Streaming sample callback: (1-based running sample count, this
     * sample's EDP, best-so-far EDP, whether this sample strictly
     * improved the best). Return false to cancel the search.
     */
    using SampleFn = std::function<bool(size_t, double, double, bool)>;
    /** Searcher lifecycle callback ("starts", "descent", ...). */
    using PhaseFn = std::function<void(const char *)>;
    /** Frontier-entry callback: (the point that just entered the
     *  Pareto front, frontier size after insertion). */
    using FrontierFn =
            std::function<void(const ParetoPoint &, size_t)>;

    /** Control with no budget, no deadline and no callbacks. */
    SearchControl() = default;

    /**
     * @param max_samples Hard cap on recorded samples (0 = none).
     * @param deadline_s  Wall-clock deadline in seconds from now
     *                    (0 = none), enforced cooperatively.
     * @param on_sample   Optional per-sample streaming callback.
     * @param on_phase    Optional lifecycle callback.
     */
    SearchControl(size_t max_samples, double deadline_s,
                  SampleFn on_sample = {}, PhaseFn on_phase = {})
        : max_samples_(max_samples), on_sample_(std::move(on_sample)),
          on_phase_(std::move(on_phase))
    {
        if (deadline_s > 0.0) {
            has_deadline_ = true;
            // The deadline budget is the one sanctioned clock seam
            // in the search layer: it gates *when* a search stops,
            // never *what* it computes, and deadline-limited runs
            // are documented as nondeterministic.
            // LINT-ALLOW(wall-clock): deadline seam (see above)
            deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
        }
    }

    /** Request a hard stop (callable from any thread). */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /**
     * Compute gate: true once hard-stopped or past the deadline.
     * Searcher work loops poll this before producing more samples.
     */
    bool
    stopRequested() const
    {
        if (stop_.load(std::memory_order_relaxed))
            return true;
        if (deadline_hit_.load(std::memory_order_relaxed))
            return true;
        if (has_deadline_ &&
            // Stop timing only, never result data (see constructor).
            // LINT-ALLOW(wall-clock): deadline poll, same seam
            std::chrono::steady_clock::now() >= deadline_) {
            deadline_hit_.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /**
     * Recording gate: true only on a hard stop. `record()` keeps
     * accepting already-computed samples past the deadline so the
     * trace reflects the work actually done.
     */
    bool
    recordingStopped() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

    /** Samples recorded so far (== trace length of the live run). */
    size_t
    samples() const
    {
        return samples_.load(std::memory_order_relaxed);
    }

    /** Sample-budget cap (0 = unbounded). */
    size_t maxSamples() const { return max_samples_; }

    /**
     * Account one recorded sample and fire the streaming callback;
     * called by `SearchResult::record` from the serial merge path.
     * Requests a stop when the callback cancels or the sample budget
     * is exhausted.
     */
    void
    onRecord(double edp, double best_edp, bool improved)
    {
        size_t n = samples_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (on_sample_ && !on_sample_(n, edp, best_edp, improved))
            requestStop();
        if (max_samples_ != 0 && n >= max_samples_)
            requestStop();
    }

    /** Announce a searcher lifecycle phase. */
    void
    phase(const char *name)
    {
        if (on_phase_)
            on_phase_(name);
    }

    /** Install the frontier-entry callback (multi-objective runs). */
    void
    setFrontierCallback(FrontierFn on_frontier)
    {
        on_frontier_ = std::move(on_frontier);
    }

    /**
     * Announce a frontier entry; called by
     * `SearchResult::mergeOutcome` from the serial merge path, right
     * after the entering sample's `onRecord`.
     */
    void
    frontier(const ParetoPoint &point, size_t front_size)
    {
        if (on_frontier_)
            on_frontier_(point, front_size);
    }

  private:
    std::atomic<bool> stop_{false};
    mutable std::atomic<bool> deadline_hit_{false};
    std::atomic<size_t> samples_{0};
    size_t max_samples_ = 0;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    SampleFn on_sample_;
    PhaseFn on_phase_;
    FrontierFn on_frontier_;
};

/** Outcome of a co-search run. */
struct SearchResult
{
    double best_edp = std::numeric_limits<double>::infinity();
    HardwareConfig best_hw;
    std::vector<Mapping> best_mappings;
    /** trace[i] = best EDP seen after i+1 samples. */
    std::vector<double> trace;
    /**
     * Non-dominated frontier over the enabled Pareto axes. Empty for
     * single-objective runs (searchers only feed it candidates when
     * `mode.pareto.active()`); its insertion order is deterministic —
     * serial == parallel byte-identical, like the trace.
     */
    ParetoFront frontier;
    /**
     * Cooperative run control installed by the `src/api` driver
     * (null when a searcher runs standalone). Not owned. Every
     * `record()` reports through it, and samples recorded after a
     * hard stop (cancellation / exhausted sample budget) are
     * dropped, so such a trace ends within one sample of the
     * trigger; samples computed before an expired deadline are
     * still recorded.
     */
    SearchControl *control = nullptr;

    /** Record a sample, maintaining the monotone best-so-far trace. */
    void record(double edp);

    /**
     * Merge one work unit's outcome — its samples in stream order
     * plus the best design it found (`unit_best_edp`, `hw`,
     * `mappings`) — maintaining the consistency contract: an
     * installed design always scores exactly `best_edp`. The design
     * is installed only if the unit's winning sample actually landed
     * in the trace; if a hard stop dropped that sample after other
     * recorded samples already improved past the previously
     * installed design, the stale design is cleared rather than
     * reported. For full (unstopped) merges this is bitwise-
     * identical to the historical pre-record strict-< install.
     *
     * Multi-objective runs additionally pass the unit's
     * frontier-entering samples (`frontier_candidates`, ordered by
     * `sample_offset` within `samples`): each candidate whose sample
     * landed in the trace is re-offered to the global `frontier`,
     * and an accepted entry fires `SearchControl::frontier` right
     * after the sample's own record. Candidates whose sample a hard
     * stop dropped are dropped with it.
     */
    void mergeOutcome(std::span<const double> samples,
                      double unit_best_edp, const HardwareConfig &hw,
                      const std::vector<Mapping> &mappings,
                      std::span<const ParetoCandidate>
                              frontier_candidates = {});

    /**
     * Pre-reserve trace capacity for a planned sample count (capped
     * by the control's sample budget when one is installed), so
     * multi-100k-sample runs do not grow the trace one push_back at
     * a time.
     */
    void reserveTrace(size_t planned);
};

/** Random hardware design point (log-uniform over the design ranges). */
HardwareConfig randomHardware(Rng &rng);

/**
 * Random mapping guaranteed to fit `hw`: rejection-sample up to
 * `max_tries`, then fall back to the minimal (all-at-DRAM) mapping
 * which fits any configuration.
 */
Mapping randomValidMapping(const Layer &layer, const HardwareConfig &hw,
                           Rng &rng, int max_tries = 64);

/** The minimal mapping: unit tiles everywhere, all loops at DRAM. */
Mapping minimalMapping(const Layer &layer);

/**
 * Feature vector for learned models: log-scaled layer dims, mapping
 * factors (levels 0..2 + spatial), ordering one-hots and hardware
 * parameters. Fixed length kFeatureSize.
 */
std::vector<double> encodeFeatures(const Layer &layer,
                                   const Mapping &mapping,
                                   const HardwareConfig &hw);

/** Length of encodeFeatures output. */
constexpr int kFeatureSize = 7    // layer dims
        + 1                       // stride
        + 21                      // temporal factors, levels 0..2
        + 2                       // spatial factors
        + 9                       // ordering one-hot, levels 1..3
        + 3;                      // hardware parameters

/**
 * Templated feature encoder shared by the double path (encodeFeatures)
 * and the autodiff path (surrogate models inside the GD objective).
 * Factors below 1 are clamped to 1 before the log so gradients stay
 * finite during unconstrained descent.
 */
template <class S>
std::vector<S>
encodeFeaturesT(const Layer &layer, const Factors<S> &factors,
                const OrderVec &order, const S &pe_dim,
                const S &accum_kib, const S &spad_kib)
{
    using std::log;
    using std::max;
    const double inv_ln2 = 1.4426950408889634;
    auto lg = [&](const S &v) {
        return log(max(v, S(1.0))) * S(inv_ln2);
    };

    std::vector<S> f;
    f.reserve(kFeatureSize);
    for (Dim d : kAllDims)
        f.push_back(lg(S(static_cast<double>(layer.size(d)))));
    f.push_back(S(static_cast<double>(layer.stride)));
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            f.push_back(lg(factors.t(lvl, d)));
    f.push_back(lg(factors.spatial_c));
    f.push_back(lg(factors.spatial_k));
    for (int lvl = kAccumulator; lvl < kNumLevels; ++lvl)
        for (int o = 0; o < kNumOrders; ++o)
            f.push_back(S(order[size_t(lvl)] ==
                    static_cast<LoopOrder>(o) ? 1.0 : 0.0));
    f.push_back(lg(pe_dim));
    f.push_back(lg(accum_kib));
    f.push_back(lg(spad_kib));
    return f;
}

} // namespace dosa

#endif // DOSA_SEARCH_SEARCH_COMMON_HH
