/**
 * @file
 * Unit and property tests for the reverse-mode autodiff engine:
 * every primitive checked against central finite differences, plus
 * composite expressions representative of the performance model.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

using ad::Tape;
using ad::NodeId;
using ad::Var;

/** Central finite difference of f at x. */
double
fdiff(const std::function<double(double)> &f, double x, double h = 1e-6)
{
    return (f(x + h) - f(x - h)) / (2.0 * h);
}

/** AD gradient of a unary expression builder at x. */
double
adGrad(const std::function<Var(Var)> &build, double x)
{
    Tape tape;
    Var v(tape, x);
    Var out = build(v);
    auto adj = tape.gradient(out.id());
    return adj[size_t(v.id())];
}

struct UnaryCase
{
    const char *name;
    std::function<Var(Var)> build;
    std::function<double(double)> eval;
    std::vector<double> points;
};

class UnaryGradient : public ::testing::TestWithParam<int>
{
  public:
    static std::vector<UnaryCase> cases();
};

std::vector<UnaryCase>
UnaryGradient::cases()
{
    return {
        {"negate", [](Var v) { return -v; },
         [](double x) { return -x; }, {-3.0, 0.5, 2.0}},
        {"add_const", [](Var v) { return v + Var(3.0); },
         [](double x) { return x + 3.0; }, {-1.0, 0.0, 4.0}},
        {"sub_const", [](Var v) { return Var(3.0) - v; },
         [](double x) { return 3.0 - x; }, {-1.0, 2.0}},
        {"mul_const", [](Var v) { return v * Var(2.5); },
         [](double x) { return x * 2.5; }, {-2.0, 1.0}},
        {"div_by_var", [](Var v) { return Var(6.0) / v; },
         [](double x) { return 6.0 / x; }, {0.5, 2.0, 4.0}},
        {"log", [](Var v) { return log(v); },
         [](double x) { return std::log(x); }, {0.25, 1.0, 9.0}},
        {"exp", [](Var v) { return exp(v); },
         [](double x) { return std::exp(x); }, {-2.0, 0.0, 1.5}},
        {"sqrt", [](Var v) { return sqrt(v); },
         [](double x) { return std::sqrt(x); }, {0.25, 4.0, 100.0}},
        {"pow2.5", [](Var v) { return pow(v, 2.5); },
         [](double x) { return std::pow(x, 2.5); }, {0.5, 2.0}},
        {"relu_pos", [](Var v) { return relu(v); },
         [](double x) { return x > 0 ? x : 0.0; }, {0.5, 3.0}},
        {"square", [](Var v) { return v * v; },
         [](double x) { return x * x; }, {-2.0, 0.5, 3.0}},
        {"rational", [](Var v) { return (v + Var(1.0)) / (v * v); },
         [](double x) { return (x + 1.0) / (x * x); }, {0.5, 2.0}},
        {"logsumexp-ish",
         [](Var v) { return log(exp(v) + Var(1.0)); },
         [](double x) { return std::log(std::exp(x) + 1.0); },
         {-1.0, 0.0, 2.0}},
    };
}

TEST_P(UnaryGradient, MatchesFiniteDifference)
{
    UnaryCase c = cases()[size_t(GetParam())];
    for (double x : c.points) {
        double g_ad = adGrad(c.build, x);
        double g_fd = fdiff(c.eval, x);
        EXPECT_NEAR(g_ad, g_fd, 1e-4 * std::max(1.0, std::abs(g_fd)))
                << c.name << " at x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, UnaryGradient,
        ::testing::Range(0, 13));

TEST(Autodiff, BinaryOpsBothSides)
{
    Tape tape;
    Var a(tape, 3.0), b(tape, 4.0);
    Var out = a * b + a / b - b;
    auto adj = tape.gradient(out.id());
    // d/da = b + 1/b = 4.25; d/db = a - a/b^2 - 1 = 3 - 3/16 - 1.
    EXPECT_NEAR(adj[size_t(a.id())], 4.25, 1e-12);
    EXPECT_NEAR(adj[size_t(b.id())], 2.0 - 3.0 / 16.0, 1e-12);
}

TEST(Autodiff, FanOutAccumulates)
{
    Tape tape;
    Var x(tape, 2.0);
    Var out = x * x * x; // x^3, via two multiplications
    auto adj = tape.gradient(out.id());
    EXPECT_NEAR(adj[size_t(x.id())], 12.0, 1e-12);
}

TEST(Autodiff, MaxRoutesToLargerOperand)
{
    Tape tape;
    Var a(tape, 3.0), b(tape, 5.0);
    Var out = max(a, b) * Var(2.0);
    auto adj = tape.gradient(out.id());
    EXPECT_DOUBLE_EQ(adj[size_t(a.id())], 0.0);
    EXPECT_DOUBLE_EQ(adj[size_t(b.id())], 2.0);
    EXPECT_DOUBLE_EQ(out.value(), 10.0);
}

TEST(Autodiff, MinRoutesToSmallerOperand)
{
    Tape tape;
    Var a(tape, 3.0), b(tape, 5.0);
    Var out = min(a, b);
    auto adj = tape.gradient(out.id());
    EXPECT_DOUBLE_EQ(adj[size_t(a.id())], 1.0);
    EXPECT_DOUBLE_EQ(adj[size_t(b.id())], 0.0);
}

TEST(Autodiff, ReluBelowZeroKillsGradient)
{
    Tape tape;
    Var x(tape, -1.0);
    Var out = relu(x);
    auto adj = tape.gradient(out.id());
    EXPECT_DOUBLE_EQ(out.value(), 0.0);
    EXPECT_DOUBLE_EQ(adj[size_t(x.id())], 0.0);
}

TEST(Autodiff, DetachedConstantsNeedNoTape)
{
    Var a(2.0), b(3.0);
    Var c = a * b + exp(a) - log(b);
    EXPECT_NEAR(c.value(), 6.0 + std::exp(2.0) - std::log(3.0), 1e-12);
    EXPECT_EQ(c.tape(), nullptr);
}

TEST(Autodiff, SumOfVector)
{
    Tape tape;
    std::vector<Var> xs;
    for (int i = 1; i <= 5; ++i)
        xs.emplace_back(tape, static_cast<double>(i));
    Var s = ad::sum(xs);
    EXPECT_DOUBLE_EQ(s.value(), 15.0);
    auto adj = tape.gradient(s.id());
    for (const Var &x : xs)
        EXPECT_DOUBLE_EQ(adj[size_t(x.id())], 1.0);
}

TEST(Autodiff, SoftmaxSumsToOneAndGradChecks)
{
    Tape tape;
    std::vector<Var> xs = {Var(tape, 0.3), Var(tape, -1.2),
                           Var(tape, 2.0)};
    auto w = ad::softmax(xs);
    double total = 0.0;
    for (const Var &wi : w)
        total += wi.value();
    EXPECT_NEAR(total, 1.0, 1e-12);

    // Gradient of w[0] wrt x[0] equals w0*(1-w0).
    auto adj = tape.gradient(w[0].id());
    double w0 = w[0].value();
    EXPECT_NEAR(adj[size_t(xs[0].id())], w0 * (1.0 - w0), 1e-9);
    // Gradient of w[0] wrt x[2] equals -w0*w2.
    EXPECT_NEAR(adj[size_t(xs[2].id())], -w0 * w[2].value(), 1e-9);
}

TEST(Autodiff, MultivariateChainFiniteDifference)
{
    // f(a, b, c) = log(a*b + exp(c)) * max(a, c) — representative of
    // the nested products/maxes in the performance model.
    auto feval = [](double a, double b, double c) {
        return std::log(a * b + std::exp(c)) * std::max(a, c);
    };
    double a0 = 2.0, b0 = 3.0, c0 = 1.0;
    Tape tape;
    Var a(tape, a0), b(tape, b0), c(tape, c0);
    Var out = log(a * b + exp(c)) * max(a, c);
    auto adj = tape.gradient(out.id());
    double h = 1e-6;
    EXPECT_NEAR(adj[size_t(a.id())],
            (feval(a0 + h, b0, c0) - feval(a0 - h, b0, c0)) / (2 * h),
            1e-5);
    EXPECT_NEAR(adj[size_t(b.id())],
            (feval(a0, b0 + h, c0) - feval(a0, b0 - h, c0)) / (2 * h),
            1e-5);
    EXPECT_NEAR(adj[size_t(c.id())],
            (feval(a0, b0, c0 + h) - feval(a0, b0, c0 - h)) / (2 * h),
            1e-5);
}

TEST(Autodiff, RandomDeepExpressions)
{
    // Random chains of smooth ops, gradient-checked at the leaf.
    Rng rng(31);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<int> ops;
        for (int i = 0; i < 8; ++i)
            ops.push_back(static_cast<int>(rng.uniformInt(0, 3)));
        double x0 = rng.uniformReal(0.5, 2.0);
        auto build = [&](auto self, Var v, size_t depth) -> Var {
            if (depth == ops.size())
                return v;
            switch (ops[depth]) {
              case 0: return self(self, v * v + Var(1.0), depth + 1);
              case 1: return self(self, log(v + Var(2.0)), depth + 1);
              case 2: return self(self, exp(v * Var(0.3)), depth + 1);
              default: return self(self, Var(5.0) / (v + Var(1.0)),
                                   depth + 1);
            }
        };
        auto evald = [&](double x) {
            Var v(x);
            return build(build, v, 0).value();
        };
        Tape tape;
        Var v(tape, x0);
        Var out = build(build, v, 0);
        auto adj = tape.gradient(out.id());
        double fd = fdiff(evald, x0, 1e-7);
        EXPECT_NEAR(adj[size_t(v.id())], fd,
                1e-3 * std::max(1.0, std::abs(fd)))
                << "trial " << trial;
    }
}

/** Bitwise double equality (distinguishes +0.0 / -0.0). */
bool
bitEq(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/**
 * An expression exercising every tape op kind, including the
 * value-dependent max/min/relu selections and a softmax (whose
 * internal shift re-selects its argmax on replay). Returns the output
 * Var; shape is identical for any leaf values.
 */
Var
buildAllOps(Tape &tape, const std::vector<double> &xs,
            std::vector<Var> &leaves)
{
    leaves.clear();
    for (double v : xs)
        leaves.emplace_back(tape, v);
    const Var &a = leaves[0], &b = leaves[1], &c = leaves[2];
    const Var &d = leaves[3];
    Var t = -a + b - c * d / (a + Var(3.0));
    t = t + (Var(2.0) - b) + b * Var(0.5) + Var(1.5) / (c + Var(4.0));
    t = t + log(a + Var(5.0)) + exp(b * Var(0.1)) +
        sqrt(c + Var(6.0)) + pow(d + Var(7.0), 1.3);
    t = t + max(a, b) + min(c, d);          // both-taped selections
    t = t + max(a, Var(0.7)) + max(Var(0.7), b); // const-right / left
    t = t + min(c, Var(0.2)) + min(Var(0.2), d);
    t = t + relu(a - b) + relu(b - a);      // one side always off
    std::vector<Var> w = ad::softmax({a, b, c, d});
    t = t + w[0] * Var(1.0) + w[1] * Var(2.0) + w[2] * Var(3.0) +
        w[3] * Var(4.0);
    t = t + ad::sum(w);
    return t;
}

/**
 * The arena contract: replay at new leaf values must be
 * bitwise-identical — values and full adjoint vector — to building a
 * fresh tape at those values, even when max/min/relu branches and the
 * softmax argmax flip between the two points.
 */
TEST(TapeReplay, BitwiseEqualsFreshBuild)
{
    // x1 inverts the order of every pair so all selections flip.
    std::vector<double> x0 = {1.0, 2.0, -0.5, 0.8};
    std::vector<double> x1 = {2.5, -1.0, 0.9, -0.3};

    Tape reused;
    std::vector<Var> leaves;
    Var out0 = buildAllOps(reused, x0, leaves);
    std::vector<double> adj0 = reused.gradient(out0.id());

    // Replay the same graph at x1...
    reused.replay(x1);
    std::vector<double> adj_replay;
    reused.gradientInto(out0.id(), adj_replay);

    // ...and compare against a from-scratch build at x1.
    Tape fresh;
    std::vector<Var> leaves1;
    Var out1 = buildAllOps(fresh, x1, leaves1);
    std::vector<double> adj_fresh = fresh.gradient(out1.id());

    ASSERT_EQ(reused.size(), fresh.size());
    ASSERT_EQ(out0.id(), out1.id());
    for (size_t i = 0; i < fresh.size(); ++i)
        EXPECT_TRUE(bitEq(reused.value(NodeId(i)),
                fresh.value(NodeId(i))))
                << "value mismatch at node " << i;
    ASSERT_EQ(adj_replay.size(), adj_fresh.size());
    for (size_t i = 0; i < adj_fresh.size(); ++i)
        EXPECT_TRUE(bitEq(adj_replay[i], adj_fresh[i]))
                << "adjoint mismatch at node " << i;

    // Replaying back at x0 restores the original state exactly.
    reused.replay(x0);
    std::vector<double> adj_back;
    reused.gradientInto(out0.id(), adj_back);
    for (size_t i = 0; i < adj0.size(); ++i)
        EXPECT_TRUE(bitEq(adj_back[i], adj0[i]));
}

TEST(TapeReplay, BranchFlipReroutesGradient)
{
    Tape tape;
    Var a(tape, 3.0), b(tape, 5.0);
    Var out = max(a, b);
    std::vector<double> adj;
    tape.gradientInto(out.id(), adj);
    EXPECT_DOUBLE_EQ(adj[size_t(a.id())], 0.0);
    EXPECT_DOUBLE_EQ(adj[size_t(b.id())], 1.0);

    tape.replay(std::vector<double>{6.0, 1.0});
    EXPECT_DOUBLE_EQ(tape.value(out.id()), 6.0);
    tape.gradientInto(out.id(), adj);
    EXPECT_DOUBLE_EQ(adj[size_t(a.id())], 1.0);
    EXPECT_DOUBLE_EQ(adj[size_t(b.id())], 0.0);
}

TEST(TapeReplay, ReluFlipOnReplay)
{
    Tape tape;
    Var x(tape, -2.0);
    Var out = relu(x);
    EXPECT_DOUBLE_EQ(out.value(), 0.0);
    tape.replay(std::vector<double>{4.0});
    EXPECT_DOUBLE_EQ(tape.value(out.id()), 4.0);
    std::vector<double> adj;
    tape.gradientInto(out.id(), adj);
    EXPECT_DOUBLE_EQ(adj[size_t(x.id())], 1.0);
}

TEST(TapeReplay, LeafCountMismatchPanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    (void)(a + b);
    EXPECT_DEATH(tape.replay(std::vector<double>{1.0}),
            "leaf count mismatch");
}

TEST(TapeReset, ArenaRebuildReproducesIds)
{
    Tape tape;
    std::vector<Var> leaves;
    Var out0 = buildAllOps(tape, {1.0, 2.0, 3.0, 4.0}, leaves);
    size_t nodes = tape.size();
    double v0 = out0.value();

    // reset() drops the program but keeps the arena; an identical
    // rebuild lands on identical ids and values.
    tape.reset();
    EXPECT_EQ(tape.size(), 0u);
    EXPECT_EQ(tape.numLeaves(), 0u);
    Var out1 = buildAllOps(tape, {1.0, 2.0, 3.0, 4.0}, leaves);
    EXPECT_EQ(tape.size(), nodes);
    EXPECT_EQ(out1.id(), out0.id());
    EXPECT_TRUE(bitEq(out1.value(), v0));
}

TEST(TapeReplay, EightThreadHammerPerThreadTapes)
{
    // Thread-ownership rule: one tape per thread. Each thread builds
    // its own graph, then replays it across many leaf assignments,
    // checking every round against a fresh single-use tape.
    constexpr int kThreads = 8;
    constexpr int kRounds = 50;
    std::vector<int> failures(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &failures] {
            Rng rng(977 + uint64_t(t));
            auto draw = [&] {
                std::vector<double> x;
                for (int i = 0; i < 4; ++i)
                    x.push_back(rng.uniformReal(-3.0, 3.0));
                return x;
            };
            Tape arena;
            std::vector<Var> leaves;
            Var out = buildAllOps(arena, draw(), leaves);
            std::vector<double> adj_arena, adj_fresh;
            for (int r = 0; r < kRounds; ++r) {
                std::vector<double> x = draw();
                arena.replay(x);
                arena.gradientInto(out.id(), adj_arena);

                Tape fresh;
                std::vector<Var> fl;
                Var fout = buildAllOps(fresh, x, fl);
                fresh.gradientInto(fout.id(), adj_fresh);

                if (adj_arena.size() != adj_fresh.size()) {
                    ++failures[size_t(t)];
                    continue;
                }
                for (size_t i = 0; i < adj_fresh.size(); ++i)
                    if (!bitEq(adj_arena[i], adj_fresh[i]) ||
                        !bitEq(arena.value(NodeId(i)),
                               fresh.value(NodeId(i))))
                        ++failures[size_t(t)];
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[size_t(t)], 0) << "thread " << t;
}

TEST(Tape, ClearAndReserve)
{
    Tape tape;
    tape.reserve(128);
    Var a(tape, 1.0);
    Var b = a + Var(1.0);
    (void)b;
    EXPECT_GE(tape.size(), 2u);
    tape.clear();
    EXPECT_EQ(tape.size(), 0u);
}

TEST(Tape, GradientOfLeafIsOne)
{
    Tape tape;
    Var a(tape, 7.0);
    auto adj = tape.gradient(a.id());
    EXPECT_DOUBLE_EQ(adj[size_t(a.id())], 1.0);
}

} // namespace
} // namespace dosa
