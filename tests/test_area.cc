/**
 * @file
 * Tests for the area model and area-constrained co-search (the
 * Section 6.5.3 "area as a third objective" extension).
 */

#include <gtest/gtest.h>

#include "arch/area_model.hh"
#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "arch/baselines.hh"
#include "core/dosa_optimizer.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(AreaModel, MonotoneInEveryParameter)
{
    HardwareConfig base{16, 32, 128};
    double a0 = configAreaMm2(base);
    EXPECT_GT(configAreaMm2({32, 32, 128}), a0);
    EXPECT_GT(configAreaMm2({16, 64, 128}), a0);
    EXPECT_GT(configAreaMm2({16, 32, 256}), a0);
}

TEST(AreaModel, PlausibleMagnitudes)
{
    // Default Gemmini (256 PEs + 160 KB SRAM) lands near ~1 mm^2 at
    // 40nm; a 128x128 monster with MBs of SRAM is tens of mm^2.
    double small = configAreaMm2(gemminiDefault().config);
    EXPECT_GT(small, 0.5);
    EXPECT_LT(small, 3.0);
    double big = configAreaMm2({128, 1024, 2048});
    EXPECT_GT(big, 40.0);
    EXPECT_GT(big, 10.0 * small);
}

TEST(AreaModel, DifferentiableThroughVar)
{
    ad::Tape tape;
    ad::Var cpe(tape, 256.0);
    ad::Var acc(tape, 8192.0);
    ad::Var spad(tape, 131072.0);
    ad::Var area = AreaModel::areaMm2(cpe, acc, spad);
    EXPECT_NEAR(area.value(),
            configAreaMm2(gemminiDefault().config), 1e-9);
    auto adj = tape.gradient(area.id());
    EXPECT_GT(adj[size_t(cpe.id())], 0.0);
    EXPECT_GT(adj[size_t(acc.id())], 0.0);
    EXPECT_GT(adj[size_t(spad.id())], 0.0);
}

TEST(AreaConstrainedSearch, RespectsBudget)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 3);
    const double budget = 3.0; // mm^2: rules out huge arrays

    DosaConfig cfg;
    cfg.start_points = 3;
    cfg.steps_per_start = 300;
    cfg.round_every = 100;
    cfg.mode.max_area_mm2 = budget;
    cfg.seed = 5;
    DosaResult r = dosaSearch(layers, cfg);
    ASSERT_LT(r.search.best_edp,
            std::numeric_limits<double>::infinity());
    EXPECT_LE(configAreaMm2(r.search.best_hw), budget);
}

TEST(AreaConstrainedSearch, BudgetTradesOffEdp)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 3);
    DosaConfig open;
    open.start_points = 3;
    open.steps_per_start = 300;
    open.round_every = 100;
    open.seed = 9;
    DosaConfig tight = open;
    tight.mode.max_area_mm2 = 2.0;

    DosaResult r_open = dosaSearch(layers, open);
    DosaResult r_tight = dosaSearch(layers, tight);
    ASSERT_LT(r_tight.search.best_edp,
            std::numeric_limits<double>::infinity());
    // A hard area budget cannot make the best EDP better.
    EXPECT_GE(r_tight.search.best_edp,
            r_open.search.best_edp * 0.999);
    EXPECT_LE(configAreaMm2(r_tight.search.best_hw), 2.0);
}

TEST(AreaConstrainedSearch, UnconstrainedByDefault)
{
    ObjectiveMode mode;
    EXPECT_DOUBLE_EQ(mode.max_area_mm2, 0.0);
}

} // namespace
} // namespace dosa
