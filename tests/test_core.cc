/**
 * @file
 * Tests for the DOSA core: Adam, the differentiable objective
 * (gradients vs finite differences), rounding-and-scoring, ordering
 * selection and the full one-loop search driver.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

#include "core/adam.hh"
#include "core/dosa_optimizer.hh"
#include "core/objective.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "search/search_common.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(Adam, ConvergesOnQuadratic)
{
    // minimize (x-3)^2 + (y+1)^2
    std::vector<double> p = {0.0, 0.0};
    Adam adam(2, 0.1);
    for (int i = 0; i < 500; ++i) {
        std::vector<double> g = {2.0 * (p[0] - 3.0),
                                 2.0 * (p[1] + 1.0)};
        adam.step(p, g);
    }
    EXPECT_NEAR(p[0], 3.0, 1e-2);
    EXPECT_NEAR(p[1], -1.0, 1e-2);
}

TEST(Adam, ResetClearsMomentum)
{
    std::vector<double> p = {0.0};
    Adam adam(1, 0.5);
    adam.step(p, {1.0});
    double after_one = p[0];
    adam.reset();
    std::vector<double> q = {0.0};
    adam.step(q, {1.0});
    EXPECT_DOUBLE_EQ(q[0], after_one);
}

TEST(Objective, PackUnpackRoundTrip)
{
    Layer l = Layer::conv("x", 3, 14, 32, 64);
    Mapping m = cosaMap(l, HardwareConfig{16, 32, 128});
    std::vector<double> x = packMapping(m);
    ASSERT_EQ(static_cast<int>(x.size()), kVarsPerLayer);
    Factors<double> f = unpackFactors(x, 0);
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            EXPECT_NEAR(f.t(lvl, d),
                    static_cast<double>(m.factors.t(lvl, d)), 1e-9);
    EXPECT_NEAR(f.spatial_c,
            static_cast<double>(m.factors.spatial_c), 1e-9);
    EXPECT_NEAR(f.spatial_k,
            static_cast<double>(m.factors.spatial_k), 1e-9);
}

TEST(Objective, GradientMatchesFiniteDifference)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        Mapping m = cosaMap(l, hw);
        auto xl = packMapping(m);
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(m.order);
    }
    // Nudge every variable off the piecewise boundaries (f == 1
    // refetch thresholds and exact max() ties between factors) so
    // finite differences probe a smooth region.
    for (size_t i = 0; i < x.size(); ++i)
        x[i] += 0.05 + 0.001 * static_cast<double>(i);

    ObjectiveMode mode;
    ObjectiveEval ev = evalObjective(layers, x, orders,
            OrderStrategy::Fixed, mode);
    ASSERT_EQ(ev.grad.size(), x.size());

    Rng rng(13);
    double h = 1e-6;
    for (int probe = 0; probe < 16; ++probe) {
        size_t i = size_t(rng.uniformInt(0,
                static_cast<int64_t>(x.size()) - 1));
        std::vector<double> xp = x, xm = x;
        xp[i] += h;
        xm[i] -= h;
        double lp = evalObjective(layers, xp, orders,
                OrderStrategy::Fixed, mode).loss;
        double lm = evalObjective(layers, xm, orders,
                OrderStrategy::Fixed, mode).loss;
        double fd = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(ev.grad[i], fd,
                2e-3 * std::max(1.0, std::abs(fd)))
                << "coordinate " << i;
    }
}

TEST(Objective, SoftmaxStrategyProducesFiniteGradients)
{
    Network net = unet();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
    }
    ObjectiveMode mode;
    ObjectiveEval ev = evalObjective(layers, x, {},
            OrderStrategy::Softmax, mode);
    EXPECT_TRUE(std::isfinite(ev.loss));
    EXPECT_GT(ev.edp, 0.0);
    for (double g : ev.grad)
        EXPECT_TRUE(std::isfinite(g));
}

/**
 * The arena engine must be invisible to results: a long-lived
 * ObjectiveEngine serving a descent-like sequence of x vectors (replay
 * fast path) returns bitwise-identical losses and gradients to
 * one-shot evalObjective calls (fresh graph each time), across
 * strategies and through a mid-sequence ordering change (rebuild).
 */
TEST(Objective, EngineReplayBitwiseEqualsFreshBuild)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode mode;
    auto bitEq = [](double a, double b) {
        return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
    };

    for (OrderStrategy strategy :
         {OrderStrategy::Fixed, OrderStrategy::Softmax}) {
        ObjectiveEngine engine;
        Rng rng(7);
        std::vector<double> xi = x;
        for (int step = 0; step < 6; ++step) {
            // Orders flip mid-sequence: forces one rebuild for the
            // non-Softmax strategy.
            if (step == 3)
                orders.assign(layers.size(),
                        uniformOrder(LoopOrder::OS));
            const ObjectiveEval &a = engine.eval(layers, xi, orders,
                    strategy, mode);
            ObjectiveEval b = evalObjective(layers, xi, orders,
                    strategy, mode);
            EXPECT_TRUE(bitEq(a.loss, b.loss)) << "step " << step;
            EXPECT_TRUE(bitEq(a.energy_uj, b.energy_uj));
            EXPECT_TRUE(bitEq(a.latency, b.latency));
            EXPECT_TRUE(bitEq(a.penalty, b.penalty));
            ASSERT_EQ(a.grad.size(), b.grad.size());
            for (size_t i = 0; i < b.grad.size(); ++i)
                EXPECT_TRUE(bitEq(a.grad[i], b.grad[i]))
                        << "strategy "
                        << strategyName(strategy)
                        << " step " << step << " coord " << i;
            for (double &v : xi)
                v += rng.uniformReal(-0.2, 0.2);
        }
        EXPECT_GE(engine.builds(), 1u);
        EXPECT_GE(engine.replays(), 3u);
    }
}

TEST(Objective, BatchedScorerSeamMatchesPointCalls)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 3);
    HardwareConfig hw{16, 64, 256};
    std::vector<Mapping> mappings;
    for (const Layer &l : layers)
        mappings.push_back(cosaMap(l, hw));

    // A point scorer with a recognizable shape.
    LatencyScorer point([](const Layer &l, const Mapping &,
                           const HardwareConfig &) {
        return static_cast<double>(l.k) * 2.0;
    });
    std::vector<LatencyQuery> queries(layers.size());
    for (size_t i = 0; i < layers.size(); ++i)
        queries[i] = {&layers[i], &mappings[i], &hw};
    std::vector<double> out(layers.size(), 0.0);
    point.scoreDesigns(queries, out);
    for (size_t i = 0; i < layers.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i],
                static_cast<double>(layers[i].k) * 2.0);

    // A bulk backend takes precedence over the point loop.
    LatencyScorer bulk = LatencyScorer::batched(
            [](const Layer &, const Mapping &,
               const HardwareConfig &) { return -1.0; },
            [](std::span<const LatencyQuery> qs,
               std::span<double> o) {
                for (size_t i = 0; i < qs.size(); ++i)
                    o[i] = static_cast<double>(i) + 10.0;
            });
    bulk.scoreDesigns(queries, out);
    for (size_t i = 0; i < layers.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 10.0);

    // A batch-only backend still counts as installed, and point
    // calls route through a single-query bulk call.
    LatencyScorer batch_only = LatencyScorer::batched({},
            [](std::span<const LatencyQuery> qs, std::span<double> o) {
                for (size_t i = 0; i < qs.size(); ++i)
                    o[i] = static_cast<double>(qs[i].layer->k) + 0.5;
            });
    EXPECT_TRUE(static_cast<bool>(batch_only));
    EXPECT_DOUBLE_EQ(batch_only(layers[1], mappings[1], hw),
            static_cast<double>(layers[1].k) + 0.5);

    // Empty scorer: cached reference latency.
    LatencyScorer empty;
    EXPECT_FALSE(static_cast<bool>(empty));
    empty.scoreDesigns(queries, out);
    for (size_t i = 0; i < layers.size(); ++i)
        EXPECT_GT(out[i], 0.0);
}

TEST(Objective, PenaltyFiresOnInvalidFactors)
{
    Layer l = Layer::conv("x", 1, 8, 16, 16);
    Mapping m = minimalMapping(l);
    std::vector<double> x = packMapping(m);
    ObjectiveMode mode;
    std::vector<OrderVec> orders = {uniformOrder(LoopOrder::WS)};
    double base_penalty = evalObjective({l}, x, orders,
            OrderStrategy::Fixed, mode).penalty;
    // Push one on-chip factor above the whole dimension: the inferred
    // DRAM residual drops below 1 and the hinge must fire.
    x[0 * kNumDims + static_cast<int>(Dim::C)] =
            std::log(static_cast<double>(l.c) * 4.0);
    double bad_penalty = evalObjective({l}, x, orders,
            OrderStrategy::Fixed, mode).penalty;
    EXPECT_GT(bad_penalty, base_penalty + 0.5);
}

TEST(Objective, FixPeModeFreezesCpe)
{
    Layer l = Layer::conv("x", 1, 8, 64, 64);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x = packMapping(cosaMap(l, hw));
    std::vector<OrderVec> orders = {uniformOrder(LoopOrder::WS)};
    ObjectiveMode fixed;
    fixed.fix_pe = true;
    fixed.pe_dim = 16;
    ObjectiveEval a = evalObjective({l}, x, orders,
            OrderStrategy::Fixed, fixed);
    EXPECT_TRUE(std::isfinite(a.loss));
    EXPECT_EQ(fixed.peCap(), 16);
    ObjectiveMode open;
    EXPECT_EQ(open.peCap(), kMaxPeDim);
}

TEST(RoundAndScore, ProducesFittingDesign)
{
    Network net = bertBase();
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : net.layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode mode;
    RoundedDesign d = roundAndScore(net.layers, x, orders, mode);
    EXPECT_EQ(d.mappings.size(), net.layers.size());
    NetworkEval ev = referenceNetworkEval(net.layers, d.mappings, d.hw);
    EXPECT_TRUE(ev.fits);
    EXPECT_NEAR(ev.edp, d.edp, 1e-9 * ev.edp);
}

TEST(SelectOrders, NeverWorseThanUniformWs)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 6);
    HardwareConfig hw{16, 64, 256};
    std::vector<Mapping> maps;
    for (const Layer &l : layers)
        maps.push_back(cosaMap(l, hw));
    NetworkEval ws = referenceNetworkEval(layers, maps, hw);
    std::vector<Mapping> maps2 = maps;
    selectOrders(layers, maps2, hw);
    NetworkEval tuned = referenceNetworkEval(layers, maps2, hw);
    EXPECT_LE(tuned.edp, ws.edp * (1.0 + 1e-9));
}

TEST(DosaSearch, ImprovesOverStartPoint)
{
    Network net = bertBase();
    DosaConfig cfg;
    cfg.start_points = 1;
    cfg.steps_per_start = 120;
    cfg.round_every = 60;
    cfg.seed = 3;
    DosaResult r = dosaSearch(net.layers, cfg);
    EXPECT_LT(r.search.best_edp, r.best_start_edp);
    EXPECT_EQ(r.search.trace.size(), 121u);
    NetworkEval ev = referenceNetworkEval(net.layers,
            r.search.best_mappings, r.search.best_hw);
    EXPECT_TRUE(ev.fits);
    EXPECT_NEAR(ev.edp, r.search.best_edp, 1e-6 * ev.edp);
}

TEST(DosaSearch, DeterministicInSeed)
{
    Network net = unet();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 4);
    DosaConfig cfg;
    cfg.start_points = 1;
    cfg.steps_per_start = 40;
    cfg.round_every = 20;
    cfg.seed = 9;
    DosaResult a = dosaSearch(layers, cfg);
    DosaResult b = dosaSearch(layers, cfg);
    EXPECT_DOUBLE_EQ(a.search.best_edp, b.search.best_edp);
}

TEST(DosaSearch, FixPeModeKeepsPeDim)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 3);
    DosaConfig cfg;
    cfg.start_points = 1;
    cfg.steps_per_start = 60;
    cfg.round_every = 30;
    cfg.mode.fix_pe = true;
    cfg.mode.pe_dim = 16;
    cfg.seed = 4;
    DosaResult r = dosaSearch(layers, cfg);
    EXPECT_EQ(r.search.best_hw.pe_dim, 16);
    for (const Mapping &m : r.search.best_mappings) {
        EXPECT_LE(m.factors.spatial_c, 16);
        EXPECT_LE(m.factors.spatial_k, 16);
    }
}

TEST(DosaSearch, StrategyNamesExposed)
{
    EXPECT_STREQ(strategyName(OrderStrategy::Fixed), "Baseline");
    EXPECT_STREQ(strategyName(OrderStrategy::Iterate), "Iterate");
    EXPECT_STREQ(strategyName(OrderStrategy::Softmax), "Softmax");
}

} // namespace
} // namespace dosa
