/**
 * @file
 * Unit tests for util: RNG determinism and ranges, divisor arithmetic,
 * table/CSV rendering and CLI parsing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/cli.hh"
#include "util/divisors.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace dosa {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, LogUniformRangeAndSpread)
{
    Rng rng(11);
    int low_decade = 0;
    for (int i = 0; i < 2000; ++i) {
        double v = rng.logUniform(1.0, 1000.0);
        ASSERT_GE(v, 1.0);
        ASSERT_LE(v, 1000.0);
        if (v < 10.0)
            ++low_decade;
    }
    // Log-uniform: each decade gets ~1/3 of the mass.
    EXPECT_GT(low_decade, 450);
    EXPECT_LT(low_decade, 900);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(1.0, 2.0);
        sum += v;
        sum2 += v * v;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(5);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent.uniformInt(0, 1 << 30) ==
            child.uniformInt(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(3);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Divisors, KnownLists)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
    EXPECT_EQ(divisorsOf(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisorsOf(56),
              (std::vector<int64_t>{1, 2, 4, 7, 8, 14, 28, 56}));
    EXPECT_EQ(divisorsOf(97), (std::vector<int64_t>{1, 97}));
}

class DivisorProperty : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(DivisorProperty, AllDivideAndSorted)
{
    int64_t n = GetParam();
    const auto &divs = divisorsOf(n);
    ASSERT_FALSE(divs.empty());
    EXPECT_EQ(divs.front(), 1);
    EXPECT_EQ(divs.back(), n);
    for (size_t i = 0; i < divs.size(); ++i) {
        EXPECT_EQ(n % divs[i], 0);
        if (i > 0) {
            EXPECT_LT(divs[i - 1], divs[i]);
        }
    }
}

TEST_P(DivisorProperty, NearestDivisorIsOptimal)
{
    int64_t n = GetParam();
    for (double target : {0.3, 1.0, 2.5, 7.0, 33.3,
                          static_cast<double>(n)}) {
        int64_t best = nearestDivisor(n, target);
        EXPECT_EQ(n % best, 0);
        for (int64_t d : divisorsOf(n))
            EXPECT_LE(std::abs(target - double(best)),
                      std::abs(target - double(d)) + 1e-12);
    }
}

TEST_P(DivisorProperty, NearestAtMostRespectsCap)
{
    int64_t n = GetParam();
    for (int64_t cap : {int64_t(1), int64_t(4), int64_t(10), n}) {
        int64_t d = nearestDivisorAtMost(n, 1e9, cap);
        EXPECT_LE(d, cap);
        EXPECT_EQ(n % d, 0);
        EXPECT_EQ(d, largestDivisorAtMost(n, cap));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DivisorProperty,
        ::testing::Values(1, 2, 3, 7, 12, 56, 64, 96, 100, 112, 224,
                          1000, 1024, 3072, 5124));

TEST(Divisors, QuotaChainMatchesPerCallQueries)
{
    // DivisorQuota serves a whole chain from one memoized list; its
    // takes must equal the per-call nearestDivisor* results on the
    // running remainder, and the chain must multiply back to n.
    for (int64_t n : {int64_t(1), int64_t(12), int64_t(56),
                      int64_t(224), int64_t(3072), int64_t(5124)}) {
        const double targets[] = {3.0, 2.5, 16.0, 1.0};
        DivisorQuota quota(n);
        int64_t remaining = n;
        int64_t prod = 1;
        for (double t : targets) {
            int64_t expect = nearestDivisor(remaining, t);
            int64_t got = quota.take(t);
            EXPECT_EQ(got, expect) << "n=" << n << " t=" << t;
            remaining /= expect;
            prod *= got;
        }
        EXPECT_EQ(quota.remaining(), remaining);
        EXPECT_EQ(prod * quota.remaining(), n);
    }
}

TEST(Divisors, QuotaTakeAtMostMatchesPerCallQueries)
{
    for (int64_t n : {int64_t(96), int64_t(1024), int64_t(5124)}) {
        DivisorQuota quota(n);
        int64_t remaining = n;
        for (int64_t cap : {int64_t(4), int64_t(16), int64_t(2)}) {
            int64_t expect = nearestDivisorAtMost(remaining, 1e9, cap);
            int64_t got = quota.takeAtMost(1e9, cap);
            EXPECT_EQ(got, expect) << "n=" << n << " cap=" << cap;
            remaining /= expect;
        }
        EXPECT_EQ(quota.remaining(), remaining);
    }
}

TEST(Divisors, RandomFactorSplitMultipliesBack)
{
    Rng rng(17);
    for (int64_t n : {1, 6, 56, 64, 720, 1024}) {
        for (int parts : {1, 2, 3, 4, 6}) {
            auto split = randomFactorSplit(n, parts, rng);
            ASSERT_EQ(static_cast<int>(split.size()), parts);
            int64_t prod = 1;
            for (int64_t f : split) {
                EXPECT_GE(f, 1);
                prod *= f;
            }
            EXPECT_EQ(prod, n);
        }
    }
}

TEST(Table, RendersAlignedColumns)
{
    TablePrinter tp({"name", "value"});
    tp.addRow({"alpha", "1"});
    tp.addRow({"b", "22222"});
    std::string out = tp.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    TablePrinter tp({"a", "b"});
    tp.addRow({"1", "2"});
    tp.addRow({"3", "4"});
    std::string path = "/tmp/dosa_test_table.csv";
    ASSERT_TRUE(tp.writeCsv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtSci(12345.0, 2), "1.23e+04");
}

TEST(Cli, ParsesFlagsAndPositional)
{
    const char *argv[] = {"prog", "--full", "--seed", "7",
                          "--workload=bert", "resnet50"};
    Cli cli(6, argv);
    EXPECT_TRUE(cli.has("full"));
    EXPECT_FALSE(cli.has("quick"));
    EXPECT_EQ(cli.getInt("seed", 0), 7);
    EXPECT_EQ(cli.get("workload"), "bert");
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "resnet50");
}

TEST(Cli, Defaults)
{
    const char *argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(cli.get("missing", "x"), "x");
}

TEST(Cli, BooleanFlagBeforeFlag)
{
    const char *argv[] = {"prog", "--quick", "--seed", "3"};
    Cli cli(4, argv);
    EXPECT_TRUE(cli.has("quick"));
    EXPECT_EQ(cli.getInt("seed", 0), 3);
}

} // namespace
} // namespace dosa
