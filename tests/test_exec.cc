/**
 * @file
 * Tests for the parallel execution runtime (src/exec): ThreadPool
 * semantics, deterministic RNG stream splitting, EvalCache correctness
 * under concurrency, and the serial == parallel contract of every
 * searcher that fans out on the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/dosa_optimizer.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "model/reference.hh"
#include "search/bayes_opt.hh"
#include "search/random_search.hh"
#include "search/search_common.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        constexpr size_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallelFor(kN, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "i=" << i
                    << " threads=" << threads;
    }
}

TEST(ThreadPool, SizeClampsToOne)
{
    ThreadPool pool(-3);
    EXPECT_EQ(pool.size(), 1);
    int ran = 0;
    pool.parallelFor(3, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 3);
}

TEST(ThreadPool, ZeroAndSingleIndexWork)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [&](size_t) { FAIL(); });
    int ran = 0;
    pool.parallelFor(1, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, MoreTasksThanThreadsAndViceVersa)
{
    ThreadPool pool(8);
    std::atomic<long> sum{0};
    pool.parallelFor(3, [&](size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 3);
    sum = 0;
    pool.parallelFor(100, [&](size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(4);
    std::vector<int> out = pool.parallelMap(64,
            [](size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 64u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, PropagatesFirstException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallelFor(100, [](size_t i) {
            if (i == 37)
                throw std::runtime_error("task 37 failed");
        }), std::runtime_error);
        // The pool survives a failed job and runs the next one.
        std::atomic<int> ran{0};
        pool.parallelFor(10, [&](size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 10);
    }
}

TEST(ThreadPool, SequentialJobsReuseWorkers)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> ran{0};
        pool.parallelFor(17, [&](size_t) { ++ran; });
        ASSERT_EQ(ran.load(), 17);
    }
}

TEST(RngStream, PureFunctionOfSeedAndStream)
{
    Rng a = Rng::stream(42, 3);
    Rng b = Rng::stream(42, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(RngStream, StreamsDecorrelate)
{
    // Different stream ids (and nearby seeds) give different draws.
    Rng a = Rng::stream(42, 0);
    Rng b = Rng::stream(42, 1);
    Rng c = Rng::stream(43, 0);
    int eq_ab = 0, eq_ac = 0;
    for (int i = 0; i < 64; ++i) {
        uint64_t va = a.engine()();
        eq_ab += va == b.engine()() ? 1 : 0;
        eq_ac += va == c.engine()() ? 1 : 0;
    }
    EXPECT_EQ(eq_ab, 0);
    EXPECT_EQ(eq_ac, 0);
}

TEST(RngStream, DoesNotPerturbParent)
{
    Rng parent(7);
    uint64_t before = parent.engine()();
    Rng parent2(7);
    (void)Rng::stream(7, 0);
    EXPECT_EQ(before, parent2.engine()());
}

/** A small layer/mapping/hw triple pool for cache tests. */
std::vector<std::tuple<Layer, Mapping, HardwareConfig>>
samplePoints(int n, uint64_t seed)
{
    std::vector<std::tuple<Layer, Mapping, HardwareConfig>> pts;
    std::vector<Layer> layers = resnet50().layers;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const Layer &l = layers[size_t(rng.uniformInt(0,
                static_cast<int64_t>(layers.size()) - 1))];
        HardwareConfig hw = randomHardware(rng);
        Mapping m = randomValidMapping(l, hw, rng, 8);
        pts.emplace_back(l, m, hw);
    }
    return pts;
}

TEST(EvalCache, MatchesDirectReferenceEval)
{
    EvalCache cache;
    for (const auto &[l, m, hw] : samplePoints(50, 11)) {
        RefEval direct = referenceEval(l, m, hw);
        LayerEval cached = cache.eval(l, m, hw);
        EXPECT_EQ(cached.latency, direct.latency);
        EXPECT_EQ(cached.energy_uj, direct.energy_uj);
        EXPECT_EQ(cached.edp, direct.edp);
        EXPECT_EQ(cached.fits, direct.fits);
        // Second query must hit and return the identical value.
        LayerEval again = cache.eval(l, m, hw);
        EXPECT_EQ(again.latency, cached.latency);
        EXPECT_EQ(again.energy_uj, cached.energy_uj);
    }
    CacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 50u);
    EXPECT_EQ(s.hits, 50u);
    EXPECT_EQ(s.entries, 50u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(EvalCache, KeyDiscriminatesMappingOrderAndHardware)
{
    EvalCache cache;
    Layer l = Layer::gemm("g", 64, 64, 64);
    HardwareConfig hw;
    Mapping m = minimalMapping(l);
    (void)cache.eval(l, m, hw);

    Mapping m2 = m;
    m2.order = uniformOrder(LoopOrder::OS);
    (void)cache.eval(l, m2, hw);

    HardwareConfig hw2 = hw;
    hw2.spad_kib *= 2;
    (void)cache.eval(l, m, hw2);

    Layer l2 = l;
    l2.c *= 2;
    Mapping m3 = minimalMapping(l2);
    (void)cache.eval(l2, m3, hw);

    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.entries, 4u);
}

TEST(EvalCache, CountIsNotPartOfTheKey)
{
    // Repeat counts scale network sums outside referenceEval, so two
    // layers differing only in count must share one entry.
    EvalCache cache;
    Layer l = Layer::gemm("g", 32, 32, 32);
    Mapping m = minimalMapping(l);
    HardwareConfig hw;
    (void)cache.eval(l, m, hw);
    l.count = 7;
    l.name = "renamed";
    (void)cache.eval(l, m, hw);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(EvalCache, DisabledCacheBypassesAndCountsNothing)
{
    EvalCache cache;
    cache.setEnabled(false);
    Layer l = Layer::gemm("g", 16, 16, 16);
    Mapping m = minimalMapping(l);
    HardwareConfig hw;
    RefEval direct = referenceEval(l, m, hw);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(cache.eval(l, m, hw).edp, direct.edp);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, 0u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.0);
}

TEST(EvalCache, ConcurrentHammerStaysConsistent)
{
    // Many threads query a small point set through one cache; every
    // answer must equal the direct evaluation and the counters must
    // add up to the query count.
    EvalCache cache;
    auto pts = samplePoints(20, 23);
    std::vector<RefEval> direct;
    for (const auto &[l, m, hw] : pts)
        direct.push_back(referenceEval(l, m, hw));

    constexpr size_t kQueries = 2000;
    ThreadPool pool(8);
    std::atomic<int> mismatches{0};
    pool.parallelFor(kQueries, [&](size_t i) {
        size_t p = i % pts.size();
        const auto &[l, m, hw] = pts[p];
        LayerEval ev = cache.eval(l, m, hw);
        if (ev.latency != direct[p].latency ||
            ev.energy_uj != direct[p].energy_uj ||
            ev.fits != direct[p].fits)
            ++mismatches;
    });
    EXPECT_EQ(mismatches.load(), 0);
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, kQueries);
    EXPECT_EQ(s.entries, pts.size());
    // Racing threads may duplicate a first computation, so misses can
    // exceed the distinct point count but never undershoot it.
    EXPECT_GE(s.misses, pts.size());
}

/** Tiny-but-real DOSA config for determinism runs. */
DosaConfig
smallDosaConfig(uint64_t seed, int jobs)
{
    DosaConfig cfg;
    cfg.start_points = 3;
    cfg.steps_per_start = 30;
    cfg.round_every = 15;
    cfg.seed = seed;
    cfg.jobs = jobs;
    return cfg;
}

TEST(ExecDeterminism, DosaSerialEqualsParallel)
{
    std::vector<Layer> layers = {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
    DosaResult serial = dosaSearch(layers, smallDosaConfig(5, 1));
    DosaResult parallel = dosaSearch(layers, smallDosaConfig(5, 4));

    // Byte-identical traces and results, not merely "close".
    ASSERT_EQ(serial.search.trace.size(), parallel.search.trace.size());
    for (size_t i = 0; i < serial.search.trace.size(); ++i)
        EXPECT_EQ(serial.search.trace[i], parallel.search.trace[i])
                << "sample " << i;
    EXPECT_EQ(serial.search.best_edp, parallel.search.best_edp);
    EXPECT_EQ(serial.search.best_hw, parallel.search.best_hw);
    EXPECT_EQ(serial.best_start_edp, parallel.best_start_edp);
    EXPECT_EQ(serial.best_start_hw, parallel.best_start_hw);
    ASSERT_EQ(serial.search.best_mappings.size(),
            parallel.search.best_mappings.size());
    for (size_t i = 0; i < serial.search.best_mappings.size(); ++i)
        EXPECT_EQ(serial.search.best_mappings[i],
                parallel.search.best_mappings[i]);
}

TEST(ExecDeterminism, DosaIndependentOfCacheState)
{
    std::vector<Layer> layers = {Layer::gemm("a", 64, 64, 64)};
    globalEvalCache().clear();
    globalEvalCache().setEnabled(false);
    DosaResult cold = dosaSearch(layers, smallDosaConfig(9, 1));
    globalEvalCache().setEnabled(true);
    DosaResult warm1 = dosaSearch(layers, smallDosaConfig(9, 2));
    DosaResult warm2 = dosaSearch(layers, smallDosaConfig(9, 2));
    EXPECT_EQ(cold.search.best_edp, warm1.search.best_edp);
    EXPECT_EQ(warm1.search.best_edp, warm2.search.best_edp);
    EXPECT_EQ(cold.search.trace, warm1.search.trace);
    EXPECT_EQ(warm1.search.trace, warm2.search.trace);
}

TEST(ExecDeterminism, RandomSearchSerialEqualsParallel)
{
    std::vector<Layer> layers = {Layer::gemm("a", 64, 128, 64)};
    RandomSearchConfig cfg;
    cfg.hw_designs = 4;
    cfg.mappings_per_hw = 30;
    cfg.seed = 3;
    cfg.jobs = 1;
    SearchResult serial = randomSearch(layers, cfg);
    cfg.jobs = 4;
    SearchResult parallel = randomSearch(layers, cfg);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.best_edp, parallel.best_edp);
    EXPECT_EQ(serial.best_hw, parallel.best_hw);
}

TEST(ExecDeterminism, RandomMapperSerialEqualsParallel)
{
    std::vector<Layer> layers = resnet50().layers;
    layers.resize(3);
    HardwareConfig hw;
    SearchResult serial = randomMapperSearch(layers, hw, 40, 17, 1);
    SearchResult parallel = randomMapperSearch(layers, hw, 40, 17, 5);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.best_edp, parallel.best_edp);
    ASSERT_EQ(serial.best_mappings.size(),
            parallel.best_mappings.size());
    for (size_t i = 0; i < serial.best_mappings.size(); ++i)
        EXPECT_EQ(serial.best_mappings[i], parallel.best_mappings[i]);
}

TEST(ExecDeterminism, BayesOptSerialEqualsParallel)
{
    std::vector<Layer> layers = {Layer::gemm("a", 64, 64, 128)};
    BayesOptConfig cfg;
    cfg.warmup_samples = 6;
    cfg.total_samples = 14;
    cfg.hw_candidates = 3;
    cfg.map_candidates = 4;
    cfg.seed = 21;
    cfg.jobs = 1;
    SearchResult serial = bayesOptSearch(layers, cfg);
    cfg.jobs = 4;
    SearchResult parallel = bayesOptSearch(layers, cfg);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.best_edp, parallel.best_edp);
    EXPECT_EQ(serial.best_hw, parallel.best_hw);
}

} // namespace
} // namespace dosa
