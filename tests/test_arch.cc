/**
 * @file
 * Unit tests for the architecture module: Table 2/4 constants,
 * hardware quantization and the energy/bandwidth model.
 */

#include <gtest/gtest.h>

#include "arch/baselines.hh"
#include "arch/hardware_config.hh"

namespace dosa {
namespace {

TEST(Hierarchy, Table4TensorPlacement)
{
    // Registers: W only.
    EXPECT_TRUE(levelHoldsTensor(kRegisters, Tensor::Weight));
    EXPECT_FALSE(levelHoldsTensor(kRegisters, Tensor::Input));
    EXPECT_FALSE(levelHoldsTensor(kRegisters, Tensor::Output));
    // Accumulator: O only.
    EXPECT_FALSE(levelHoldsTensor(kAccumulator, Tensor::Weight));
    EXPECT_TRUE(levelHoldsTensor(kAccumulator, Tensor::Output));
    // Scratchpad: W + I.
    EXPECT_TRUE(levelHoldsTensor(kScratchpad, Tensor::Weight));
    EXPECT_TRUE(levelHoldsTensor(kScratchpad, Tensor::Input));
    EXPECT_FALSE(levelHoldsTensor(kScratchpad, Tensor::Output));
    // DRAM: everything.
    for (Tensor t : kAllTensors)
        EXPECT_TRUE(levelHoldsTensor(kDram, t));
}

TEST(Hierarchy, InnermostLevels)
{
    EXPECT_EQ(innermostLevel(Tensor::Weight), kRegisters);
    EXPECT_EQ(innermostLevel(Tensor::Output), kAccumulator);
    EXPECT_EQ(innermostLevel(Tensor::Input), kScratchpad);
}

TEST(Hierarchy, NextInnerLevelChains)
{
    EXPECT_EQ(nextInnerLevel(kDram, Tensor::Weight), kScratchpad);
    EXPECT_EQ(nextInnerLevel(kScratchpad, Tensor::Weight), kRegisters);
    EXPECT_EQ(nextInnerLevel(kDram, Tensor::Output), kAccumulator);
    EXPECT_EQ(nextInnerLevel(kDram, Tensor::Input), kScratchpad);
    EXPECT_EQ(nextInnerLevel(kScratchpad, Tensor::Input), -1);
    EXPECT_EQ(nextInnerLevel(kRegisters, Tensor::Weight), -1);
}

TEST(Hierarchy, WordSizes)
{
    EXPECT_DOUBLE_EQ(wordBytes(Tensor::Weight), 1.0);
    EXPECT_DOUBLE_EQ(wordBytes(Tensor::Input), 1.0);
    EXPECT_DOUBLE_EQ(wordBytes(Tensor::Output), 4.0);
}

TEST(HardwareConfig, DerivedQuantities)
{
    HardwareConfig hw{16, 32, 128};
    EXPECT_DOUBLE_EQ(hw.cpe(), 256.0);
    EXPECT_DOUBLE_EQ(hw.accumWords(), 32.0 * 1024 / 4);
    EXPECT_DOUBLE_EQ(hw.spadWords(), 128.0 * 1024);
    EXPECT_NE(hw.str().find("16x16"), std::string::npos);
}

TEST(HardwareConfig, QuantizeRoundsUp)
{
    // 5.2 PE side -> 6; 1000 accumulator words = 4000 B -> 4 KB;
    // 3000 scratchpad words -> 3 KB.
    HardwareConfig cfg = quantizeConfig(5.2, 1000.0, 3000.0);
    EXPECT_EQ(cfg.pe_dim, 6);
    EXPECT_EQ(cfg.accum_kib, 4);
    EXPECT_EQ(cfg.spad_kib, 3);
}

TEST(HardwareConfig, QuantizeExactBoundaries)
{
    // Exactly 8192 accumulator words = 32 KB, 131072 spad words = 128K.
    HardwareConfig cfg = quantizeConfig(16.0, 8192.0, 131072.0);
    EXPECT_EQ(cfg.pe_dim, 16);
    EXPECT_EQ(cfg.accum_kib, 32);
    EXPECT_EQ(cfg.spad_kib, 128);
}

TEST(HardwareConfig, QuantizeClampsPeCap)
{
    HardwareConfig cfg = quantizeConfig(500.0, 1.0, 1.0);
    EXPECT_EQ(cfg.pe_dim, kMaxPeDim);
    cfg = quantizeConfig(0.3, 1.0, 1.0);
    EXPECT_EQ(cfg.pe_dim, 1);
}

TEST(HardwareConfig, ConfigMaxIsParameterWise)
{
    HardwareConfig a{8, 64, 32};
    HardwareConfig b{16, 16, 128};
    HardwareConfig m = configMax(a, b);
    EXPECT_EQ(m.pe_dim, 16);
    EXPECT_EQ(m.accum_kib, 64);
    EXPECT_EQ(m.spad_kib, 128);
}

TEST(EnergyModel, Table2Constants)
{
    EXPECT_DOUBLE_EQ(EnergyModel::kEpaMac, 0.561);
    EXPECT_DOUBLE_EQ(EnergyModel::kEpaRegister, 0.487);
    EXPECT_DOUBLE_EQ(EnergyModel::kEpaDram, 100.0);
    EXPECT_DOUBLE_EQ(EnergyModel::kDramBandwidth, 8.0);
}

TEST(EnergyModel, SramEpaScalesWithCapacity)
{
    double cpe = 256.0;
    // 1024 words = 4 KiB accumulator; 8192 words = 32 KiB.
    double small = EnergyModel::accumEpa(1024.0, cpe);
    double large = EnergyModel::accumEpa(8192.0, cpe);
    EXPECT_GT(large, small);
    EXPECT_NEAR(small, 1.94 + 0.1005 * 4.0 / 16.0, 1e-12);
    double s_small = EnergyModel::spadEpa(1024.0, cpe);
    double s_large = EnergyModel::spadEpa(65536.0, cpe);
    EXPECT_GT(s_large, s_small);
    EXPECT_NEAR(s_small, 0.49 + 0.025 * 1.0 / 16.0, 1e-12);
}

TEST(EnergyModel, SramAccessStaysInPlausiblePjRange)
{
    // CACTI-40nm scale: on-chip SRAM accesses are a few pJ even for
    // the largest Table-7 buffers, and always far below DRAM.
    for (double kib : {8.0, 32.0, 196.0, 512.0}) {
        double epa = EnergyModel::accumEpa(kib * 1024.0 / 4.0, 256.0);
        EXPECT_GT(epa, 1.0);
        EXPECT_LT(epa, 10.0);
        EXPECT_LT(epa, EnergyModel::kEpaDram / 5.0);
    }
}

TEST(EnergyModel, SramEpaShrinksWithWiderArrays)
{
    // More PE columns = wider SRAM port = fewer rows = cheaper access.
    double e16 = EnergyModel::accumEpa(8192.0, 256.0);
    double e32 = EnergyModel::accumEpa(8192.0, 1024.0);
    EXPECT_GT(e16, e32);
}

TEST(EnergyModel, BandwidthsMatchTable2)
{
    double cpe = 256.0;
    EXPECT_DOUBLE_EQ(EnergyModel::bandwidth(kRegisters, cpe), 512.0);
    EXPECT_DOUBLE_EQ(EnergyModel::bandwidth(kAccumulator, cpe), 32.0);
    EXPECT_DOUBLE_EQ(EnergyModel::bandwidth(kScratchpad, cpe), 32.0);
    EXPECT_DOUBLE_EQ(EnergyModel::bandwidth(kDram, cpe), 8.0);
}

TEST(Baselines, AllPresentWithPublishedSizes)
{
    auto all = allBaselines();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "Eyeriss");
    EXPECT_EQ(all[1].name, "NVDLA Small");
    EXPECT_EQ(all[2].name, "NVDLA Large");
    EXPECT_EQ(all[3].name, "Gemmini Default");

    // Gemmini default: 16x16, 32 KB accumulator, 128 KB scratchpad.
    EXPECT_EQ(gemminiDefault().config.pe_dim, 16);
    EXPECT_EQ(gemminiDefault().config.accum_kib, 32);
    EXPECT_EQ(gemminiDefault().config.spad_kib, 128);
    // NVDLA large has the biggest array.
    EXPECT_EQ(nvdlaLarge().config.pe_dim, 32);
    // NVDLA small is the most constrained.
    EXPECT_LT(nvdlaSmall().config.spad_kib,
              gemminiDefault().config.spad_kib);
}

TEST(Levels, Names)
{
    EXPECT_STREQ(levelName(kRegisters), "Registers");
    EXPECT_STREQ(levelName(kAccumulator), "Accumulator");
    EXPECT_STREQ(levelName(kScratchpad), "Scratchpad");
    EXPECT_STREQ(levelName(kDram), "DRAM");
}

} // namespace
} // namespace dosa
