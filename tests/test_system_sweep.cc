/**
 * @file
 * Cross-cutting sweep tests: every zoo network mapped onto every
 * expert baseline with both mappers, full-system invariants checked at
 * each point. These catch integration regressions that unit tests of
 * individual modules cannot (e.g. a mapper emitting factors a model
 * mishandles for some layer shape).
 */

#include <gtest/gtest.h>

#include "arch/baselines.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "search/search_common.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

struct SweepCase
{
    const char *network;
    int baseline_index;
};

class NetworkBaselineSweep
    : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(NetworkBaselineSweep, EveryLayerEvaluatesConsistently)
{
    SweepCase c = GetParam();
    Network net = networkByName(c.network);
    HardwareConfig hw =
            allBaselines()[size_t(c.baseline_index)].config;
    Rng rng(uint64_t(c.baseline_index) * 1000 + 1);

    for (const Layer &l : net.layers) {
        for (int mapper = 0; mapper < 2; ++mapper) {
            Mapping m = mapper == 0 ? cosaMap(l, hw)
                                    : randomValidMapping(l, hw, rng);
            RefEval ev = referenceEval(l, m, hw);
            // System invariants.
            EXPECT_TRUE(ev.fits) << l.str() << " on " << hw.str();
            EXPECT_GT(ev.latency, 0.0);
            EXPECT_GT(ev.energy_uj, 0.0);
            EXPECT_GE(ev.latency,
                    l.macs() / hw.cpe() - 1e-6) << l.str();
            // Energy floor: every MAC costs at least the PE energy
            // plus one register read.
            double floor_uj = l.macs() *
                    (EnergyModel::kEpaMac +
                     EnergyModel::kEpaRegister) * 1e-6;
            EXPECT_GE(ev.energy_uj, floor_uj * 0.999) << l.str();
            // Quantized DRAM traffic dominates raw traffic.
            EXPECT_GE(ev.dram_bytes_quant, ev.dram_bytes - 1e-9);
            // RTL latency dominates the idealized model.
            EXPECT_GE(rtlLatency(l, m, hw), ev.latency * 0.999)
                    << l.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ZooTimesBaselines, NetworkBaselineSweep,
        ::testing::Values(
                SweepCase{"resnet50", 0}, SweepCase{"resnet50", 2},
                SweepCase{"bert", 1}, SweepCase{"bert", 3},
                SweepCase{"unet", 0}, SweepCase{"unet", 3},
                SweepCase{"retinanet", 2}, SweepCase{"retinanet", 1},
                SweepCase{"alexnet", 3}, SweepCase{"vgg16", 2},
                SweepCase{"resnext50", 3}, SweepCase{"deepbench", 2}));

TEST(SystemSweep, MoreHardwareNeverHurtsCosaMappings)
{
    // Under the CoSA-substitute mapper, strictly more hardware
    // resources must not worsen any layer's latency (energy can grow
    // with capacity-dependent EPA, latency cannot: the mapper can
    // always fall back to the smaller design's mapping).
    HardwareConfig small{8, 16, 64};
    HardwareConfig large{32, 256, 1024};
    for (const Layer &l : resnet50().layers) {
        double lat_small =
                referenceEval(l, cosaMap(l, small), small).latency;
        double lat_large =
                referenceEval(l, cosaMap(l, large), large).latency;
        EXPECT_LE(lat_large, lat_small * 1.001) << l.str();
    }
}

TEST(SystemSweep, NetworkEdpComposesFromLayerSums)
{
    // Eq 14: EDP(model) = (sum E)(sum L), not sum(E*L).
    Network net = bertBase();
    HardwareConfig hw = gemminiDefault().config;
    std::vector<Mapping> maps;
    double e = 0.0, lat = 0.0, sum_edp = 0.0;
    for (const Layer &l : net.layers) {
        maps.push_back(cosaMap(l, hw));
        RefEval ev = referenceEval(l, maps.back(), hw);
        double cnt = static_cast<double>(l.count);
        e += cnt * ev.energy_uj;
        lat += cnt * ev.latency;
        sum_edp += cnt * ev.edp;
    }
    NetworkEval ne = referenceNetworkEval(net.layers, maps, hw);
    EXPECT_NEAR(ne.edp, e * lat, 1e-6 * ne.edp);
    // The Eq 14 product is always >= the per-layer EDP sum.
    EXPECT_GE(ne.edp, sum_edp);
}

} // namespace
} // namespace dosa
