/**
 * @file
 * Tests for the searchers: CoSA-substitute mapper validity and
 * quality, random co-search, fixed-hardware random mapper, Bayesian
 * optimization, and shared infrastructure (features, traces).
 */

#include <gtest/gtest.h>

#include "arch/baselines.hh"
#include "model/reference.hh"
#include "search/bayes_opt.hh"
#include "search/cosa_mapper.hh"
#include "search/random_search.hh"
#include "search/search_common.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(SearchResult, TraceIsMonotoneBest)
{
    SearchResult r;
    r.record(5.0);
    r.record(7.0);
    r.record(3.0);
    r.record(4.0);
    ASSERT_EQ(r.trace.size(), 4u);
    EXPECT_DOUBLE_EQ(r.trace[0], 5.0);
    EXPECT_DOUBLE_EQ(r.trace[1], 5.0);
    EXPECT_DOUBLE_EQ(r.trace[2], 3.0);
    EXPECT_DOUBLE_EQ(r.trace[3], 3.0);
    EXPECT_DOUBLE_EQ(r.best_edp, 3.0);
}

TEST(RandomHardware, WithinDesignRanges)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        HardwareConfig hw = randomHardware(rng);
        EXPECT_GE(hw.pe_dim, 4);
        EXPECT_LE(hw.pe_dim, 128);
        EXPECT_GE(hw.accum_kib, 8);
        EXPECT_LE(hw.accum_kib, 512);
        EXPECT_GE(hw.spad_kib, 16);
        EXPECT_LE(hw.spad_kib, 1024);
    }
}

TEST(MinimalMapping, FitsAnyHardware)
{
    HardwareConfig tiny{1, 1, 1};
    for (const Layer &l : resnet50().layers) {
        Mapping m = minimalMapping(l);
        EXPECT_TRUE(m.complete(l));
        EXPECT_TRUE(referenceEval(l, m, tiny).fits) << l.str();
    }
}

TEST(RandomValidMapping, AlwaysFits)
{
    Rng rng(3);
    HardwareConfig hw{8, 16, 32}; // small: forces rejection work
    for (const Layer &l : unet().layers) {
        for (int i = 0; i < 3; ++i) {
            Mapping m = randomValidMapping(l, hw, rng);
            EXPECT_TRUE(m.complete(l)) << l.str();
            EXPECT_TRUE(referenceEval(l, m, hw).fits) << l.str();
        }
    }
}

TEST(Features, SizeAndDeterminism)
{
    Layer l = Layer::conv("f", 3, 14, 32, 64);
    Rng rng(9);
    HardwareConfig hw{16, 32, 128};
    Mapping m = randomValidMapping(l, hw, rng);
    auto f1 = encodeFeatures(l, m, hw);
    auto f2 = encodeFeatures(l, m, hw);
    EXPECT_EQ(static_cast<int>(f1.size()), kFeatureSize);
    EXPECT_EQ(f1, f2);
}

TEST(Features, DistinguishMappingsAndHardware)
{
    Layer l = Layer::conv("f", 3, 14, 32, 64);
    Rng rng(10);
    HardwareConfig hw{16, 32, 128};
    Mapping m1 = randomValidMapping(l, hw, rng);
    Mapping m2 = randomValidMapping(l, hw, rng);
    if (!(m1 == m2)) {
        EXPECT_NE(encodeFeatures(l, m1, hw),
                encodeFeatures(l, m2, hw));
    }
    HardwareConfig hw2{32, 64, 256};
    EXPECT_NE(encodeFeatures(l, m1, hw), encodeFeatures(l, m1, hw2));
}

class CosaMapperValidity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CosaMapperValidity, FitsEveryLayerOnDiverseHardware)
{
    Network net = networkByName(GetParam());
    std::vector<HardwareConfig> hws = {
        {4, 8, 16}, {16, 32, 128}, {64, 256, 512}, {128, 512, 1024},
        {13, 16, 108}, // Eyeriss-like odd sizes
    };
    for (const HardwareConfig &hw : hws) {
        for (const Layer &l : net.layers) {
            Mapping m = cosaMap(l, hw);
            EXPECT_TRUE(m.complete(l)) << l.str();
            EXPECT_TRUE(m.positive()) << l.str();
            RefEval ev = referenceEval(l, m, hw);
            EXPECT_TRUE(ev.fits)
                    << l.str() << " on " << hw.str() << "\n"
                    << m.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Networks, CosaMapperValidity,
        ::testing::Values("resnet50", "bert", "unet", "retinanet",
                          "alexnet", "vgg16", "resnext50",
                          "deepbench"));

TEST(CosaMapper, BeatsRandomMappingsOnAverage)
{
    // The constructive mapper should clearly outperform the average
    // random valid mapping — that is its entire purpose.
    HardwareConfig hw = gemminiDefault().config;
    Rng rng(21);
    double cosa_total = 0.0, random_total = 0.0;
    for (const Layer &l : resnet50().layers) {
        RefEval cosa_ev = referenceEval(l, cosaMap(l, hw), hw);
        cosa_total += cosa_ev.edp;
        double rand_acc = 0.0;
        for (int i = 0; i < 5; ++i) {
            Mapping m = randomValidMapping(l, hw, rng);
            rand_acc += referenceEval(l, m, hw).edp;
        }
        random_total += rand_acc / 5.0;
    }
    EXPECT_LT(cosa_total, random_total);
}

TEST(CosaMapper, UsesSpatialArray)
{
    HardwareConfig hw{16, 32, 128};
    Layer l = Layer::conv("big", 3, 28, 128, 128);
    Mapping m = cosaMap(l, hw);
    EXPECT_EQ(m.factors.spatial_c, 16);
    EXPECT_EQ(m.factors.spatial_k, 16);
}

TEST(RandomSearch, TraceLengthAndImprovement)
{
    Network net = unet();
    RandomSearchConfig cfg;
    cfg.hw_designs = 2;
    cfg.mappings_per_hw = 20;
    cfg.seed = 5;
    SearchResult r = randomSearch(net.layers, cfg);
    EXPECT_EQ(r.trace.size(), 40u);
    EXPECT_LT(r.best_edp, std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.best_mappings.size(), net.layers.size());
    // Improvement over the very first sample.
    EXPECT_LE(r.best_edp, r.trace.front());
    // Best design must actually fit its hardware.
    NetworkEval ev = referenceNetworkEval(net.layers, r.best_mappings,
            r.best_hw);
    EXPECT_TRUE(ev.fits);
    EXPECT_NEAR(ev.edp, r.best_edp, 1e-6 * ev.edp);
}

TEST(RandomSearch, DeterministicInSeed)
{
    Network net = bertBase();
    RandomSearchConfig cfg;
    cfg.hw_designs = 1;
    cfg.mappings_per_hw = 10;
    cfg.seed = 77;
    SearchResult a = randomSearch(net.layers, cfg);
    SearchResult b = randomSearch(net.layers, cfg);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_DOUBLE_EQ(a.best_edp, b.best_edp);
}

TEST(RandomMapperSearch, FixedHardwareOnly)
{
    HardwareConfig hw = gemminiDefault().config;
    Network net = bertBase();
    SearchResult r = randomMapperSearch(net.layers, hw, 15, 3);
    EXPECT_EQ(r.trace.size(), 15u);
    EXPECT_EQ(r.best_hw, hw);
    NetworkEval ev = referenceNetworkEval(net.layers, r.best_mappings,
            hw);
    EXPECT_TRUE(ev.fits);
}

TEST(BayesOpt, RunsAndRespectsBudget)
{
    Network net = bertBase();
    BayesOptConfig cfg;
    cfg.warmup_samples = 8;
    cfg.total_samples = 16;
    cfg.hw_candidates = 3;
    cfg.map_candidates = 5;
    cfg.refit_every = 4;
    cfg.seed = 11;
    SearchResult r = bayesOptSearch(net.layers, cfg);
    EXPECT_EQ(r.trace.size(), 16u);
    EXPECT_LT(r.best_edp, std::numeric_limits<double>::infinity());
    NetworkEval ev = referenceNetworkEval(net.layers, r.best_mappings,
            r.best_hw);
    EXPECT_TRUE(ev.fits);
}

TEST(BayesOpt, GuidedPhaseNoWorseThanWarmupBest)
{
    Network net = unet();
    BayesOptConfig cfg;
    cfg.warmup_samples = 10;
    cfg.total_samples = 25;
    cfg.hw_candidates = 4;
    cfg.map_candidates = 6;
    cfg.seed = 19;
    SearchResult r = bayesOptSearch(net.layers, cfg);
    double warmup_best = r.trace[size_t(cfg.warmup_samples) - 1];
    EXPECT_LE(r.best_edp, warmup_best);
}

} // namespace
} // namespace dosa
