/**
 * @file
 * Unit tests of the `src/api` search facade: registry round-trips,
 * bitwise facade-vs-legacy equivalence against the checked-in golden
 * fixtures, the observer streaming contract (sample accounting,
 * improvement events, phases), cooperative cancellation and deadline
 * enforcement, budget-derived option defaults, trace pre-reservation
 * and serial==parallel determinism through `runSearch`.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/search_api.hh"
#include "core/dosa_optimizer.hh"
#include "model/reference.hh"
#include "workload/workload_registry.hh"
#include "search/bayes_opt.hh"
#include "search/random_search.hh"
#include "workload/layer.hh"

namespace dosa {
namespace {

/** The canonical two-layer workload of the golden-trace fixtures. */
std::vector<Layer>
goldenLayers()
{
    return {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
}

/** Minimal reader of the tests/golden/ fixture format. */
struct Golden
{
    std::vector<double> trace;
    double best_edp = 0.0;
    long long pe_dim = 0, accum_kib = 0, spad_kib = 0;
};

void
readGolden(const std::string &name, Golden &g)
{
    const std::string path =
            std::string(DOSA_SOURCE_DIR) + "/tests/golden/" + name +
            ".trace";
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << "missing fixture " << path;
    char line[256];
    size_t n = 0;
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr); // comment
    ASSERT_EQ(std::fscanf(f, "trace %zu\n", &n), 1);
    g.trace.resize(n);
    for (size_t i = 0; i < n; ++i) {
        ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
        g.trace[i] = std::strtod(line, nullptr);
    }
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    g.best_edp = std::strtod(line + std::strlen("best_edp "), nullptr);
    ASSERT_EQ(std::fscanf(f, "best_hw %lld %lld %lld", &g.pe_dim,
                      &g.accum_kib, &g.spad_kib),
            3);
    std::fclose(f);
}

/** Exact-compare a facade run against a golden fixture. */
void
expectMatchesGolden(const std::string &name, const SearchResult &r)
{
    Golden g;
    readGolden(name, g);
    if (::testing::Test::HasFatalFailure())
        return;
    ASSERT_EQ(r.trace.size(), g.trace.size()) << name;
    size_t mismatches = 0;
    for (size_t i = 0; i < g.trace.size(); ++i)
        if (r.trace[i] != g.trace[i] &&
            !(std::isnan(r.trace[i]) && std::isnan(g.trace[i])))
            ++mismatches;
    EXPECT_EQ(mismatches, 0u) << name << ": facade trace drifted";
    EXPECT_EQ(r.best_edp, g.best_edp) << name;
    EXPECT_EQ(r.best_hw.pe_dim, g.pe_dim) << name;
    EXPECT_EQ(r.best_hw.accum_kib, g.accum_kib) << name;
    EXPECT_EQ(r.best_hw.spad_kib, g.spad_kib) << name;
}

// ---- The facade specs equivalent to the golden fixture configs.

SearchSpec
goldenDosaSpec()
{
    SearchSpec spec;
    spec.algorithm = "dosa";
    spec.workload = goldenLayers();
    spec.seed = 5;
    spec.options.set("start_points", 3)
            .set("steps_per_start", 30)
            .set("round_every", 15);
    return spec;
}

SearchSpec
goldenRandomSpec()
{
    SearchSpec spec;
    spec.algorithm = "random";
    spec.workload = goldenLayers();
    spec.seed = 3;
    spec.options.set("hw_designs", 4).set("mappings_per_hw", 30);
    return spec;
}

SearchSpec
goldenMapperSpec()
{
    SearchSpec spec;
    spec.algorithm = "mapper";
    spec.workload = goldenLayers();
    spec.seed = 17;
    spec.options.set("samples", 40);
    return spec;
}

SearchSpec
goldenBayesOptSpec()
{
    SearchSpec spec;
    spec.algorithm = "bayesopt";
    spec.workload = goldenLayers();
    spec.seed = 21;
    spec.options.set("warmup_samples", 6)
            .set("total_samples", 14)
            .set("hw_candidates", 3)
            .set("map_candidates", 4);
    return spec;
}

TEST(ApiRegistry, ListsAllBuiltinAlgorithms)
{
    std::vector<std::string> algos = Search::algorithms();
    for (const char *name : {"dosa", "random", "mapper", "bayesopt"})
        EXPECT_NE(std::find(algos.begin(), algos.end(), name),
                algos.end())
                << name << " missing from the registry";
}

TEST(ApiRegistry, FindRoundTripsEveryRegisteredName)
{
    for (const std::string &name : Search::algorithms()) {
        const Searcher *searcher = Search::find(name);
        ASSERT_NE(searcher, nullptr) << name;
        EXPECT_EQ(name, searcher->name());
        EXPECT_NE(searcher->description()[0], '\0') << name;
    }
}

TEST(ApiRegistry, UnknownNameIsNull)
{
    EXPECT_EQ(Search::find("no-such-searcher"), nullptr);
}

/** Minimal custom searcher for the registration tests. */
class StubSearcher : public Searcher
{
  public:
    explicit StubSearcher(const char *desc) : desc_(desc) {}

    const char *name() const override { return "stub-algo"; }
    const char *description() const override { return desc_; }

    std::vector<std::string_view> optionKeys() const override
    {
        return {};
    }

    size_t plannedSamples(const SearchSpec &) const override
    {
        return 1;
    }

    SearchReport run(const SearchSpec &, SearchControl *) const override
    {
        return {};
    }

  private:
    const char *desc_;
};

TEST(ApiRegistry, CustomRegistrationAndLatestWinsShadowing)
{
    static const StubSearcher first("first");
    Search::registerSearcher(&first);
    EXPECT_EQ(Search::find("stub-algo"), &first);
    std::vector<std::string> algos = Search::algorithms();
    EXPECT_NE(std::find(algos.begin(), algos.end(), "stub-algo"),
            algos.end());
    // "stub-algo" appears once in the list even after shadowing.
    static const StubSearcher second("second");
    Search::registerSearcher(&second);
    EXPECT_EQ(Search::find("stub-algo"), &second);
    algos = Search::algorithms();
    EXPECT_EQ(std::count(algos.begin(), algos.end(), "stub-algo"), 1);
    // The builtins are never displaced by unrelated registrations.
    EXPECT_NE(Search::find("dosa"), nullptr);
}

// Facade ≡ legacy bitwise: the fixtures were generated through the
// legacy free functions; running the equivalent SearchSpec through
// runSearch must reproduce them exactly.

TEST(ApiGoldenEquivalence, Dosa)
{
    expectMatchesGolden("dosa", runSearch(goldenDosaSpec()).search);
}

TEST(ApiGoldenEquivalence, Random)
{
    expectMatchesGolden("random",
            runSearch(goldenRandomSpec()).search);
}

TEST(ApiGoldenEquivalence, Mapper)
{
    expectMatchesGolden("mapper",
            runSearch(goldenMapperSpec()).search);
}

TEST(ApiGoldenEquivalence, BayesOpt)
{
    expectMatchesGolden("bayesopt",
            runSearch(goldenBayesOptSpec()).search);
}

/** Observer counting every event for the accounting tests. */
class CountingObserver : public SearchObserver
{
  public:
    size_t samples = 0;
    size_t improvements = 0;
    std::vector<std::string> phases;
    double last_best = std::numeric_limits<double>::infinity();

    void
    onPhase(const char *phase) override
    {
        phases.emplace_back(phase);
    }

    bool
    onSample(const SampleEvent &event) override
    {
        EXPECT_EQ(event.index, samples);
        ++samples;
        last_best = event.best_edp;
        return true;
    }

    void
    onImprovement(const SampleEvent &event) override
    {
        EXPECT_TRUE(event.improved);
        ++improvements;
    }
};

TEST(ApiObserver, SampleCountEqualsTraceLengthForEveryAlgorithm)
{
    for (const SearchSpec &spec :
         {goldenDosaSpec(), goldenRandomSpec(), goldenMapperSpec(),
          goldenBayesOptSpec()}) {
        CountingObserver obs;
        SearchReport report = runSearch(spec, &obs);
        EXPECT_EQ(obs.samples, report.search.trace.size())
                << spec.algorithm;
        if (!report.search.trace.empty()) {
            EXPECT_EQ(obs.last_best, report.search.trace.back())
                    << spec.algorithm;
        }

        // Improvement events == strict decreases of the trace.
        size_t expected = 0;
        double best = std::numeric_limits<double>::infinity();
        for (double v : report.search.trace) {
            if (v < best) {
                best = v;
                ++expected;
            }
        }
        EXPECT_EQ(obs.improvements, expected) << spec.algorithm;
    }
}

TEST(ApiObserver, PhasesBracketTheRun)
{
    CountingObserver obs;
    runSearch(goldenDosaSpec(), &obs);
    ASSERT_GE(obs.phases.size(), 2u);
    EXPECT_EQ(obs.phases.front(), "setup");
    EXPECT_EQ(obs.phases.back(), "done");
    // The DOSA searcher announces its interior phases in order.
    std::vector<std::string> expected{"setup", "starts", "descent",
                                      "merge", "done"};
    EXPECT_EQ(obs.phases, expected);
}

TEST(ApiObserver, PresenceDoesNotPerturbResults)
{
    SearchReport plain = runSearch(goldenRandomSpec());
    CountingObserver obs;
    SearchReport observed = runSearch(goldenRandomSpec(), &obs);
    EXPECT_EQ(plain.search.trace, observed.search.trace);
    EXPECT_EQ(plain.search.best_edp, observed.search.best_edp);
}

/** Observer cancelling after a fixed number of samples. */
class CancellingObserver : public SearchObserver
{
  public:
    explicit CancellingObserver(size_t limit) : limit_(limit) {}

    size_t samples = 0;

    bool
    onSample(const SampleEvent &event) override
    {
        (void)event;
        ++samples;
        return samples < limit_;
    }

  private:
    size_t limit_;
};

TEST(ApiCancellation, StopsWithinOneSample)
{
    // Serial run: the trace must end exactly at the cancelled sample.
    SearchSpec spec = goldenRandomSpec();
    spec.jobs = 1;
    CancellingObserver obs(5);
    SearchReport report = runSearch(spec, &obs);
    EXPECT_EQ(obs.samples, 5u);
    EXPECT_EQ(report.search.trace.size(), 5u);
}

TEST(ApiCancellation, WorksForEveryAlgorithm)
{
    for (const SearchSpec &base :
         {goldenDosaSpec(), goldenRandomSpec(), goldenMapperSpec(),
          goldenBayesOptSpec()}) {
        SearchSpec spec = base;
        CancellingObserver obs(3);
        SearchReport report = runSearch(spec, &obs);
        EXPECT_EQ(report.search.trace.size(), 3u) << spec.algorithm;
        // A cancelled run's best design stays consistent with its
        // truncated trace: the reported best_edp is the trace
        // minimum, never a dropped post-cancellation sample's.
        if (!report.search.trace.empty()) {
            EXPECT_EQ(report.search.best_edp,
                    report.search.trace.back())
                    << spec.algorithm;
        }
    }
}

TEST(ApiCancellation, InstalledDesignAlwaysScoresBestEdp)
{
    // Property over cancellation points spanning all four merge
    // units (30 samples per hardware design): wherever the cancel
    // lands — including mid-unit, where a partially merged design's
    // winning sample is dropped — a non-empty best design must score
    // exactly the reported best_edp, and a stale design from an
    // earlier unit must never be paired with a later unit's better
    // best_edp.
    std::vector<Layer> layers = goldenLayers();
    for (size_t k : {size_t(1), size_t(15), size_t(31), size_t(45),
                     size_t(61), size_t(75), size_t(91),
                     size_t(105)}) {
        SearchSpec spec = goldenRandomSpec();
        CancellingObserver obs(k);
        SearchReport report = runSearch(spec, &obs);
        ASSERT_EQ(report.search.trace.size(), k);
        EXPECT_EQ(report.search.best_edp, report.search.trace.back());
        if (!report.search.best_mappings.empty()) {
            EXPECT_EQ(referenceNetworkEval(layers,
                              report.search.best_mappings,
                              report.search.best_hw)
                              .edp,
                    report.search.best_edp)
                    << "cancel at " << k;
        }
    }
}

TEST(ApiBudget, SampleCapTruncatesAndReserves)
{
    SearchSpec spec = goldenMapperSpec();
    spec.budget.max_samples = 10; // below the 40 requested samples
    SearchReport report = runSearch(spec);
    EXPECT_EQ(report.search.trace.size(), 10u);
    // The cap also bounds the pre-reservation.
    EXPECT_LE(report.search.trace.capacity(), 40u);
}

TEST(ApiBudget, DerivesNaturalLengthsFromMaxSamples)
{
    // random: mappings_per_hw = max_samples / hw_designs.
    SearchSpec spec;
    spec.algorithm = "random";
    spec.workload = goldenLayers();
    spec.seed = 3;
    spec.budget.max_samples = 40;
    spec.options.set("hw_designs", 4);
    EXPECT_EQ(Search::find("random")->plannedSamples(spec), 40u);
    SearchReport report = runSearch(spec);
    EXPECT_EQ(report.search.trace.size(), 40u);

    // dosa: steps_per_start = max_samples / start_points - 1.
    SearchSpec dspec;
    dspec.algorithm = "dosa";
    dspec.workload = goldenLayers();
    dspec.budget.max_samples = 60;
    dspec.options.set("start_points", 3).set("round_every", 10);
    EXPECT_EQ(Search::find("dosa")->plannedSamples(dspec), 60u);

    // bayesopt: total_samples = max_samples.
    SearchSpec bspec = goldenBayesOptSpec();
    bspec.budget.max_samples = 9;
    bspec.options = OptionBag{};
    bspec.options.set("warmup_samples", 6);
    EXPECT_EQ(Search::find("bayesopt")->plannedSamples(bspec), 9u);
}

TEST(ApiDeadline, ExpiredDeadlineStopsTheRunEarly)
{
    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 100000);
    spec.budget.deadline_s = 1e-9; // expired by the first poll
    SearchReport report = runSearch(spec);
    EXPECT_LT(report.search.trace.size(), 100000u);
}

TEST(ApiDeadline, ComputedSamplesSurviveTheDeadline)
{
    // Deadline expired before the first descent step: every start
    // still scores its concrete start point, descent is skipped, and
    // the merge must record those computed samples (a deadline stops
    // compute, it must not discard finished work) with a best design
    // consistent with the trace.
    SearchSpec spec = goldenDosaSpec();
    spec.budget.deadline_s = 1e-9;
    SearchReport report = runSearch(spec);
    ASSERT_EQ(report.search.trace.size(), 3u); // one per start point
    EXPECT_EQ(report.search.best_edp, report.search.trace.back());
    ASSERT_TRUE(std::isfinite(report.search.best_edp));
    EXPECT_FALSE(report.search.best_mappings.empty());
}

TEST(ApiDeterminism, SerialEqualsParallelForEveryAlgorithm)
{
    for (const SearchSpec &base :
         {goldenDosaSpec(), goldenRandomSpec(), goldenMapperSpec(),
          goldenBayesOptSpec()}) {
        SearchSpec serial = base;
        serial.jobs = 1;
        SearchSpec parallel = base;
        parallel.jobs = 3;
        SearchReport a = runSearch(serial);
        SearchReport b = runSearch(parallel);
        EXPECT_EQ(a.search.trace, b.search.trace) << base.algorithm;
        EXPECT_EQ(a.search.best_edp, b.search.best_edp)
                << base.algorithm;
        EXPECT_EQ(a.search.best_hw.pe_dim, b.search.best_hw.pe_dim)
                << base.algorithm;
    }
}

TEST(ApiSpecValidation, OptionBagRoundTrips)
{
    OptionBag bag;
    bag.set("a", 1.5).set("b", 2);
    EXPECT_TRUE(bag.has("a"));
    EXPECT_FALSE(bag.has("c"));
    EXPECT_EQ(bag.get("a", 0.0), 1.5);
    EXPECT_EQ(bag.getInt("b", 0), 2);
    EXPECT_EQ(bag.getInt("c", 7), 7);
    EXPECT_EQ(bag.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(ApiDeathTest, UnknownAlgorithmIsFatalAndListsRegistry)
{
    SearchSpec spec;
    spec.algorithm = "no-such-searcher";
    spec.workload = goldenLayers();
    EXPECT_EXIT(runSearch(spec), ::testing::ExitedWithCode(1),
            "unknown search algorithm.*dosa");
}

TEST(ApiDeathTest, UnknownOptionKeyIsFatal)
{
    SearchSpec spec = goldenRandomSpec();
    spec.options.set("steps_per_start", 10); // a dosa key, not random
    EXPECT_EXIT(runSearch(spec), ::testing::ExitedWithCode(1),
            "unknown option.*steps_per_start.*random");
}

TEST(ApiDeathTest, EmptyWorkloadIsFatal)
{
    SearchSpec spec;
    spec.algorithm = "random";
    EXPECT_EXIT(runSearch(spec), ::testing::ExitedWithCode(1),
            "empty workload");
}

TEST(ApiWorkloadName, ValidatesAgainstTheRegistry)
{
    SearchSpec spec = goldenMapperSpec();
    spec.workload.clear();
    spec.workload_name = "alexnet";
    std::string error;
    EXPECT_TRUE(validateSpec(spec, error)) << error;

    // Unknown names are rejected with the registry listing, exactly
    // like an unknown algorithm.
    spec.workload_name = "no-such-net";
    EXPECT_FALSE(validateSpec(spec, error));
    EXPECT_NE(error.find("unknown workload \"no-such-net\""),
            std::string::npos)
            << error;
    EXPECT_NE(error.find("resnet50"), std::string::npos) << error;

    // Setting both an inline workload and a name is ambiguous.
    spec = goldenMapperSpec();
    spec.workload_name = "alexnet";
    EXPECT_FALSE(validateSpec(spec, error));
    EXPECT_NE(error.find("both"), std::string::npos) << error;
}

TEST(ApiWorkloadName, ByNameSearchMatchesInlineLayersBitwise)
{
    const Network *net = Workloads::find("alexnet");
    ASSERT_NE(net, nullptr);

    SearchSpec by_name = goldenMapperSpec();
    by_name.workload.clear();
    by_name.workload_name = "alexnet";

    SearchSpec inline_spec = goldenMapperSpec();
    inline_spec.workload = net->layers;

    SearchReport a = runSearch(by_name);
    SearchReport b = runSearch(inline_spec);
    EXPECT_EQ(a.search.best_edp, b.search.best_edp);
    EXPECT_EQ(a.search.best_hw.str(), b.search.best_hw.str());
    ASSERT_EQ(a.search.trace.size(), b.search.trace.size());
    for (size_t i = 0; i < a.search.trace.size(); ++i)
        EXPECT_EQ(a.search.trace[i], b.search.trace[i])
                << "sample " << i;
}

TEST(ApiDeathTest, UnknownWorkloadNameIsFatalAndListsRegistry)
{
    SearchSpec spec;
    spec.algorithm = "random";
    spec.workload_name = "no-such-net";
    EXPECT_EXIT(runSearch(spec), ::testing::ExitedWithCode(1),
            "unknown workload.*resnet50");
}

} // namespace
} // namespace dosa
