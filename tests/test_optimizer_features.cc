/**
 * @file
 * Tests for the optimizer refinements and extensions layered on the
 * paper's base algorithm: feasibility projection, greedy restart,
 * learning-rate scheduling, per-layer loss weighting (the Section 4.5
 * future-work knob) and the gated-refetch continuity property.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/adam.hh"
#include "core/dosa_optimizer.hh"
#include "core/objective.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(AdamSchedule, LrScaleShrinksSteps)
{
    std::vector<double> a = {0.0}, b = {0.0};
    Adam opt_a(1, 0.1), opt_b(1, 0.1);
    opt_a.step(a, {1.0}, 1.0);
    opt_b.step(b, {1.0}, 0.1);
    EXPECT_NEAR(a[0], 10.0 * b[0], 1e-12);
}

TEST(GatedRefetch, ContinuousAcrossUnitBoundary)
{
    // The multiplier must vary continuously as a relevant inner factor
    // crosses 1, even when large irrelevant loops sit outside it (the
    // discontinuity that previously broke descent at rounded points).
    Factors<double> f;
    f.t(kDram, Dim::P) = 56.0; // irrelevant to W, huge
    f.t(kDram, Dim::Q) = 4.0;
    f.t(kAccumulator, Dim::C) = 1.0; // relevant to W, at boundary
    OrderVec order = uniformOrder(LoopOrder::WS);

    double below = 0.0, at = 0.0, above = 0.0;
    f.t(kAccumulator, Dim::C) = 1.0 - 1e-6;
    below = refetchMultiplier(f, order, kRegisters, Tensor::Weight);
    f.t(kAccumulator, Dim::C) = 1.0;
    at = refetchMultiplier(f, order, kRegisters, Tensor::Weight);
    f.t(kAccumulator, Dim::C) = 1.0 + 1e-6;
    above = refetchMultiplier(f, order, kRegisters, Tensor::Weight);

    EXPECT_NEAR(below, at, 1e-3);
    EXPECT_NEAR(above, at, 1e-3);
    // Far above the boundary the full outer product is charged.
    f.t(kAccumulator, Dim::C) = 2.0;
    double active = refetchMultiplier(f, order, kRegisters,
            Tensor::Weight);
    EXPECT_NEAR(active, 2.0 * 56.0 * 4.0, 1e-9);
}

TEST(GatedRefetch, ExactAtIntegerPoints)
{
    // Gate values at integer factors are 0/1, so the gated rule must
    // coincide with the discrete innermost-relevant-loop rule the
    // reference model implements.
    Rng rng(3);
    std::vector<Layer> pool = uniqueTrainingLayers();
    HardwareConfig hw{16, 256, 512};
    for (int t = 0; t < 10; ++t) {
        const Layer &l = pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
        Mapping m = randomMapping(l, rng, hw.pe_dim);
        RefEval ref = referenceEval(l, m, hw);
        Factors<double> f = m.continuousFactors();
        LayerCounts<double> c = computeCounts(l, f, m.order);
        for (int lvl = 0; lvl < kDram; ++lvl)
            EXPECT_NEAR(c.accesses[size_t(lvl)],
                    ref.accesses[size_t(lvl)],
                    1e-9 * ref.accesses[size_t(lvl)] + 1e-9);
    }
}

TEST(LayerWeights, ShiftOptimizationFocus)
{
    // Weighting one layer's loss contribution heavily must shift the
    // objective toward that layer.
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode uniform;
    ObjectiveMode skewed;
    skewed.layer_weights = {100.0, 1.0};
    ObjectiveEval u = evalObjective(layers, x, orders,
            OrderStrategy::Fixed, uniform);
    ObjectiveEval s = evalObjective(layers, x, orders,
            OrderStrategy::Fixed, skewed);
    EXPECT_GT(s.energy_uj, u.energy_uj); // weighted sums grow
    // Gradient mass on layer 0's variables must grow relative to
    // layer 1's under the skewed weighting.
    auto mass = [&](const ObjectiveEval &ev, size_t li) {
        double acc = 0.0;
        for (int i = 0; i < kVarsPerLayer; ++i)
            acc += std::abs(ev.grad[li * kVarsPerLayer + size_t(i)]);
        return acc;
    };
    double ratio_u = mass(u, 0) / (mass(u, 1) + 1e-30);
    double ratio_s = mass(s, 0) / (mass(s, 1) + 1e-30);
    EXPECT_GT(ratio_s, ratio_u);
}

TEST(LayerWeights, SizeMismatchPanics)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    HardwareConfig hw{16, 64, 256};
    std::vector<double> x;
    std::vector<OrderVec> orders;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
        orders.push_back(uniformOrder(LoopOrder::WS));
    }
    ObjectiveMode bad;
    bad.layer_weights = {1.0}; // wrong size
    EXPECT_DEATH(evalObjective(layers, x, orders,
            OrderStrategy::Fixed, bad), "layer_weights");
}

TEST(AblationToggles, VariantsRunAndStayValid)
{
    Network net = bertBase();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 3);
    for (bool project : {true, false}) {
        for (bool restart : {true, false}) {
            DosaConfig cfg;
            cfg.start_points = 1;
            cfg.steps_per_start = 60;
            cfg.round_every = 30;
            cfg.project_feasible = project;
            cfg.restart_from_best = restart;
            cfg.seed = 5;
            DosaResult r = dosaSearch(layers, cfg);
            NetworkEval ev = referenceNetworkEval(layers,
                    r.search.best_mappings, r.search.best_hw);
            EXPECT_TRUE(ev.fits);
            EXPECT_NEAR(ev.edp, r.search.best_edp, 1e-6 * ev.edp);
        }
    }
}

TEST(Projection, KeepsDramResidualsValid)
{
    // After many unprojected ascent-direction steps the inferred DRAM
    // residuals can sink below 1; with projection the rounded mapping
    // is reachable without large corrections. We check the public
    // contract: a projected run's intermediate roundings never panic
    // and its best design fits.
    Network net = unet();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 5);
    DosaConfig cfg;
    cfg.start_points = 2;
    cfg.steps_per_start = 120;
    cfg.round_every = 40;
    cfg.seed = 77;
    DosaResult r = dosaSearch(layers, cfg);
    EXPECT_LT(r.search.best_edp,
            std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < layers.size(); ++i)
        EXPECT_TRUE(r.search.best_mappings[i].complete(layers[i]));
}

TEST(GreedyRestart, NeverWorseFinalThanLatestRestart)
{
    // With identical seeds, restart-from-best can only improve (or
    // match) the final result relative to restart-from-latest.
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 8);
    DosaConfig a;
    a.start_points = 2;
    a.steps_per_start = 300;
    a.round_every = 100;
    a.seed = 3;
    DosaConfig b = a;
    b.restart_from_best = false;
    double with = dosaSearch(layers, a).search.best_edp;
    double without = dosaSearch(layers, b).search.best_edp;
    EXPECT_LE(with, without * 1.10); // allow small stochastic slack
}

} // namespace
} // namespace dosa
