/**
 * @file
 * Build-plumbing smoke test: drives one Layer + Mapping +
 * HardwareConfig end-to-end through the CoSA-substitute mapper, the
 * differentiable analytical model and the reference model, proving the
 * dosa static library compiles and links as a unit. Kept deliberately
 * tiny — the per-subsystem suites own the real coverage.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/hardware_config.hh"
#include "mapping/mapping.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "search/cosa_mapper.hh"
#include "workload/layer.hh"

namespace dosa {
namespace {

TEST(Smoke, LayerMappingHardwareThroughAnalyticalModel)
{
    Layer l;
    l.name = "smoke_conv3x3";
    l.r = 3;
    l.s = 3;
    l.p = 14;
    l.q = 14;
    l.c = 32;
    l.k = 32;

    HardwareConfig hw; // default 16x16 Gemmini, 32 KiB accum, 128 KiB spad
    Mapping m = cosaMap(l, hw);
    ASSERT_TRUE(m.complete(l));

    // Differentiable (here: double-instantiated) analytical model.
    Factors<double> f = m.continuousFactors();
    LayerCounts<double> counts = computeCounts(l, f, m.order);
    LayerPerf<double> perf = computePerf(counts, hwScalars<double>(hw));
    EXPECT_TRUE(std::isfinite(perf.latency));
    EXPECT_TRUE(std::isfinite(perf.energy_uj));
    EXPECT_GT(perf.latency, 0.0);
    EXPECT_GT(perf.energy_uj, 0.0);

    // Independent reference model on the same concrete design.
    RefEval ref = referenceEval(l, m, hw);
    EXPECT_GT(ref.latency, 0.0);
    EXPECT_GT(ref.energy_uj, 0.0);
    EXPECT_GT(ref.edp, 0.0);

    // The two independently coded models agree on this simple layer.
    EXPECT_NEAR(perf.latency / ref.latency, 1.0, 0.05);
    EXPECT_NEAR(perf.energy_uj / ref.energy_uj, 1.0, 0.05);

    // Minimal-hardware inference supports the mapping it came from.
    HardwareConfig min_hw = inferMinimalHw({l}, {m});
    EXPECT_GE(hw.pe_dim, min_hw.pe_dim);
    EXPECT_TRUE(referenceEval(l, m, min_hw).fits);
}

} // namespace
} // namespace dosa
