/**
 * @file
 * Unit tests for Gaussian-process regression: interpolation,
 * uncertainty behaviour and LCB ranking.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gp/gaussian_process.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

TEST(Gp, InterpolatesTrainingPointsWithLowNoise)
{
    GpParams p;
    p.noise_var = 1e-8;
    GaussianProcess gp(p);
    std::vector<std::vector<double>> x = {{0.0}, {1.0}, {2.0}, {3.0}};
    std::vector<double> y = {1.0, 2.0, 0.5, -1.0};
    gp.fit(x, y);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(gp.predictMean(x[i]), y[i], 1e-4);
}

TEST(Gp, RevertsToMeanFarFromData)
{
    GaussianProcess gp({1.0, 1.0, 1e-6});
    std::vector<std::vector<double>> x = {{0.0}, {1.0}};
    std::vector<double> y = {5.0, 7.0};
    gp.fit(x, y);
    EXPECT_NEAR(gp.predictMean({100.0}), 6.0, 1e-6); // prior = mean(y)
}

TEST(Gp, VarianceSmallAtDataLargeFar)
{
    GaussianProcess gp({1.0, 1.0, 1e-8});
    std::vector<std::vector<double>> x = {{0.0}, {1.0}};
    std::vector<double> y = {0.0, 1.0};
    gp.fit(x, y);
    EXPECT_LT(gp.predictVar({0.0}), 1e-4);
    EXPECT_GT(gp.predictVar({50.0}), 0.9); // ~prior variance
}

TEST(Gp, SmoothFunctionRecovery)
{
    GpParams p;
    p.length_scale = 1.0;
    p.noise_var = 1e-6;
    GaussianProcess gp(p);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i <= 20; ++i) {
        double t = i * 0.25;
        x.push_back({t});
        y.push_back(std::sin(t));
    }
    gp.fit(x, y);
    for (double t : {0.37, 1.9, 3.33, 4.8})
        EXPECT_NEAR(gp.predictMean({t}), std::sin(t), 0.02);
}

TEST(Gp, LcbBelowMean)
{
    GaussianProcess gp({1.0, 1.0, 1e-4});
    std::vector<std::vector<double>> x = {{0.0}, {2.0}};
    std::vector<double> y = {1.0, 3.0};
    gp.fit(x, y);
    std::vector<double> q = {4.0};
    EXPECT_LE(gp.lcb(q, 1.0), gp.predictMean(q));
    EXPECT_DOUBLE_EQ(gp.lcb(q, 0.0), gp.predictMean(q));
}

TEST(Gp, MultiDimensionalFeatures)
{
    GaussianProcess gp({2.0, 1.0, 1e-6});
    Rng rng(4);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 40; ++i) {
        double a = rng.uniformReal(-2.0, 2.0);
        double b = rng.uniformReal(-2.0, 2.0);
        x.push_back({a, b});
        y.push_back(a * a + b);
    }
    gp.fit(x, y);
    // In-distribution prediction should beat the constant-mean model.
    double mean_y = 0.0;
    for (double v : y)
        mean_y += v;
    mean_y /= static_cast<double>(y.size());
    double gp_err = 0.0, const_err = 0.0;
    Rng rng2(5);
    for (int i = 0; i < 30; ++i) {
        double a = rng2.uniformReal(-1.5, 1.5);
        double b = rng2.uniformReal(-1.5, 1.5);
        double truth = a * a + b;
        gp_err += std::abs(gp.predictMean({a, b}) - truth);
        const_err += std::abs(mean_y - truth);
    }
    EXPECT_LT(gp_err, 0.5 * const_err);
}

TEST(Gp, TrainSizeReported)
{
    GaussianProcess gp;
    EXPECT_EQ(gp.trainSize(), 0u);
    gp.fit({{0.0}, {1.0}, {2.0}}, {1.0, 2.0, 3.0});
    EXPECT_EQ(gp.trainSize(), 3u);
}

} // namespace
} // namespace dosa
