/**
 * @file
 * Tests for the analytical (differentiable) model and the reference
 * (Timeloop-substitute) model:
 *  - the paper's Fig. 3 worked example reproduced exactly,
 *  - cross-validation of the two independent implementations,
 *  - traffic-conservation invariants on random mappings,
 *  - autodiff gradients of the full model vs finite differences.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

using ad::Tape;
using ad::Var;

/** The Fig. 3 layer: N=1 R=1 S=1 P=56 Q=56 C=64 K=64. */
Layer
fig3Layer()
{
    Layer l;
    l.name = "fig3";
    l.p = 56;
    l.q = 56;
    l.c = 64;
    l.k = 64;
    return l;
}

/** The Fig. 3 mapping: DRAM p3=56 q3=4, sK=64, sC=64, regs q0=14. */
Mapping
fig3Mapping()
{
    Mapping m;
    m.factors.t(kDram, Dim::P) = 56;
    m.factors.t(kDram, Dim::Q) = 4;
    m.factors.spatial_k = 64;
    m.factors.spatial_c = 64;
    m.factors.t(kRegisters, Dim::Q) = 14;
    m.order = uniformOrder(LoopOrder::WS);
    return m;
}

TEST(Fig3Example, MappingIsComplete)
{
    EXPECT_TRUE(fig3Mapping().complete(fig3Layer()));
}

TEST(Fig3Example, CapacitiesMatchPaper)
{
    Layer l = fig3Layer();
    Factors<double> f = fig3Mapping().continuousFactors();
    // Paper Fig. 3: Accumulator 896 words, Scratchpad 4096 + 896,
    // Registers hold 4096 weights across the array.
    EXPECT_DOUBLE_EQ(tileWords(l, f, kAccumulator, Tensor::Output),
            896.0);
    EXPECT_DOUBLE_EQ(tileWords(l, f, kScratchpad, Tensor::Weight),
            4096.0);
    EXPECT_DOUBLE_EQ(tileWords(l, f, kScratchpad, Tensor::Input),
            896.0);
    EXPECT_DOUBLE_EQ(tileWords(l, f, kRegisters, Tensor::Weight),
            4096.0);
}

TEST(Fig3Example, PeRequirementIs64x64)
{
    Layer l = fig3Layer();
    RefEval ev = referenceEval(l, fig3Mapping(),
            HardwareConfig{64, 64, 64});
    EXPECT_DOUBLE_EQ(ev.pe_dim_req, 64.0);
    EXPECT_DOUBLE_EQ(ev.accum_words_req, 896.0);
    EXPECT_DOUBLE_EQ(ev.spad_words_req, 4096.0 + 896.0);
}

TEST(Fig3Example, DramTrafficMatchesPaperAnnotations)
{
    Layer l = fig3Layer();
    RefEval ev = referenceEval(l, fig3Mapping(),
            HardwareConfig{64, 64, 64});
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };
    // Fig. 3 DRAM: Weights 4096, Inputs 200704, Outputs 200704.
    EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Weight)], 4096.0);
    EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Input)], 200704.0);
    EXPECT_DOUBLE_EQ(ev.updates[kDram], 200704.0);
    // Outputs never bounce: each is written exactly once.
    EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Output)], 0.0);
}

TEST(Fig3Example, InnermostTrafficFollowsMacs)
{
    Layer l = fig3Layer();
    RefEval ev = referenceEval(l, fig3Mapping(),
            HardwareConfig{64, 64, 64});
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };
    double macs = l.macs();
    EXPECT_DOUBLE_EQ(ev.reads[kRegisters][at(Tensor::Weight)], macs);
    // Inputs broadcast across the 64 K-columns.
    EXPECT_DOUBLE_EQ(ev.reads[kScratchpad][at(Tensor::Input)],
            macs / 64.0);
    // Partial sums reduce across the 64 C-rows before updating.
    EXPECT_DOUBLE_EQ(ev.updates[kAccumulator], macs / 64.0);
}

// ---------------------------------------------------------------------
// Cross-validation: the templated analytical model and the separately
// coded reference model must agree exactly on integer mappings, except
// for DRAM block quantization.

class CrossValidation : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CrossValidation, AnalyticalEqualsReferenceModuloDramBlocks)
{
    Rng rng(GetParam());
    std::vector<Layer> pool = uniqueTrainingLayers();
    HardwareConfig hw{16, 256, 512};
    for (int trial = 0; trial < 25; ++trial) {
        const Layer &l = pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
        Mapping m = randomMapping(l, rng, hw.pe_dim);
        RefEval ref = referenceEval(l, m, hw);

        Factors<double> f = m.continuousFactors();
        LayerCounts<double> c = computeCounts(l, f, m.order);
        // On-chip access totals agree exactly.
        for (int lvl = 0; lvl < kDram; ++lvl)
            EXPECT_NEAR(c.accesses[size_t(lvl)],
                    ref.accesses[size_t(lvl)],
                    1e-6 * ref.accesses[size_t(lvl)] + 1e-9)
                    << l.str() << " level " << lvl;
        // Raw DRAM bytes agree; quantized bytes round up per stream.
        EXPECT_NEAR(c.dram_bytes, ref.dram_bytes,
                1e-6 * ref.dram_bytes + 1e-9);
        EXPECT_GE(ref.dram_bytes_quant, ref.dram_bytes - 1e-9);
        EXPECT_LE(ref.dram_bytes_quant,
                ref.dram_bytes + 3.0 * kDramBlockBytes);
        // Capacity requirements agree.
        EXPECT_DOUBLE_EQ(c.accum_words_req, ref.accum_words_req);
        EXPECT_DOUBLE_EQ(c.spad_words_req, ref.spad_words_req);

        // Perf: identical up to the DRAM quantization delta.
        LayerPerf<double> perf =
                computePerf(c, hwScalars<double>(hw));
        double dram_delta_bytes =
                ref.dram_bytes_quant - ref.dram_bytes;
        double energy_delta_uj =
                dram_delta_bytes * EnergyModel::kEpaDram * 1e-6;
        EXPECT_NEAR(perf.energy_uj, ref.energy_uj - energy_delta_uj,
                1e-9 * ref.energy_uj + 1e-12);
        EXPECT_LE(perf.latency, ref.latency + 1e-9);
        EXPECT_GE(perf.latency,
                ref.latency - dram_delta_bytes / 8.0 - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
        ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------
// Conservation and consistency invariants on random mappings.

class TrafficInvariants : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TrafficInvariants, HoldOnRandomMappings)
{
    Rng rng(GetParam());
    std::vector<Layer> pool = uniqueTrainingLayers();
    HardwareConfig hw{32, 512, 1024};
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };
    for (int trial = 0; trial < 25; ++trial) {
        const Layer &l = pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
        Mapping m = randomMapping(l, rng, hw.pe_dim);
        RefEval ev = referenceEval(l, m, hw);
        double macs = l.macs();
        double sc = static_cast<double>(m.factors.spatial_c);
        double sk = static_cast<double>(m.factors.spatial_k);

        // Every MAC reads one weight from the registers.
        EXPECT_DOUBLE_EQ(ev.reads[kRegisters][at(Tensor::Weight)],
                macs);
        // Input reads from the scratchpad: one per MAC after K-fanout.
        EXPECT_DOUBLE_EQ(ev.reads[kScratchpad][at(Tensor::Input)],
                macs / sk);
        // Output updates: one per MAC after the C-reduction.
        EXPECT_DOUBLE_EQ(ev.updates[kAccumulator], macs / sc);

        // Flow conservation: DRAM reads feed the writes of the next
        // inner level that holds the tensor.
        EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Weight)],
                ev.writes[kScratchpad][at(Tensor::Weight)]);
        EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Input)],
                ev.writes[kScratchpad][at(Tensor::Input)]);
        // Scratchpad weight reads feed register writes.
        EXPECT_DOUBLE_EQ(ev.reads[kScratchpad][at(Tensor::Weight)],
                ev.writes[kRegisters][at(Tensor::Weight)]);

        // Minimum-traffic lower bounds: every tensor word must move
        // at least once.
        EXPECT_GE(ev.writes[kScratchpad][at(Tensor::Weight)],
                l.tensorWords(Tensor::Weight) - 1e-6);
        EXPECT_GE(ev.updates[kDram],
                l.tensorWords(Tensor::Output) - 1e-6);
        // Output DRAM reads exclude the first (zero-init) fill.
        EXPECT_GE(ev.reads[kDram][at(Tensor::Output)], 0.0);
        EXPECT_DOUBLE_EQ(ev.reads[kDram][at(Tensor::Output)],
                ev.writes[kAccumulator][at(Tensor::Output)] -
                l.tensorWords(Tensor::Output));

        // Latency is bounded below by the compute roofline.
        EXPECT_GE(ev.latency, macs / (sc * sk) - 1e-6);
        EXPECT_GT(ev.energy_uj, 0.0);
        EXPECT_DOUBLE_EQ(ev.edp, ev.energy_uj * ev.latency);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficInvariants,
        ::testing::Values(11, 22, 33, 44, 55));

TEST(Model, BetterOrderingNeverHurtsStationaryTensor)
{
    // Weight traffic under WS ordering is minimal among the three
    // orderings (that is its definition).
    Rng rng(77);
    std::vector<Layer> pool = uniqueTrainingLayers();
    auto at = [](Tensor t) { return size_t(static_cast<int>(t)); };
    HardwareConfig hw{16, 256, 512};
    for (int trial = 0; trial < 15; ++trial) {
        const Layer &l = pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
        Mapping m = randomMapping(l, rng, hw.pe_dim);
        double w_traffic[kNumOrders];
        for (int o = 0; o < kNumOrders; ++o) {
            m.order = uniformOrder(static_cast<LoopOrder>(o));
            RefEval ev = referenceEval(l, m, hw);
            w_traffic[o] = ev.writes[kRegisters][at(Tensor::Weight)] +
                    ev.writes[kScratchpad][at(Tensor::Weight)];
        }
        EXPECT_LE(w_traffic[0], w_traffic[1] + 1e-6) << l.str();
        EXPECT_LE(w_traffic[0], w_traffic[2] + 1e-6) << l.str();
    }
}

TEST(Model, MinimalHwInferenceCoversAllMappings)
{
    Rng rng(88);
    Network net = resnet50();
    std::vector<Mapping> maps;
    for (const Layer &l : net.layers)
        maps.push_back(randomMapping(l, rng, 32));
    HardwareConfig hw = inferMinimalHw(net.layers, maps);
    for (size_t i = 0; i < maps.size(); ++i) {
        RefEval ev = referenceEval(net.layers[i], maps[i], hw);
        EXPECT_TRUE(ev.fits) << net.layers[i].str();
    }
}

TEST(Model, NetworkEvalWeightsByLayerCount)
{
    Layer a = Layer::conv("a", 1, 8, 16, 16);
    a.count = 3;
    HardwareConfig hw{8, 64, 64};
    Rng rng(5);
    Mapping m = randomMapping(a, rng, hw.pe_dim);
    // Rejection-free: evaluate directly.
    RefEval single = referenceEval(a, m, hw);
    NetworkEval net = referenceNetworkEval({a}, {m}, hw);
    EXPECT_NEAR(net.energy_uj, 3.0 * single.energy_uj, 1e-9);
    EXPECT_NEAR(net.latency, 3.0 * single.latency, 1e-9);
    EXPECT_NEAR(net.edp, 9.0 * single.edp, 1e-6 * net.edp);
}

// ---------------------------------------------------------------------
// Differentiability: gradients of the full per-layer EDP with respect
// to every tiling factor match central finite differences.

TEST(ModelGradients, FullModelMatchesFiniteDifference)
{
    Layer l = Layer::conv("g", 3, 14, 32, 64);
    Mapping m0;
    m0.factors.t(kRegisters, Dim::Q) = 7;
    m0.factors.spatial_c = 8;
    m0.factors.spatial_k = 8;
    m0.factors.t(kAccumulator, Dim::C) = 2;
    m0.factors.t(kScratchpad, Dim::K) = 4;
    m0.factors.t(kDram, Dim::P) = 14;
    m0.factors.t(kDram, Dim::Q) = 2;
    m0.factors.t(kDram, Dim::C) = 2;
    m0.factors.t(kDram, Dim::K) = 2;
    m0.factors.t(kDram, Dim::R) = 3;
    m0.factors.t(kDram, Dim::S) = 3;
    ASSERT_TRUE(m0.complete(l));
    OrderVec order = uniformOrder(LoopOrder::WS);

    // EDP as a function of a multiplicative perturbation of factor
    // (lvl, dim); hardware derived from the mapping (min-HW mode).
    auto edp_at = [&](int lvl, Dim d, double scale) {
        Factors<double> f = m0.continuousFactors();
        f.t(lvl, d) *= scale;
        LayerCounts<double> c = computeCounts(l, f, order);
        HwScalars<double> hw;
        double pe = std::max(f.spatial_c, f.spatial_k);
        hw.cpe = pe * pe;
        hw.accum_words = std::max(1.0, c.accum_words_req);
        hw.spad_words = std::max(1.0, c.spad_words_req);
        LayerPerf<double> perf = computePerf(c, hw);
        return perf.energy_uj * perf.latency;
    };

    // AD gradient through the same construction.
    Tape tape;
    Factors<Var> fv;
    std::vector<std::pair<std::pair<int, Dim>, Var>> leaves;
    for (int lvl = 0; lvl < kNumLevels; ++lvl) {
        for (Dim d : kAllDims) {
            Var leaf(tape, static_cast<double>(m0.factors.t(lvl, d)));
            fv.t(lvl, d) = leaf;
            leaves.push_back({{lvl, d}, leaf});
        }
    }
    fv.spatial_c = Var(tape,
            static_cast<double>(m0.factors.spatial_c));
    fv.spatial_k = Var(tape,
            static_cast<double>(m0.factors.spatial_k));
    LayerCounts<Var> cv = computeCounts(l, fv, order);
    HwScalars<Var> hwv;
    Var pe = max(fv.spatial_c, fv.spatial_k);
    hwv.cpe = pe * pe;
    hwv.accum_words = max(cv.accum_words_req, Var(1.0));
    hwv.spad_words = max(cv.spad_words_req, Var(1.0));
    LayerPerf<Var> perfv = computePerf(cv, hwv);
    Var edp = perfv.energy_uj * perfv.latency;
    auto adj = tape.gradient(edp.id());

    double eps = 1e-5;
    int checked = 0;
    for (const auto &[key, leaf] : leaves) {
        auto [lvl, d] = key;
        double f0 = static_cast<double>(m0.factors.t(lvl, d));
        // Factors at exactly 1 or 2 sit on kinks of the gated refetch
        // rule (gate = clamp(f-1, 0, 1)); FD straddles the kink there
        // while AD takes a one-sided subgradient.
        if (f0 == 1.0 || f0 == 2.0)
            continue;
        // FD in the multiplicative direction: df = f0 * dscale.
        double fd = (edp_at(lvl, d, 1.0 + eps) -
                     edp_at(lvl, d, 1.0 - eps)) / (2.0 * eps * f0);
        double g_ad = adj[size_t(leaf.id())];
        if (std::abs(fd) < 1e-12 && std::abs(g_ad) < 1e-12)
            continue;
        EXPECT_NEAR(g_ad, fd,
                2e-3 * std::max(std::abs(fd), std::abs(g_ad)))
                << "factor level=" << lvl << " dim=" << dimName(d);
        ++checked;
    }
    EXPECT_GE(checked, 5); // enough informative coordinates exercised
}

TEST(ModelGradients, EnergyDecreasesWithMoreSpatialReuse)
{
    // Increasing the spatial K factor (holding others fixed) must not
    // increase input scratchpad reads — the broadcast discount grows.
    Layer l = Layer::conv("b", 1, 16, 64, 64);
    Factors<double> f;
    for (Dim d : kAllDims)
        f.t(kDram, d) = static_cast<double>(l.size(d));
    f.t(kDram, Dim::K) = 16.0;
    f.spatial_k = 4.0;
    OrderVec order = uniformOrder(LoopOrder::WS);
    LayerCounts<double> a = computeCounts(l, f, order);
    f.spatial_k = 8.0;
    f.t(kDram, Dim::K) = 8.0;
    LayerCounts<double> b = computeCounts(l, f, order);
    EXPECT_LT(b.accesses[kScratchpad], a.accesses[kScratchpad]);
}

TEST(Model, OrderPermutationsAreCompletePermutations)
{
    for (LoopOrder o : {LoopOrder::WS, LoopOrder::IS, LoopOrder::OS}) {
        const auto &perm = orderPermutation(o);
        std::array<bool, kNumDims> seen{};
        for (Dim d : perm)
            seen[size_t(static_cast<int>(d))] = true;
        for (bool s : seen)
            EXPECT_TRUE(s) << orderName(o);
        // The stationary tensor's irrelevant dims sit innermost.
        Tensor t = stationaryTensor(o);
        bool hit_relevant = false;
        for (int i = kNumDims - 1; i >= 0; --i) {
            if (dimRelevant(t, perm[size_t(i)]))
                hit_relevant = true;
            else
                EXPECT_FALSE(hit_relevant)
                        << orderName(o) << ": irrelevant dim outside "
                        << "a relevant one";
        }
    }
}

} // namespace
} // namespace dosa
