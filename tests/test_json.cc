/**
 * @file
 * Unit tests of the deterministic JSON layer (`util/json`): canonical
 * dump ordering, token-preserving numeric round-trips, strict parsing
 * of hostile input (fuzzed mutations and truncations never crash, and
 * depth bombs are rejected), and the strict `ObjectReader` decoder.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/json.hh"
#include "util/rng.hh"

namespace dosa::json {
namespace {

TEST(JsonValue, DumpSortsObjectKeysAndUsesNoWhitespace)
{
    Value v = Value::object();
    v.set("zeta", Value::number(int64_t(1)));
    v.set("alpha", Value::boolean(true));
    v.set("mid", Value::string("x"));
    EXPECT_EQ(v.dump(), "{\"alpha\":true,\"mid\":\"x\",\"zeta\":1}");
}

TEST(JsonValue, DumpPrettyKeepsShortSubtreesCompact)
{
    // A value whose compact form fits one line is emitted compactly
    // even at the top level.
    Value small = Value::object();
    small.set("b", Value::number(int64_t(2)));
    small.set("a", Value::number(int64_t(1)));
    EXPECT_EQ(small.dumpPretty(), "{\"a\":1,\"b\":2}");

    // A long array expands one element per line; short member objects
    // stay on their lines. Scalars never expand.
    Value row = Value::object();
    row.set("name", Value::string("layer"));
    row.set("c", Value::number(int64_t(64)));
    Value doc = Value::object();
    Value layers = Value::array();
    for (int i = 0; i < 8; ++i)
        layers.push(row);
    doc.set("layers", std::move(layers));
    doc.set("schema", Value::number(int64_t(1)));
    const std::string pretty = doc.dumpPretty();
    EXPECT_EQ(pretty,
            "{\n"
            "  \"layers\": [\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"},\n"
            "    {\"c\":64,\"name\":\"layer\"}\n"
            "  ],\n"
            "  \"schema\": 1\n"
            "}");
}

TEST(JsonValue, DumpPrettyParsesBackToTheSameValue)
{
    Value doc = Value::object();
    Value arr = Value::array();
    for (int i = 0; i < 40; ++i)
        arr.push(Value::number(int64_t(i)));
    doc.set("long", std::move(arr));
    doc.set("s", Value::string("with \"quotes\" and \n newline"));
    doc.set("d", Value::number(0.1));
    Value empty_obj = Value::object();
    doc.set("empty", empty_obj);
    doc.set("empty_arr", Value::array());

    Value back;
    std::string error;
    ASSERT_TRUE(parse(doc.dumpPretty(), back, error)) << error;
    EXPECT_EQ(back.dump(), doc.dump());
    // Pretty output is a pure function of the value: re-rendering the
    // parsed copy reproduces it byte for byte.
    EXPECT_EQ(back.dumpPretty(), doc.dumpPretty());
}

TEST(JsonValue, StringEscapes)
{
    Value v = Value::string(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");

    Value parsed;
    std::string error;
    ASSERT_TRUE(parse(v.dump(), parsed, error)) << error;
    EXPECT_EQ(parsed.asString(), v.asString());
}

TEST(JsonValue, NumberTokensAreCanonicalAndExact)
{
    EXPECT_EQ(Value::number(int64_t(-42)).dump(), "-42");
    EXPECT_EQ(Value::number(uint64_t(18446744073709551615ull)).dump(),
            "18446744073709551615");
    EXPECT_EQ(Value::number(uint64_t(18446744073709551615ull)).asUint(),
            18446744073709551615ull);

    // %.17g round-trips every finite double bit-for-bit.
    for (double d : {0.1, 1.0 / 3.0, 6.02214076e23, -5e-324,
                 std::numeric_limits<double>::max()}) {
        Value v = Value::number(d);
        EXPECT_EQ(v.asDouble(), d) << v.dump();
    }
}

Value
parseNumber(const std::string &token)
{
    Value v;
    std::string error;
    EXPECT_TRUE(parse(token, v, error)) << token << ": " << error;
    return v;
}

TEST(JsonValue, IntegerBoundariesDecodeExactly)
{
    // Integral tokens must decode without a double round-trip, which
    // is lossy above 2^53 (2^53 + 1 reads back as 2^53).
    EXPECT_EQ(parseNumber("9223372036854775807").asInt(),
            std::numeric_limits<int64_t>::max());
    EXPECT_EQ(parseNumber("-9223372036854775808").asInt(),
            std::numeric_limits<int64_t>::min());
    EXPECT_EQ(parseNumber("18446744073709551615").asUint(),
            std::numeric_limits<uint64_t>::max());
    EXPECT_EQ(parseNumber("9007199254740991").asInt(),
            9007199254740991); // 2^53 - 1
    EXPECT_EQ(parseNumber("9007199254740993").asInt(),
            9007199254740993); // 2^53 + 1: corrupted via strtod
    EXPECT_EQ(parseNumber("-9007199254740993").asInt(),
            -9007199254740993);
    EXPECT_EQ(parseNumber("9007199254740993").asUint(),
            9007199254740993ull);

    // Factory tokens survive the full dump -> parse -> accessor loop.
    for (int64_t i : {std::numeric_limits<int64_t>::min(),
                 std::numeric_limits<int64_t>::max(),
                 int64_t(9007199254740993)})
        EXPECT_EQ(parseNumber(Value::number(i).dump()).asInt(), i);
    EXPECT_EQ(parseNumber(
                      Value::number(std::numeric_limits<uint64_t>::max())
                              .dump())
                      .asUint(),
            std::numeric_limits<uint64_t>::max());
}

TEST(JsonValue, IntegerAccessorsSaturateOutOfRangeTokens)
{
    // Out-of-range integral tokens saturate instead of wrapping.
    EXPECT_EQ(parseNumber("18446744073709551615").asInt(),
            std::numeric_limits<int64_t>::max());
    EXPECT_EQ(parseNumber("9223372036854775808").asInt(),
            std::numeric_limits<int64_t>::max());
    EXPECT_EQ(parseNumber("-9223372036854775809").asInt(),
            std::numeric_limits<int64_t>::min());
    EXPECT_EQ(parseNumber("18446744073709551616").asUint(),
            std::numeric_limits<uint64_t>::max());
    // Negative tokens clamp to 0 through asUint (no wraparound).
    EXPECT_EQ(parseNumber("-1").asUint(), 0u);
    EXPECT_EQ(parseNumber("-9223372036854775808").asUint(), 0u);
    // Fractional/exponent tokens fall back to the truncated double
    // reading, saturating at the integer limits.
    EXPECT_EQ(parseNumber("3.9").asInt(), 3);
    EXPECT_EQ(parseNumber("-3.9").asInt(), -3);
    EXPECT_EQ(parseNumber("-2.5").asUint(), 0u);
    EXPECT_EQ(parseNumber("1e20").asInt(),
            std::numeric_limits<int64_t>::max());
}

TEST(JsonLocale, CommaDecimalLocaleCannotPerturbTheCodec)
{
    // std::strtod/printf honor LC_NUMERIC; the canonical codec must
    // not, or a host app calling setlocale breaks byte-stability.
    struct ScopedLocale
    {
        std::string saved;
        ScopedLocale() : saved(std::setlocale(LC_NUMERIC, nullptr)) {}
        ~ScopedLocale() { std::setlocale(LC_NUMERIC, saved.c_str()); }
    } scope;
    const char *applied = nullptr;
    for (const char *name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                 "fr_FR", "nl_NL.UTF-8", "es_ES.UTF-8"})
        if (std::setlocale(LC_NUMERIC, name) != nullptr) {
            applied = name;
            break;
        }
    if (applied == nullptr ||
            std::localeconv()->decimal_point[0] != ',')
        GTEST_SKIP() << "no comma-decimal locale installed";

    for (double d : {0.1, 2.5, -1.0 / 3.0, 6.02214076e23, -5e-324,
                 std::numeric_limits<double>::max()}) {
        Value v = Value::number(d);
        const std::string token = v.dump();
        EXPECT_EQ(token.find(','), std::string::npos) << token;
        Value parsed;
        std::string error;
        ASSERT_TRUE(parse(token, parsed, error)) << token << ": "
                                                 << error;
        EXPECT_EQ(parsed.asDouble(), d) << token;
        // serialize -> parse -> serialize is byte-stable under the
        // comma-decimal locale.
        EXPECT_EQ(parsed.dump(), token);
    }
    EXPECT_EQ(parseNumber("9007199254740993").asInt(),
            9007199254740993);
}

TEST(JsonValue, NonFiniteNumberPanics)
{
    EXPECT_DEATH((void)Value::number(
                         std::numeric_limits<double>::infinity()),
            "non-finite");
    EXPECT_DEATH((void)Value::number(std::nan("")), "non-finite");
}

TEST(JsonValue, TypeMismatchedAccessorPanics)
{
    EXPECT_DEATH((void)Value::string("x").asDouble(), "asDouble");
    EXPECT_DEATH((void)Value::number(1).asString(), "asString");
    EXPECT_DEATH((void)Value::object().elements(), "elements");
}

TEST(JsonParse, RoundTripIsBitwiseStable)
{
    const std::string doc =
            "{\"a\":[1,2.5,1e-3,-0,18446744073709551615],"
            "\"b\":{\"x\":null,\"y\":false},\"c\":\"s\"}";
    Value v;
    std::string error;
    ASSERT_TRUE(parse(doc, v, error)) << error;
    std::string once = v.dump();
    Value again;
    ASSERT_TRUE(parse(once, again, error)) << error;
    // Token preservation: "2.5", "1e-3" and "-0" survive verbatim.
    EXPECT_EQ(again.dump(), once);
    EXPECT_NE(once.find("1e-3"), std::string::npos);
    EXPECT_NE(once.find("-0"), std::string::npos);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "   ",
        "{",
        "[1,2",
        "{\"a\":}",
        "{\"a\":1,}",
        "{\"a\" 1}",
        "{\"a\":1}x",
        "{'a':1}",
        "[01]",
        "[1.]",
        "[1e]",
        "[+1]",
        "\"unterminated",
        "\"bad\\q\"",
        "\"\\u12g4\"",
        "tru",
        "nulll",
        "{\"a\":1,\"a\":2}",
    };
    for (const char *doc : bad) {
        Value v;
        std::string error;
        EXPECT_FALSE(parse(doc, v, error)) << doc;
        EXPECT_FALSE(error.empty()) << doc;
    }
}

TEST(JsonParse, RejectsDepthBombs)
{
    std::string bomb(100, '[');
    Value v;
    std::string error;
    EXPECT_FALSE(parse(bomb, v, error));
    EXPECT_NE(error.find("nesting"), std::string::npos);

    // 64 levels of nesting are still fine.
    std::string ok(60, '[');
    ok += "1";
    ok += std::string(60, ']');
    EXPECT_TRUE(parse(ok, v, error)) << error;
}

TEST(JsonParse, FuzzedMutationsNeverCrash)
{
    const std::string seed_doc =
            "{\"alg\":\"dosa\",\"nums\":[1,2.75,-3e4],"
            "\"nested\":{\"k\":\"v\\n\",\"t\":true}}";
    Rng rng(0xfeedface);
    size_t accepted = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        std::string doc = seed_doc;
        int edits = int(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            size_t pos = size_t(
                    rng.uniformInt(0, int64_t(doc.size()) - 1));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                doc[pos] = char(rng.uniformInt(0, 255));
                break;
              case 1:
                doc.erase(pos, 1);
                break;
              default:
                doc.insert(pos, 1, char(rng.uniformInt(0, 255)));
                break;
            }
            if (doc.empty())
                break;
        }
        Value v;
        std::string error;
        if (parse(doc, v, error)) {
            ++accepted;
            // Whatever parsed must re-dump parseable and stable.
            Value again;
            ASSERT_TRUE(parse(v.dump(), again, error))
                    << doc << " -> " << v.dump() << ": " << error;
            EXPECT_EQ(again.dump(), v.dump());
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
    // Sanity: the fuzzer is actually exercising both outcomes.
    EXPECT_LT(accepted, 2000u);
}

TEST(JsonParse, TruncationsNeverCrash)
{
    const std::string doc =
            "{\"a\":[1,2.5,\"x\\u0041\"],\"b\":{\"c\":null}}";
    for (size_t len = 0; len < doc.size(); ++len) {
        Value v;
        std::string error;
        EXPECT_FALSE(parse(doc.substr(0, len), v, error))
                << "prefix length " << len;
    }
    Value v;
    std::string error;
    EXPECT_TRUE(parse(doc, v, error)) << error;
}

TEST(JsonObjectReader, ReadsTypedMembersAndRejectsUnknownKeys)
{
    Value v;
    std::string parse_error;
    ASSERT_TRUE(parse("{\"i\":-7,\"u\":9,\"d\":2.5,\"b\":true,"
                      "\"s\":\"x\"}",
            v, parse_error));

    std::string error;
    ObjectReader r(v, "obj", error);
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0.0;
    bool b = false;
    std::string s;
    r.readInt("i", i);
    r.readUint("u", u);
    r.readDouble("d", d);
    r.readBool("b", b);
    r.readString("s", s);
    EXPECT_TRUE(r.finish()) << error;
    EXPECT_EQ(i, -7);
    EXPECT_EQ(u, 9u);
    EXPECT_EQ(d, 2.5);
    EXPECT_TRUE(b);
    EXPECT_EQ(s, "x");

    // Leftover key -> unknown-key rejection with the reader's path.
    std::string error2;
    ObjectReader r2(v, "obj", error2);
    r2.readInt("i", i);
    EXPECT_FALSE(r2.finish());
    EXPECT_NE(error2.find("unknown key"), std::string::npos);
    EXPECT_NE(error2.find("obj"), std::string::npos);
}

TEST(JsonObjectReader, FirstErrorSticksAndAbsentKeysAreDefaults)
{
    Value v;
    std::string parse_error;
    ASSERT_TRUE(parse("{\"n\":\"not a number\"}", v, parse_error));

    std::string error;
    ObjectReader r(v, "obj", error);
    int64_t n = 42;
    EXPECT_FALSE(r.readInt("n", n));
    EXPECT_EQ(n, 42); // untouched on type mismatch
    std::string unrelated = "keep";
    r.readString("absent", unrelated);
    EXPECT_EQ(unrelated, "keep");
    EXPECT_FALSE(r.finish());
    EXPECT_EQ(error, "obj: n: expected a number");

    // Non-object roots fail at construction.
    std::string error3;
    ObjectReader bad(Value::number(1), "root", error3);
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(error3.find("expected an object"), std::string::npos);
}

} // namespace
} // namespace dosa::json
