/**
 * @file
 * Multi-objective (Pareto) search tests: ParetoFront domination
 * semantics, the ObjectiveEngine's extra axis heads (scalar == batch
 * bitwise), spec validation of the pareto mode, serial == parallel
 * frontier determinism for all four searchers, and cancellation
 * invariants mid-frontier.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "api/search_api.hh"
#include "arch/area_model.hh"
#include "core/objective.hh"
#include "search/cosa_mapper.hh"
#include "search/search_common.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

ParetoObjectives
allAxes()
{
    ParetoObjectives axes;
    axes.area.enabled = true;
    axes.power.enabled = true;
    return axes;
}

ParetoPoint
point(double edp, double area, double power)
{
    ParetoPoint p;
    p.edp = edp;
    p.area_mm2 = area;
    p.power_w = power;
    return p;
}

// ---- ParetoFront unit semantics. ----------------------------------

TEST(ParetoFront, KeepsInsertionOrderAndPrunesDominated)
{
    ParetoFront front;
    front.configure(allAxes());
    EXPECT_TRUE(front.consider(point(10.0, 5.0, 2.0)));
    EXPECT_TRUE(front.consider(point(12.0, 4.0, 2.5))); // area trade
    EXPECT_TRUE(front.consider(point(11.0, 6.0, 1.0))); // power trade
    ASSERT_EQ(front.size(), 3u);
    EXPECT_DOUBLE_EQ(front.points()[0].edp, 10.0);
    EXPECT_DOUBLE_EQ(front.points()[1].edp, 12.0);
    EXPECT_DOUBLE_EQ(front.points()[2].edp, 11.0);

    // Strictly dominates the first two, ties nothing: both leave,
    // survivors keep their relative order, entrant appends.
    EXPECT_TRUE(front.consider(point(9.0, 4.0, 2.0)));
    ASSERT_EQ(front.size(), 2u);
    EXPECT_DOUBLE_EQ(front.points()[0].edp, 11.0);
    EXPECT_DOUBLE_EQ(front.points()[1].edp, 9.0);

    // Weakly dominated (worse on every axis): rejected, front intact.
    EXPECT_FALSE(front.wouldAccept(9.5, 4.5, 2.1));
    EXPECT_FALSE(front.consider(point(9.5, 4.5, 2.1)));
    EXPECT_EQ(front.size(), 2u);
}

TEST(ParetoFront, ExactTiesNeitherEnterNorPrune)
{
    ParetoFront front;
    front.configure(allAxes());
    EXPECT_TRUE(front.consider(point(10.0, 5.0, 2.0)));
    // A duplicate is weakly dominated by its twin: rejected.
    EXPECT_FALSE(front.consider(point(10.0, 5.0, 2.0)));
    ASSERT_EQ(front.size(), 1u);
    // Better on one axis, tied elsewhere: enters and prunes the
    // incumbent it strictly dominates.
    EXPECT_TRUE(front.consider(point(10.0, 5.0, 1.5)));
    ASSERT_EQ(front.size(), 1u);
    EXPECT_DOUBLE_EQ(front.points()[0].power_w, 1.5);
}

TEST(ParetoFront, DisabledAxesDoNotParticipate)
{
    ParetoObjectives axes; // edp only (area/power disabled)
    ParetoFront front;
    front.configure(axes);
    EXPECT_TRUE(front.consider(point(10.0, 5.0, 2.0)));
    // Better area/power but worse EDP: dominated on the only enabled
    // axis, so it does not enter.
    EXPECT_FALSE(front.consider(point(11.0, 1.0, 1.0)));
    // Better EDP prunes regardless of the disabled axes' values.
    EXPECT_TRUE(front.consider(point(9.0, 99.0, 99.0)));
    ASSERT_EQ(front.size(), 1u);
    EXPECT_DOUBLE_EQ(front.points()[0].edp, 9.0);
}

// ---- ObjectiveEngine: area/power heads. ---------------------------

std::vector<Layer>
engineLayers()
{
    return {Layer::gemm("a", 64, 32, 128), Layer::gemm("b", 32, 64, 64)};
}

std::vector<double>
startVector(const std::vector<Layer> &layers)
{
    const HardwareConfig hw{16, 32, 128};
    std::vector<double> x;
    for (const Layer &l : layers) {
        std::vector<double> xl = packMapping(cosaMap(l, hw));
        x.insert(x.end(), xl.begin(), xl.end());
    }
    return x;
}

TEST(ParetoObjective, EngineValuesAreaAndPowerWithEdp)
{
    std::vector<Layer> layers = engineLayers();
    std::vector<OrderVec> orders(layers.size(),
            uniformOrder(LoopOrder::WS));
    std::vector<double> x = startVector(layers);

    ObjectiveMode mode;
    mode.pareto = allAxes();
    ObjectiveEngine engine;
    const ObjectiveEval &ev = engine.eval(layers, x, orders,
            OrderStrategy::Fixed, mode);
    EXPECT_GT(ev.area_mm2, 0.0);
    EXPECT_GT(ev.power_w, 0.0);
    // The power proxy is total energy over total latency at a 1 GHz
    // clock: W = (uJ * 1e-6 J) / (cycles * 1e-9 s).
    EXPECT_DOUBLE_EQ(ev.power_w, ev.energy_uj / ev.latency * 1000.0);
    EXPECT_TRUE(std::isfinite(ev.loss));

    // Single-objective mode leaves the extra heads unvalued.
    ObjectiveMode single;
    ObjectiveEngine single_engine;
    const ObjectiveEval &sev = single_engine.eval(layers, x, orders,
            OrderStrategy::Fixed, single);
    EXPECT_EQ(sev.area_mm2, 0.0);
    EXPECT_EQ(sev.power_w, 0.0);
}

TEST(ParetoObjective, BatchMatchesScalarOnAllHeads)
{
    std::vector<Layer> layers = engineLayers();
    std::vector<OrderVec> orders(layers.size(),
            uniformOrder(LoopOrder::WS));
    std::vector<double> x0 = startVector(layers);
    Rng rng(17);
    std::vector<std::vector<double>> xs(5, x0);
    for (size_t k = 1; k < xs.size(); ++k)
        for (double &v : xs[k])
            v += rng.uniformReal(-0.2, 0.2);

    ObjectiveMode mode;
    mode.pareto = allAxes();
    ObjectiveEngine batch_engine;
    const std::vector<ObjectiveEval> &evs = batch_engine.evalBatch(
            layers, xs, orders, OrderStrategy::Fixed, mode);
    ASSERT_EQ(evs.size(), xs.size());
    ObjectiveEngine ref_engine;
    for (size_t k = 0; k < xs.size(); ++k) {
        const ObjectiveEval &ref = ref_engine.eval(layers, xs[k],
                orders, OrderStrategy::Fixed, mode);
        EXPECT_TRUE(bitEq(evs[k].loss, ref.loss));
        EXPECT_TRUE(bitEq(evs[k].edp, ref.edp));
        EXPECT_TRUE(bitEq(evs[k].area_mm2, ref.area_mm2));
        EXPECT_TRUE(bitEq(evs[k].power_w, ref.power_w));
    }
}

// ---- Spec validation of the pareto mode. --------------------------

SearchSpec
validBaseSpec()
{
    SearchSpec spec;
    spec.algorithm = "random";
    spec.workload = {Layer::gemm("a", 32, 32, 32)};
    return spec;
}

TEST(ParetoSpec, RejectsAllAxesDisabled)
{
    SearchSpec spec = validBaseSpec();
    spec.mode.pareto.edp.enabled = false;
    std::string error;
    EXPECT_FALSE(validateSpec(spec, error));
    EXPECT_NE(error.find("at least one"), std::string::npos) << error;
}

TEST(ParetoSpec, RejectsNonPositiveOrNonFiniteWeights)
{
    for (double bad : {0.0, -1.0,
                 std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::quiet_NaN()}) {
        SearchSpec spec = validBaseSpec();
        spec.mode.pareto.area.enabled = true;
        spec.mode.pareto.area.weight = bad;
        std::string error;
        EXPECT_FALSE(validateSpec(spec, error)) << bad;
        EXPECT_NE(error.find("weights"), std::string::npos) << error;
    }
    // A bad weight on a *disabled* axis is inert, not an error.
    SearchSpec spec = validBaseSpec();
    spec.mode.pareto.area.weight = -1.0;
    std::string error;
    EXPECT_TRUE(validateSpec(spec, error)) << error;
}

// ---- Serial == parallel frontier determinism. ---------------------

/** Records frontier events; optionally cancels after N samples. */
struct FrontierRecorder : SearchObserver
{
    std::vector<FrontierEvent> events;
    size_t samples_seen = 0;
    size_t cancel_after = 0; // 0 = run to completion

    bool
    onSample(const SampleEvent &) override
    {
        ++samples_seen;
        return cancel_after == 0 || samples_seen < cancel_after;
    }

    void
    onFrontier(const FrontierEvent &event) override
    {
        events.push_back(event);
    }
};

std::vector<Layer>
searchLayers()
{
    return {Layer::gemm("a", 128, 64, 256),
            Layer::conv("b", 3, 16, 32, 64)};
}

std::vector<SearchSpec>
paretoSpecs()
{
    std::vector<SearchSpec> specs(4);
    specs[0].algorithm = "dosa";
    specs[0].seed = 5;
    specs[0].options.set("start_points", 2)
            .set("steps_per_start", 20)
            .set("round_every", 10);
    specs[1].algorithm = "random";
    specs[1].seed = 3;
    specs[1].options.set("hw_designs", 4).set("mappings_per_hw", 25);
    specs[2].algorithm = "mapper";
    specs[2].seed = 17;
    specs[2].options.set("samples", 40);
    specs[2].fixed_hw = HardwareConfig{16, 32, 128};
    specs[3].algorithm = "bayesopt";
    specs[3].seed = 21;
    specs[3].options.set("warmup_samples", 6)
            .set("total_samples", 14)
            .set("hw_candidates", 3)
            .set("map_candidates", 4);
    for (SearchSpec &spec : specs) {
        spec.workload = searchLayers();
        spec.mode.pareto = allAxes();
    }
    return specs;
}

void
expectSameEvents(const std::vector<FrontierEvent> &a,
                 const std::vector<FrontierEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_TRUE(bitEq(a[i].edp, b[i].edp));
        EXPECT_TRUE(bitEq(a[i].area_mm2, b[i].area_mm2));
        EXPECT_TRUE(bitEq(a[i].power_w, b[i].power_w));
        EXPECT_EQ(a[i].front_size, b[i].front_size);
    }
}

TEST(ParetoDeterminism, SerialEqualsParallelForAllSearchers)
{
    for (SearchSpec spec : paretoSpecs()) {
        spec.jobs = 1;
        FrontierRecorder serial;
        SearchReport serial_report = runSearch(spec, &serial);

        spec.jobs = 4;
        FrontierRecorder parallel;
        SearchReport parallel_report = runSearch(spec, &parallel);

        SCOPED_TRACE(spec.algorithm);
        EXPECT_FALSE(serial.events.empty());
        expectSameEvents(serial.events, parallel.events);

        const ParetoFront &sf = serial_report.search.frontier;
        const ParetoFront &pf = parallel_report.search.frontier;
        ASSERT_EQ(sf.size(), pf.size());
        for (size_t i = 0; i < sf.size(); ++i) {
            const ParetoPoint &sp = sf.points()[i];
            const ParetoPoint &pp = pf.points()[i];
            EXPECT_EQ(sp.sample_index, pp.sample_index);
            EXPECT_TRUE(bitEq(sp.edp, pp.edp));
            EXPECT_TRUE(bitEq(sp.area_mm2, pp.area_mm2));
            EXPECT_TRUE(bitEq(sp.power_w, pp.power_w));
            EXPECT_EQ(sp.hw, pp.hw);
            EXPECT_EQ(sp.mappings, pp.mappings);
        }
        EXPECT_TRUE(bitEq(serial_report.search.best_edp,
                parallel_report.search.best_edp));
    }
}

TEST(ParetoDeterminism, FrontierPointsAreMutuallyNonDominated)
{
    for (SearchSpec spec : paretoSpecs()) {
        spec.jobs = 3;
        SearchReport report = runSearch(spec);
        const auto &pts = report.search.frontier.points();
        SCOPED_TRACE(spec.algorithm);
        EXPECT_FALSE(pts.empty());
        for (size_t i = 0; i < pts.size(); ++i) {
            EXPECT_LT(pts[i].sample_index,
                    report.search.trace.size());
            for (size_t j = 0; j < pts.size(); ++j) {
                if (i == j)
                    continue;
                // No point may weakly dominate another.
                EXPECT_FALSE(pts[i].edp <= pts[j].edp &&
                        pts[i].area_mm2 <= pts[j].area_mm2 &&
                        pts[i].power_w <= pts[j].power_w)
                        << i << " dominates " << j;
            }
        }
    }
}

TEST(ParetoDeterminism, SingleObjectiveRunsStreamNoFrontier)
{
    SearchSpec spec = paretoSpecs()[1];
    spec.mode.pareto = ParetoObjectives{}; // edp only: not active
    spec.jobs = 2;
    FrontierRecorder recorder;
    SearchReport report = runSearch(spec, &recorder);
    EXPECT_TRUE(recorder.events.empty());
    EXPECT_TRUE(report.search.frontier.empty());
    EXPECT_GT(recorder.samples_seen, 0u);
}

// ---- Cancellation mid-frontier. -----------------------------------

TEST(ParetoCancellation, InvariantsHoldAfterMidFrontierStop)
{
    for (SearchSpec spec : paretoSpecs()) {
        spec.jobs = 2;
        FrontierRecorder recorder;
        recorder.cancel_after = 10;
        SearchReport report = runSearch(spec, &recorder);
        SCOPED_TRACE(spec.algorithm);

        const SearchResult &r = report.search;
        // Recording stops within one sample of the cancel: the trace
        // length equals the number of onSample calls.
        ASSERT_EQ(r.trace.size(), recorder.cancel_after);
        ASSERT_EQ(r.trace.size(), recorder.samples_seen);
        // The trace is the monotone best-so-far stream and best_edp
        // is its minimum even when the stop lands mid-frontier.
        EXPECT_TRUE(bitEq(r.best_edp,
                *std::min_element(r.trace.begin(), r.trace.end())));
        EXPECT_TRUE(bitEq(r.best_edp, r.trace.back()));
        // Every frontier point (and event) refers to a sample that
        // actually landed in the truncated trace.
        for (const ParetoPoint &p : r.frontier.points())
            EXPECT_LT(p.sample_index, r.trace.size());
        for (const FrontierEvent &e : recorder.events)
            EXPECT_LT(e.index, r.trace.size());
    }
}

} // namespace
} // namespace dosa
