/**
 * @file
 * Tests for the Gemmini-RTL substitute: determinism, physical
 * plausibility (RTL >= idealized analytical latency), sensitivity to
 * the modelled implementation effects, and the correlation structure
 * the Section-6.5 experiments rely on (good mappings predicted well,
 * random mappings diverging).
 */

#include <gtest/gtest.h>

#include "arch/baselines.hh"
#include "mapping/rounding.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "search/search_common.hh"
#include "stats/stats.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(Rtl, Deterministic)
{
    HardwareConfig hw = gemminiDefault().config;
    Layer l = Layer::conv("d", 3, 14, 64, 64);
    Mapping m = cosaMap(l, hw);
    EXPECT_DOUBLE_EQ(rtlLatency(l, m, hw), rtlLatency(l, m, hw));
}

TEST(Rtl, NeverFasterThanAnalytical)
{
    // All modelled effects add latency on top of the idealized
    // roofline; RTL latency must dominate it.
    HardwareConfig hw = gemminiDefault().config;
    Rng rng(5);
    for (const Layer &l : resnet50().layers) {
        Mapping m = randomValidMapping(l, hw, rng);
        double analytical = referenceEval(l, m, hw).latency;
        double rtl = rtlLatency(l, m, hw);
        EXPECT_GE(rtl, analytical * 0.999) << l.str();
    }
}

TEST(Rtl, FinerTilingPaysMoreDmaOverhead)
{
    HardwareConfig hw = gemminiDefault().config;
    Layer l = Layer::conv("t", 1, 16, 64, 64);
    // Coarse mapping: big on-chip tiles.
    Mapping coarse = cosaMap(l, hw);
    // Fine mapping: everything iterates at DRAM, unit tiles.
    Mapping fine = minimalMapping(l);
    double coarse_gap = rtlLatency(l, coarse, hw) /
            referenceEval(l, coarse, hw).latency;
    double fine_gap = rtlLatency(l, fine, hw) /
            referenceEval(l, fine, hw).latency;
    EXPECT_GT(fine_gap, coarse_gap);
}

TEST(Rtl, UnfitMappingsPenalized)
{
    HardwareConfig tiny{4, 1, 2};
    HardwareConfig big{64, 512, 1024};
    Layer l = Layer::conv("uf", 3, 28, 64, 64);
    Mapping m = cosaMap(l, big); // big tiles: cannot fit `tiny`
    RefEval ev = referenceEval(l, m, tiny);
    ASSERT_FALSE(ev.fits);
    EXPECT_GT(rtlLatency(l, m, tiny), 5.0 * ev.latency);
}

TEST(Rtl, BankConflictSensitivity)
{
    // Identical mappings except for the spatial C fanout parity.
    HardwareConfig hw{16, 64, 256};
    Layer l = Layer::conv("bk", 1, 16, 60, 64);
    Factors<double> f;
    f.spatial_c = 15.0; // 15 % 4 != 0 -> conflict-prone
    Mapping odd = roundToValid(f, l, uniformOrder(LoopOrder::WS),
            hw.pe_dim);
    Factors<double> g;
    g.spatial_c = 12.0; // multiple of 4 banks
    Mapping even = roundToValid(g, l, uniformOrder(LoopOrder::WS),
            hw.pe_dim);
    ASSERT_EQ(odd.factors.spatial_c % 4, 3);
    ASSERT_EQ(even.factors.spatial_c % 4, 0);
    // The effect only shows when the scratchpad is the bottleneck; at
    // minimum the simulator must not crash and must stay ordered
    // sensibly relative to analytical.
    EXPECT_GT(rtlLatency(l, odd, hw), 0.0);
    EXPECT_GT(rtlLatency(l, even, hw), 0.0);
}

TEST(Rtl, AnalyticalCorrelatesBetterOnGoodMappingsThanRandom)
{
    // The premise of Figs. 10-11: analytical predictions track RTL
    // well on performant (CoSA/DOSA-like) mappings and worse on
    // random mappings.
    HardwareConfig hw = gemminiDefault().config;
    Rng rng(9);
    std::vector<double> rtl_good, ana_good, rtl_rand, ana_rand;
    for (const Layer &l : resnet50().layers) {
        Mapping good = cosaMap(l, hw);
        rtl_good.push_back(std::log(rtlLatency(l, good, hw)));
        ana_good.push_back(
                std::log(referenceEval(l, good, hw).latency));
        Mapping rnd = randomValidMapping(l, hw, rng);
        rtl_rand.push_back(std::log(rtlLatency(l, rnd, hw)));
        ana_rand.push_back(
                std::log(referenceEval(l, rnd, hw).latency));
    }
    double rho_good = spearman(ana_good, rtl_good);
    double rho_rand = spearman(ana_rand, rtl_rand);
    EXPECT_GT(rho_good, 0.9);
    EXPECT_GT(rho_rand, 0.3); // still correlated, but weaker
    EXPECT_GE(rho_good, rho_rand - 0.05);
}

TEST(Rtl, ScalesWithWorkloadSize)
{
    HardwareConfig hw = gemminiDefault().config;
    Layer small = Layer::conv("s", 1, 8, 16, 16);
    Layer large = Layer::conv("l", 3, 56, 128, 128);
    double lat_small = rtlLatency(small, cosaMap(small, hw), hw);
    double lat_large = rtlLatency(large, cosaMap(large, hw), hw);
    EXPECT_GT(lat_large, 50.0 * lat_small);
}

} // namespace
} // namespace dosa
