/**
 * @file
 * Tests of the search service stack: canonical SearchSpec JSON
 * round-trips (fixed and fuzzed), strict wire decoding of hostile
 * request/frame bytes, the fatal-by-contract spec loaders, and the
 * service core over the in-process bus — byte-identical streaming
 * equivalence with direct `runSearch` for all four searchers
 * (anchored to the tests/golden/ fixtures), concurrent-determinism,
 * fault injection (client disconnect, deadline expiry, queue-full
 * admission, shutdown) and a TCP end-to-end pass.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/search_api.hh"
#include "api/spec_json.hh"
#include "service/search_service.hh"
#include "service/service_bus.hh"
#include "service/tcp_server.hh"
#include "service/wire.hh"
#include "util/rng.hh"
#include "workload/layer.hh"
#include "workload/workload_registry.hh"

namespace dosa {
namespace {

using service::Frame;
using service::Request;
using service::SearchService;
using service::ServiceBus;
using service::ServiceConfig;

/** The canonical two-layer workload of the golden-trace fixtures. */
std::vector<Layer>
goldenLayers()
{
    return {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
}

// ---- The facade specs equivalent to the golden fixture configs
//      (mirrors test_api.cc; the service must reproduce them).

SearchSpec
goldenDosaSpec()
{
    SearchSpec spec;
    spec.algorithm = "dosa";
    spec.workload = goldenLayers();
    spec.seed = 5;
    spec.options.set("start_points", 3)
            .set("steps_per_start", 30)
            .set("round_every", 15);
    return spec;
}

SearchSpec
goldenRandomSpec()
{
    SearchSpec spec;
    spec.algorithm = "random";
    spec.workload = goldenLayers();
    spec.seed = 3;
    spec.options.set("hw_designs", 4).set("mappings_per_hw", 30);
    return spec;
}

SearchSpec
goldenMapperSpec()
{
    SearchSpec spec;
    spec.algorithm = "mapper";
    spec.workload = goldenLayers();
    spec.seed = 17;
    spec.options.set("samples", 40);
    return spec;
}

SearchSpec
goldenBayesOptSpec()
{
    SearchSpec spec;
    spec.algorithm = "bayesopt";
    spec.workload = goldenLayers();
    spec.seed = 21;
    spec.options.set("warmup_samples", 6)
            .set("total_samples", 14)
            .set("hw_candidates", 3)
            .set("map_candidates", 4);
    return spec;
}

std::vector<SearchSpec>
goldenSpecs()
{
    return {goldenDosaSpec(), goldenRandomSpec(), goldenMapperSpec(),
            goldenBayesOptSpec()};
}

/** Minimal reader of the tests/golden/ fixture format. */
struct Golden
{
    std::vector<double> trace;
    double best_edp = 0.0;
    long long pe_dim = 0, accum_kib = 0, spad_kib = 0;
};

void
readGolden(const std::string &name, Golden &g)
{
    const std::string path =
            std::string(DOSA_SOURCE_DIR) + "/tests/golden/" + name +
            ".trace";
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << "missing fixture " << path;
    char line[256];
    size_t n = 0;
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr); // comment
    ASSERT_EQ(std::fscanf(f, "trace %zu\n", &n), 1);
    g.trace.resize(n);
    for (size_t i = 0; i < n; ++i) {
        ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
        g.trace[i] = std::strtod(line, nullptr);
    }
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    g.best_edp =
            std::strtod(line + std::strlen("best_edp "), nullptr);
    ASSERT_EQ(std::fscanf(f, "best_hw %lld %lld %lld", &g.pe_dim,
                      &g.accum_kib, &g.spad_kib),
            3);
    std::fclose(f);
}

/**
 * Observer producing exactly the frames the service's streaming
 * bridge would: the reference stream for equivalence tests.
 */
class FrameRecorder : public SearchObserver
{
  public:
    explicit FrameRecorder(std::string id) : id_(std::move(id)) {}

    void
    onPhase(const char *phase) override
    {
        frames.push_back(service::phaseFrame(id_, phase));
    }

    bool
    onSample(const SampleEvent &event) override
    {
        frames.push_back(service::sampleFrame(id_, event));
        return true;
    }

    void
    onImprovement(const SampleEvent &event) override
    {
        frames.push_back(service::improvementFrame(id_, event));
    }

    void
    onFrontier(const FrontierEvent &event) override
    {
        frames.push_back(service::frontierFrame(id_, event));
    }

    std::vector<std::string> frames;

  private:
    std::string id_;
};

/** Direct-run reference stream for `spec`, terminal `done` included. */
std::vector<std::string>
expectedStream(const std::string &id, const SearchSpec &spec)
{
    FrameRecorder recorder(id);
    SearchReport report = runSearch(spec, &recorder);
    recorder.frames.push_back(service::doneFrame(id, report));
    return recorder.frames;
}

bool
isTerminal(const std::string &line)
{
    Frame f;
    std::string error;
    if (!service::decodeFrame(line, f, error))
        return true; // malformed replies end a stream in tests
    return f.kind == Frame::Kind::Done ||
           f.kind == Frame::Kind::Error ||
           f.kind == Frame::Kind::Pong ||
           f.kind == Frame::Kind::Stats;
}

/** Drain one client's reply stream through its terminal frame. */
std::vector<std::string>
collectStream(ServiceBus::Client &client)
{
    std::vector<std::string> frames;
    std::string frame;
    while (client.receive(frame)) {
        frames.push_back(frame);
        if (isTerminal(frame))
            break;
    }
    return frames;
}

/** Decoded terminal frame of a collected stream. */
Frame
terminalFrame(const std::vector<std::string> &frames)
{
    Frame f;
    std::string error;
    EXPECT_FALSE(frames.empty());
    if (!frames.empty()) {
        EXPECT_TRUE(service::decodeFrame(frames.back(), f, error))
                << frames.back() << ": " << error;
    }
    return f;
}

// ---------------------------------------------------------------
// SearchSpec JSON: canonical round-trips.
// ---------------------------------------------------------------

TEST(SpecJson, GoldenSpecsRoundTripBitwise)
{
    for (const SearchSpec &spec : goldenSpecs()) {
        const std::string once = specToJson(spec);
        SearchSpec decoded;
        std::string error;
        ASSERT_TRUE(specFromJson(once, decoded, error))
                << spec.algorithm << ": " << error;
        EXPECT_EQ(specToJson(decoded), once) << spec.algorithm;
        // And the decoded spec is semantically intact.
        EXPECT_EQ(decoded.algorithm, spec.algorithm);
        EXPECT_EQ(decoded.seed, spec.seed);
        EXPECT_EQ(decoded.workload.size(), spec.workload.size());
    }
}

/** A randomized but decodable spec (options from the registry). */
SearchSpec
randomSpec(Rng &rng)
{
    SearchSpec spec;
    const std::vector<std::string> algos = Search::algorithms();
    spec.algorithm = algos[size_t(rng.uniformInt(0,
            int64_t(algos.size()) - 1))];
    int layers = int(rng.uniformInt(1, 3));
    for (int i = 0; i < layers; ++i) {
        if (rng.bernoulli(0.5))
            spec.workload.push_back(Layer::gemm(
                    "g" + std::to_string(i),
                    rng.uniformInt(1, 512), rng.uniformInt(1, 512),
                    rng.uniformInt(1, 512)));
        else
            spec.workload.push_back(Layer::conv(
                    "c" + std::to_string(i), rng.uniformInt(1, 7),
                    rng.uniformInt(1, 64), rng.uniformInt(1, 128),
                    rng.uniformInt(1, 128), rng.uniformInt(1, 2)));
    }
    // Sometimes a by-name spec: the name must survive the trip even
    // when it is not (yet) registered on the decoding side.
    if (rng.bernoulli(0.2)) {
        spec.workload.clear();
        spec.workload_name =
                "net-" + std::to_string(rng.uniformInt(0, 99));
    }
    // Full-range 64-bit seeds must survive the trip.
    spec.seed = (uint64_t(rng.uniformInt(0, 0xffffffff)) << 32) |
            uint64_t(rng.uniformInt(0, 0xffffffff));
    spec.jobs = int(rng.uniformInt(0, 8));
    spec.cache = static_cast<CacheMode>(rng.uniformInt(0, 2));
    spec.budget.max_samples = int(rng.uniformInt(0, 1000000));
    spec.budget.deadline_s = rng.bernoulli(0.5)
            ? 0.0
            : rng.uniformReal(1e-17, 1e6);
    spec.mode.fix_pe = rng.bernoulli(0.5);
    spec.mode.pe_dim = rng.uniformInt(1, 64);
    spec.mode.penalty_weight = rng.uniformReal(1e-9, 1e3);
    spec.mode.max_area_mm2 = rng.bernoulli(0.5)
            ? 0.0
            : rng.uniformReal(0.1, 100.0);
    int weights = int(rng.uniformInt(0, 3));
    for (int i = 0; i < weights; ++i)
        spec.mode.layer_weights.push_back(
                rng.uniformReal(1e-6, 10.0));
    // Multi-objective mode fields, including combinations validation
    // would reject — the codec must round-trip them regardless.
    spec.mode.pareto.edp.enabled = rng.bernoulli(0.8);
    spec.mode.pareto.area.enabled = rng.bernoulli(0.5);
    spec.mode.pareto.power.enabled = rng.bernoulli(0.5);
    for (ParetoAxis *axis : {&spec.mode.pareto.edp,
                 &spec.mode.pareto.area, &spec.mode.pareto.power})
        if (rng.bernoulli(0.6)) {
            double exotic[] = {rng.uniformReal(1e-6, 10.0),
                    rng.uniformReal(-1e300, 1e300), 4.9e-324,
                    1.0 / 3.0};
            axis->weight = exotic[rng.uniformInt(0, 3)];
        }
    const Searcher *searcher = Search::find(spec.algorithm);
    for (std::string_view key : searcher->optionKeys())
        if (rng.bernoulli(0.6)) {
            // Exotic magnitudes: tiny, huge, negative, denormal.
            double exotic[] = {rng.uniformReal(0.0, 100.0),
                    rng.uniformReal(-1e300, 1e300), 4.9e-324,
                    1.0 / 3.0};
            spec.options.set(std::string(key),
                    exotic[rng.uniformInt(0, 3)]);
        }
    spec.fixed_hw.pe_dim = rng.uniformInt(1, 64);
    spec.fixed_hw.accum_kib = rng.uniformInt(1, 4096);
    spec.fixed_hw.spad_kib = rng.uniformInt(1, 4096);
    return spec;
}

TEST(SpecJson, FuzzedSpecsRoundTripBitwise)
{
    Rng rng(0xD05A5EED);
    for (int iter = 0; iter < 200; ++iter) {
        SearchSpec spec = randomSpec(rng);
        const std::string once = specToJson(spec);
        SearchSpec decoded;
        std::string error;
        ASSERT_TRUE(specFromJson(once, decoded, error))
                << once << ": " << error;
        ASSERT_EQ(specToJson(decoded), once) << "iteration " << iter;
        EXPECT_EQ(decoded.seed, spec.seed);
        EXPECT_EQ(decoded.budget.max_samples,
                spec.budget.max_samples);
    }
}

TEST(SpecJson, RejectsUnknownKeysTypeMismatchesAndBadEnums)
{
    SearchSpec decoded;
    std::string error;

    EXPECT_FALSE(specFromJson("{\"bogus\":1}", decoded, error));
    EXPECT_NE(error.find("unknown key \"bogus\""), std::string::npos);

    EXPECT_FALSE(specFromJson("{\"algorithm\":7}", decoded, error));
    EXPECT_NE(error.find("algorithm"), std::string::npos);

    EXPECT_FALSE(specFromJson("{\"cache\":\"sometimes\"}", decoded,
            error));
    EXPECT_NE(error.find("cache"), std::string::npos);

    EXPECT_FALSE(specFromJson(
            "{\"workload\":[{\"name\":\"x\",\"r\":\"no\"}]}", decoded,
            error));
    EXPECT_NE(error.find("workload[0]"), std::string::npos);

    EXPECT_FALSE(specFromJson("{\"budget\":{\"max_samples\":true}}",
            decoded, error));
    EXPECT_NE(error.find("budget"), std::string::npos);

    EXPECT_FALSE(specFromJson("not json at all", decoded, error));
    EXPECT_FALSE(error.empty());
}

TEST(SpecJson, MutatedCanonicalBytesNeverCrashTheDecoder)
{
    const std::string canon = specToJson(goldenDosaSpec());
    Rng rng(0xBADC0DE5);
    size_t accepted = 0;
    for (int iter = 0; iter < 1000; ++iter) {
        std::string doc = canon;
        int edits = int(rng.uniformInt(1, 3));
        for (int e = 0; e < edits && !doc.empty(); ++e) {
            size_t pos = size_t(
                    rng.uniformInt(0, int64_t(doc.size()) - 1));
            if (rng.bernoulli(0.5))
                doc[pos] = char(rng.uniformInt(0, 255));
            else
                doc.erase(pos, 1);
        }
        SearchSpec decoded;
        std::string error;
        if (specFromJson(doc, decoded, error))
            ++accepted;
        else
            EXPECT_FALSE(error.empty());
    }
    EXPECT_LT(accepted, 1000u);

    // Every truncation of the canonical bytes is rejected cleanly.
    for (size_t len = 0; len < canon.size(); ++len) {
        SearchSpec decoded;
        std::string error;
        EXPECT_FALSE(specFromJson(canon.substr(0, len), decoded,
                error))
                << "prefix length " << len;
    }
}

TEST(SpecJsonDeathTest, MustSpecFromJsonIsFatalOnBadFixtures)
{
    EXPECT_EXIT((void)mustSpecFromJson("{\"algorithm\":"),
            ::testing::ExitedWithCode(1), "mustSpecFromJson");
    EXPECT_EXIT((void)mustSpecFromJson("{\"no_such_field\":1}"),
            ::testing::ExitedWithCode(1), "unknown key");
}

TEST(SpecJsonDeathTest, EncoderPanicsOnProcessLocalFields)
{
    SearchSpec spec = goldenMapperSpec();
    spec.scorer = LatencyScorer([](const Layer &, const Mapping &,
                                        const HardwareConfig &) {
        return 1.0;
    });
    EXPECT_DEATH((void)specToJson(spec), "process-local");
}

// ---------------------------------------------------------------
// Wire protocol: request and frame codecs.
// ---------------------------------------------------------------

TEST(Wire, RequestsRoundTrip)
{
    const SearchSpec spec = goldenRandomSpec();
    Request req;
    std::string error;

    ASSERT_TRUE(service::decodeRequest(
            service::encodeSearchRequest("r-1", spec), req, error))
            << error;
    EXPECT_EQ(req.kind, Request::Kind::Search);
    EXPECT_EQ(req.id, "r-1");
    EXPECT_EQ(specToJson(req.spec), specToJson(spec));

    ASSERT_TRUE(service::decodeRequest(
            service::encodeStatsRequest("r-2"), req, error))
            << error;
    EXPECT_EQ(req.kind, Request::Kind::Stats);
    EXPECT_EQ(req.id, "r-2");

    ASSERT_TRUE(service::decodeRequest(
            service::encodePingRequest("r-3"), req, error))
            << error;
    EXPECT_EQ(req.kind, Request::Kind::Ping);
    EXPECT_EQ(req.id, "r-3");
}

TEST(Wire, RequestDecodingIsStrictAndRecoversTheId)
{
    Request req;
    std::string error;

    EXPECT_FALSE(service::decodeRequest("garbage", req, error));
    EXPECT_TRUE(req.id.empty());

    EXPECT_FALSE(service::decodeRequest(
            "{\"endpoint\":\"teleport\",\"id\":\"x\"}", req, error));
    EXPECT_EQ(req.id, "x"); // recovered for the error reply
    EXPECT_NE(error.find("unknown endpoint"), std::string::npos);

    EXPECT_FALSE(service::decodeRequest(
            "{\"endpoint\":\"ping\",\"id\":\"x\",\"extra\":1}", req,
            error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);

    EXPECT_FALSE(service::decodeRequest(
            "{\"endpoint\":\"search\",\"id\":\"x\"}", req, error));
    EXPECT_NE(error.find("spec"), std::string::npos);

    EXPECT_FALSE(service::decodeRequest("{\"endpoint\":\"ping\"}",
            req, error));
    EXPECT_NE(error.find("id"), std::string::npos);
}

TEST(Wire, FramesRoundTrip)
{
    Frame f;
    std::string error;

    ASSERT_TRUE(service::decodeFrame(
            service::phaseFrame("a", "descent"), f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Phase);
    EXPECT_EQ(f.id, "a");
    EXPECT_EQ(f.phase, "descent");

    SampleEvent ev{41, 2.5e-7, 1.25e-7, false};
    ASSERT_TRUE(service::decodeFrame(service::sampleFrame("a", ev),
            f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Sample);
    EXPECT_EQ(f.sample.index, 41u);
    EXPECT_EQ(f.sample.edp, 2.5e-7);
    EXPECT_EQ(f.sample.best_edp, 1.25e-7);
    EXPECT_FALSE(f.sample.improved);

    // +inf EDP (a rejected design) survives via the string form.
    SampleEvent inf_ev{0,
            std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(), false};
    ASSERT_TRUE(service::decodeFrame(
            service::improvementFrame("a", inf_ev), f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Improvement);
    EXPECT_TRUE(std::isinf(f.sample.edp));

    FrontierEvent front_ev{17, 2.5e-7, 3.75, 0.5, 4};
    ASSERT_TRUE(service::decodeFrame(
            service::frontierFrame("a", front_ev), f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Frontier);
    EXPECT_EQ(f.frontier.index, 17u);
    EXPECT_EQ(f.frontier.edp, 2.5e-7);
    EXPECT_EQ(f.frontier.area_mm2, 3.75);
    EXPECT_EQ(f.frontier.power_w, 0.5);
    EXPECT_EQ(f.frontier.front_size, 4u);

    SearchReport report;
    report.search.best_edp = 3.25e-6;
    report.search.best_hw = HardwareConfig{32, 64, 256};
    report.search.best_mappings.push_back(Mapping{});
    report.search.trace = {5.0, 4.0, 3.25e-6};
    report.best_start_edp = 7.5;
    report.best_start_hw = HardwareConfig{16, 32, 128};
    // A multi-objective run's final front rides the done frame
    // (metrics and hardware; mappings stay in-process).
    ParetoObjectives axes;
    axes.area.enabled = true;
    axes.power.enabled = true;
    report.search.frontier.configure(axes);
    ParetoPoint point;
    point.edp = 3.25e-6;
    point.area_mm2 = 12.5;
    point.power_w = 0.75;
    point.sample_index = 2;
    point.hw = HardwareConfig{32, 64, 256};
    ASSERT_TRUE(report.search.frontier.consider(point));
    ASSERT_TRUE(service::decodeFrame(
            service::doneFrame("a", report), f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Done);
    EXPECT_EQ(f.best_edp, 3.25e-6);
    EXPECT_EQ(f.best_start_edp, 7.5);
    EXPECT_EQ(f.best_hw.pe_dim, 32);
    EXPECT_EQ(f.best_start_hw.spad_kib, 128);
    EXPECT_EQ(f.samples, 3u);
    ASSERT_EQ(f.best_mappings.size(), 1u);
    EXPECT_EQ(f.best_mappings[0], Mapping{});
    ASSERT_EQ(f.pareto_front.size(), 1u);
    EXPECT_EQ(f.pareto_front[0].index, 2u);
    EXPECT_EQ(f.pareto_front[0].edp, 3.25e-6);
    EXPECT_EQ(f.pareto_front[0].area_mm2, 12.5);
    EXPECT_EQ(f.pareto_front[0].power_w, 0.75);
    EXPECT_EQ(f.pareto_front[0].hw, (HardwareConfig{32, 64, 256}));

    ASSERT_TRUE(service::decodeFrame(
            service::errorFrame("a", service::errc::queue_full,
                    "full"),
            f, error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Error);
    EXPECT_EQ(f.code, "queue_full");
    EXPECT_EQ(f.message, "full");

    ASSERT_TRUE(service::decodeFrame(service::pongFrame("a"), f,
            error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Pong);

    service::EndpointStats ep;
    ep.name = "search";
    ep.requests = 3;
    ep.errors = 1;
    ep.last_error = "bad";
    ep.processing_s = Summary::of({0.25, 0.5, 1.0});
    ASSERT_TRUE(service::decodeFrame(
            service::statsFrame("a", "svc", "1.0.0", {ep}), f,
            error))
            << error;
    EXPECT_EQ(f.kind, Frame::Kind::Stats);
    EXPECT_EQ(f.service_name, "svc");
    ASSERT_EQ(f.endpoints.size(), 1u);
    EXPECT_EQ(f.endpoints[0].requests, 3u);
    EXPECT_EQ(f.endpoints[0].processing_s.n, 3u);
    EXPECT_EQ(f.endpoints[0].processing_s.p50, 0.5);
}

TEST(Wire, FrameDecodingIsStrict)
{
    Frame f;
    std::string error;
    EXPECT_FALSE(service::decodeFrame("{}", f, error));
    EXPECT_FALSE(service::decodeFrame(
            "{\"event\":\"pong\",\"id\":\"a\",\"x\":1}", f, error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);
    EXPECT_FALSE(service::decodeFrame(
            "{\"event\":\"sample\",\"id\":\"a\"}", f, error));
    EXPECT_FALSE(service::decodeFrame(
            "{\"event\":\"warp\",\"id\":\"a\"}", f, error));
    EXPECT_NE(error.find("unknown event"), std::string::npos);
}

// ---------------------------------------------------------------
// Service over the in-process bus.
// ---------------------------------------------------------------

TEST(Service, PingAndStatsAnswerInline)
{
    SearchService svc;
    ServiceBus bus(svc);
    ServiceBus::Client client = bus.connect();

    client.send(service::encodePingRequest("p1"));
    std::vector<std::string> pong = collectStream(client);
    ASSERT_EQ(pong.size(), 1u);
    Frame f = terminalFrame(pong);
    EXPECT_EQ(f.kind, Frame::Kind::Pong);
    EXPECT_EQ(f.id, "p1");

    client.send(service::encodeStatsRequest("s1"));
    Frame stats = terminalFrame(collectStream(client));
    ASSERT_EQ(stats.kind, Frame::Kind::Stats);
    EXPECT_EQ(stats.service_name, "dosa-search");
    ASSERT_EQ(stats.endpoints.size(), 4u); // sorted by name
    EXPECT_EQ(stats.endpoints[0].name, "_protocol");
    EXPECT_EQ(stats.endpoints[1].name, "ping");
    EXPECT_EQ(stats.endpoints[2].name, "search");
    EXPECT_EQ(stats.endpoints[3].name, "stats");
    EXPECT_EQ(stats.endpoints[1].requests, 1u); // the ping above
}

TEST(Service, MalformedAndInvalidRequestsGetTypedErrors)
{
    SearchService svc;
    ServiceBus bus(svc);
    ServiceBus::Client client = bus.connect();

    // Unparseable line -> bad_request on the _protocol endpoint.
    client.send("this is not json");
    Frame f = terminalFrame(collectStream(client));
    EXPECT_EQ(f.kind, Frame::Kind::Error);
    EXPECT_EQ(f.code, service::errc::bad_request);

    // Unknown algorithm -> bad_spec, with the registry listed.
    SearchSpec bad = goldenMapperSpec();
    bad.algorithm = "simulated-annealing";
    client.send(service::encodeSearchRequest("b1", bad));
    f = terminalFrame(collectStream(client));
    EXPECT_EQ(f.kind, Frame::Kind::Error);
    EXPECT_EQ(f.id, "b1");
    EXPECT_EQ(f.code, service::errc::bad_spec);
    EXPECT_NE(f.message.find("mapper"), std::string::npos);

    // Unknown option key for a known algorithm -> bad_spec.
    SearchSpec bad_opt = goldenMapperSpec();
    bad_opt.options.set("warp_factor", 9.0);
    client.send(service::encodeSearchRequest("b2", bad_opt));
    f = terminalFrame(collectStream(client));
    EXPECT_EQ(f.code, service::errc::bad_spec);

    // Non-inherit cache mode -> bad_spec (global-flag race).
    SearchSpec bad_cache = goldenMapperSpec();
    bad_cache.cache = CacheMode::Enabled;
    client.send(service::encodeSearchRequest("b3", bad_cache));
    f = terminalFrame(collectStream(client));
    EXPECT_EQ(f.code, service::errc::bad_spec);
    EXPECT_NE(f.message.find("inherit"), std::string::npos);

    std::vector<service::EndpointStats> stats = svc.stats();
    ASSERT_EQ(stats.size(), 4u);
    EXPECT_EQ(stats[0].requests, 1u); // _protocol
    EXPECT_EQ(stats[0].errors, 1u);
    EXPECT_EQ(stats[2].requests, 3u); // search
    EXPECT_EQ(stats[2].errors, 3u);
    EXPECT_FALSE(stats[2].last_error.empty());
}

TEST(Service, StreamsAreByteIdenticalToDirectRunsAndGoldens)
{
    const char *names[] = {"dosa", "random", "mapper", "bayesopt"};
    std::vector<SearchSpec> specs = goldenSpecs();

    SearchService svc;
    ServiceBus bus(svc);
    for (size_t i = 0; i < specs.size(); ++i) {
        const std::string id = std::string("gold-") + names[i];
        std::vector<std::string> expected =
                expectedStream(id, specs[i]);

        ServiceBus::Client client = bus.connect();
        client.send(service::encodeSearchRequest(id, specs[i]));
        std::vector<std::string> streamed = collectStream(client);

        ASSERT_EQ(streamed.size(), expected.size()) << names[i];
        size_t mismatches = 0;
        for (size_t j = 0; j < expected.size(); ++j)
            if (streamed[j] != expected[j])
                ++mismatches;
        EXPECT_EQ(mismatches, 0u)
                << names[i] << ": streamed frames drifted from the "
                << "direct runSearch stream";

        // The terminal frame also matches the checked-in fixture.
        Frame done = terminalFrame(streamed);
        ASSERT_EQ(done.kind, Frame::Kind::Done) << names[i];
        Golden g;
        readGolden(names[i], g);
        if (::testing::Test::HasFatalFailure())
            return;
        EXPECT_EQ(done.best_edp, g.best_edp) << names[i];
        EXPECT_EQ(done.samples, g.trace.size()) << names[i];
        EXPECT_EQ(done.best_hw.pe_dim, g.pe_dim) << names[i];
        EXPECT_EQ(done.best_hw.accum_kib, g.accum_kib) << names[i];
        EXPECT_EQ(done.best_hw.spad_kib, g.spad_kib) << names[i];
    }
}

TEST(Service, MultiObjectiveStreamsMatchDirectRunsForAllSearchers)
{
    // The acceptance bar of the Pareto mode: with area and power
    // enabled, the service stream — frontier frames interleaved in
    // trace order plus the final front on the done frame — is
    // frame-for-frame identical to a direct runSearch for all four
    // searchers.
    const char *names[] = {"dosa", "random", "mapper", "bayesopt"};
    std::vector<SearchSpec> specs = goldenSpecs();
    for (SearchSpec &spec : specs) {
        spec.mode.pareto.area.enabled = true;
        spec.mode.pareto.power.enabled = true;
    }

    SearchService svc;
    ServiceBus bus(svc);
    for (size_t i = 0; i < specs.size(); ++i) {
        const std::string id = std::string("pareto-") + names[i];
        std::vector<std::string> expected =
                expectedStream(id, specs[i]);

        ServiceBus::Client client = bus.connect();
        client.send(service::encodeSearchRequest(id, specs[i]));
        std::vector<std::string> streamed = collectStream(client);

        ASSERT_EQ(streamed.size(), expected.size()) << names[i];
        for (size_t j = 0; j < expected.size(); ++j)
            EXPECT_EQ(streamed[j], expected[j])
                    << names[i] << " frame " << j;

        // The stream really exercised the new frame kind, and the
        // done frame carries a non-empty decoded front.
        size_t frontier_frames = 0;
        for (const std::string &line : streamed) {
            Frame f;
            std::string error;
            ASSERT_TRUE(service::decodeFrame(line, f, error))
                    << error;
            if (f.kind == Frame::Kind::Frontier)
                ++frontier_frames;
        }
        EXPECT_GT(frontier_frames, 0u) << names[i];
        Frame done = terminalFrame(streamed);
        ASSERT_EQ(done.kind, Frame::Kind::Done) << names[i];
        EXPECT_FALSE(done.pareto_front.empty()) << names[i];
        EXPECT_GE(frontier_frames, done.pareto_front.size())
                << names[i];
    }
}

TEST(Service, ByNameSearchOfFileLoadedWorkloadStreamsIdentically)
{
    // The daemon path end to end: load a checked-in workload file,
    // register it, and search it by name over the bus. The stream
    // must be byte-identical to a direct run with the same layers
    // inlined — by-name resolution adds nothing to the wire.
    Network net;
    std::string error;
    ASSERT_TRUE(loadWorkloadFile(
            DOSA_SOURCE_DIR "/workloads/bert.json", net, error))
            << error;
    net.name = "service-file-bert";
    Workloads::registerWorkload(net);

    SearchSpec by_name;
    by_name.algorithm = "mapper";
    by_name.workload_name = "service-file-bert";
    by_name.seed = 17;
    by_name.options.set("samples", 40);

    SearchSpec inline_spec = by_name;
    inline_spec.workload_name.clear();
    inline_spec.workload = net.layers;

    const std::string id = "by-name";
    std::vector<std::string> expected =
            expectedStream(id, inline_spec);

    SearchService svc;
    ServiceBus bus(svc);
    ServiceBus::Client client = bus.connect();
    client.send(service::encodeSearchRequest(id, by_name));
    std::vector<std::string> streamed = collectStream(client);

    ASSERT_EQ(streamed.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j)
        EXPECT_EQ(streamed[j], expected[j]) << "frame " << j;

    Frame done = terminalFrame(streamed);
    ASSERT_EQ(done.kind, Frame::Kind::Done);
    EXPECT_GT(done.samples, 0u);
}

TEST(Service, ConcurrentClientsReceiveByteIdenticalStreams)
{
    const SearchSpec spec = goldenMapperSpec();
    const std::string id = "conc";
    const std::vector<std::string> expected = expectedStream(id, spec);

    ServiceConfig cfg;
    cfg.max_concurrent = 2; // overlap + queueing with 3 clients
    SearchService svc(cfg);
    ServiceBus bus(svc);

    constexpr int kClients = 3;
    std::vector<std::vector<std::string>> streams(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ServiceBus::Client client = bus.connect();
            client.send(service::encodeSearchRequest(id, spec));
            streams[size_t(i)] = collectStream(client);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_EQ(streams[size_t(i)].size(), expected.size())
                << "client " << i;
        EXPECT_EQ(streams[size_t(i)], expected) << "client " << i;
    }
}

// ---------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------

TEST(ServiceFaults, ClientDisconnectCancelsWithinOneSample)
{
    SearchService svc;
    ServiceBus bus(svc);

    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 60);

    constexpr size_t kCapacity = 4;
    ServiceBus::Client client = bus.connect(kCapacity);
    client.send(service::encodeSearchRequest("gone", spec));

    // Read a few frames (so the search is demonstrably streaming),
    // then vanish. The bounded queue backpressures the worker; close
    // releases its blocked send with `false`, the cancel signal.
    size_t reads = 0;
    std::string frame;
    while (reads < 3 && client.receive(frame))
        ++reads;
    ASSERT_EQ(reads, 3u);
    client.close();

    svc.drain();
    std::vector<service::RequestRecord> history = svc.history();
    ASSERT_EQ(history.size(), 1u);
    const service::RequestRecord &rec = history[0];
    EXPECT_EQ(rec.id, "gone");
    EXPECT_EQ(rec.outcome,
            service::RequestRecord::Outcome::Cancelled);
    // Cooperative cancel bound: the trace stops within one sample of
    // the failed send — reads + queue capacity + the phase and
    // improvement frames that shared the queue.
    EXPECT_GE(rec.samples, 1u);
    EXPECT_LE(rec.samples, uint64_t(3 + kCapacity + 2));
    EXPECT_LT(rec.samples, 60u);

    // A disconnect is not a service error.
    EXPECT_EQ(svc.stats()[2].errors, 0u);
}

TEST(ServiceFaults, DeadlineExpiryReturnsBestSoFar)
{
    SearchService svc;
    ServiceBus bus(svc);
    ServiceBus::Client client = bus.connect();

    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 200000); // far beyond the deadline
    spec.budget.deadline_s = 0.2;

    client.send(service::encodeSearchRequest("dl", spec));

    // Keep draining so the worker never backpressures; the deadline,
    // not the queue, must be what stops it.
    std::vector<std::string> frames = collectStream(client);
    Frame done = terminalFrame(frames);
    ASSERT_EQ(done.kind, Frame::Kind::Done);
    EXPECT_TRUE(std::isfinite(done.best_edp));
    EXPECT_GE(done.samples, 1u);
    EXPECT_LT(done.samples, 200000u);
    EXPECT_EQ(done.best_hw.pe_dim == 0, false);

    // The worker accounts the request after streaming `done`; wait
    // for it to go idle before inspecting the history.
    svc.drain();
    std::vector<service::RequestRecord> history = svc.history();
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].outcome,
            service::RequestRecord::Outcome::Done);
}

TEST(ServiceFaults, QueueFullRejectsWithTypedErrorAndCounts)
{
    ServiceConfig cfg;
    cfg.max_concurrent = 1;
    cfg.max_queue = 1;
    SearchService svc(cfg);
    ServiceBus bus(svc);

    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 60);

    // Occupy the single worker: a client that reads one frame and
    // then stops (its bounded queue blocks the stream mid-search).
    ServiceBus::Client busy = bus.connect(2);
    busy.send(service::encodeSearchRequest("busy", spec));
    std::string frame;
    ASSERT_TRUE(busy.receive(frame)); // worker is demonstrably running

    // Fill the one queue slot...
    ServiceBus::Client queued = bus.connect();
    queued.send(service::encodeSearchRequest("queued", spec));

    // ...and overflow it.
    ServiceBus::Client rejected = bus.connect();
    rejected.send(service::encodeSearchRequest("nope", spec));
    Frame err = terminalFrame(collectStream(rejected));
    ASSERT_EQ(err.kind, Frame::Kind::Error);
    EXPECT_EQ(err.id, "nope");
    EXPECT_EQ(err.code, service::errc::queue_full);

    std::vector<service::EndpointStats> stats = svc.stats();
    EXPECT_EQ(stats[2].errors, 1u); // the rejection was counted
    EXPECT_NE(stats[2].last_error.find("queue"), std::string::npos);

    // Release the worker; the queued search must still complete.
    busy.close();
    Frame done = terminalFrame(collectStream(queued));
    EXPECT_EQ(done.kind, Frame::Kind::Done);
    EXPECT_EQ(done.id, "queued");
    svc.drain();
}

TEST(ServiceFaults, ShutdownCancelsInFlightSearches)
{
    auto svc = std::make_unique<SearchService>();
    ServiceBus bus(*svc);
    ServiceBus::Client client = bus.connect();

    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 200000);
    client.send(service::encodeSearchRequest("shut", spec));

    // Drain continuously on a reader thread so shutdown's join can
    // never deadlock against a full reply queue. `frames` belongs to
    // the reader until the join; the main thread only watches the
    // atomic counter.
    std::vector<std::string> frames;
    std::atomic<size_t> received{0};
    std::thread reader([&] {
        std::string f;
        while (client.receive(f)) {
            frames.push_back(f);
            received.fetch_add(1, std::memory_order_release);
            if (isTerminal(f))
                break; // the shutdown error frame ends the stream
        }
    });

    while (received.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
    svc->shutdown();
    // Join before closing: closing drops undelivered frames, and the
    // shutdown error frame must reach the reader.
    reader.join();
    client.close();

    ASSERT_FALSE(frames.empty());
    Frame last;
    std::string error;
    ASSERT_TRUE(service::decodeFrame(frames.back(), last, error))
            << error;
    ASSERT_EQ(last.kind, Frame::Kind::Error);
    EXPECT_EQ(last.code, service::errc::shutdown);

    // New submissions after shutdown are turned away, not queued.
    ServiceBus::Client late = bus.connect();
    late.send(service::encodeSearchRequest("late", goldenMapperSpec()));
    Frame err = terminalFrame(collectStream(late));
    ASSERT_EQ(err.kind, Frame::Kind::Error);
    EXPECT_EQ(err.code, service::errc::shutdown);
}

TEST(Service, ConcurrentMixedTrafficKeepsCountsConsistent)
{
    ServiceConfig cfg;
    cfg.max_concurrent = 2;
    cfg.max_queue = 64;
    SearchService svc(cfg);
    ServiceBus bus(svc);

    SearchSpec small = goldenMapperSpec();
    small.options.set("samples", 5);

    constexpr int kThreads = 4;
    constexpr int kIters = 3;
    std::atomic<int> search_done{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                ServiceBus::Client client = bus.connect();
                std::string id = std::to_string(t) + "." +
                        std::to_string(i);
                client.send(service::encodePingRequest(id));
                EXPECT_EQ(terminalFrame(collectStream(client)).kind,
                        Frame::Kind::Pong);
                client.send(service::encodeStatsRequest(id));
                EXPECT_EQ(terminalFrame(collectStream(client)).kind,
                        Frame::Kind::Stats);
                client.send("junk line " + id);
                EXPECT_EQ(terminalFrame(collectStream(client)).kind,
                        Frame::Kind::Error);
                client.send(service::encodeSearchRequest(id, small));
                Frame done = terminalFrame(collectStream(client));
                EXPECT_EQ(done.kind, Frame::Kind::Done);
                if (done.kind == Frame::Kind::Done)
                    ++search_done;
            }
        });
    for (std::thread &t : threads)
        t.join();
    svc.drain();

    constexpr uint64_t kEach = uint64_t(kThreads) * kIters;
    EXPECT_EQ(search_done.load(), int(kEach));
    std::vector<service::EndpointStats> stats = svc.stats();
    EXPECT_EQ(stats[0].requests, kEach); // _protocol (junk lines)
    EXPECT_EQ(stats[0].errors, kEach);
    EXPECT_EQ(stats[1].requests, kEach); // ping
    EXPECT_EQ(stats[2].requests, kEach); // search
    EXPECT_EQ(stats[2].errors, 0u);
    EXPECT_EQ(stats[3].requests, kEach); // stats
    EXPECT_EQ(stats[2].processing_s.n, size_t(kEach));
    EXPECT_EQ(svc.history().size(), size_t(4 * kEach));
}

// ---------------------------------------------------------------
// TCP transport end-to-end.
// ---------------------------------------------------------------

TEST(ServiceTcp, EndToEndStreamingMatchesDirectRun)
{
    SearchService svc;
    service::TcpServer server(svc, 0);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_NE(server.port(), 0);

    service::TcpClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), error))
            << error;

    // Liveness first.
    ASSERT_TRUE(client.sendLine(service::encodePingRequest("t0")));
    std::string line;
    ASSERT_TRUE(client.receiveLine(line));
    Frame f;
    ASSERT_TRUE(service::decodeFrame(line, f, error)) << error;
    EXPECT_EQ(f.kind, Frame::Kind::Pong);

    // Full search stream over the socket, byte-compared.
    const SearchSpec spec = goldenMapperSpec();
    const std::string id = "tcp-1";
    std::vector<std::string> expected = expectedStream(id, spec);
    ASSERT_TRUE(client.sendLine(
            service::encodeSearchRequest(id, spec)));
    std::vector<std::string> streamed;
    while (client.receiveLine(line)) {
        streamed.push_back(line);
        if (isTerminal(line))
            break;
    }
    EXPECT_EQ(streamed, expected);

    // Endpoint stats over the wire reflect the traffic. The worker
    // accounts the search after streaming `done`, so wait for it to
    // go idle before asking, or the counter read races.
    svc.drain();
    ASSERT_TRUE(client.sendLine(service::encodeStatsRequest("t2")));
    ASSERT_TRUE(client.receiveLine(line));
    ASSERT_TRUE(service::decodeFrame(line, f, error)) << error;
    ASSERT_EQ(f.kind, Frame::Kind::Stats);
    ASSERT_EQ(f.endpoints.size(), 4u);
    EXPECT_EQ(f.endpoints[2].requests, 1u); // search
    EXPECT_EQ(f.endpoints[1].requests, 1u); // ping

    client.close();
    server.stop();
    svc.shutdown();
}

TEST(ServiceTcp, ClientDisconnectOverSocketCancelsTheSearch)
{
    SearchService svc;
    service::TcpServer server(svc, 0);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    SearchSpec spec = goldenMapperSpec();
    spec.options.set("samples", 200000);

    {
        service::TcpClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port(),
                error))
                << error;
        ASSERT_TRUE(client.sendLine(
                service::encodeSearchRequest("drop", spec)));
        std::string line;
        ASSERT_TRUE(client.receiveLine(line)); // streaming started
        client.close();                        // vanish mid-stream
    }

    // The dead socket fails the sink; the search cancels within one
    // sample of the failed write instead of running 200k samples.
    svc.drain();
    std::vector<service::RequestRecord> history = svc.history();
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].outcome,
            service::RequestRecord::Outcome::Cancelled);
    EXPECT_LT(history[0].samples, 200000u);

    server.stop();
    svc.shutdown();
}

} // namespace
} // namespace dosa
