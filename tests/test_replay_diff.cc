/**
 * @file
 * Differential tests for the batched tape interpreter: seeded random
 * tapes (op mix including data-dependent branch flips) asserting
 * `Tape::replayBatch` / `gradientBatchInto` bitwise-match N
 * independent `replay` / `gradientInto` calls across lane widths,
 * plus the layers above — `ObjectiveEngine::evalBatch` vs N scalar
 * evals, the surrogate bulk scorer vs its point path, the batched
 * line-search probe — and death tests for the batch API contract.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "core/dosa_optimizer.hh"
#include "core/objective.hh"
#include "search/bayes_opt.hh"
#include "search/cosa_mapper.hh"
#include "search/random_search.hh"
#include "surrogate/latency_predictor.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

using ad::NodeId;
using ad::Tape;
using ad::Var;

constexpr size_t kW = Tape::kLaneWidth;

/** Bitwise double equality (distinguishes +0.0 / -0.0, exact NaNs). */
bool
bitEq(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/**
 * Record a random program on `tape` over leaves at `x`. The op
 * sequence is a pure function of `rng` draws — never of the leaf
 * values — so the recorded shape is replay-safe by construction. The
 * mix covers every Op kind: binary/const arithmetic, guarded
 * divisions and transcendentals, both-taped and const-operand
 * max/min selections, relu hinges and a softmax (whose stability
 * shift re-selects its argmax per replay). Every pool entry feeds
 * the output so each leaf carries gradient.
 */
Var
buildRandomProgram(Tape &tape, Rng &rng, const std::vector<double> &x)
{
    std::vector<Var> pool;
    pool.reserve(x.size() + 96);
    for (double v : x)
        pool.emplace_back(tape, v);
    auto pick = [&]() -> const Var & {
        return pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
    };
    const int ops = 40 + static_cast<int>(rng.uniformInt(0, 40));
    for (int i = 0; i < ops; ++i) {
        const Var a = pick();
        const Var b = pick();
        const double c = rng.uniformReal(-2.0, 2.0);
        Var r;
        switch (rng.uniformInt(0, 15)) {
          case 0: r = a + b; break;
          case 1: r = a - b; break;
          case 2: r = a * b; break;
          case 3: r = a / (b * b + Var(1.0)); break;
          case 4: r = -a; break;
          case 5: r = a + Var(c); break;
          case 6: r = Var(c) - a; break;
          case 7: r = a * Var(0.5); break;
          case 8: r = Var(c) / (a * a + Var(1.5)); break;
          case 9: r = log(a * a + Var(0.5)); break;
          case 10: r = exp(a * Var(0.25)); break;
          case 11: r = sqrt(a * a + Var(0.25)); break;
          case 12: r = pow(a * a + Var(0.5), 1.3); break;
          case 13: r = max(a, b); break;
          case 14: r = min(a, b); break;
          default:
            r = relu(a - b) + max(a, Var(c)) + min(Var(c), b);
            break;
        }
        pool.push_back(r);
    }
    const size_t n = pool.size();
    std::vector<Var> w = ad::softmax(
            {pool[n - 1], pool[n - 2], pool[n - 3], pool[0]});
    Var out = ad::sum(w);
    for (const Var &p : pool)
        out = out + p * Var(0.01);
    return out;
}

/**
 * Lane-major leaf sets for `lanes` lanes: odd lanes are small
 * perturbations of the base point (so near-tie max/min/relu branches
 * flip between lanes), even lanes are fresh draws.
 */
std::vector<double>
drawLeafSets(Rng &rng, const std::vector<double> &base, size_t lanes)
{
    std::vector<double> sets(lanes * base.size());
    for (size_t l = 0; l < lanes; ++l)
        for (size_t k = 0; k < base.size(); ++k)
            sets[l * base.size() + k] =
                    l % 2 ? base[k] + rng.uniformReal(-0.05, 0.05)
                          : rng.uniformReal(-2.0, 2.0);
    return sets;
}

/**
 * The core differential property: for every lane width from 1 to
 * 3W+1, replayBatch must reproduce N independent replay calls and
 * gradientBatchInto N independent gradientInto sweeps, bit for bit,
 * on a randomly generated tape. Also pins the non-interference
 * contract: a batch sweep leaves the scalar replay state untouched.
 */
TEST(ReplayDiff, BatchMatchesScalarAcrossWidthsAndSeeds)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(seed * 7919);
        const size_t num_leaves = 3 + size_t(rng.uniformInt(0, 6));
        std::vector<double> base;
        for (size_t k = 0; k < num_leaves; ++k)
            base.push_back(rng.uniformReal(-2.0, 2.0));

        Tape tape;
        Var out = buildRandomProgram(tape, rng, base);
        const size_t n = tape.size();

        for (size_t lanes = 1; lanes <= 3 * kW + 1; ++lanes) {
            std::vector<double> sets = drawLeafSets(rng, base, lanes);

            // Scalar reference: one replay + sweep per lane.
            std::vector<std::vector<double>> ref_vals(lanes);
            std::vector<std::vector<double>> ref_adj(lanes);
            for (size_t l = 0; l < lanes; ++l) {
                tape.replay(std::span<const double>(
                        sets.data() + l * num_leaves, num_leaves));
                ref_vals[l].resize(n);
                for (size_t i = 0; i < n; ++i)
                    ref_vals[l][i] = tape.value(NodeId(i));
                tape.gradientInto(out.id(), ref_adj[l]);
            }

            const NodeId head[] = {out.id()};
            std::vector<double> gathered(lanes);
            tape.replayBatch(sets, head, gathered);
            ASSERT_EQ(tape.batchLanes(), lanes);
            std::vector<double> batch_adj;
            tape.gradientBatchInto(out.id(), batch_adj);

            size_t mismatches = 0;
            for (size_t l = 0; l < lanes; ++l) {
                if (!bitEq(gathered[l],
                        ref_vals[l][size_t(out.id())]))
                    ++mismatches;
                for (size_t i = 0; i < n; ++i) {
                    if (!bitEq(tape.batchValue(NodeId(i), l),
                            ref_vals[l][i]))
                        ++mismatches;
                    if (!bitEq(batch_adj[i * lanes + l],
                            ref_adj[l][i]))
                        ++mismatches;
                }
            }
            EXPECT_EQ(mismatches, 0u)
                    << "seed " << seed << " lanes " << lanes;

            // The batch sweep must not disturb the scalar state left
            // by the last replay (the final reference lane).
            for (size_t i = 0; i < n; ++i)
                ASSERT_TRUE(bitEq(tape.value(NodeId(i)),
                        ref_vals[lanes - 1][i]));
        }
    }
}

TEST(ReplayDiff, BranchesReselectPerLane)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    Var out = max(a, b) + min(a, b) * Var(2.0) + relu(a - b);
    // Lane 0: b wins the max; lane 1: a wins and the relu turns on.
    const std::vector<double> sets = {1.0, 2.0, 5.0, 2.0};
    const NodeId head[] = {out.id()};
    std::vector<double> vals(2);
    tape.replayBatch(sets, head, vals);
    EXPECT_DOUBLE_EQ(vals[0], 2.0 + 1.0 * 2.0 + 0.0);
    EXPECT_DOUBLE_EQ(vals[1], 5.0 + 2.0 * 2.0 + 3.0);
    std::vector<double> adj;
    tape.gradientBatchInto(out.id(), adj);
    const size_t ia = size_t(a.id()), ib = size_t(b.id());
    // Lane 0: d/da = min-path 2, d/db = max-path 1.
    EXPECT_DOUBLE_EQ(adj[ia * 2 + 0], 2.0);
    EXPECT_DOUBLE_EQ(adj[ib * 2 + 0], 1.0);
    // Lane 1: d/da = max 1 + relu 1 = 2, d/db = min 2 - relu 1 = 1.
    EXPECT_DOUBLE_EQ(adj[ia * 2 + 1], 2.0);
    EXPECT_DOUBLE_EQ(adj[ib * 2 + 1], 1.0);
}

TEST(ReplayDiff, EightThreadBatchHammerPerThreadTapes)
{
    // Thread-ownership rule: one tape per thread. Each thread builds
    // its own random program and hammers the batch path across many
    // widths, checking every lane against the scalar replay.
    constexpr int kThreads = 8;
    constexpr int kRounds = 25;
    std::vector<int> failures(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &failures] {
            Rng rng(4241 + uint64_t(t));
            const size_t num_leaves = 4;
            std::vector<double> base;
            for (size_t k = 0; k < num_leaves; ++k)
                base.push_back(rng.uniformReal(-2.0, 2.0));
            Tape tape;
            Var out = buildRandomProgram(tape, rng, base);
            const size_t n = tape.size();
            std::vector<double> adj, batch_adj;
            for (int r = 0; r < kRounds; ++r) {
                const size_t lanes =
                        1 + size_t(rng.uniformInt(0, 2 * int64_t(kW)));
                std::vector<double> sets =
                        drawLeafSets(rng, base, lanes);
                std::vector<std::vector<double>> ref_vals(lanes);
                std::vector<std::vector<double>> ref_adj(lanes);
                for (size_t l = 0; l < lanes; ++l) {
                    tape.replay(std::span<const double>(
                            sets.data() + l * num_leaves,
                            num_leaves));
                    ref_vals[l].resize(n);
                    for (size_t i = 0; i < n; ++i)
                        ref_vals[l][i] = tape.value(NodeId(i));
                    tape.gradientInto(out.id(), adj);
                    ref_adj[l] = adj;
                }
                const NodeId head[] = {out.id()};
                std::vector<double> gathered(lanes);
                tape.replayBatch(sets, head, gathered);
                tape.gradientBatchInto(out.id(), batch_adj);
                for (size_t l = 0; l < lanes; ++l)
                    for (size_t i = 0; i < n; ++i)
                        if (!bitEq(tape.batchValue(NodeId(i), l),
                                    ref_vals[l][i]) ||
                            !bitEq(batch_adj[i * lanes + l],
                                    ref_adj[l][i]))
                            ++failures[size_t(t)];
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[size_t(t)], 0) << "thread " << t;
}

// ---- Batch API robustness: every misuse fails loudly. -------------

TEST(ReplayDiffDeath, LeafSetSizeMismatchPanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    (void)(a + b);
    const NodeId head[] = {NodeId(2)};
    std::vector<double> out(2);
    // 3 doubles over 2 leaves: not a whole number of lanes.
    EXPECT_DEATH(tape.replayBatch(std::vector<double>{1.0, 2.0, 3.0},
                         head, out),
            "leaf set size mismatch");
}

TEST(ReplayDiffDeath, ZeroWidthBatchPanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    (void)(a + b);
    const NodeId head[] = {NodeId(2)};
    std::vector<double> out(1);
    EXPECT_DEATH(tape.replayBatch(std::vector<double>{}, head, out),
            "zero-width batch");
}

TEST(ReplayDiffDeath, OutputSpanTooSmallPanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    (void)(a + b);
    const NodeId head[] = {NodeId(2)};
    std::vector<double> out(1); // two lanes need two slots
    EXPECT_DEATH(tape.replayBatch(
                         std::vector<double>{1.0, 2.0, 3.0, 4.0},
                         head, out),
            "output span too small");
}

TEST(ReplayDiffDeath, GradientWithoutBatchStatePanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    Var c = a + b;
    std::vector<double> adj;
    EXPECT_DEATH(tape.gradientBatchInto(c.id(), adj),
            "no batch state");
}

TEST(ReplayDiffDeath, BatchOutputIdOutOfRangePanics)
{
    Tape tape;
    Var a(tape, 1.0), b(tape, 2.0);
    (void)(a + b);
    const NodeId head[] = {NodeId(99)};
    std::vector<double> out(1);
    EXPECT_DEATH(tape.replayBatch(std::vector<double>{1.0, 2.0}, head,
                         out),
            "output id out of range");
}

TEST(ReplayDiffDeath, EngineEmptyBatchPanics)
{
    std::vector<Layer> layers = {Layer::gemm("a", 8, 8, 8)};
    std::vector<OrderVec> orders = {uniformOrder(LoopOrder::WS)};
    ObjectiveEngine engine;
    std::vector<std::vector<double>> xs;
    EXPECT_DEATH(engine.evalBatch(layers, xs, orders,
                         OrderStrategy::Fixed, ObjectiveMode{}),
            "empty candidate batch");
}

// ---- ObjectiveEngine::evalBatch vs N scalar evals. ----------------

/** Perturbed descent candidates around the CoSA start of `layers`. */
std::vector<std::vector<double>>
descentCandidates(const std::vector<Layer> &layers, size_t count,
                  uint64_t seed)
{
    const HardwareConfig hw{16, 32, 128};
    std::vector<double> x0;
    for (const Layer &l : layers) {
        auto xl = packMapping(cosaMap(l, hw));
        x0.insert(x0.end(), xl.begin(), xl.end());
    }
    Rng rng(seed);
    std::vector<std::vector<double>> xs(count, x0);
    for (size_t k = 1; k < count; ++k)
        for (double &v : xs[k])
            v += rng.uniformReal(-0.2, 0.2);
    return xs;
}

void
expectEvalBitwise(const ObjectiveEval &batch, const ObjectiveEval &ref)
{
    EXPECT_TRUE(bitEq(batch.loss, ref.loss));
    EXPECT_TRUE(bitEq(batch.energy_uj, ref.energy_uj));
    EXPECT_TRUE(bitEq(batch.latency, ref.latency));
    EXPECT_TRUE(bitEq(batch.penalty, ref.penalty));
    EXPECT_TRUE(bitEq(batch.edp, ref.edp));
    ASSERT_EQ(batch.grad.size(), ref.grad.size());
    size_t mismatches = 0;
    for (size_t i = 0; i < ref.grad.size(); ++i)
        if (!bitEq(batch.grad[i], ref.grad[i]))
            ++mismatches;
    EXPECT_EQ(mismatches, 0u);
}

TEST(ReplayDiff, EngineBatchMatchesScalarEvalFixed)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    std::vector<OrderVec> orders(layers.size(),
            uniformOrder(LoopOrder::WS));
    ObjectiveMode mode;
    for (size_t lanes : {size_t(1), size_t(3), kW, 2 * kW + 1}) {
        auto xs = descentCandidates(layers, lanes, 11 + lanes);
        ObjectiveEngine batch_engine;
        const std::vector<ObjectiveEval> &evs = batch_engine.evalBatch(
                layers, xs, orders, OrderStrategy::Fixed, mode);
        ASSERT_EQ(evs.size(), lanes);
        ObjectiveEngine ref_engine;
        for (size_t k = 0; k < lanes; ++k) {
            const ObjectiveEval &ref = ref_engine.eval(layers, xs[k],
                    orders, OrderStrategy::Fixed, mode);
            expectEvalBitwise(evs[k], ref);
        }
        EXPECT_EQ(batch_engine.batchSweeps(), 1u);
        EXPECT_EQ(batch_engine.batchCandidates(), lanes);
    }
}

TEST(ReplayDiff, EngineBatchMatchesScalarEvalSoftmax)
{
    Network net = resnet50();
    std::vector<Layer> layers(net.layers.begin(),
            net.layers.begin() + 2);
    ObjectiveMode mode;
    auto xs = descentCandidates(layers, 5, 23);
    ObjectiveEngine batch_engine;
    const std::vector<ObjectiveEval> &evs = batch_engine.evalBatch(
            layers, xs, {}, OrderStrategy::Softmax, mode);
    ObjectiveEngine ref_engine;
    for (size_t k = 0; k < xs.size(); ++k)
        expectEvalBitwise(evs[k], ref_engine.eval(layers, xs[k], {},
                OrderStrategy::Softmax, mode));
}

TEST(ReplayDiff, EngineBatchInterleavesWithScalarEval)
{
    // A batch sweep must not corrupt the scalar replay path (and vice
    // versa) when both are served by the same engine.
    std::vector<Layer> layers = {Layer::gemm("a", 64, 64, 64)};
    std::vector<OrderVec> orders = {uniformOrder(LoopOrder::WS)};
    ObjectiveMode mode;
    auto xs = descentCandidates(layers, 4, 31);

    ObjectiveEngine engine;
    ObjectiveEngine ref;
    const ObjectiveEval &s0 = engine.eval(layers, xs[1], orders,
            OrderStrategy::Fixed, mode);
    expectEvalBitwise(s0, ref.eval(layers, xs[1], orders,
            OrderStrategy::Fixed, mode));
    const std::vector<ObjectiveEval> &b = engine.evalBatch(layers, xs,
            orders, OrderStrategy::Fixed, mode);
    expectEvalBitwise(b[2], ref.eval(layers, xs[2], orders,
            OrderStrategy::Fixed, mode));
    const ObjectiveEval &s1 = engine.eval(layers, xs[3], orders,
            OrderStrategy::Fixed, mode);
    expectEvalBitwise(s1, ref.eval(layers, xs[3], orders,
            OrderStrategy::Fixed, mode));
    // One build total: the batch reused the scalar context.
    EXPECT_EQ(engine.builds(), 1u);
}

// ---- Surrogate bulk scorer vs its point path. ---------------------

TEST(ReplayDiff, PredictorBatchMatchesPointPredictions)
{
    SurrogateDataset ds = generateSurrogateDataset(24, 5);
    for (auto kind : {LatencyModelKind::DnnOnly,
                      LatencyModelKind::Combined}) {
        LatencyPredictor p =
                kind == LatencyModelKind::DnnOnly
                        ? LatencyPredictor::trainDnnOnly(ds, 3, 7)
                        : LatencyPredictor::trainCombined(ds, 3, 7);
        std::vector<LatencyQuery> queries(ds.size());
        for (size_t i = 0; i < ds.size(); ++i)
            queries[i] = {&ds.layers[i], &ds.mappings[i], &ds.hws[i]};
        std::vector<double> bulk(ds.size(), 0.0);
        p.predictBatch(queries, bulk);
        size_t mismatches = 0;
        for (size_t i = 0; i < ds.size(); ++i)
            if (!bitEq(bulk[i], p.predict(ds.layers[i],
                        ds.mappings[i], ds.hws[i])))
                ++mismatches;
        EXPECT_EQ(mismatches, 0u) << latencyModelName(kind);

        // The scorer seam serves the same numbers through both its
        // bulk and point entries.
        LatencyScorer scorer = p.scorer();
        std::vector<double> seam(ds.size(), 0.0);
        scorer.scoreDesigns(queries, seam);
        for (size_t i = 0; i < ds.size(); ++i)
            EXPECT_TRUE(bitEq(seam[i], bulk[i])) << i;
        EXPECT_TRUE(bitEq(scorer(ds.layers[0], ds.mappings[0],
                ds.hws[0]), bulk[0]));
    }
}

// ---- Batched line-search probe. -----------------------------------

TEST(ReplayDiff, LineSearchProbeDeterministicAcrossJobs)
{
    std::vector<Layer> layers = {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
    DosaConfig cfg;
    cfg.start_points = 2;
    cfg.steps_per_start = 20;
    cfg.round_every = 10;
    cfg.seed = 5;
    cfg.line_search_probes = 3;
    cfg.jobs = 1;
    DosaResult serial = dosaSearch(layers, cfg);
    cfg.jobs = 4;
    DosaResult parallel = dosaSearch(layers, cfg);
    ASSERT_EQ(serial.search.trace.size(),
            parallel.search.trace.size());
    for (size_t i = 0; i < serial.search.trace.size(); ++i)
        EXPECT_EQ(serial.search.trace[i], parallel.search.trace[i]);
    EXPECT_EQ(serial.search.best_edp, parallel.search.best_edp);
    EXPECT_EQ(serial.search.best_hw, parallel.search.best_hw);
    EXPECT_TRUE(std::isfinite(serial.search.best_edp));
}

TEST(ReplayDiff, SingleProbeMatchesPlainDescentExactly)
{
    // probes == 1 must take the plain-step code path: identical
    // traces to a default config.
    std::vector<Layer> layers = {Layer::gemm("a", 64, 64, 64)};
    DosaConfig plain;
    plain.start_points = 2;
    plain.steps_per_start = 16;
    plain.round_every = 8;
    plain.seed = 3;
    DosaConfig probed = plain;
    probed.line_search_probes = 1;
    DosaResult a = dosaSearch(layers, plain);
    DosaResult b = dosaSearch(layers, probed);
    EXPECT_EQ(a.search.trace, b.search.trace);
    EXPECT_EQ(a.search.best_edp, b.search.best_edp);
}

// ---- The scorer seam stays deterministic across jobs for the three
// ---- baseline searchers now routed through scoreDesigns. ----------

TEST(ReplayDiff, ScoredSearchersSerialEqualParallel)
{
    std::vector<Layer> layers = {Layer::gemm("a", 64, 64, 128)};
    SurrogateDataset ds = generateSurrogateDataset(16, 9);
    LatencyPredictor pred = LatencyPredictor::trainCombined(ds, 2, 9);

    RandomSearchConfig rcfg;
    rcfg.hw_designs = 3;
    rcfg.mappings_per_hw = 12;
    rcfg.seed = 3;
    rcfg.scorer = pred.scorer();
    rcfg.jobs = 1;
    SearchResult r1 = randomSearch(layers, rcfg);
    rcfg.jobs = 4;
    SearchResult r4 = randomSearch(layers, rcfg);
    EXPECT_EQ(r1.trace, r4.trace);
    EXPECT_EQ(r1.best_edp, r4.best_edp);

    HardwareConfig hw;
    SearchResult m1 = randomMapperSearch(layers, hw, 16, 17, 1,
            pred.scorer());
    SearchResult m4 = randomMapperSearch(layers, hw, 16, 17, 4,
            pred.scorer());
    EXPECT_EQ(m1.trace, m4.trace);
    EXPECT_EQ(m1.best_edp, m4.best_edp);

    BayesOptConfig bcfg;
    bcfg.warmup_samples = 4;
    bcfg.total_samples = 10;
    bcfg.hw_candidates = 2;
    bcfg.map_candidates = 3;
    bcfg.seed = 21;
    bcfg.scorer = pred.scorer();
    bcfg.jobs = 1;
    SearchResult b1 = bayesOptSearch(layers, bcfg);
    bcfg.jobs = 4;
    SearchResult b4 = bayesOptSearch(layers, bcfg);
    EXPECT_EQ(b1.trace, b4.trace);
    EXPECT_EQ(b1.best_edp, b4.best_edp);

    DosaConfig dcfg;
    dcfg.start_points = 2;
    dcfg.steps_per_start = 12;
    dcfg.round_every = 6;
    dcfg.seed = 7;
    dcfg.score_latency = pred.scorer();
    dcfg.jobs = 1;
    DosaResult d1 = dosaSearch(layers, dcfg);
    dcfg.jobs = 4;
    DosaResult d4 = dosaSearch(layers, dcfg);
    EXPECT_EQ(d1.search.trace, d4.search.trace);
    EXPECT_EQ(d1.search.best_edp, d4.search.best_edp);
}

} // namespace
} // namespace dosa
