/**
 * @file
 * Unit tests for the workload module: layer math, GEMM/conv factories,
 * relevance sets and model-zoo sanity (shapes, MAC totals, counts).
 */

#include <gtest/gtest.h>

#include "workload/layer.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

TEST(Layer, DimAccessorsAndMacs)
{
    Layer l = Layer::conv("x", 3, 56, 64, 128, 1);
    EXPECT_EQ(l.size(Dim::R), 3);
    EXPECT_EQ(l.size(Dim::S), 3);
    EXPECT_EQ(l.size(Dim::P), 56);
    EXPECT_EQ(l.size(Dim::Q), 56);
    EXPECT_EQ(l.size(Dim::C), 64);
    EXPECT_EQ(l.size(Dim::K), 128);
    EXPECT_EQ(l.size(Dim::N), 1);
    EXPECT_DOUBLE_EQ(l.macs(), 3.0 * 3 * 56 * 56 * 64 * 128);
}

TEST(Layer, InputDimsWithStride)
{
    Layer l = Layer::conv("s2", 7, 112, 3, 64, 2);
    EXPECT_EQ(l.inputHeight(), 2 * 111 + 7);
    EXPECT_EQ(l.inputWidth(), 2 * 111 + 7);
}

TEST(Layer, TensorWords)
{
    Layer l = Layer::conv("x", 3, 4, 8, 16, 1, 1, 2);
    EXPECT_DOUBLE_EQ(l.tensorWords(Tensor::Weight), 3.0 * 3 * 8 * 16);
    EXPECT_DOUBLE_EQ(l.tensorWords(Tensor::Output), 4.0 * 4 * 16 * 2);
    EXPECT_DOUBLE_EQ(l.tensorWords(Tensor::Input),
            6.0 * 6 * 8 * 2); // (4-1)+3 = 6 per side
}

TEST(Layer, GemmFactoryMapsToConvDims)
{
    Layer g = Layer::gemm("mm", 512, 768, 3072, 4, 2);
    EXPECT_EQ(g.p, 512);
    EXPECT_EQ(g.c, 768);
    EXPECT_EQ(g.k, 3072);
    EXPECT_EQ(g.n, 4);
    EXPECT_EQ(g.count, 2);
    EXPECT_EQ(g.r, 1);
    EXPECT_EQ(g.s, 1);
    EXPECT_EQ(g.q, 1);
    EXPECT_DOUBLE_EQ(g.macs(), 512.0 * 768 * 3072 * 4);
}

TEST(Layer, RelevanceSetsMatchPaper)
{
    // D_W = {R,S,C,K}
    EXPECT_TRUE(dimRelevant(Tensor::Weight, Dim::R));
    EXPECT_TRUE(dimRelevant(Tensor::Weight, Dim::S));
    EXPECT_TRUE(dimRelevant(Tensor::Weight, Dim::C));
    EXPECT_TRUE(dimRelevant(Tensor::Weight, Dim::K));
    EXPECT_FALSE(dimRelevant(Tensor::Weight, Dim::P));
    EXPECT_FALSE(dimRelevant(Tensor::Weight, Dim::Q));
    EXPECT_FALSE(dimRelevant(Tensor::Weight, Dim::N));
    // D_I = {R,S,P,Q,C,N}
    EXPECT_TRUE(dimRelevant(Tensor::Input, Dim::P));
    EXPECT_FALSE(dimRelevant(Tensor::Input, Dim::K));
    // D_O = {P,Q,K,N}
    EXPECT_TRUE(dimRelevant(Tensor::Output, Dim::K));
    EXPECT_FALSE(dimRelevant(Tensor::Output, Dim::C));
    EXPECT_FALSE(dimRelevant(Tensor::Output, Dim::R));
}

TEST(Layer, SameShapeIgnoresNameAndCount)
{
    Layer a = Layer::conv("a", 3, 56, 64, 64, 1, 3);
    Layer b = Layer::conv("b", 3, 56, 64, 64, 1, 7);
    EXPECT_TRUE(a.sameShape(b));
    Layer c = Layer::conv("c", 3, 56, 64, 128);
    EXPECT_FALSE(a.sameShape(c));
}

TEST(Layer, StrAndValid)
{
    Layer l = Layer::conv("named", 3, 8, 4, 4);
    EXPECT_NE(l.str().find("named"), std::string::npos);
    EXPECT_TRUE(l.valid());
    l.c = 0;
    EXPECT_FALSE(l.valid());
}

class ZooNetwork : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ZooNetwork, AllLayersValidAndNamed)
{
    Network net = networkByName(GetParam());
    EXPECT_EQ(net.name, GetParam());
    ASSERT_FALSE(net.layers.empty());
    for (const Layer &l : net.layers) {
        EXPECT_TRUE(l.valid()) << l.str();
        EXPECT_FALSE(l.name.empty());
        EXPECT_GE(l.count, 1);
    }
    EXPECT_GT(net.totalMacs(), 1e6);
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ZooNetwork,
        ::testing::Values("resnet50", "bert", "unet", "retinanet",
                          "alexnet", "vgg16", "resnext50", "deepbench"));

TEST(Zoo, ResNet50MacsInKnownRange)
{
    // ~4.1 GMACs for batch 1 at 224x224.
    double g = resnet50().totalMacs() / 1e9;
    EXPECT_GT(g, 3.0);
    EXPECT_LT(g, 5.5);
}

TEST(Zoo, Vgg16MacsInKnownRange)
{
    // ~15.5 GMACs for batch 1.
    double g = vgg16().totalMacs() / 1e9;
    EXPECT_GT(g, 13.0);
    EXPECT_LT(g, 18.0);
}

TEST(Zoo, AlexnetMacsInKnownRange)
{
    // ~1.1 GMACs for batch 1 in the ungrouped formulation (the
    // original two-GPU grouping halves three of the conv layers).
    double g = alexnet().totalMacs() / 1e9;
    EXPECT_GT(g, 0.7);
    EXPECT_LT(g, 1.4);
}

TEST(Zoo, BertUsesGemmShapes)
{
    Network net = bertBase();
    for (const Layer &l : net.layers) {
        EXPECT_EQ(l.r, 1) << l.str();
        EXPECT_EQ(l.s, 1) << l.str();
        EXPECT_EQ(l.q, 1) << l.str();
    }
    // 12 encoder layers x (4 projections + 2 FFN + 2 attention) GEMMs.
    int64_t total_count = 0;
    for (const Layer &l : net.layers)
        total_count += l.count;
    EXPECT_EQ(total_count, 12 * 8);
}

TEST(Zoo, TargetAndTrainingWorkloadsMatchTable6)
{
    auto targets = targetWorkloads();
    ASSERT_EQ(targets.size(), 4u);
    EXPECT_EQ(targets[0].name, "unet");
    EXPECT_EQ(targets[1].name, "resnet50");
    EXPECT_EQ(targets[2].name, "bert");
    EXPECT_EQ(targets[3].name, "retinanet");
    auto training = trainingWorkloads();
    ASSERT_EQ(training.size(), 4u);
}

TEST(Zoo, UniqueTrainingLayersHaveNoDuplicates)
{
    auto layers = uniqueTrainingLayers();
    EXPECT_GT(layers.size(), 30u);
    for (size_t i = 0; i < layers.size(); ++i)
        for (size_t j = i + 1; j < layers.size(); ++j)
            EXPECT_FALSE(layers[i].sameShape(layers[j]))
                    << layers[i].str() << " vs " << layers[j].str();
}

TEST(Zoo, ResnextGroupedConvPreservesMacScale)
{
    // Grouped 3x3 at stage 1: 32 groups x (3*3*56*56*4*4) MACs each.
    Network net = resnext50();
    bool found = false;
    for (const Layer &l : net.layers) {
        if (l.name == "rx2_g3x3") {
            found = true;
            EXPECT_EQ(l.n, 32);
            EXPECT_EQ(l.c, 4);
            EXPECT_EQ(l.k, 4);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Zoo, DimAndTensorNames)
{
    EXPECT_STREQ(dimName(Dim::R), "R");
    EXPECT_STREQ(dimName(Dim::N), "N");
    EXPECT_STREQ(tensorName(Tensor::Weight), "W");
    EXPECT_STREQ(tensorName(Tensor::Output), "O");
}

} // namespace
} // namespace dosa
