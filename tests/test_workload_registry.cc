/**
 * @file
 * Tests for the workload registry and the schema-1 workload file
 * format: builtin anchoring (bitwise-equal to the legacy model_zoo
 * builders), canonical encode/decode round-trips, strict-decoder
 * diagnostics, hostile-input fuzzing, and canonical-form pinning of
 * every checked-in workloads/ file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "workload/llm_zoo.hh"
#include "workload/model_zoo.hh"
#include "workload/workload_registry.hh"

namespace dosa {
namespace {

/** Exact field equality, name and count included. */
void
expectLayersEq(const std::vector<Layer> &a, const std::vector<Layer> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("layer " + std::to_string(i));
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].r, b[i].r);
        EXPECT_EQ(a[i].s, b[i].s);
        EXPECT_EQ(a[i].p, b[i].p);
        EXPECT_EQ(a[i].q, b[i].q);
        EXPECT_EQ(a[i].c, b[i].c);
        EXPECT_EQ(a[i].k, b[i].k);
        EXPECT_EQ(a[i].n, b[i].n);
        EXPECT_EQ(a[i].stride, b[i].stride);
        EXPECT_EQ(a[i].count, b[i].count);
    }
}

std::string
workloadsDir()
{
    return std::string(DOSA_SOURCE_DIR) + "/workloads";
}

/** Strict decode of `text`; expects success. */
Network
decodeOk(const std::string &text)
{
    json::Value value;
    Network net;
    std::string error;
    EXPECT_TRUE(json::parse(text, value, error)) << error;
    EXPECT_TRUE(workloadFromJson(value, net, error)) << error;
    return net;
}

/** Strict decode of `text`; expects failure containing `substr`. */
void
expectDecodeError(const std::string &text, const std::string &substr)
{
    json::Value value;
    Network net;
    std::string error;
    ASSERT_TRUE(json::parse(text, value, error)) << error;
    EXPECT_FALSE(workloadFromJson(value, net, error)) << text;
    EXPECT_NE(error.find(substr), std::string::npos)
            << "error \"" << error << "\" does not mention \""
            << substr << "\"";
}

TEST(WorkloadRegistry, BuiltinsArePrefixOfNames)
{
    // The builtin bootstrap registers the model_zoo networks then the
    // llm_zoo cells, in a fixed order other tests rely on.
    const std::vector<std::string> builtins{
        "resnet50", "bert", "unet", "retinanet", "alexnet", "vgg16",
        "resnext50", "deepbench", "llm_decode_7b", "llm_prefill_4k",
        "llm_moe_ffn", "depthwise_edge",
    };
    std::vector<std::string> names = Workloads::names();
    ASSERT_GE(names.size(), builtins.size());
    for (size_t i = 0; i < builtins.size(); ++i)
        EXPECT_EQ(names[i], builtins[i]);
    for (const std::string &name : builtins)
        EXPECT_NE(Workloads::find(name), nullptr) << name;
}

TEST(WorkloadRegistry, BuiltinsMatchZooBuildersBitwise)
{
    // The registry entries must be the *same* networks the legacy
    // builders produce — not re-derived look-alikes.
    struct Pair
    {
        const char *name;
        Network net;
    };
    const Pair pairs[] = {
        {"resnet50", resnet50()},     {"bert", bertBase()},
        {"unet", unet()},             {"retinanet", retinanet()},
        {"alexnet", alexnet()},       {"vgg16", vgg16()},
        {"resnext50", resnext50()},   {"deepbench", deepbench()},
        {"llm_decode_7b", llmDecode7b()},
        {"llm_prefill_4k", llmPrefill4k()},
        {"llm_moe_ffn", llmMoeFfn()},
        {"depthwise_edge", depthwiseEdge()},
    };
    for (const Pair &pair : pairs) {
        SCOPED_TRACE(pair.name);
        const Network *reg = Workloads::find(pair.name);
        ASSERT_NE(reg, nullptr);
        EXPECT_EQ(reg->name, pair.net.name);
        expectLayersEq(reg->layers, pair.net.layers);
    }
}

TEST(WorkloadRegistry, FindUnknownReturnsNull)
{
    EXPECT_EQ(Workloads::find("no-such-workload"), nullptr);
    EXPECT_NE(Workloads::nameList().find("resnet50"),
            std::string::npos);
}

TEST(WorkloadRegistry, LatestRegistrationWins)
{
    Network first;
    first.name = "registry-shadow-test";
    first.layers = {Layer::gemm("one", 8, 8, 8)};
    Workloads::registerWorkload(first);

    Network second = first;
    second.layers.push_back(Layer::gemm("two", 4, 4, 4));
    Workloads::registerWorkload(second);

    const Network *found = Workloads::find("registry-shadow-test");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->layers.size(), 2u);

    // names() reports each name once despite the shadowed entry.
    std::vector<std::string> names = Workloads::names();
    EXPECT_EQ(std::count(names.begin(), names.end(),
                      std::string("registry-shadow-test")), 1);
}

TEST(WorkloadRegistryDeathTest, RegisteringIllFormedWorkloadPanics)
{
    Network nameless;
    nameless.layers = {Layer::gemm("l", 2, 2, 2)};
    EXPECT_DEATH(Workloads::registerWorkload(nameless),
            "empty workload name");

    Network empty;
    empty.name = "no-layers";
    EXPECT_DEATH(Workloads::registerWorkload(empty),
            "workload has no layers");

    Network bad;
    bad.name = "bad-layer";
    bad.layers = {Layer::gemm("l", 2, 2, 2)};
    bad.layers[0].c = 0;
    EXPECT_DEATH(Workloads::registerWorkload(bad),
            "dimension must be >= 1");
}

TEST(WorkloadJson, CanonicalRoundTripEveryRegistryEntry)
{
    for (const std::string &name : Workloads::names()) {
        SCOPED_TRACE(name);
        const Network &net = *Workloads::find(name);
        const std::string text = workloadFileText(net);

        Network back = decodeOk(text);
        EXPECT_EQ(back.name, net.name);
        EXPECT_EQ(back.metadata, net.metadata);
        expectLayersEq(back.layers, net.layers);

        // Byte-stable: re-encoding the decoded network reproduces the
        // canonical bytes exactly.
        EXPECT_EQ(workloadFileText(back), text);

        // The compact (wire) form round-trips through the pretty form.
        json::Value pretty_parsed;
        std::string error;
        ASSERT_TRUE(json::parse(text, pretty_parsed, error)) << error;
        EXPECT_EQ(pretty_parsed.dump(), workloadToJson(net).dump());
    }
}

TEST(WorkloadJson, DefaultsOmittedAndRestored)
{
    // A decode GEMV (all spatial dims 1) serializes without r/s/p/q/
    // stride members; decode restores the defaults.
    Network net;
    net.name = "gemv";
    net.layers = {Layer::gemm("g", 1, 64, 128)};
    const std::string compact = workloadToJson(net).dump();
    EXPECT_EQ(compact,
            "{\"layers\":[{\"c\":64,\"k\":128,\"name\":\"g\","
            "\"type\":\"gemm\"}],\"name\":\"gemv\",\"schema\":1}");
    Network back = decodeOk(compact);
    expectLayersEq(back.layers, net.layers);
}

TEST(WorkloadJson, AcceptsOmittedTypeAndMetadata)
{
    Network net = decodeOk(
            "{\"schema\":1,\"name\":\"n\","
            "\"layers\":[{\"name\":\"l\",\"p\":8,\"c\":4,\"k\":2}]}");
    EXPECT_TRUE(net.metadata.empty());
    EXPECT_EQ(net.layers[0].p, 8);
    EXPECT_EQ(net.layers[0].r, 1);

    Network meta = decodeOk(
            "{\"schema\":1,\"name\":\"n\",\"metadata\":{\"a\":\"b\"},"
            "\"layers\":[{\"name\":\"l\",\"type\":\"gemm\"}]}");
    EXPECT_EQ(meta.metadata.at("a"), "b");
}

TEST(WorkloadJson, StrictDecoderDiagnostics)
{
    const std::string ok_layer = "{\"name\":\"l\",\"c\":4,\"k\":2}";
    // Missing / wrong schema.
    expectDecodeError("{\"name\":\"x\",\"layers\":[" + ok_layer + "]}",
            "workload schema 1");
    expectDecodeError(
            "{\"schema\":2,\"name\":\"x\",\"layers\":[" + ok_layer +
            "]}", "workload schema 1 (got 2)");
    // Missing name / layers.
    expectDecodeError("{\"schema\":1,\"layers\":[" + ok_layer + "]}",
            "name: expected a non-empty string");
    expectDecodeError("{\"schema\":1,\"name\":\"x\",\"layers\":[]}",
            "layers: expected a non-empty array");
    expectDecodeError("{\"schema\":1,\"name\":\"x\",\"layers\":7}",
            "layers: expected an array");
    // Unknown keys are rejected at both levels, with paths.
    expectDecodeError("{\"schema\":1,\"name\":\"x\",\"layers\":[" +
            ok_layer + "],\"extra\":1}", "unknown key \"extra\"");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"weird\":1}]}",
            "workload.layers[0]: unknown key \"weird\"");
    // Layer field diagnostics carry the indexed path.
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"stride\":\"two\"}]}",
            "workload.layers[0]: stride: expected a number");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"c\":0}]}",
            "dimension must be >= 1");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\",\"layers\":[{\"c\":4}]}",
            "workload.layers[0]: name: expected a non-empty string");
    // Declared type must exist and match the shape.
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"type\":\"matmul\"}]}",
            "type: expected \"conv\" or \"gemm\"");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"type\":\"conv\"}]}",
            "does not match the shape");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\","
            "\"layers\":[{\"name\":\"l\",\"r\":3,\"type\":\"gemm\"}]}",
            "does not match the shape");
    // Metadata values must be strings.
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\",\"layers\":[" + ok_layer +
            "],\"metadata\":{\"k\":3}}",
            "metadata.k: expected a string");
    expectDecodeError(
            "{\"schema\":1,\"name\":\"x\",\"layers\":[" + ok_layer +
            "],\"metadata\":[]}", "metadata: expected an object");
}

TEST(WorkloadJson, FuzzedMutationsNeverCrash)
{
    // Same idiom as test_json's parser fuzz, but driving the full
    // file pipeline: parse + strict decode + (on success) canonical
    // re-encode. Nothing may crash, failures must carry diagnostics,
    // and whatever decodes must round-trip byte-stably.
    const std::string seed_doc = workloadFileText(llmMoeFfn());
    Rng rng(0xbadcab1e);
    size_t decoded = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        std::string doc = seed_doc;
        int edits = int(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            size_t pos = size_t(
                    rng.uniformInt(0, int64_t(doc.size()) - 1));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                doc[pos] = char(rng.uniformInt(0, 255));
                break;
              case 1:
                doc.erase(pos, 1);
                break;
              default:
                doc.insert(pos, 1, char(rng.uniformInt(0, 255)));
                break;
            }
            if (doc.empty())
                break;
        }
        json::Value value;
        Network net;
        std::string error;
        if (!json::parse(doc, value, error)) {
            EXPECT_FALSE(error.empty());
            continue;
        }
        if (!workloadFromJson(value, net, error)) {
            EXPECT_FALSE(error.empty());
            continue;
        }
        ++decoded;
        const std::string text = workloadFileText(net);
        Network again = decodeOk(text);
        EXPECT_EQ(workloadFileText(again), text);
    }
    // Sanity: strict decoding rejects the vast majority of mutants.
    EXPECT_LT(decoded, 2000u);
}

TEST(WorkloadJson, TruncationsNeverCrash)
{
    const std::string doc = workloadFileText(depthwiseEdge());
    for (size_t len = 0; len < doc.size(); ++len) {
        json::Value value;
        Network net;
        std::string error;
        if (!json::parse(doc.substr(0, len), value, error)) {
            EXPECT_FALSE(error.empty()) << "prefix length " << len;
            continue;
        }
        // Only the trailing-whitespace prefixes still parse; they
        // must decode to the full network.
        ASSERT_TRUE(workloadFromJson(value, net, error))
                << "prefix length " << len << ": " << error;
        EXPECT_EQ(workloadFileText(net), doc);
    }
}

TEST(WorkloadFiles, CheckedInFilesAreCanonicalAndNamedByStem)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(workloadsDir()))
        if (entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    // The two paper cells + the four llm_zoo cells, at minimum.
    ASSERT_GE(paths.size(), 6u);

    for (const std::string &path : paths) {
        SCOPED_TRACE(path);
        Network net;
        std::string error;
        ASSERT_TRUE(loadWorkloadFile(path, net, error)) << error;
        // File name matches the workload it declares.
        EXPECT_EQ(fs::path(path).stem().string(), net.name);
        // On-disk bytes are exactly the canonical encoding: a
        // hand-edit that changes formatting (or relies on decoder
        // defaults) must be re-canonicalized via
        //   workload_tour --canonicalize FILE --out FILE
        std::ifstream in(path, std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        EXPECT_EQ(bytes.str(), workloadFileText(net))
                << path << " is not in canonical form";
    }
}

TEST(WorkloadFiles, PaperCellFilesMatchZooBuilders)
{
    // The checked-in resnet50/bert files are exports of the Table-6
    // builders: same layers bit-for-bit, so a search over the file
    // equals a search over the compiled-in network.
    for (const auto &[file, net] :
         {std::pair<const char *, Network>{"resnet50", resnet50()},
          std::pair<const char *, Network>{"bert", bertBase()}}) {
        SCOPED_TRACE(file);
        Network loaded;
        std::string error;
        ASSERT_TRUE(loadWorkloadFile(
                workloadsDir() + "/" + file + ".json", loaded, error))
                << error;
        EXPECT_EQ(loaded.name, net.name);
        expectLayersEq(loaded.layers, net.layers);
    }
}

TEST(WorkloadFiles, MissingFileAndBadJsonFail)
{
    Network net;
    std::string error;
    EXPECT_FALSE(loadWorkloadFile("/no/such/workload.json", net,
            error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

    // A file that exists but is not a workload reports its path in
    // the diagnostic.
    const std::string bogus = "not json at all";
    std::string tmp = "bad_workload_test.json";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << bogus;
    }
    EXPECT_FALSE(loadWorkloadFile(tmp, net, error));
    EXPECT_NE(error.find(tmp), std::string::npos) << error;
    std::remove(tmp.c_str());
}

TEST(WorkloadJson, MustWorkloadFromJsonAcceptsCanonicalText)
{
    Network net = mustWorkloadFromJson(workloadFileText(llmDecode7b()));
    EXPECT_EQ(net.name, "llm_decode_7b");
    expectLayersEq(net.layers, llmDecode7b().layers);
}

TEST(WorkloadJsonDeathTest, MustWorkloadFromJsonIsFatalOnBadText)
{
    EXPECT_EXIT(mustWorkloadFromJson("{\"schema\":1}"),
            ::testing::ExitedWithCode(1), "mustWorkloadFromJson");
}

} // namespace
} // namespace dosa
