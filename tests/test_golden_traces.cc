/**
 * @file
 * Golden-trace regression fixtures: one tiny canonical fixed-seed run
 * per searcher (DOSA, random co-search, fixed-hardware mapper,
 * BB-BO), serialized bit-exactly (hex floats) under `tests/golden/`
 * and diffed against live runs. The point is to freeze searcher
 * *results*, so interpreter rewrites (batched replay, future SIMD
 * work) cannot silently drift traces or selected designs — any
 * intentional behavior change has to regenerate the fixtures and show
 * up in review.
 *
 * Regenerate with:  DOSA_REGEN_GOLDEN=1 ./test_golden_traces
 *
 * The fixtures are bit-exact with respect to the libm they were
 * generated against (exp/log/pow are ~0.5 ulp, not formally
 * correctly-rounded); a toolchain/libc jump that moves those last
 * bits is a legitimate reason to regenerate — silent drift from a
 * code change is not.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dosa_optimizer.hh"
#include "search/bayes_opt.hh"
#include "search/random_search.hh"
#include "workload/layer.hh"

namespace dosa {
namespace {

/** Fixture directory, baked in from the source tree at compile time. */
std::string
goldenDir()
{
    return std::string(DOSA_SOURCE_DIR) + "/tests/golden/";
}

bool
regenRequested()
{
    const char *env = std::getenv("DOSA_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' &&
           std::strcmp(env, "0") != 0;
}

/**
 * Serialize a search result bit-exactly: %a round-trips doubles
 * through strtod without loss, and stays diffable text.
 */
void
writeGolden(const std::string &path, const SearchResult &r)
{
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fprintf(f, "# golden searcher trace; regenerate with "
                    "DOSA_REGEN_GOLDEN=1 ./test_golden_traces\n");
    std::fprintf(f, "trace %zu\n", r.trace.size());
    for (double v : r.trace)
        std::fprintf(f, "%a\n", v);
    std::fprintf(f, "best_edp %a\n", r.best_edp);
    std::fprintf(f, "best_hw %lld %lld %lld\n",
            static_cast<long long>(r.best_hw.pe_dim),
            static_cast<long long>(r.best_hw.accum_kib),
            static_cast<long long>(r.best_hw.spad_kib));
    std::fclose(f);
}

struct Golden
{
    std::vector<double> trace;
    double best_edp = 0.0;
    long long pe_dim = 0, accum_kib = 0, spad_kib = 0;
};

void
readGolden(const std::string &path, Golden &g)
{
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr)
            << "missing fixture " << path
            << " — run DOSA_REGEN_GOLDEN=1 ./test_golden_traces";
    char line[256];
    size_t n = 0;
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr); // comment
    ASSERT_EQ(std::fscanf(f, "trace %zu\n", &n), 1);
    g.trace.resize(n);
    for (size_t i = 0; i < n; ++i) {
        ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
        g.trace[i] = std::strtod(line, nullptr);
    }
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    g.best_edp = std::strtod(line + std::strlen("best_edp "), nullptr);
    ASSERT_EQ(std::fscanf(f, "best_hw %lld %lld %lld", &g.pe_dim,
                      &g.accum_kib, &g.spad_kib),
            3);
    std::fclose(f);
}

/**
 * Regenerate-or-diff driver shared by the four searcher fixtures.
 * Comparison is exact (==): these are determinism fixtures, not
 * accuracy checks.
 */
void
checkAgainstGolden(const std::string &name, const SearchResult &r)
{
    const std::string path = goldenDir() + name + ".trace";
    if (regenRequested()) {
        writeGolden(path, r);
        GTEST_SKIP() << "regenerated " << path;
    }
    Golden g;
    readGolden(path, g);
    if (::testing::Test::HasFatalFailure())
        return;
    ASSERT_EQ(r.trace.size(), g.trace.size()) << name;
    size_t mismatches = 0;
    for (size_t i = 0; i < g.trace.size(); ++i)
        if (r.trace[i] != g.trace[i] &&
            !(std::isnan(r.trace[i]) && std::isnan(g.trace[i])))
            ++mismatches;
    EXPECT_EQ(mismatches, 0u) << name << ": trace drifted";
    EXPECT_EQ(r.best_edp, g.best_edp) << name;
    EXPECT_EQ(r.best_hw.pe_dim, g.pe_dim) << name;
    EXPECT_EQ(r.best_hw.accum_kib, g.accum_kib) << name;
    EXPECT_EQ(r.best_hw.spad_kib, g.spad_kib) << name;
}

/** The canonical two-layer workload of the exec determinism tests. */
std::vector<Layer>
goldenLayers()
{
    return {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
}

TEST(GoldenTrace, DosaSearch)
{
    DosaConfig cfg;
    cfg.start_points = 3;
    cfg.steps_per_start = 30;
    cfg.round_every = 15;
    cfg.seed = 5;
    checkAgainstGolden("dosa", dosaSearch(goldenLayers(), cfg).search);
}

TEST(GoldenTrace, RandomSearch)
{
    RandomSearchConfig cfg;
    cfg.hw_designs = 4;
    cfg.mappings_per_hw = 30;
    cfg.seed = 3;
    checkAgainstGolden("random", randomSearch(goldenLayers(), cfg));
}

TEST(GoldenTrace, RandomMapper)
{
    checkAgainstGolden("mapper",
            randomMapperSearch(goldenLayers(), HardwareConfig{}, 40,
                    17));
}

TEST(GoldenTrace, BayesOpt)
{
    BayesOptConfig cfg;
    cfg.warmup_samples = 6;
    cfg.total_samples = 14;
    cfg.hw_candidates = 3;
    cfg.map_candidates = 4;
    cfg.seed = 21;
    checkAgainstGolden("bayesopt", bayesOptSearch(goldenLayers(), cfg));
}

} // namespace
} // namespace dosa
