/**
 * @file
 * Tests for the surrogate stack: dataset generation, standardization,
 * the three latency predictors (training improves accuracy; combined
 * model constrained by the analytical prediction) and the
 * differentiable prediction path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "model/analytical.hh"
#include "stats/stats.hh"
#include "surrogate/dataset.hh"
#include "surrogate/latency_predictor.hh"

namespace dosa {
namespace {

using ad::Tape;
using ad::Var;

/** Shared dataset (600 samples: enough for the residual MLP to
 * generalize across the tiny-layer regime, still fast to train). */
const SurrogateDataset &
sharedData()
{
    static SurrogateDataset ds = generateSurrogateDataset(600, 42);
    return ds;
}

TEST(Dataset, DeterministicAndWellFormed)
{
    SurrogateDataset a = generateSurrogateDataset(50, 7);
    SurrogateDataset b = generateSurrogateDataset(50, 7);
    ASSERT_EQ(a.size(), 50u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.rtl[i], b.rtl[i]);
        EXPECT_DOUBLE_EQ(a.analytical[i], b.analytical[i]);
        EXPECT_GT(a.rtl[i], 0.0);
        EXPECT_GT(a.analytical[i], 0.0);
        EXPECT_EQ(a.hws[i].pe_dim, 16);
        EXPECT_EQ(static_cast<int>(a.features[i].size()),
                kFeatureSize);
        EXPECT_TRUE(a.mappings[i].complete(a.layers[i]));
    }
}

TEST(Dataset, SplitPartitions)
{
    const SurrogateDataset &all = sharedData();
    SurrogateDataset train, test;
    splitDataset(all, 0.8, 3, train, test);
    EXPECT_EQ(train.size() + test.size(), all.size());
    EXPECT_NEAR(static_cast<double>(train.size()),
            0.8 * static_cast<double>(all.size()), 1.0);
}

TEST(Standardizer, ZeroMeanUnitVariance)
{
    Standardizer s;
    std::vector<std::vector<double>> rows = {
        {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
    s.fit(rows);
    EXPECT_NEAR(s.mean[0], 2.0, 1e-12);
    EXPECT_NEAR(s.mean[1], 20.0, 1e-12);
    std::vector<double> z = s.apply(std::vector<double>{2.0, 20.0});
    EXPECT_NEAR(z[0], 0.0, 1e-12);
    EXPECT_NEAR(z[1], 0.0, 1e-12);
}

TEST(Standardizer, ConstantFeaturePassesThrough)
{
    Standardizer s;
    s.fit({{5.0}, {5.0}, {5.0}});
    EXPECT_DOUBLE_EQ(s.stdev[0], 1.0);
    auto z = s.apply(std::vector<double>{5.0});
    EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(Predictor, AnalyticalIsIdentity)
{
    const SurrogateDataset &ds = sharedData();
    LatencyPredictor p = LatencyPredictor::analytical();
    EXPECT_EQ(p.kind(), LatencyModelKind::Analytical);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(
                p.predict(ds.layers[i], ds.mappings[i], ds.hws[i]),
                ds.analytical[i]);
}

TEST(Predictor, TrainedModelsBeatUntrainedOnHoldout)
{
    SurrogateDataset train, test;
    splitDataset(sharedData(), 0.8, 5, train, test);

    LatencyPredictor analytical = LatencyPredictor::analytical();
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 400, 11);
    std::vector<double> log_rtl;
    for (double v : test.rtl)
        log_rtl.push_back(std::log(v));

    auto log_err = [&](const LatencyPredictor &p) {
        std::vector<double> pred = p.predictAll(test);
        double acc = 0.0;
        for (size_t i = 0; i < pred.size(); ++i)
            acc += std::abs(std::log(pred[i]) - log_rtl[i]);
        return acc / static_cast<double>(pred.size());
    };
    // The learned residual must reduce log-error vs pure analytical.
    EXPECT_LT(log_err(combined), log_err(analytical));
}

TEST(Predictor, CombinedImprovesSpearmanOverAnalytical)
{
    SurrogateDataset train, test;
    splitDataset(sharedData(), 0.8, 5, train, test);
    LatencyPredictor analytical = LatencyPredictor::analytical();
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 400, 11);
    double rho_a = spearman(analytical.predictAll(test), test.rtl);
    double rho_c = spearman(combined.predictAll(test), test.rtl);
    EXPECT_GT(rho_a, 0.5);
    EXPECT_GE(rho_c, rho_a - 0.02);
    EXPECT_GT(rho_c, 0.75);
}

TEST(Predictor, DnnOnlyTrainsToPositiveCorrelation)
{
    SurrogateDataset train, test;
    splitDataset(sharedData(), 0.8, 5, train, test);
    LatencyPredictor dnn = LatencyPredictor::trainDnnOnly(train, 200,
            13);
    EXPECT_EQ(dnn.kind(), LatencyModelKind::DnnOnly);
    double rho = spearman(dnn.predictAll(test), test.rtl);
    EXPECT_GT(rho, 0.5);
}

TEST(Predictor, ScorerClosureMatchesPredict)
{
    const SurrogateDataset &ds = sharedData();
    SurrogateDataset train, test;
    splitDataset(ds, 0.8, 5, train, test);
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 30, 17);
    auto scorer = combined.scorer();
    for (size_t i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(
                scorer(ds.layers[i], ds.mappings[i], ds.hws[i]),
                combined.predict(ds.layers[i], ds.mappings[i],
                        ds.hws[i]));
}

TEST(Predictor, DifferentiablePathMatchesConcretePath)
{
    SurrogateDataset train, test;
    splitDataset(sharedData(), 0.8, 5, train, test);
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 50, 19);

    const Layer &l = test.layers[0];
    const Mapping &m = test.mappings[0];
    const HardwareConfig &hw = test.hws[0];
    double concrete = combined.predict(l, m, hw);

    // Rebuild the same point on a tape.
    Tape tape;
    Factors<Var> fv;
    for (int lvl = 0; lvl < kNumLevels; ++lvl)
        for (Dim d : kAllDims)
            fv.t(lvl, d) = Var(tape,
                    static_cast<double>(m.factors.t(lvl, d)));
    fv.spatial_c = Var(tape,
            static_cast<double>(m.factors.spatial_c));
    fv.spatial_k = Var(tape,
            static_cast<double>(m.factors.spatial_k));
    HwScalars<Var> hwv = hwScalars<Var>(hw);
    double analytical_lat =
            LatencyPredictor::analytical().predict(l, m, hw);
    // The concrete path uses block-quantized DRAM traffic inside the
    // reference model; feed the identical analytical value so only
    // the MLP path is under test.
    Var out = combined.latencyVar(l, fv, m.order,
            Var(analytical_lat), hwv);
    EXPECT_NEAR(out.value(), concrete, 1e-9 * concrete);

    // Gradients flow to the mapping factors.
    auto adj = tape.gradient(out.id());
    double grad_norm = 0.0;
    for (int lvl = 0; lvl < kDram; ++lvl)
        for (Dim d : kAllDims)
            grad_norm += std::abs(
                    adj[size_t(fv.t(lvl, d).id())]);
    EXPECT_GT(grad_norm, 0.0);
}

TEST(Predictor, SurrogateDiffModelAdapts)
{
    SurrogateDataset train, test;
    splitDataset(sharedData(), 0.8, 5, train, test);
    LatencyPredictor combined =
            LatencyPredictor::trainCombined(train, 30, 23);
    SurrogateDiffModel diff(combined);

    const Layer &l = test.layers[1];
    const Mapping &m = test.mappings[1];
    Tape tape;
    Factors<Var> fv;
    for (int lvl = 0; lvl < kNumLevels; ++lvl)
        for (Dim d : kAllDims)
            fv.t(lvl, d) = Var(tape,
                    static_cast<double>(m.factors.t(lvl, d)));
    fv.spatial_c = Var(tape,
            static_cast<double>(m.factors.spatial_c));
    fv.spatial_k = Var(tape,
            static_cast<double>(m.factors.spatial_k));
    HwScalars<Var> hwv = hwScalars<Var>(test.hws[1]);
    Var a = diff.latency(l, fv, m.order, Var(1000.0), hwv);
    Var b = combined.latencyVar(l, fv, m.order, Var(1000.0), hwv);
    EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(Predictor, MlpSizesMatchPaperScale)
{
    auto sizes = surrogateMlpSizes();
    ASSERT_EQ(sizes.size(), 9u); // in + 7 hidden + out
    EXPECT_EQ(sizes.front(), kFeatureSize);
    EXPECT_EQ(sizes.back(), 1);
}

} // namespace
} // namespace dosa
